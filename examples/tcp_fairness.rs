//! The paper's Section 4 story in one run: TCP Reno is RTT-unfair under
//! drop-tail routers, and the Phantom-based Selective Discard mechanism
//! (the paper's Fig. 18 pseudo-code) restores most of the fairness
//! without touching the TCP end systems.
//!
//! ```sh
//! cargo run --release --example tcp_fairness
//! ```

use phantom_scenarios::common::{tcp_rtt_dumbbell, TcpMechanism};
use phantom_sim::{SimDuration, SimTime};
use phantom_tcp::network::TrunkIdx;

fn run(mech: TcpMechanism) -> (f64, f64, u64) {
    let (mut engine, net) = tcp_rtt_dumbbell(SimDuration::from_millis(25), mech, 7);
    engine.run_until(SimTime::from_secs(20));
    let short = net.flow_goodput(&engine, 0).mean_after(10.0) * 8.0 / 1e6;
    let long = net.flow_goodput(&engine, 1).mean_after(10.0) * 8.0 / 1e6;
    let drops = net.trunk_port(&engine, TrunkIdx(0)).total_drops();
    (short, long, drops)
}

fn main() {
    println!("10 Mb/s bottleneck, two greedy Reno flows: RTT 2 ms vs 52 ms\n");
    for mech in [
        TcpMechanism::DropTail,
        TcpMechanism::Red,
        TcpMechanism::SelectiveDiscard,
        TcpMechanism::SelectiveQuench,
        TcpMechanism::EfciMark,
    ] {
        let (short, long, drops) = run(mech);
        println!(
            "{:18} short {:5.2} Mb/s | long {:5.2} Mb/s | ratio {:5.2} | jain {:.3} | drops {}",
            mech.name(),
            short,
            long,
            short / long.max(0.01),
            phantom_metrics::jain_index(&[short, long]),
            drops,
        );
    }
    println!("\nThe short-RTT flow dominates under drop-tail (and under plain RED,");
    println!("whose per-packet drop probability hits both flows equally — TCP");
    println!("throughput scales as 1/RTT at equal loss). The selective mechanisms");
    println!("punish only flows whose stamped rate exceeds u × MACR, so the");
    println!("long-RTT flow is spared and the ratio collapses.");
}
