//! Quickstart: run Phantom on the simplest topology and check it against
//! theory.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Two greedy ABR sessions share one 150 Mb/s link whose switch port runs
//! the Phantom algorithm with the paper's parameters (utilization factor
//! u = 5). The fixed point is MACR = C/(1+2u) ≈ 13.64 Mb/s and
//! 5 × MACR ≈ 68.2 Mb/s per session.

use phantom_atm::network::SessionId;
use phantom_atm::units::cps_to_mbps;
use phantom_atm::{NetworkBuilder, Traffic};
use phantom_core::fixed_point::{single_link_macr, single_link_rate};
use phantom_core::PhantomAllocator;
use phantom_sim::{Engine, SimDuration, SimTime};

fn main() {
    // 1. Describe the topology: two switches, one 150 Mb/s trunk,
    //    two greedy sessions crossing it.
    let mut builder = NetworkBuilder::new();
    let s1 = builder.switch("s1");
    let s2 = builder.switch("s2");
    let trunk = builder.trunk(s1, s2, 150.0, SimDuration::from_micros(10));
    for _ in 0..2 {
        builder.session(&[s1, s2], Traffic::greedy());
    }

    // 2. Wire it into a deterministic engine, with Phantom on every
    //    trunk port.
    let mut engine = Engine::new(42);
    let net = builder.build(&mut engine, &mut || Box::new(PhantomAllocator::paper()));

    // 3. Run half a simulated second.
    engine.run_until(SimTime::from_millis(500));

    // 4. Read the traces back and compare with the closed form.
    let c = net.trunk_port(&engine, trunk).capacity();
    let macr = net.trunk_macr(&engine, trunk).mean_after(0.3);
    println!(
        "MACR:  measured {:6.2} Mb/s, predicted {:6.2} Mb/s",
        cps_to_mbps(macr),
        cps_to_mbps(single_link_macr(c, 2, 5.0))
    );
    for s in 0..2 {
        let rate = net.session_rate(&engine, SessionId(s)).mean_after(0.3);
        println!(
            "rate s{s}: measured {:6.2} Mb/s, predicted {:6.2} Mb/s",
            cps_to_mbps(rate),
            cps_to_mbps(single_link_rate(c, 2, 5.0))
        );
    }
    let q = net.trunk_queue(&engine, trunk);
    println!(
        "queue: mean {:.1} cells, peak {} cells, drops {}",
        q.mean_after(0.3),
        net.trunk_port(&engine, trunk).queue_high_water(),
        net.trunk_port(&engine, trunk).drops()
    );
    println!("(events simulated: {})", engine.events_processed());
}
