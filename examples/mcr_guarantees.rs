//! Guaranteed minimum rates (TM 4.0 MCR) under Phantom.
//!
//! ```sh
//! cargo run --release --example mcr_guarantees
//! ```
//!
//! Ten greedy sessions share a 150 Mb/s link; session 0 carries a
//! 40 Mb/s MCR guarantee. Switches never stamp ER below a session's MCR
//! (`RmCell::limit_er`), so the guaranteed session is pinned at its
//! floor while the other nine fair-share what remains:
//!
//! ```text
//! MACR = (C − m) / (1 + (n−1)·u) ≈ 2.39 Mb/s
//! best-effort rate = u·MACR ≈ 11.96 Mb/s,  guaranteed ≈ 40 Mb/s
//! ```

use phantom_atm::network::NetworkBuilder;
use phantom_atm::network::SessionId;
use phantom_atm::units::{cps_to_mbps, mbps_to_cps};
use phantom_atm::{AtmParams, Traffic};
use phantom_core::PhantomAllocator;
use phantom_sim::{Engine, SimDuration, SimTime};

fn main() {
    let n = 10;
    let mcr_mbps = 40.0;

    let mut b = NetworkBuilder::new();
    let s1 = b.switch("s1");
    let s2 = b.switch("s2");
    let trunk = b.trunk(s1, s2, 150.0, SimDuration::from_micros(10));
    let mut guaranteed = AtmParams::paper().with_icr_mbps(mcr_mbps);
    guaranteed.mcr = mbps_to_cps(mcr_mbps);
    b.session_with(&[s1, s2], Traffic::greedy(), guaranteed);
    for _ in 1..n {
        b.session(&[s1, s2], Traffic::greedy());
    }

    let mut engine = Engine::new(7);
    let net = b.build(&mut engine, &mut || Box::new(PhantomAllocator::paper()));
    engine.run_until(SimTime::from_millis(800));

    let c = mbps_to_cps(150.0);
    let m = mbps_to_cps(mcr_mbps);
    let macr_pred = (c - m) / (1.0 + (n as f64 - 1.0) * 5.0);

    println!("guaranteed session (MCR {mcr_mbps} Mb/s):");
    println!(
        "  measured {:6.2} Mb/s (pinned at its floor)",
        cps_to_mbps(net.session_rate(&engine, SessionId(0)).mean_after(0.5))
    );
    println!("best-effort sessions:");
    for s in 1..4 {
        println!(
            "  session {s}: {:6.2} Mb/s (predicted {:.2})",
            cps_to_mbps(net.session_rate(&engine, SessionId(s)).mean_after(0.5)),
            cps_to_mbps(5.0 * macr_pred)
        );
    }
    println!(
        "MACR: measured {:.2} Mb/s, predicted {:.2} Mb/s",
        cps_to_mbps(net.trunk_macr(&engine, trunk).mean_after(0.5)),
        cps_to_mbps(macr_pred)
    );
    println!(
        "drops: {} (the guarantee is honored without loss)",
        net.trunk_port(&engine, trunk).drops()
    );
}
