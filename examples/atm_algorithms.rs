//! Compare the four constant-space ATM rate allocators the paper
//! discusses — Phantom, EPRCA, APRC, CAPC — on the same workloads.
//!
//! ```sh
//! cargo run --release --example atm_algorithms
//! ```
//!
//! Regenerates the reproduction's Table 1 (the condensed form of the
//! paper's Section 5 comparison) and prints it. Expected shape: Phantom
//! converges fastest with near-perfect fairness and a drained queue;
//! EPRCA/APRC hold standing queues at their thresholds; CAPC converges
//! slower with a small queue.

use phantom_scenarios::compare::table_atm;

fn main() {
    let table = table_atm(1996);
    print!("{}", table.render());
    println!();
    println!("reading guide:");
    println!("  conv_ms      — time until aggregate throughput stays within 10% of steady state");
    println!("  jain         — Jain fairness index across the two sessions (1.0 = perfect)");
    println!(
        "  utilization  — bottleneck throughput / capacity (Phantom's target: 2u/(1+2u) = 0.909)"
    );
    println!("  onoff_*_q    — queue under the bursty on/off workload (cells)");
}
