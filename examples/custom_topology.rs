//! Build a custom multi-bottleneck topology, tune Phantom's parameters,
//! and check the simulation against the analytic phantom prediction
//! (weighted max-min with one imaginary session per link).
//!
//! ```sh
//! cargo run --release --example custom_topology
//! ```
//!
//! Topology: a chain of three switches with a fat first trunk
//! (150 Mb/s) and a thin second trunk (45 Mb/s); two local sessions on
//! the fat trunk, one long session crossing both, plus one session that
//! joins late to show the re-convergence.

use phantom_atm::network::NetworkBuilder;
use phantom_atm::network::SessionId;
use phantom_atm::units::{cps_to_mbps, mbps_to_cps};
use phantom_atm::Traffic;
use phantom_core::{MacrConfig, PhantomAllocator, PhantomConfig};
use phantom_metrics::fairness::Session;
use phantom_metrics::phantom_prediction;
use phantom_sim::{Engine, SimDuration, SimTime};

fn main() {
    // A custom Phantom configuration: utilization factor 8 (≈ 94%
    // utilization with 2 sessions) and a slightly faster increase gain.
    let cfg = PhantomConfig::paper()
        .with_utilization_factor(8.0)
        .with_macr(MacrConfig {
            alpha_inc: 1.0 / 8.0,
            ..MacrConfig::default()
        });

    let mut b = NetworkBuilder::new();
    let s1 = b.switch("edge");
    let s2 = b.switch("core");
    let s3 = b.switch("far");
    let fat = b.trunk(s1, s2, 150.0, SimDuration::from_micros(10));
    let thin = b.trunk(s2, s3, 45.0, SimDuration::from_micros(10));
    b.session(&[s1, s2], Traffic::greedy()); // local A
    b.session(&[s1, s2], Traffic::greedy()); // local B
    b.session(&[s1, s2, s3], Traffic::greedy()); // long
    b.session(
        &[s1, s2],
        Traffic::window(SimTime::from_millis(400), SimTime::MAX),
    ); // late joiner

    let mut engine = Engine::new(2024);
    let net = b.build(&mut engine, &mut || Box::new(PhantomAllocator::new(cfg)));
    engine.run_until(SimTime::from_millis(900));

    // Analytic reference for the final regime (all four sessions active).
    let caps = vec![mbps_to_cps(150.0), mbps_to_cps(45.0)];
    let sessions = vec![
        Session::on(vec![0]),
        Session::on(vec![0]),
        Session::on(vec![0, 1]),
        Session::on(vec![0]),
    ];
    let (pred, macrs) = phantom_prediction(&caps, &sessions, 8.0);

    println!("steady state (all sessions active), u = 8:");
    for (i, name) in ["local A", "local B", "long", "late joiner"]
        .iter()
        .enumerate()
    {
        let measured = net.session_rate(&engine, SessionId(i)).mean_after(0.7);
        println!(
            "  {name:12} measured {:6.2} Mb/s, predicted {:6.2} Mb/s",
            cps_to_mbps(measured),
            cps_to_mbps(pred[i])
        );
    }
    for (t, name, pm) in [(fat, "fat trunk", macrs[0]), (thin, "thin trunk", macrs[1])] {
        println!(
            "  MACR {name:10} measured {:6.2} Mb/s, predicted {:6.2} Mb/s (queue peak {})",
            cps_to_mbps(net.trunk_macr(&engine, t).mean_after(0.7)),
            cps_to_mbps(pm),
            net.trunk_port(&engine, t).queue_high_water()
        );
    }
    let before = net
        .session_rate(&engine, SessionId(0))
        .value_at(0.35)
        .unwrap_or(0.0);
    let after = net.session_rate(&engine, SessionId(0)).mean_after(0.7);
    println!(
        "\nlocal A gave up bandwidth to the late joiner: {:.1} → {:.1} Mb/s",
        cps_to_mbps(before),
        cps_to_mbps(after)
    );
}
