//! End-to-end acceptance for the phantom-serve daemon (PR 10).
//!
//! Everything here runs the real server — `Server::start` on a port-0
//! listener, real worker threads, the real HTTP wire — and speaks to it
//! through the same `serve::client` helpers `phantom submit`/`phantom
//! jobs` use. The contracts under test:
//!
//! * **Determinism**: a trace streamed from `/v1/jobs/{id}/trace` is
//!   byte-identical to `phantom run <scene> --seed N --trace` on the
//!   same scene text, including when several jobs run concurrently on
//!   a multi-worker pool.
//! * **Admission control**: a full bounded queue answers 429 with the
//!   queue depth; an invalid scene answers 400 with the same
//!   `phantom-check/1` body `phantom check --json` prints; a draining
//!   server answers 503.
//! * **Cancellation**: DELETE on a running metro-chain job flips it to
//!   `cancelled` promptly, frees the worker for the next job, and
//!   leaves a truncated-but-lintable trace.
//! * **Drain**: queued and running jobs finish after `drain()`, then
//!   `wait()` returns cleanly.
//! * **Storm smoke**: a flood of submissions through a small queue
//!   loses nothing — zero drops, zero 5xx, and the queue depth drains
//!   monotonically once admission ends.

use phantom_cli::{run_scene_opts, RunOptions};
use phantom_repro::analyze::lint_trace_str;
use phantom_repro::scene::{parse_scene, Json};
use phantom_repro::serve::{client, Server, ServerConfig};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Per-job sim duration (ms) for the short jobs; debug builds simulate
/// roughly 25x slower than release, so they get a smaller slice.
const SHORT_MS: f64 = if cfg!(debug_assertions) { 30.0 } else { 200.0 };

/// Wall-clock cap on any single wait loop. Generous: a debug-build
/// metro-chain compile plus a few jobs fit well inside it.
const WAIT: Duration = Duration::from_secs(300);

fn scene_text(rel: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(rel);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Rewrite `duration_ms` (and scale the analysis tail to 60% of it) so
/// tests control how long a job runs without forking scene fixtures.
fn with_duration_ms(text: &str, ms: f64) -> String {
    let mut doc = Json::parse(text).expect("scene fixture parses");
    let Json::Obj(pairs) = &mut doc else {
        panic!("scene fixture is not an object")
    };
    for (k, v) in pairs.iter_mut() {
        if k == "duration_ms" {
            *v = Json::Num(ms);
        }
        if k == "analysis" {
            if let Json::Obj(a) = v {
                for (ak, av) in a.iter_mut() {
                    if ak == "tail_from_ms" {
                        *av = Json::Num(ms * 0.6);
                    }
                }
            }
        }
    }
    let text = doc.dump();
    parse_scene(&text).expect("patched scene still validates");
    text
}

fn start(workers: usize, queue_cap: usize, tag: &str) -> (Server, String) {
    let spool =
        std::env::temp_dir().join(format!("phantom-serve-test-{}-{tag}", std::process::id()));
    let server = Server::start(ServerConfig {
        listen: "127.0.0.1:0".into(),
        workers,
        queue_cap,
        spool: Some(spool),
    })
    .expect("server starts");
    let addr = server.addr().to_string();
    (server, addr)
}

fn submit_ok(addr: &str, scene: &str, seed: u64) -> String {
    let resp = client::submit(addr, scene, Some(seed)).expect("submit round trip");
    assert_eq!(
        resp.status,
        202,
        "submission admitted: {}",
        String::from_utf8_lossy(&resp.body)
    );
    let record = Json::parse(String::from_utf8_lossy(&resp.body).trim()).expect("job record");
    assert_eq!(
        record.get("schema").and_then(Json::as_str),
        Some("phantom-serve/1")
    );
    record
        .get("id")
        .and_then(Json::as_str)
        .expect("record has id")
        .to_string()
}

fn job_state(addr: &str, id: &str) -> (String, u64) {
    let resp = client::job_record(addr, id).expect("record round trip");
    assert_eq!(resp.status, 200, "job {id} found");
    let record = Json::parse(String::from_utf8_lossy(&resp.body).trim()).expect("job record");
    (
        record
            .get("state")
            .and_then(Json::as_str)
            .expect("record has state")
            .to_string(),
        record.get("events").and_then(Json::as_f64).unwrap_or(0.0) as u64,
    )
}

fn wait_for(addr: &str, id: &str, pred: impl Fn(&str, u64) -> bool) -> (String, u64) {
    let t0 = Instant::now();
    loop {
        let (state, events) = job_state(addr, id);
        if pred(&state, events) {
            return (state, events);
        }
        assert!(
            t0.elapsed() < WAIT,
            "job {id} stuck in `{state}` after {:?}",
            t0.elapsed()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn is_terminal(state: &str) -> bool {
    matches!(state, "done" | "failed" | "cancelled")
}

/// The headline determinism contract: traces streamed from a 2-worker
/// server running three concurrent fig2 submissions are byte-identical
/// to `phantom run` (`run_scene_opts` + `--trace`) on the same text.
#[test]
fn streamed_traces_match_phantom_run_bytes_under_concurrency() {
    let text = with_duration_ms(&scene_text("scenes/fig2.json"), SHORT_MS);
    let scene = parse_scene(&text).expect("scene parses");
    let (server, addr) = start(2, 8, "identity");

    let seeds = [11u64, 12, 13];
    let ids: Vec<String> = seeds.iter().map(|&s| submit_ok(&addr, &text, s)).collect();

    for (id, &seed) in ids.iter().zip(&seeds) {
        // Blocks server-side until the job is terminal, then yields the
        // complete spool bytes.
        let streamed = client::fetch_trace(&addr, id).expect("trace streams");
        let (state, _) = job_state(&addr, id);
        assert_eq!(state, "done", "job {id} completed");

        let reference = std::env::temp_dir().join(format!(
            "phantom-serve-test-{}-ref-{seed}.jsonl",
            std::process::id()
        ));
        let opts = RunOptions {
            trace: Some(reference.clone()),
            ..RunOptions::default()
        };
        run_scene_opts(&scene, seed, None, &opts).expect("direct run succeeds");
        let direct = std::fs::read(&reference).expect("reference trace written");
        let _ = std::fs::remove_file(&reference);

        assert!(
            streamed == direct,
            "seed {seed}: streamed trace ({} bytes) != phantom run trace ({} bytes)",
            streamed.len(),
            direct.len()
        );
        assert!(
            lint_trace_str(&String::from_utf8(streamed).expect("utf8 trace")).is_ok(),
            "streamed trace lints"
        );
    }

    server.drain();
    server.wait().expect("clean shutdown");
}

/// A full bounded queue answers 429 and reports its depth; the job that
/// caused it is not lost from the admitted set.
#[test]
fn full_queue_answers_429_with_depth() {
    // One worker, one queue slot: job A runs, job B fills the queue,
    // job C must bounce.
    let long = with_duration_ms(&scene_text("scenes/fig2.json"), 60_000.0);
    let (server, addr) = start(1, 1, "backpressure");

    let a = submit_ok(&addr, &long, 1);
    wait_for(&addr, &a, |s, _| s == "running");
    let b = submit_ok(&addr, &long, 2);

    let resp = client::submit(&addr, &long, Some(3)).expect("submit round trip");
    assert_eq!(resp.status, 429, "third submission bounces");
    let body = Json::parse(String::from_utf8_lossy(&resp.body).trim()).expect("429 body is JSON");
    assert_eq!(body.get("queue_depth").and_then(Json::as_f64), Some(1.0));
    assert_eq!(body.get("queue_cap").and_then(Json::as_f64), Some(1.0));

    // Cancel both long jobs so the drain below is quick.
    for id in [&a, &b] {
        let resp = client::cancel(&addr, id).expect("cancel round trip");
        assert_eq!(resp.status, 200);
        wait_for(&addr, id, |s, _| is_terminal(s));
    }
    server.drain();
    server.wait().expect("clean shutdown");
}

/// Invalid submissions answer 400 carrying the same `phantom-check/1`
/// document `phantom check --json` prints, with the error text intact.
#[test]
fn invalid_scene_answers_400_with_check_body() {
    let (server, addr) = start(1, 4, "badscene");

    for bad in [
        "this is not json",
        r#"{"schema":"phantom-scene/1","id":"x"}"#,
    ] {
        let resp = client::submit(&addr, bad, None).expect("submit round trip");
        assert_eq!(resp.status, 400, "invalid scene rejected: {bad}");
        assert_eq!(resp.content_type, "application/json");
        let body =
            Json::parse(String::from_utf8_lossy(&resp.body).trim()).expect("400 body is JSON");
        assert_eq!(
            body.get("schema").and_then(Json::as_str),
            Some("phantom-check/1")
        );
        assert_eq!(body.get("ok").and_then(Json::as_bool), Some(false));
        let err = body.get("error").and_then(Json::as_str).unwrap_or("");
        assert!(!err.is_empty(), "error text present");
    }

    server.drain();
    server.wait().expect("clean shutdown");
}

/// Cooperative cancellation: a metro-chain-10k job cancelled mid-run
/// goes `cancelled`, promptly frees its worker for the next job, and
/// leaves a truncated-but-lintable trace.
#[test]
fn midrun_cancel_frees_worker_and_trace_lints() {
    // Long duration so the job is reliably mid-run when the DELETE
    // lands; cancellation means it never runs to that horizon.
    let metro = with_duration_ms(&scene_text("scenes/metro/metro-chain-10k.json"), 60_000.0);
    let short = with_duration_ms(&scene_text("scenes/fig2.json"), SHORT_MS);
    let (server, addr) = start(1, 4, "cancel");

    let id = submit_ok(&addr, &metro, 5);
    // Mid-run = running with events already dispatched.
    wait_for(&addr, &id, |s, ev| s == "running" && ev > 0);

    let resp = client::cancel(&addr, &id).expect("cancel round trip");
    assert_eq!(resp.status, 200);
    let t0 = Instant::now();
    let (state, events) = wait_for(&addr, &id, |s, _| is_terminal(s));
    assert_eq!(state, "cancelled");
    assert!(events > 0, "job was genuinely mid-run");
    // The engine honours the token at calendar-slice granularity; even
    // a debug build crosses a slice boundary well inside this bound.
    assert!(
        t0.elapsed() < Duration::from_secs(60),
        "cancel honoured promptly, took {:?}",
        t0.elapsed()
    );

    // Truncated-but-complete-lines trace still lints (exit-0 contract).
    let trace = client::fetch_trace(&addr, &id).expect("cancelled trace streams");
    let lines = lint_trace_str(&String::from_utf8(trace).expect("utf8 trace"))
        .expect("cancelled trace lints");
    assert!(lines > 0, "trace has content");

    // The worker is free again: a follow-up job runs to completion.
    let next = submit_ok(&addr, &short, 6);
    let (state, _) = wait_for(&addr, &next, |s, _| is_terminal(s));
    assert_eq!(state, "done", "worker released for the next job");

    server.drain();
    server.wait().expect("clean shutdown");
}

/// Graceful drain: admission stops with 503, queued and running jobs
/// still finish, `wait()` returns cleanly.
#[test]
fn drain_finishes_queued_jobs_and_rejects_new_work() {
    let short = with_duration_ms(&scene_text("scenes/fig2.json"), SHORT_MS);
    let (server, addr) = start(1, 4, "drain");

    // One running, one queued.
    let a = submit_ok(&addr, &short, 21);
    let b = submit_ok(&addr, &short, 22);
    server.drain();

    let resp = client::submit(&addr, &short, Some(23)).expect("submit round trip");
    assert_eq!(resp.status, 503, "admission is off while draining");

    // Both pre-drain jobs run to completion (GETs keep working during
    // the drain).
    for id in [&a, &b] {
        let (state, _) = wait_for(&addr, id, |s, _| is_terminal(s));
        assert_eq!(state, "done", "job {id} finished during drain");
    }
    server.wait().expect("drained shutdown is clean");
}

/// Load smoke: `--storm`-style flood of fig2 jobs through a small
/// bounded queue. Nothing is dropped, nothing 5xxs, every job lands
/// `done`, and the queue depth drains monotonically once the last
/// submission is admitted.
#[test]
fn storm_smoke_drops_nothing_and_queue_drains_monotonically() {
    let n: usize = std::env::var("PHANTOM_STORM_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    // Tiny per-job slice: the point is admission churn, not sim depth.
    let ms = if cfg!(debug_assertions) { 4.0 } else { 25.0 };
    let text = with_duration_ms(&scene_text("scenes/fig2.json"), ms);
    let (server, addr) = start(2, 16, "storm");

    let report = client::storm(&addr, &text, n, 1000).expect("storm completes");

    assert_eq!(report.admitted.len(), n, "every submission admitted");
    assert_eq!(report.dropped, 0, "zero dropped jobs");
    assert_eq!(report.server_errors, 0, "zero 5xx responses");
    for (id, state) in &report.final_states {
        assert_eq!(state, "done", "job {id} completed");
    }
    // Post-admission the queue can only drain: samples never rise.
    assert!(
        report.depth_samples.windows(2).all(|w| w[1] <= w[0]),
        "queue depth drains monotonically: {:?}",
        report.depth_samples
    );

    server.drain();
    server.wait().expect("clean shutdown");
}
