//! Kitchen-sink stress tests: every substrate feature in one network, on
//! every algorithm. These don't pin precise numbers — they pin that the
//! system composes: no panics, conservation holds, queues stay bounded,
//! and nobody starves outright.

use phantom_repro::atm::network::SessionId;
use phantom_repro::atm::network::{NetworkBuilder, TrunkIdx};
use phantom_repro::atm::source::AbrSource;
use phantom_repro::atm::units::{cps_to_mbps, mbps_to_cps};
use phantom_repro::atm::{AtmParams, Traffic};
use phantom_repro::scenarios::common::AtmAlgorithm;
use phantom_repro::sim::{Engine, SimDuration, SimTime};

/// A network using every feature at once — heterogeneous trunk speeds, a
/// lossy hop, greedy/windowed/periodic/stochastic ABR sessions, an
/// MCR-guaranteed session, CBR background, heterogeneous access delays.
fn kitchen_sink(
    alg: AtmAlgorithm,
    seed: u64,
) -> (
    Engine<phantom_repro::atm::AtmMsg>,
    phantom_repro::atm::Network,
) {
    let mut b = NetworkBuilder::new();
    let s1 = b.switch("s1");
    let s2 = b.switch("s2");
    let s3 = b.switch("s3");
    b.trunk(s1, s2, 150.0, SimDuration::from_micros(10));
    b.trunk(s2, s3, 100.0, SimDuration::from_millis(1));
    b.last_trunk_loss(0.002);

    // Greedy long session over both trunks.
    b.session(&[s1, s2, s3], Traffic::greedy());
    // Windowed session joining late.
    b.session(
        &[s1, s2],
        Traffic::window(SimTime::from_millis(200), SimTime::MAX),
    );
    // Periodic burster.
    b.session(
        &[s2, s3],
        Traffic::on_off(
            SimTime::from_millis(50),
            SimDuration::from_millis(25),
            SimDuration::from_millis(25),
        ),
    );
    // Stochastic burster with a long access delay.
    b.session(
        &[s1, s2],
        Traffic::random(SimDuration::from_millis(15), SimDuration::from_millis(30)),
    );
    b.last_session_access_prop(SimDuration::from_millis(5));
    // MCR-guaranteed session (10 Mb/s floor).
    let mut g = AtmParams::paper().with_icr_mbps(10.0);
    g.mcr = mbps_to_cps(10.0);
    b.session_with(&[s1, s2, s3], Traffic::greedy(), g);
    // Unresponsive CBR background on the first trunk.
    b.cbr_session(&[s1, s2], 20.0, Traffic::greedy());

    let mut engine = Engine::new(seed);
    let net = b.build(&mut engine, &mut || alg.boxed());
    engine.run_until(SimTime::from_millis(900));
    (engine, net)
}

fn check(alg: AtmAlgorithm, seed: u64) {
    let (engine, net) = kitchen_sink(alg, seed);
    let name = alg.name();
    for t in 0..2 {
        let port = net.trunk_port(&engine, TrunkIdx(t));
        assert!(
            port.queue_high_water() <= 16_384,
            "{name}: trunk {t} queue bound violated"
        );
        let util = net.trunk_throughput(&engine, TrunkIdx(t)).mean_after(0.4) / port.capacity();
        assert!(util <= 1.001, "{name}: trunk {t} over unity: {util}");
    }
    // Nobody starves: every ABR session delivers something in steady
    // state, and the guaranteed session holds a real share.
    for s in 0..5 {
        let rate = net.session_rate(&engine, SessionId(s)).mean_after(0.4);
        assert!(
            rate > 100.0,
            "{name}: session {s} starved ({rate:.0} cells/s)"
        );
    }
    let guaranteed = net.session_rate(&engine, SessionId(4)).mean_after(0.4);
    assert!(
        cps_to_mbps(guaranteed) > 5.0,
        "{name}: MCR session squeezed to {:.1} Mb/s",
        cps_to_mbps(guaranteed)
    );
    // The ABR sources are alive (no wedged state machines).
    for s in net.sessions.iter().take(5) {
        let src = engine.node::<AbrSource>(s.source);
        assert!(src.cells_sent > 1000, "{name}: a source wedged");
    }
}

#[test]
fn kitchen_sink_phantom() {
    check(AtmAlgorithm::Phantom, 101);
}

#[test]
fn kitchen_sink_phantom_ni() {
    check(AtmAlgorithm::PhantomNi, 102);
}

#[test]
fn kitchen_sink_eprca() {
    check(AtmAlgorithm::Eprca, 103);
}

#[test]
fn kitchen_sink_aprc() {
    check(AtmAlgorithm::Aprc, 104);
}

#[test]
fn kitchen_sink_capc() {
    check(AtmAlgorithm::Capc, 105);
}

#[test]
fn kitchen_sink_erica() {
    check(AtmAlgorithm::Erica, 106);
}

#[test]
fn kitchen_sink_osu() {
    check(AtmAlgorithm::Osu, 107);
}

#[test]
fn kitchen_sink_is_deterministic() {
    let fingerprint = |seed| {
        let (engine, net) = kitchen_sink(AtmAlgorithm::Phantom, seed);
        let mut v = vec![engine.events_processed() as f64];
        for s in 0..5 {
            v.push(net.session_rate(&engine, SessionId(s)).mean_after(0.4));
        }
        v
    };
    assert_eq!(fingerprint(42), fingerprint(42));
    assert_ne!(fingerprint(42), fingerprint(43));
}
