//! End-to-end determinism acceptance for the timer-wheel calendar,
//! busy-port cell batching and intra-run PDES sharding.
//!
//! The event calendar was swapped (binary heap → hierarchical timer
//! wheel), busy ports may emit up to `tx_batch_limit()` cells per
//! `TxDone` inside the quiet window, and one run may now execute on
//! several conservative shards (`--shards N`). All are pure performance
//! changes within their contract: the delivered event order — and
//! therefore every probe event a run emits — must be identical at any
//! `--jobs` level, any batch limit and any shard count ≥ 1. (Shard
//! count 0, the serial engine, uses a different equal-time tie-break
//! and is pinned by the pre-existing serial matrix.) This test digests
//! full JSONL traces across the `{shards 1,2,4} × {jobs 1,4} ×
//! {batch 64,1}` matrix on one ATM experiment (fig2), one TCP
//! experiment (fig17) and a generated metro scene (metro-chain-10k,
//! shortened so the debug-build matrix stays fast).

use phantom_repro::atm::{set_tx_batch_limit, tx_batch_limit};
use phantom_repro::metrics::fnv1a_64;
use phantom_repro::scenarios::sweep::{run_sweep_with, SweepJob, SweepOptions};
use phantom_repro::sim::probe::KindSet;
use std::collections::BTreeMap;
use std::sync::{Mutex, Once};

/// Serializes the two matrix tests: both flip the process-global batch
/// limit, and the harness runs test functions in parallel.
static BATCH_LIMIT_LOCK: Mutex<()> = Mutex::new(());

const SEED: u64 = 1996;
const IDS: [&str; 3] = ["fig2", "fig17", "metro-chain-10k"];

/// Register a shortened metro-chain-10k (8 ms instead of the committed
/// duration) as a dynamic experiment, once per process. The topology —
/// and thus the shard partition — is exactly the committed scene's.
fn register_short_metro() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let text = std::fs::read_to_string(
            std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("scenes/metro/metro-chain-10k.json"),
        )
        .expect("committed metro scene");
        let mut scene = phantom_repro::scene::parse_scene(&text).expect("scene parses");
        scene.duration_ms = 8.0;
        phantom_repro::scene::register_scene(scene);
    });
}

/// One configuration's fingerprints: per experiment id, the FNV-1a
/// digest of the trace body (everything after the manifest line — the
/// manifest is identical here anyway, but it carries provenance rather
/// than behavior) plus the dispatched event count and run telemetry.
#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    trace_digest: u64,
    events: u64,
    drops: u64,
    retransmits: u64,
    queue_peak: u64,
}

fn run_matrix_point(jobs: usize, shards: usize, tag: &str) -> BTreeMap<String, Fingerprint> {
    register_short_metro();
    let dir = std::env::temp_dir().join(format!(
        "phantom-trace-determinism-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = SweepOptions {
        trace_dir: Some(dir.clone()),
        trace_filter: KindSet::ALL,
        analyze_window: None,
        shards,
        ..SweepOptions::default()
    };
    let batch: Vec<SweepJob> = IDS
        .iter()
        .map(|id| SweepJob {
            id: id.to_string(),
            seed: SEED,
        })
        .collect();
    let runs = run_sweep_with(&batch, jobs, &opts);
    let mut out = BTreeMap::new();
    for run in &runs {
        let id = &run.job.id;
        assert!(run.output.is_some(), "{id} must be a known experiment");
        let text = std::fs::read_to_string(dir.join(format!("{id}-{SEED}.jsonl"))).unwrap();
        let body_start = text.find('\n').expect("trace has a manifest line") + 1;
        assert!(
            text[..body_start].contains("phantom-trace/1"),
            "{id}: first line must be the manifest"
        );
        assert!(text.len() > body_start, "{id}: trace must contain events");
        out.insert(
            id.clone(),
            Fingerprint {
                trace_digest: fnv1a_64(&text.as_bytes()[body_start..]),
                events: run.events,
                drops: run.counters.drops,
                retransmits: run.counters.retransmits,
                queue_peak: run.counters.queue_peak,
            },
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
    out
}

/// The serial matrix: `{jobs} × {batch limit}` at shards 0 must produce
/// identical trace digests, event counts and telemetry per experiment.
/// One test function (not four) because the batch limit is
/// process-global and the harness runs tests in parallel.
#[test]
fn traces_are_identical_across_jobs_and_batch_limits() {
    let _lock = BATCH_LIMIT_LOCK.lock().unwrap();
    let default_limit = tx_batch_limit();
    assert_eq!(default_limit, 64, "documented default batch limit");

    let reference = run_matrix_point(1, 0, "serial-j1-b64");
    let variants = [
        (4, default_limit, "serial-j4-b64"),
        (1, 1, "serial-j1-b1"),
        (4, 1, "serial-j4-b1"),
    ];
    for (jobs, limit, tag) in variants {
        set_tx_batch_limit(limit);
        let got = run_matrix_point(jobs, 0, tag);
        set_tx_batch_limit(default_limit);
        for id in IDS {
            assert_eq!(
                got[id], reference[id],
                "{id} at jobs={jobs} batch={limit} must match jobs=1 batch=64"
            );
        }
    }
    for id in IDS {
        assert!(
            reference[id].events > 10_000,
            "{id}: the determinism check must cover a substantial run, saw {}",
            reference[id].events
        );
    }
}

/// The sharded matrix: every `{shards 1,2,4} × {jobs 1,4} × {batch
/// 64,1}` point must match the `shards=1, jobs=1, batch=64` reference
/// byte for byte — the `--shards` determinism contract, proven one
/// level below the `--jobs` one.
#[test]
fn traces_are_identical_across_shard_counts() {
    let _lock = BATCH_LIMIT_LOCK.lock().unwrap();
    let default_limit = tx_batch_limit();
    let reference = run_matrix_point(1, 1, "shard-s1-j1-b64");
    for id in IDS {
        assert!(
            reference[id].events > 10_000,
            "{id}: the shard determinism check must cover a substantial run, saw {}",
            reference[id].events
        );
    }
    let mut variants = Vec::new();
    for shards in [1usize, 2, 4] {
        for jobs in [1usize, 4] {
            for batch in [default_limit, 1] {
                if (shards, jobs, batch) != (1, 1, default_limit) {
                    variants.push((shards, jobs, batch));
                }
            }
        }
    }
    for (shards, jobs, batch) in variants {
        set_tx_batch_limit(batch);
        let tag = format!("shard-s{shards}-j{jobs}-b{batch}");
        let got = run_matrix_point(jobs, shards, &tag);
        set_tx_batch_limit(default_limit);
        for id in IDS {
            assert_eq!(
                got[id], reference[id],
                "{id} at shards={shards} jobs={jobs} batch={batch} must match \
                 shards=1 jobs=1 batch={default_limit}"
            );
        }
    }
}
