//! End-to-end determinism acceptance for the timer-wheel calendar and
//! busy-port cell batching.
//!
//! The event calendar was swapped (binary heap → hierarchical timer
//! wheel) and busy ports may now emit up to `tx_batch_limit()` cells per
//! `TxDone` inside the quiet window. Both are pure performance changes:
//! the delivered event order — and therefore every probe event a run
//! emits — must be exactly what the heap produced, at any `--jobs`
//! level and any batch limit. This test pins that end to end on one ATM
//! experiment (fig2) and one TCP experiment (fig17) by digesting the
//! full JSONL traces across the `{jobs 1, jobs 4} × {batch 64, batch 1}`
//! matrix.

use phantom_repro::atm::{set_tx_batch_limit, tx_batch_limit};
use phantom_repro::metrics::fnv1a_64;
use phantom_repro::scenarios::sweep::{run_sweep_with, SweepJob, SweepOptions};
use phantom_repro::sim::probe::KindSet;
use std::collections::BTreeMap;

const SEED: u64 = 1996;
const IDS: [&str; 2] = ["fig2", "fig17"];

/// One configuration's fingerprints: per experiment id, the FNV-1a
/// digest of the trace body (everything after the manifest line — the
/// manifest is identical here anyway, but it carries provenance rather
/// than behavior) plus the dispatched event count and run telemetry.
#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    trace_digest: u64,
    events: u64,
    drops: u64,
    retransmits: u64,
    queue_peak: u64,
}

fn run_matrix_point(jobs: usize, tag: &str) -> BTreeMap<String, Fingerprint> {
    let dir = std::env::temp_dir().join(format!(
        "phantom-trace-determinism-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = SweepOptions {
        trace_dir: Some(dir.clone()),
        trace_filter: KindSet::ALL,
        analyze_window: None,
        ..SweepOptions::default()
    };
    let batch: Vec<SweepJob> = IDS
        .iter()
        .map(|id| SweepJob {
            id: id.to_string(),
            seed: SEED,
        })
        .collect();
    let runs = run_sweep_with(&batch, jobs, &opts);
    let mut out = BTreeMap::new();
    for run in &runs {
        let id = &run.job.id;
        assert!(run.output.is_some(), "{id} must be a known experiment");
        let text = std::fs::read_to_string(dir.join(format!("{id}-{SEED}.jsonl"))).unwrap();
        let body_start = text.find('\n').expect("trace has a manifest line") + 1;
        assert!(
            text[..body_start].contains("phantom-trace/1"),
            "{id}: first line must be the manifest"
        );
        assert!(text.len() > body_start, "{id}: trace must contain events");
        out.insert(
            id.clone(),
            Fingerprint {
                trace_digest: fnv1a_64(&text.as_bytes()[body_start..]),
                events: run.events,
                drops: run.counters.drops,
                retransmits: run.counters.retransmits,
                queue_peak: run.counters.queue_peak,
            },
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
    out
}

/// The full matrix in one test: the four `{jobs} × {batch limit}`
/// configurations must produce identical trace digests, event counts and
/// telemetry per experiment. One test function (not four) because the
/// batch limit is process-global and the harness runs tests in parallel.
#[test]
fn traces_are_identical_across_jobs_and_batch_limits() {
    let default_limit = tx_batch_limit();
    assert_eq!(default_limit, 64, "documented default batch limit");

    let reference = run_matrix_point(1, "j1-b64");
    let variants = [
        (4, default_limit, "j4-b64"),
        (1, 1, "j1-b1"),
        (4, 1, "j4-b1"),
    ];
    for (jobs, limit, tag) in variants {
        set_tx_batch_limit(limit);
        let got = run_matrix_point(jobs, tag);
        set_tx_batch_limit(default_limit);
        for id in IDS {
            assert_eq!(
                got[id], reference[id],
                "{id} at jobs={jobs} batch={limit} must match jobs=1 batch=64"
            );
        }
    }
    for id in IDS {
        assert!(
            reference[id].events > 10_000,
            "{id}: the determinism check must cover a substantial run, saw {}",
            reference[id].events
        );
    }
}
