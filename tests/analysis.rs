//! Acceptance tests of the `phantom-analyze` subsystem, end to end:
//!
//! * the streaming one-pass analyzer is byte-identical to the buffered
//!   two-pass reference on real fig2/fig3 traces;
//! * a live `AnalysisSink` tap produces the same `phantom-analysis/1`
//!   report as re-analyzing the trace the run wrote, at any jobs level;
//! * the committed baselines accept an unperturbed run and reject a
//!   deliberately perturbed control loop (`dev_gain` cranked to 1.0),
//!   naming the offending metric and its tolerance.

use phantom_repro::analyze::reference::analyze_trace_str_two_pass;
use phantom_repro::analyze::{
    analyze_trace_str, check_report, parse_baseline, AnalysisSink, StreamingAnalyzer,
    DEFAULT_WINDOW_SECS,
};
use phantom_repro::atm::network::NetworkBuilder;
use phantom_repro::atm::Traffic;
use phantom_repro::core::{MacrConfig, PhantomAllocator, PhantomConfig};
use phantom_repro::metrics::manifest::{Manifest, TRACE_SCHEMA};
use phantom_repro::scenarios::shape::targets_for;
use phantom_repro::scenarios::sweep::{run_sweep_with, SweepJob, SweepOptions};
use phantom_repro::sim::probe::{KindSet, Probe, ProbeGuard};
use phantom_repro::sim::{Engine, SimDuration, SimTime};
use std::path::Path;

const SEED: u64 = 1996;

fn committed_baseline(id: &str) -> phantom_repro::analyze::Baseline {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("crates/baselines/analysis")
        .join(format!("{id}.json"));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing committed baseline {}: {e}", path.display()));
    parse_baseline(&text).expect("committed baseline parses")
}

/// Satellite 3 on real traces + the live-tap acceptance criterion: for
/// fig2 and fig3, the one-pass streaming analyzer, the two-pass
/// reference, and the live `AnalysisSink` tap all emit byte-identical
/// reports — here with the sweep fanned across workers.
#[test]
fn streaming_two_pass_and_live_tap_agree_on_fig_traces() {
    let dir = std::env::temp_dir().join(format!("phantom-analysis-accept-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = SweepOptions {
        trace_dir: Some(dir.clone()),
        trace_filter: KindSet::ALL,
        analyze_window: Some(DEFAULT_WINDOW_SECS),
        ..SweepOptions::default()
    };
    let batch = vec![
        SweepJob {
            id: "fig2".into(),
            seed: SEED,
        },
        SweepJob {
            id: "fig3".into(),
            seed: SEED,
        },
    ];
    let runs = run_sweep_with(&batch, 2, &opts);
    for run in &runs {
        let id = &run.job.id;
        let text = std::fs::read_to_string(dir.join(format!("{id}-{SEED}.jsonl"))).unwrap();
        let targets = targets_for(id);
        let one = analyze_trace_str(&text, targets.clone(), DEFAULT_WINDOW_SECS).unwrap();
        let two = analyze_trace_str_two_pass(&text, targets, DEFAULT_WINDOW_SECS).unwrap();
        assert_eq!(
            one.to_json(),
            two.to_json(),
            "{id}: streaming and two-pass reference must be byte-identical"
        );
        let live = run.analysis.as_ref().expect("analysis enabled");
        assert_eq!(
            live.to_json(),
            one.to_json(),
            "{id}: live tap must equal trace re-analysis"
        );
        assert!(one.events > 1000, "{id}: trace should be substantial");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The committed baselines describe what the real runs do: an
/// unperturbed fig2 at the default seed passes its baseline.
#[test]
fn committed_fig2_baseline_accepts_the_unperturbed_run() {
    let opts = SweepOptions {
        analyze_window: Some(DEFAULT_WINDOW_SECS),
        ..SweepOptions::default()
    };
    let runs = run_sweep_with(
        &[SweepJob {
            id: "fig2".into(),
            seed: SEED,
        }],
        1,
        &opts,
    );
    let report = runs[0].analysis.as_ref().unwrap();
    let failures = check_report(report, &committed_baseline("fig2"));
    assert!(failures.is_empty(), "unexpected regressions: {failures:?}");
}

/// The regression gate has teeth: rebuild fig2's exact topology but with
/// the deviation-filter gain perturbed from Jacobson's 1/4 to 1.0 and
/// the committed baseline must reject the run, naming the metric and the
/// tolerance in the failure message.
#[test]
fn perturbed_dev_gain_trips_the_committed_fig2_baseline() {
    let mut b = NetworkBuilder::new();
    let s1 = b.switch("s1");
    let s2 = b.switch("s2");
    b.trunk(s1, s2, 150.0, SimDuration::from_micros(10));
    b.session(&[s1, s2], Traffic::greedy());
    b.session(&[s1, s2], Traffic::greedy());

    let manifest = Manifest::new(TRACE_SCHEMA, "fig2", SEED, "fig2;dev_gain=1.0");
    let analyzer = StreamingAnalyzer::new(&manifest, targets_for("fig2"), DEFAULT_WINDOW_SECS);
    let (sink, handle) = AnalysisSink::new(analyzer);
    let guard = ProbeGuard::install(Box::new(sink) as Box<dyn Probe>);

    let cfg = PhantomConfig::paper().with_macr(MacrConfig {
        dev_gain: 1.0,
        ..MacrConfig::default()
    });
    let mut engine = Engine::new(SEED);
    let _net = b.build(&mut engine, &mut || Box::new(PhantomAllocator::new(cfg)));
    engine.run_until(SimTime::from_millis(500));
    drop(guard);

    let report = handle.finish().expect("sink saw the run");
    let failures = check_report(&report, &committed_baseline("fig2"));
    assert!(
        !failures.is_empty(),
        "a perturbed control loop must trip the baseline gate"
    );
    for f in &failures {
        assert!(
            f.contains("metric `") && f.contains('±'),
            "failure must name the metric and tolerance: {f}"
        );
    }
}
