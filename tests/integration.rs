//! Workspace-level integration tests: cross-crate behavior that no
//! single crate can check alone — simulation vs analytic prediction on
//! composite topologies, registry completeness, end-to-end determinism.

use phantom_repro::atm::network::{NetworkBuilder, SessionId, TrunkIdx};
use phantom_repro::atm::units::mbps_to_cps;
use phantom_repro::atm::Traffic;
use phantom_repro::core::PhantomAllocator;
use phantom_repro::metrics::fairness::Session;
use phantom_repro::metrics::phantom_prediction;
use phantom_repro::scenarios::registry::{all_experiments, run_experiment, ExperimentOutput};
use phantom_repro::sim::{Engine, SimDuration, SimTime};

/// Build an arbitrary chain topology, simulate it under Phantom, and
/// compare every session's rate with the weighted max-min phantom
/// prediction computed independently in `phantom-metrics`.
fn check_chain(caps_mbps: &[f64], paths: &[Vec<usize>], seed: u64) {
    let mut b = NetworkBuilder::new();
    let switches: Vec<_> = (0..=caps_mbps.len())
        .map(|i| b.switch(&format!("s{i}")))
        .collect();
    for (l, &mbps) in caps_mbps.iter().enumerate() {
        b.trunk(
            switches[l],
            switches[l + 1],
            mbps,
            SimDuration::from_micros(10),
        );
    }
    for path in paths {
        let sw_path: Vec<_> = (path[0]..=path[path.len() - 1] + 1)
            .map(|i| switches[i])
            .collect();
        b.session(&sw_path, Traffic::greedy());
    }
    let mut engine = Engine::new(seed);
    let net = b.build(&mut engine, &mut || Box::new(PhantomAllocator::paper()));
    engine.run_until(SimTime::from_millis(900));

    let caps: Vec<f64> = caps_mbps.iter().map(|&m| mbps_to_cps(m)).collect();
    let sessions: Vec<Session> = paths.iter().cloned().map(Session::on).collect();
    let (pred, _) = phantom_prediction(&caps, &sessions, 5.0);
    for (i, &p) in pred.iter().enumerate() {
        let measured = net.session_rate(&engine, SessionId(i)).mean_after(0.6);
        assert!(
            (measured - p).abs() < 0.18 * p,
            "session {i}: measured {measured:.0} vs predicted {p:.0} cells/s \
             (caps {caps_mbps:?}, paths {paths:?})"
        );
    }
}

#[test]
fn simulation_matches_prediction_single_link_three_sessions() {
    check_chain(&[150.0], &[vec![0], vec![0], vec![0]], 31);
}

#[test]
fn simulation_matches_prediction_two_link_chain() {
    check_chain(&[150.0, 60.0], &[vec![0, 1], vec![0], vec![1]], 32);
}

#[test]
fn simulation_matches_prediction_three_link_heterogeneous_chain() {
    check_chain(
        &[150.0, 100.0, 50.0],
        &[vec![0, 1, 2], vec![0], vec![1], vec![2], vec![1, 2]],
        33,
    );
}

#[test]
fn every_registered_experiment_is_runnable() {
    // Smoke-run the cheapest experiments end to end through the public
    // registry; the full set is exercised by the scenario unit tests and
    // the repro binary.
    for id in ["fig2", "fig12"] {
        let out = run_experiment(id, 7).unwrap();
        match out {
            ExperimentOutput::Figure(r) => {
                assert_eq!(r.id, id);
                assert!(!r.series.is_empty(), "{id} produced no traces");
                assert!(!r.metrics.is_empty(), "{id} produced no metrics");
            }
            ExperimentOutput::Table(_) => panic!("{id} should be a figure"),
        }
    }
}

#[test]
fn registry_covers_designmd_index() {
    let ids: Vec<&str> = all_experiments().iter().map(|e| e.id).collect();
    for id in [
        "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig11", "fig12", "fig14",
        "fig15", "fig16", "fig17", "fig18", "fig19", "fig20", "fig21", "fig22", "table1", "table2",
        "table3", "table4", "table5", "ext1", "ext2", "ext3", "ext4", "ext5", "ext6", "ext7",
    ] {
        assert!(ids.contains(&id), "DESIGN.md experiment {id} missing");
    }
}

#[test]
fn experiments_are_deterministic_across_invocations() {
    let run = || {
        let out = run_experiment("fig2", 99).unwrap();
        match out {
            ExperimentOutput::Figure(r) => r
                .metrics
                .iter()
                .map(|(n, v)| format!("{n}={v}"))
                .collect::<Vec<_>>(),
            _ => unreachable!(),
        }
    };
    assert_eq!(run(), run());
}

#[test]
fn umbrella_reexports_are_wired() {
    // The umbrella crate exposes every subsystem under a stable name.
    let _ = phantom_repro::sim::SimTime::ZERO;
    let _ = phantom_repro::metrics::jain_index(&[1.0]);
    let _ = phantom_repro::core::PhantomConfig::paper();
    let _ = phantom_repro::baselines::Eprca::recommended();
    let _ = phantom_repro::tcp::qdisc::DropTail;
    let _ = phantom_repro::atm::AtmParams::paper();
    assert_eq!(
        phantom_repro::scenarios::registry::all_experiments().len(),
        31
    );
}

#[test]
fn queue_never_exceeds_its_bound_under_phantom() {
    let mut b = NetworkBuilder::new().queue_cap(500);
    let s1 = b.switch("s1");
    let s2 = b.switch("s2");
    b.trunk(s1, s2, 150.0, SimDuration::from_micros(10));
    for _ in 0..8 {
        b.session(&[s1, s2], Traffic::greedy());
    }
    let mut engine = Engine::new(5);
    let net = b.build(&mut engine, &mut || Box::new(PhantomAllocator::paper()));
    engine.run_until(SimTime::from_millis(400));
    let port = net.trunk_port(&engine, TrunkIdx(0));
    assert!(port.queue_high_water() <= 500);
}
