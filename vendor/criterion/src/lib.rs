//! A minimal, dependency-free subset of the `criterion` 0.5 API.
//!
//! The build environment for this repository cannot reach crates.io, so
//! the workspace vendors the benchmarking surface it uses: `Criterion`,
//! `benchmark_group` (with `sample_size` / `warm_up_time` /
//! `measurement_time`), `bench_function`, `Bencher::iter` /
//! `iter_batched`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Statistics are deliberately simple: each benchmark warms up for the
//! configured warm-up window, then runs sampling batches until the
//! measurement window closes, and reports the minimum, median and mean
//! per-iteration time. A substring filter can be passed on the command
//! line exactly like upstream (`cargo bench -- engine`).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measures one benchmark body.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    iters_per_sample: u64,
    deadline: Instant,
}

impl Bencher<'_> {
    /// Time `routine`, called in a loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        loop {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples
                .push(start.elapsed() / self.iters_per_sample as u32);
            if Instant::now() >= self.deadline {
                break;
            }
        }
    }

    /// Time `routine` on inputs built (outside the timed region) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        loop {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
            if Instant::now() >= self.deadline {
                break;
            }
        }
    }
}

/// How much setup output to batch per measurement; accepted for API
/// compatibility (the shim always measures one batch at a time).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

#[derive(Clone)]
struct Config {
    warm_up: Duration,
    measurement: Duration,
    #[allow(dead_code)] // accepted for API compatibility; sampling is time-driven
    sample_size: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            sample_size: 100,
        }
    }
}

/// The benchmark driver.
pub struct Criterion {
    filter: Option<String>,
    config: Config,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` passes the filter as the first free
        // argument; `--bench`/`--test` harness flags are ignored.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            filter,
            config: Config::default(),
        }
    }
}

impl Criterion {
    /// Run one free-standing benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        run_one(id, &self.config, &self.filter, f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            filter: self.filter.clone(),
            config: self.config.clone(),
            _marker: std::marker::PhantomData,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    filter: Option<String>,
    config: Config,
    // tie to the parent so the group cannot outlive the driver, like upstream
    _marker: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Set the target number of samples (accepted for compatibility).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n;
        self
    }

    /// Set the warm-up window.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.config.warm_up = d;
        self
    }

    /// Set the measurement window.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement = d;
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let full = format!("{}/{}", self.name, id.as_ref());
        run_one(&full, &self.config, &self.filter, f);
        self
    }

    /// Finish the group (upstream flushes reports here; the shim prints
    /// as it goes).
    pub fn finish(&mut self) {}
}

fn run_one<F>(id: &str, config: &Config, filter: &Option<String>, mut f: F)
where
    F: FnMut(&mut Bencher<'_>),
{
    if let Some(pat) = filter {
        if !id.contains(pat.as_str()) {
            return;
        }
    }
    // Warm-up pass: run the body with a short deadline and discard.
    let mut warmup = Vec::new();
    let mut b = Bencher {
        samples: &mut warmup,
        iters_per_sample: 1,
        deadline: Instant::now() + config.warm_up,
    };
    f(&mut b);
    // Calibrate iterations per sample so each sample is >= ~100 us.
    let observed = warmup
        .iter()
        .min()
        .copied()
        .unwrap_or(Duration::from_micros(100));
    let iters_per_sample = (Duration::from_micros(100).as_nanos() / observed.as_nanos().max(1))
        .clamp(1, 1_000_000) as u64;
    let mut samples = Vec::new();
    let mut b = Bencher {
        samples: &mut samples,
        iters_per_sample,
        deadline: Instant::now() + config.measurement,
    };
    f(&mut b);
    samples.sort_unstable();
    let min = samples.first().copied().unwrap_or_default();
    let median = samples.get(samples.len() / 2).copied().unwrap_or_default();
    let mean = samples
        .iter()
        .sum::<Duration>()
        .checked_div(samples.len() as u32)
        .unwrap_or_default();
    println!(
        "bench: {id:50} min {:>12} median {:>12} mean {:>12} ({} samples)",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(mean),
        samples.len()
    );
}

fn fmt_ns(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion {
            filter: None,
            config: Config {
                warm_up: Duration::from_millis(5),
                measurement: Duration::from_millis(20),
                sample_size: 10,
            },
        };
        let mut calls = 0u64;
        c.bench_function("smoke", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn groups_filter_by_substring() {
        let mut c = Criterion {
            filter: Some("match-me".into()),
            config: Config {
                warm_up: Duration::from_millis(1),
                measurement: Duration::from_millis(5),
                sample_size: 10,
            },
        };
        let mut matched = false;
        let mut skipped = false;
        {
            let mut g = c.benchmark_group("g");
            g.bench_function("match-me", |b| {
                b.iter_batched(
                    || 2u64,
                    |x| {
                        matched = x == 2;
                        x
                    },
                    BatchSize::SmallInput,
                )
            });
            g.bench_function("other", |b| b.iter(|| skipped = true));
            g.finish();
        }
        assert!(matched);
        assert!(!skipped);
    }
}
