//! A minimal, dependency-free subset of the `proptest` 1.x API.
//!
//! The build environment for this repository cannot reach crates.io, so
//! the workspace vendors the slice of proptest it actually uses: the
//! [`Strategy`] trait with `prop_map` / `prop_flat_map`, range and tuple
//! strategies, [`collection::vec`] / [`collection::btree_set`], `Just`,
//! `any`, `prop_oneof!`, and the `proptest!` / `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! case number and panics with the original assertion message), and the
//! per-case random streams are this crate's own deterministic
//! construction. The number of cases per property defaults to 64 and is
//! overridable with the `PROPTEST_CASES` environment variable.

use std::marker::PhantomData;

/// Deterministic per-case random source (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator fully determined by `seed`.
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x517C_C1B7_2722_0A95,
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

/// Why a single generated case did not produce a verdict.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
    /// A `prop_assert*!` failed with this message.
    Fail(String),
}

impl TestCaseError {
    /// Construct a failure.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }
}

/// FNV-1a, used to give every property its own seed stream.
pub fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    h
}

/// Number of cases each property runs (`PROPTEST_CASES`, default 64).
pub fn cases_from_env() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(64)
}

/// A generator of values of one type.
///
/// Upstream proptest separates strategies from value trees to support
/// shrinking; this subset only ever needs forward generation.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds from it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { source: self, f }
    }

    /// Keep only values satisfying `pred` (rejecting a whole case when a
    /// match cannot be found in a reasonable number of draws).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        _whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { source: self, pred }
    }

    /// Type-erase the strategy so heterogeneous strategies can share a
    /// collection (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(std::rc::Rc::new(self))
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    source: S,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.source.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive draws");
    }
}

/// A type-erased strategy (cheaply cloneable).
pub struct BoxedStrategy<V>(std::rc::Rc<dyn Strategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted choice among same-valued strategies; built by `prop_oneof!`.
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
}

impl<V> Union<V> {
    /// A union of `(weight, strategy)` arms. Weights must not all be zero.
    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        assert!(arms.iter().any(|(w, _)| *w > 0), "all weights are zero");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let total: u64 = self.arms.iter().map(|(w, _)| u64::from(*w)).sum();
        let mut pick = rng.below(total);
        for (w, s) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights exhausted")
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                let v = if span == u64::MAX { rng.next_u64() } else { rng.below(span + 1) };
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9);

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // finite, sign-symmetric, spanning many magnitudes
        let mag = rng.next_f64() * 24.0 - 12.0; // 1e-12 .. 1e12
        let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
        sign * 10f64.powf(mag)
    }
}

/// The strategy behind [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// Collection strategies (`vec`, `btree_set`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;

    /// Inclusive bounds on a generated collection's size.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// `Vec<T>` strategy with element strategy `element` and size in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `BTreeSet<T>` strategy; sizes are best-effort when the element
    /// domain is too small to reach the sampled target.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.sample(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < 64 * target.max(1) {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

/// Everything a test module needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, Strategy,
    };
    /// Upstream-compatible alias: `prop::collection::vec(..)` etc.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Define property tests. See the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { $($rest)* }
    };
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::cases_from_env();
                let test_seed =
                    $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
                let mut skipped = 0u32;
                for case in 0..cases {
                    let mut rng = $crate::TestRng::from_seed(
                        test_seed ^ (u64::from(case)).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| { $body Ok(()) })();
                    match outcome {
                        Ok(()) => {}
                        Err($crate::TestCaseError::Reject) => skipped += 1,
                        Err($crate::TestCaseError::Fail(msg)) => panic!(
                            "proptest case {case}/{cases} failed: {msg}"
                        ),
                    }
                }
                assert!(
                    skipped < cases,
                    "prop_assume! rejected every one of the {cases} cases"
                );
            }
        )*
    };
}

/// Assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($a), stringify!($b), a, b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($a), stringify!($b), a
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    }};
}

/// Skip the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// Weighted (or unweighted) choice among strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..1000 {
            let v = (0u64..10, 0.5f64..2.0, 3usize..=5).generate(&mut rng);
            assert!(v.0 < 10);
            assert!((0.5..2.0).contains(&v.1));
            assert!((3..=5).contains(&v.2));
        }
    }

    #[test]
    fn collections_respect_sizes() {
        let mut rng = TestRng::from_seed(2);
        for _ in 0..200 {
            let v = crate::collection::vec(0u8..4, 2..6).generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            let s = crate::collection::btree_set(0usize..100, 3..=3).generate(&mut rng);
            assert_eq!(s.len(), 3);
        }
    }

    #[test]
    fn oneof_honors_zero_weight_arms() {
        let mut rng = TestRng::from_seed(3);
        let s = prop_oneof![1 => Just(1u32), 0 => Just(2u32)];
        for _ in 0..100 {
            assert_eq!(s.generate(&mut rng), 1);
        }
    }

    proptest! {
        /// The macro itself: patterns, maps, assume and assertion macros.
        #[test]
        fn macro_end_to_end((a, b) in (0u64..50, 0u64..50), v in crate::collection::vec(any::<bool>(), 1..20)) {
            prop_assume!(a != 13);
            prop_assert!(a < 50);
            prop_assert_ne!(a, 13);
            prop_assert_eq!(v.len(), v.iter().filter(|_| true).count());
            let doubled = Just(b).prop_map(|x| x * 2);
            let mut r = TestRng::from_seed(9);
            prop_assert_eq!(doubled.generate(&mut r), b * 2);
        }
    }
}
