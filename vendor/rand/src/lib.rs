//! A minimal, dependency-free subset of the `rand` 0.8 API.
//!
//! The build environment for this repository has no access to crates.io,
//! so the workspace vendors the handful of primitives it actually uses:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods `gen`, `gen_range` and `gen_bool`. The generator is
//! xoshiro256++ seeded through SplitMix64 — the same construction the
//! real `SmallRng` uses on 64-bit targets — so statistical quality is
//! comparable; sequences are *not* bit-identical to upstream `rand`.

/// A source of random `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Values samplable uniformly from an `RngCore` ("standard" distribution).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let u = <$t as Standard>::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}
float_sample_range!(f32, f64);

/// Convenience extension methods; blanket-implemented for every source.
pub trait Rng: RngCore {
    /// Sample from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The small, fast generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++, seeded via SplitMix64 (the construction upstream
    /// `rand` uses for `SmallRng` on 64-bit platforms).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl SmallRng {
        /// The generator's raw xoshiro256++ state. Together with
        /// [`SmallRng::from_state`] this lets a simulator checkpoint and
        /// restore a generator mid-stream: the restored generator emits
        /// exactly the sequence the original would have.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from a state captured by
        /// [`SmallRng::state`].
        pub fn from_state(s: [u64; 4]) -> Self {
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let va: Vec<u64> = (0..16).map(|_| a.gen::<u64>()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.gen::<u64>()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.gen::<u64>()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = r.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let f = r.gen_range(-2.0f64..3.5);
            assert!((-2.0..3.5).contains(&f));
            let i = r.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut r = SmallRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits = {hits}");
    }
}
