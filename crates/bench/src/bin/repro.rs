//! `repro` — regenerate the paper's figures and tables.
//!
//! ```text
//! repro list                 # show every experiment id + description
//! repro all [--seed N]       # run everything, print reports, write CSV
//! repro fig9 table1 [...]    # run selected experiments
//! repro all --csv-dir DIR    # override the artifact directory
//! repro all --steps 60       # width of the ASCII charts (0 = no charts)
//! ```
//!
//! Artifacts land in `target/experiments/<id>.csv` (long format:
//! `series,t,value`) for plotting; the terminal output carries the same
//! series as coarse ASCII charts plus the summary metrics that
//! EXPERIMENTS.md records.

use phantom_bench::DEFAULT_SEED;
use phantom_scenarios::registry::{all_experiments, run_experiment};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    ids: Vec<String>,
    seed: u64,
    seeds: u64,
    csv_dir: PathBuf,
    steps: usize,
    list: bool,
    gnuplot: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        ids: Vec::new(),
        seed: DEFAULT_SEED,
        seeds: 1,
        csv_dir: PathBuf::from("target/experiments"),
        steps: 60,
        list: false,
        gnuplot: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "list" => args.list = true,
            "all" => args
                .ids
                .extend(all_experiments().iter().map(|e| e.id.to_string())),
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                args.seed = v.parse().map_err(|_| format!("bad seed: {v}"))?;
            }
            "--seeds" => {
                let v = it.next().ok_or("--seeds needs a value")?;
                args.seeds = v.parse().map_err(|_| format!("bad seeds: {v}"))?;
                if args.seeds == 0 {
                    return Err("--seeds must be at least 1".into());
                }
            }
            "--csv-dir" => {
                args.csv_dir = PathBuf::from(it.next().ok_or("--csv-dir needs a value")?);
            }
            "--gnuplot" => args.gnuplot = true,
            "--steps" => {
                let v = it.next().ok_or("--steps needs a value")?;
                args.steps = v.parse().map_err(|_| format!("bad steps: {v}"))?;
            }
            id if !id.starts_with('-') => args.ids.push(id.to_string()),
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("usage: repro [list | all | <id>...] [--seed N] [--seeds N] [--csv-dir DIR] [--steps N] [--gnuplot]");
            return ExitCode::FAILURE;
        }
    };

    if args.list || args.ids.is_empty() {
        println!("experiments (run with `repro all` or `repro <id>...`):");
        for e in all_experiments() {
            println!("  {:8} {}", e.id, e.describe);
        }
        return ExitCode::SUCCESS;
    }

    let mut failed = false;
    for id in &args.ids {
        if args.seeds > 1 {
            // Robustness mode: run the experiment across consecutive
            // seeds and print the aggregated metric table.
            let mut runs = Vec::new();
            let start = std::time::Instant::now();
            for s in 0..args.seeds {
                match run_experiment(id, args.seed + s) {
                    Some(phantom_scenarios::ExperimentOutput::Figure(r)) => runs.push(r),
                    Some(phantom_scenarios::ExperimentOutput::Table(_)) => {
                        eprintln!("note: {id} is a table; --seeds aggregates figures only");
                        break;
                    }
                    None => {
                        eprintln!("error: unknown experiment '{id}'");
                        failed = true;
                        break;
                    }
                }
            }
            if !runs.is_empty() {
                let t = phantom_metrics::aggregate_runs(
                    &format!("{id}-x{}", args.seeds),
                    &format!("{id} across {} seeds ({}..{})", args.seeds, args.seed,
                             args.seed + args.seeds - 1),
                    &runs,
                );
                print!("{}", t.render());
                println!(
                    "   [{} × {} seeds in {:.2}s]",
                    id,
                    runs.len(),
                    start.elapsed().as_secs_f64()
                );
                if let Err(e) = t.write_csv(&args.csv_dir) {
                    eprintln!("warning: could not write CSV: {e}");
                }
                println!();
            }
            continue;
        }
        let start = std::time::Instant::now();
        match run_experiment(id, args.seed) {
            Some(out) => {
                print!("{}", out.render(args.steps));
                println!(
                    "   [{} regenerated in {:.2}s, seed {}]",
                    id,
                    start.elapsed().as_secs_f64(),
                    args.seed
                );
                if let Err(e) = out.write_csv(&args.csv_dir) {
                    eprintln!("warning: could not write CSV for {id}: {e}");
                } else {
                    println!("   [csv: {}/{}.csv]", args.csv_dir.display(), id);
                }
                if args.gnuplot {
                    if let phantom_scenarios::ExperimentOutput::Figure(r) = &out {
                        if let Err(e) = r.write_gnuplot(&args.csv_dir) {
                            eprintln!("warning: gnuplot script for {id}: {e}");
                        } else {
                            println!("   [gp:  {}/{}.gp]", args.csv_dir.display(), id);
                        }
                    }
                }
                println!();
            }
            None => {
                eprintln!("error: unknown experiment '{id}' (try `repro list`)");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
