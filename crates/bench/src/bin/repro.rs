//! `repro` — regenerate the paper's figures and tables.
//!
//! ```text
//! repro list                 # show every experiment id + description
//! repro all [--seed N]       # run everything, print reports, write CSV
//! repro fig9 table1 [...]    # run selected experiments
//! repro churn --scenes DIR   # load phantom-scene/1 files as experiments
//! repro all --jobs 8         # fan independent runs across 8 threads
//! repro all --csv-dir DIR    # override the artifact directory
//! repro all --steps 60       # width of the ASCII charts (0 = no charts)
//! repro fig2 --trace-dir DIR # write a JSONL event trace per run
//! repro fig2 --trace-dir DIR --trace-filter macr,drop
//! repro fig2 --analyze       # live phantom-analysis/1 report per run
//! repro fig2 --analyze --check            # gate against committed baselines
//! repro fig2 --analyze --write-baselines  # refresh the committed baselines
//! repro all --bench --compare BENCH_phantom.json   # events/sec delta gate
//! repro --scenes DIR --shard-scaling metro-100k    # events/s at --shards 1/2/4
//! ```
//!
//! Artifacts land in `target/experiments/<id>.csv` (long format:
//! `series,t,value`) for plotting; the terminal output carries the same
//! series as coarse ASCII charts plus the summary metrics that
//! EXPERIMENTS.md records. Every invocation that runs experiments also
//! writes a machine-readable performance record (`BENCH_phantom.json` by
//! default; see `--bench-json`) with runs/sec, events/sec and per-run
//! wall time.
//!
//! Runs are pure functions of `(experiment, seed)`, so `--jobs N` changes
//! only wall-clock time: reports and CSVs are byte-identical to `--jobs 1`.

use phantom_analyze::{check_report, parse_baseline, render_baseline};
use phantom_bench::compare::{compare, parse_bench_json, EXIT_BENCH_REGRESSION};
use phantom_bench::{logger, DEFAULT_SEED};
use phantom_metrics::manifest::{BENCH_SCHEMA, CSV_SCHEMA};
use phantom_metrics::{BenchRecord, Manifest, RunRecord};
use phantom_scenarios::registry::{all_experiments, dynamic_experiments, suggest_id};
use phantom_scenarios::sweep::{run_sweep_with, SweepJob, SweepOptions, SweepRun};
use phantom_scenarios::ExperimentOutput;
use phantom_scene::{load_scene_dir, register_scene, scale_scene, shard_scale_scene};
use phantom_sim::probe::KindSet;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    ids: Vec<String>,
    all: bool,
    scenes: Option<PathBuf>,
    seed: u64,
    seeds: u64,
    jobs: usize,
    csv_dir: PathBuf,
    bench_json: PathBuf,
    steps: usize,
    list: bool,
    gnuplot: bool,
    trace_dir: Option<PathBuf>,
    trace_filter: KindSet,
    analyze: bool,
    check: bool,
    write_baselines: bool,
    baseline_dir: PathBuf,
    window_secs: f64,
    compare: Option<PathBuf>,
    bench_threshold_pct: f64,
    scale: Option<String>,
    shards: usize,
    shard_scaling: Option<String>,
    profile_dir: Option<PathBuf>,
    status_file: Option<PathBuf>,
    heartbeat_secs: Option<f64>,
    post_mortem_dir: Option<PathBuf>,
    post_mortem_depth: Option<usize>,
    level: logger::Level,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        ids: Vec::new(),
        all: false,
        scenes: None,
        seed: DEFAULT_SEED,
        seeds: 1,
        jobs: 1,
        csv_dir: PathBuf::from("target/experiments"),
        bench_json: PathBuf::from("BENCH_phantom.json"),
        steps: 60,
        list: false,
        gnuplot: false,
        trace_dir: None,
        trace_filter: KindSet::ALL,
        analyze: false,
        check: false,
        write_baselines: false,
        baseline_dir: PathBuf::from("crates/baselines/analysis"),
        window_secs: phantom_analyze::DEFAULT_WINDOW_SECS,
        compare: None,
        bench_threshold_pct: 10.0,
        scale: None,
        shards: 0,
        shard_scaling: None,
        profile_dir: None,
        status_file: None,
        heartbeat_secs: None,
        post_mortem_dir: None,
        post_mortem_depth: None,
        level: logger::Level::Normal,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "list" => args.list = true,
            "all" => {
                args.all = true;
                args.ids
                    .extend(all_experiments().iter().map(|e| e.id.to_string()));
            }
            "--scenes" => {
                args.scenes = Some(PathBuf::from(it.next().ok_or("--scenes needs a value")?));
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                args.seed = v.parse().map_err(|_| format!("bad seed: {v}"))?;
            }
            "--seeds" => {
                let v = it.next().ok_or("--seeds needs a value")?;
                args.seeds = v.parse().map_err(|_| format!("bad seeds: {v}"))?;
                if args.seeds == 0 {
                    return Err("--seeds must be at least 1".into());
                }
            }
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                args.jobs = v.parse().map_err(|_| format!("bad jobs: {v}"))?;
                if args.jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
            }
            "--csv-dir" => {
                args.csv_dir = PathBuf::from(it.next().ok_or("--csv-dir needs a value")?);
            }
            "--bench-json" => {
                args.bench_json = PathBuf::from(it.next().ok_or("--bench-json needs a value")?);
            }
            // The bench record is always written; `--bench` is accepted so
            // the documented `repro all --bench --compare ...` invocation
            // reads naturally.
            "--bench" => {}
            "--compare" => {
                args.compare = Some(PathBuf::from(it.next().ok_or("--compare needs a value")?));
            }
            "--bench-threshold" => {
                let v = it.next().ok_or("--bench-threshold needs a value (%)")?;
                match v.parse::<f64>() {
                    Ok(pct) if pct >= 0.0 => args.bench_threshold_pct = pct,
                    _ => return Err(format!("bad threshold (%): {v}")),
                }
            }
            "--scale" => {
                args.scale = Some(it.next().ok_or("--scale needs a scene id")?);
            }
            "--shards" => {
                let v = it.next().ok_or("--shards needs a value")?;
                args.shards = v.parse().map_err(|_| format!("bad shard count: {v}"))?;
            }
            "--shard-scaling" => {
                args.shard_scaling = Some(it.next().ok_or("--shard-scaling needs a scene id")?);
            }
            "--profile-dir" => {
                args.profile_dir = Some(PathBuf::from(
                    it.next().ok_or("--profile-dir needs a value")?,
                ));
            }
            "--status-file" => {
                args.status_file = Some(PathBuf::from(
                    it.next().ok_or("--status-file needs a value")?,
                ));
            }
            "--heartbeat" => {
                let v = it.next().ok_or("--heartbeat needs a value (secs)")?;
                match v.parse::<f64>() {
                    Ok(s) if s > 0.0 => args.heartbeat_secs = Some(s),
                    _ => return Err(format!("bad heartbeat (secs): {v}")),
                }
            }
            "--post-mortem" => {
                args.post_mortem_dir = Some(PathBuf::from(
                    it.next().ok_or("--post-mortem needs a directory")?,
                ));
            }
            "--post-mortem-depth" => {
                let v = it.next().ok_or("--post-mortem-depth needs a value")?;
                match v.parse::<usize>() {
                    Ok(n) if n >= 1 => args.post_mortem_depth = Some(n),
                    _ => return Err(format!("bad post-mortem depth: {v}")),
                }
            }
            "-v" | "--verbose" => args.level = logger::Level::Verbose,
            "-q" | "--quiet" => args.level = logger::Level::Quiet,
            "--gnuplot" => args.gnuplot = true,
            "--trace-dir" => {
                args.trace_dir = Some(PathBuf::from(it.next().ok_or("--trace-dir needs a value")?));
            }
            "--trace-filter" => {
                let v = it.next().ok_or("--trace-filter needs a value")?;
                args.trace_filter = KindSet::parse(&v)?;
            }
            "--steps" => {
                let v = it.next().ok_or("--steps needs a value")?;
                args.steps = v.parse().map_err(|_| format!("bad steps: {v}"))?;
            }
            "--analyze" => args.analyze = true,
            "--check" => {
                args.analyze = true;
                args.check = true;
            }
            "--write-baselines" => {
                args.analyze = true;
                args.write_baselines = true;
            }
            "--baseline-dir" => {
                args.baseline_dir = PathBuf::from(it.next().ok_or("--baseline-dir needs a value")?);
            }
            "--window" => {
                let v = it.next().ok_or("--window needs a value (ms)")?;
                match v.parse::<f64>() {
                    Ok(ms) if ms > 0.0 => args.window_secs = ms / 1e3,
                    _ => return Err(format!("bad window (ms): {v}")),
                }
            }
            id if !id.starts_with('-') => args.ids.push(id.to_string()),
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(args)
}

/// Print one single-seed run the way the serial harness always has.
fn report_single(run: &SweepRun, args: &Args) -> bool {
    let Some(out) = &run.output else {
        let hint = suggest_id(&run.job.id)
            .map(|s| format!(" — did you mean `{s}`?"))
            .unwrap_or_default();
        logger::error(&format!(
            "unknown experiment '{}'{hint} (try `repro list`)",
            run.job.id
        ));
        return false;
    };
    print!("{}", out.render(args.steps));
    println!(
        "   [{} regenerated in {:.2}s, seed {}, {} events, {} drops, {} retx, peak queue {}]",
        run.job.id,
        run.wall_secs,
        run.job.seed,
        run.events,
        run.counters.drops,
        run.counters.retransmits,
        run.counters.queue_peak
    );
    let manifest = Manifest::new(CSV_SCHEMA, &run.job.id, run.job.seed, &run.job.id);
    if let Err(e) = out.write_csv_with_manifest(&args.csv_dir, &manifest.to_json()) {
        logger::warn(&format!("could not write CSV for {}: {e}", run.job.id));
    } else {
        println!("   [csv: {}/{}.csv]", args.csv_dir.display(), run.job.id);
    }
    if args.gnuplot {
        if let ExperimentOutput::Figure(r) = out {
            if let Err(e) = r.write_gnuplot(&args.csv_dir) {
                logger::warn(&format!("gnuplot script for {}: {e}", run.job.id));
            } else {
                println!("   [gp:  {}/{}.gp]", args.csv_dir.display(), run.job.id);
            }
        }
    }
    println!();
    true
}

/// Aggregate one experiment's multi-seed batch and print the metric table.
fn report_multi_seed(id: &str, runs: Vec<SweepRun>, args: &Args) -> bool {
    let wall: f64 = runs.iter().map(|r| r.wall_secs).sum();
    let mut figures = Vec::new();
    for run in runs {
        match run.output {
            Some(ExperimentOutput::Figure(r)) => figures.push(r),
            Some(ExperimentOutput::Table(_)) => {
                logger::note(&format!("{id} is a table; --seeds aggregates figures only"));
                break;
            }
            None => {
                let hint = suggest_id(id)
                    .map(|s| format!(" — did you mean `{s}`?"))
                    .unwrap_or_default();
                logger::error(&format!(
                    "unknown experiment '{id}'{hint} (try `repro list`)"
                ));
                return false;
            }
        }
    }
    if !figures.is_empty() {
        let t = phantom_metrics::aggregate_runs(
            &format!("{id}-x{}", args.seeds),
            &format!(
                "{id} across {} seeds ({}..{})",
                args.seeds,
                args.seed,
                args.seed + args.seeds - 1
            ),
            &figures,
        );
        print!("{}", t.render());
        println!("   [{} × {} seeds in {:.2}s]", id, figures.len(), wall);
        let manifest = Manifest::new(
            CSV_SCHEMA,
            &t.id,
            args.seed,
            &format!("{id};seeds={}", args.seeds),
        );
        if let Err(e) = t.write_csv_with_manifest(&args.csv_dir, Some(&manifest.to_json())) {
            logger::warn(&format!("could not write CSV: {e}"));
        }
        println!();
    }
    true
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            logger::error(&e);
            eprintln!(
                "usage: repro [list | all | <id>...] [--scenes DIR] [--seed N] [--seeds N] \
                 [--jobs N] [--csv-dir DIR] [--bench-json PATH] [--steps N] [--gnuplot] \
                 [--trace-dir DIR] [--trace-filter KINDS] \
                 [--analyze] [--check] [--write-baselines] [--baseline-dir DIR] [--window MS] \
                 [--bench] [--compare BASELINE.json] [--bench-threshold PCT] \
                 [--scale SCENE_ID] [--shards N] [--shard-scaling SCENE_ID] \
                 [--profile-dir DIR] [--status-file PATH] \
                 [--heartbeat SECS] [--post-mortem DIR] [--post-mortem-depth N] [-v|-q]"
            );
            return ExitCode::FAILURE;
        }
    };
    logger::set_level(args.level);

    // Load scene files first: they register as dynamic experiments, so
    // everything downstream — `list`, `all`, the sweep — sees them as
    // first-class ids (shadowing same-named built-ins). A copy is kept
    // for the `--scale` probe, which needs the scene value itself.
    let mut loaded_scenes = Vec::new();
    if let Some(dir) = &args.scenes {
        let scenes = match load_scene_dir(dir) {
            Ok(s) => s,
            Err(e) => {
                logger::error(&e);
                return ExitCode::FAILURE;
            }
        };
        for scene in scenes {
            loaded_scenes.push(scene.clone());
            register_scene(scene);
        }
    }
    let mut args = args;
    if args.all {
        for (id, _) in dynamic_experiments() {
            if !args.ids.contains(&id) {
                args.ids.push(id);
            }
        }
    }
    let args = args;

    if args.list || (args.ids.is_empty() && args.scale.is_none() && args.shard_scaling.is_none()) {
        println!("experiments (run with `repro all` or `repro <id>...`):");
        for e in all_experiments() {
            println!("  {:8} {}", e.id, e.describe);
        }
        let dynamic = dynamic_experiments();
        if !dynamic.is_empty() {
            println!();
            println!("scenes (loaded via --scenes, shadowing same-named built-ins):");
            for (id, describe) in dynamic {
                println!("  {id:8} {describe}");
            }
        }
        return ExitCode::SUCCESS;
    }

    // One job per (experiment, seed), id-major so each id's seeds are a
    // contiguous chunk of the (order-preserving) sweep result.
    let jobs: Vec<SweepJob> = args
        .ids
        .iter()
        .flat_map(|id| {
            (0..args.seeds).map(move |s| SweepJob {
                id: id.clone(),
                seed: args.seed + s,
            })
        })
        .collect();

    let opts = SweepOptions {
        trace_dir: args.trace_dir.clone(),
        trace_filter: args.trace_filter,
        analyze_window: args.analyze.then_some(args.window_secs),
        shards: args.shards,
        profile_dir: args.profile_dir.clone(),
        status_file: args.status_file.clone(),
        heartbeat_secs: args.heartbeat_secs,
        post_mortem_dir: args.post_mortem_dir.clone(),
        post_mortem_depth: args.post_mortem_depth,
    };
    logger::info(&format!(
        "dispatching {} run(s) on {} thread(s)",
        jobs.len(),
        args.jobs
    ));
    let batch_start = std::time::Instant::now();
    let runs = run_sweep_with(&jobs, args.jobs, &opts);
    let total_wall_secs = batch_start.elapsed().as_secs_f64();
    let schedule_past_total: u64 = runs.iter().map(|r| r.counters.schedule_past).sum();

    // The config that determines this batch byte-for-byte: which
    // experiments, the base seed, and how many seeds per experiment.
    let config = format!(
        "ids={};seed={};seeds={}",
        args.ids.join(","),
        args.seed,
        args.seeds
    );
    let mut bench = BenchRecord {
        manifest: Manifest::new(BENCH_SCHEMA, "repro", args.seed, &config),
        jobs: args.jobs,
        calendar: phantom_sim::CALENDAR.to_string(),
        total_wall_secs,
        runs: runs
            .iter()
            .filter(|r| r.output.is_some())
            .map(|r| RunRecord {
                id: r.job.id.clone(),
                seed: r.job.seed,
                wall_secs: r.wall_secs,
                events: r.events,
                drops: r.counters.drops,
                retransmits: r.counters.retransmits,
                queue_peak: r.counters.queue_peak,
            })
            .collect(),
        scale: None,
        shard_scaling: Vec::new(),
    };

    // Analysis artifacts and the baseline gate. Reports are written per
    // run; `--check` collects every violation before failing so CI logs
    // name all regressed metrics, not just the first.
    let mut check_failures: Vec<String> = Vec::new();
    if args.analyze {
        for run in &runs {
            let Some(report) = &run.analysis else {
                continue;
            };
            if let Err(e) = std::fs::create_dir_all(&args.csv_dir) {
                logger::warn(&format!("{}: {e}", args.csv_dir.display()));
            }
            let rpath = args
                .csv_dir
                .join(format!("{}-{}-analysis.json", run.job.id, run.job.seed));
            match std::fs::write(&rpath, report.to_json()) {
                Ok(()) => println!("   [analysis: {}]", rpath.display()),
                Err(e) => logger::warn(&format!("could not write {}: {e}", rpath.display())),
            }
            if args.write_baselines {
                if let Err(e) = std::fs::create_dir_all(&args.baseline_dir) {
                    logger::warn(&format!("{}: {e}", args.baseline_dir.display()));
                }
                let bpath = args.baseline_dir.join(format!("{}.json", run.job.id));
                match std::fs::write(&bpath, render_baseline(report, &run.job.id)) {
                    Ok(()) => println!("   [baseline written: {}]", bpath.display()),
                    Err(e) => logger::warn(&format!("could not write {}: {e}", bpath.display())),
                }
            }
            if args.check {
                let bpath = args.baseline_dir.join(format!("{}.json", run.job.id));
                match std::fs::read_to_string(&bpath) {
                    Ok(text) => match parse_baseline(&text) {
                        Ok(baseline) => {
                            let failures = check_report(report, &baseline);
                            if failures.is_empty() {
                                println!(
                                    "   [check: {} ok against {} ({} metrics)]",
                                    run.job.id,
                                    bpath.display(),
                                    baseline.entries.len()
                                );
                            }
                            check_failures.extend(failures);
                        }
                        Err(e) => check_failures.push(format!("{}: {e}", bpath.display())),
                    },
                    Err(_) => println!(
                        "   [check: no baseline for {} at {}, skipped]",
                        run.job.id,
                        bpath.display()
                    ),
                }
            }
        }
    }

    let mut failed = false;
    let mut it = runs.into_iter();
    for id in &args.ids {
        let id_runs: Vec<SweepRun> = it.by_ref().take(args.seeds as usize).collect();
        let ok = if args.seeds > 1 {
            report_multi_seed(id, id_runs, &args)
        } else {
            report_single(&id_runs[0], &args)
        };
        failed |= !ok;
    }

    // The scale probe runs serially after the sweep so its RSS delta is
    // not polluted by concurrent workers' allocations.
    if let Some(scene_id) = &args.scale {
        match loaded_scenes.iter().find(|s| s.id == *scene_id) {
            Some(scene) => {
                let (record, arenas) = scale_scene(scene, args.seed);
                println!(
                    "[scale: {} — {} sessions / {} nodes, {} events in {:.2}s ({:.0} events/s), {} drops, peak queue {}]",
                    record.scene,
                    record.sessions,
                    record.nodes,
                    record.events,
                    record.wall_secs,
                    record.events_per_sec(),
                    record.drops,
                    record.queue_peak
                );
                let rss = match record.rss_delta_bytes {
                    Some(b) => format!("rss +{:.1} MB", b as f64 / 1e6),
                    None => {
                        logger::warn(
                            "rss unreadable on this platform (/proc/self/status); \
                             per-session cost falls back to arena accounting",
                        );
                        "rss n/a".to_string()
                    }
                };
                println!(
                    "[scale: {}, arenas {:.1} MB — {:.0} bytes/session, {:.0} sessions/GB]",
                    rss,
                    record.arena_bytes as f64 / 1e6,
                    record.bytes_per_session(),
                    record.sessions_per_gb()
                );
                for a in &arenas {
                    println!(
                        "   [arena {}: {} nodes, {:.1} MB]",
                        a.type_name,
                        a.nodes,
                        a.bytes as f64 / 1e6
                    );
                }
                bench.scale = Some(record);
            }
            None => {
                logger::error(&format!(
                    "--scale {scene_id}: no such scene (load its directory with --scenes)"
                ));
                failed = true;
            }
        }
    }

    // The shard-scaling probe: the same scene at --shards 1, 2 and 4,
    // serially so the points don't contend with each other. Advisory
    // numbers — speedup depends on the machine's core count — but the
    // event counts must agree exactly, which IS a hard check.
    if let Some(scene_id) = &args.shard_scaling {
        match loaded_scenes.iter().find(|s| s.id == *scene_id) {
            Some(scene) => {
                let mut base_events = None;
                for shards in [1usize, 2, 4] {
                    let p = shard_scale_scene(scene, args.seed, shards);
                    println!(
                        "[shard-scaling: {} at --shards {} — {} events in {:.2}s ({:.0} events/s)]",
                        p.scene,
                        p.shards,
                        p.events,
                        p.wall_secs,
                        p.events_per_sec()
                    );
                    match base_events {
                        None => base_events = Some(p.events),
                        Some(b) if b != p.events => {
                            logger::error(&format!(
                                "shard-scaling: event count diverged across shard counts \
                                 ({b} at --shards 1 vs {} at --shards {shards}) — \
                                 determinism violation",
                                p.events
                            ));
                            failed = true;
                        }
                        Some(_) => {}
                    }
                    bench.shard_scaling.push(p);
                }
            }
            None => {
                logger::error(&format!(
                    "--shard-scaling {scene_id}: no such scene (load its directory with --scenes)"
                ));
                failed = true;
            }
        }
    }

    if !bench.runs.is_empty() || bench.scale.is_some() || !bench.shard_scaling.is_empty() {
        match bench.write(&args.bench_json) {
            Ok(()) => println!(
                "[bench: {} — {} runs in {:.2}s on {} thread(s), {:.0} events/s]",
                args.bench_json.display(),
                bench.runs.len(),
                total_wall_secs,
                args.jobs,
                bench.events_per_sec()
            ),
            Err(e) => logger::warn(&format!(
                "could not write {}: {e}",
                args.bench_json.display()
            )),
        }
    }

    // A clamped past-time send is survivable but means a scenario is
    // scheduling incorrectly — surface it next to the bench numbers so a
    // "faster" run that cheated the calendar is never celebrated.
    if schedule_past_total > 0 {
        logger::warn(&format!(
            "{schedule_past_total} send(s) clamped from the past (schedule_past telemetry)"
        ));
    }

    let mut bench_regressed = false;
    if let Some(path) = &args.compare {
        match std::fs::read_to_string(path) {
            Ok(text) => match parse_bench_json(&text) {
                Ok(baseline) => {
                    let cmp = compare(&bench, &baseline);
                    let rendered = cmp.render(args.bench_threshold_pct);
                    print!("{rendered}");
                    if let Some(cal) = &baseline.calendar {
                        if *cal != phantom_sim::CALENDAR {
                            println!("  [calendar changed: {cal} -> {}]", phantom_sim::CALENDAR);
                        }
                    }
                    let artifact = args.csv_dir.join("bench-compare.txt");
                    if std::fs::create_dir_all(&args.csv_dir).is_ok() {
                        if let Err(e) = std::fs::write(&artifact, &rendered) {
                            logger::warn(&format!("could not write {}: {e}", artifact.display()));
                        } else {
                            println!("  [comparison: {}]", artifact.display());
                        }
                    }
                    if cmp.regressed(args.bench_threshold_pct) {
                        logger::error(&format!(
                            "aggregate events/sec regressed more than {}% vs {}",
                            args.bench_threshold_pct,
                            path.display()
                        ));
                        bench_regressed = true;
                    }
                }
                Err(e) => {
                    logger::error(&format!("could not parse {}: {e}", path.display()));
                    failed = true;
                }
            },
            Err(e) => {
                logger::error(&format!("could not read {}: {e}", path.display()));
                failed = true;
            }
        }
    }

    if !check_failures.is_empty() {
        for f in &check_failures {
            logger::error(&format!("check failed: {f}"));
        }
        logger::error(&format!(
            "{} metric(s) outside their baseline tolerance",
            check_failures.len()
        ));
        failed = true;
    }

    if failed {
        ExitCode::FAILURE
    } else if bench_regressed {
        ExitCode::from(EXIT_BENCH_REGRESSION)
    } else {
        ExitCode::SUCCESS
    }
}
