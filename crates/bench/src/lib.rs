//! # phantom-bench — the reproduction harness
//!
//! Two entry points:
//!
//! * the **`repro` binary** (`cargo run -p phantom-bench --release --bin
//!   repro -- all`): regenerates every figure and table of the paper —
//!   prints the series/rows the paper reports and writes CSV artifacts
//!   under `target/experiments/`.
//! * the **criterion benches** (`cargo bench -p phantom-bench`):
//!   `benches/figures.rs` times the end-to-end regeneration of each
//!   figure/table (one benchmark per experiment id), and
//!   `benches/micro.rs` times the per-cell / per-packet hot paths of
//!   every allocator and queue discipline plus the raw event-loop
//!   throughput of the simulation kernel.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compare;
pub mod logger;

use phantom_scenarios::registry::{all_experiments, Experiment};

/// The default seed used by the harness (any seed reproduces the same
/// qualitative shapes; this one matches EXPERIMENTS.md).
pub const DEFAULT_SEED: u64 = 1996;

/// All experiments, re-exported for the benches.
pub fn experiments() -> Vec<Experiment> {
    all_experiments()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_sees_every_experiment() {
        assert_eq!(experiments().len(), 31);
    }
}
