//! Tiny leveled stderr logger for the harness binaries.
//!
//! The `repro` binary used to scatter bare `eprintln!("warning: …")`
//! calls; this module puts them behind one process-wide level so
//! `--quiet` CI invocations and `-v` interactive ones share the call
//! sites. Deliberately minimal — no timestamps, no targets, no
//! dependency — because the harness needs exactly three behaviors:
//! errors always print, warnings/notes print unless quieted, and info
//! chatter (heartbeats, per-artifact confirmations) prints only when
//! asked for.

use std::sync::atomic::{AtomicU8, Ordering};

/// Verbosity of the process, lowest to highest.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Errors only (`-q`).
    Quiet = 0,
    /// Errors, warnings and notes — the default.
    Normal = 1,
    /// Everything, including heartbeat/info chatter (`-v`).
    Verbose = 2,
}

static LEVEL: AtomicU8 = AtomicU8::new(Level::Normal as u8);

/// Set the process-wide level (normally once, from argument parsing).
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current process-wide level.
pub fn level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        0 => Level::Quiet,
        1 => Level::Normal,
        _ => Level::Verbose,
    }
}

/// True when info-level chatter should print (`-v`).
pub fn verbose() -> bool {
    level() >= Level::Verbose
}

/// Print an error to stderr. Never suppressed: an error accompanies a
/// failure exit code, and a silent failure is worse than a noisy one.
pub fn error(msg: &str) {
    eprintln!("error: {msg}");
}

/// Print a warning to stderr unless the process is quieted.
pub fn warn(msg: &str) {
    if level() >= Level::Normal {
        eprintln!("warning: {msg}");
    }
}

/// Print a note to stderr unless the process is quieted.
pub fn note(msg: &str) {
    if level() >= Level::Normal {
        eprintln!("note: {msg}");
    }
}

/// Print info chatter to stderr, only at verbose level.
pub fn info(msg: &str) {
    if verbose() {
        eprintln!("{msg}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_and_round_trip() {
        assert!(Level::Quiet < Level::Normal && Level::Normal < Level::Verbose);
        let prev = level();
        set_level(Level::Verbose);
        assert!(verbose());
        assert_eq!(level(), Level::Verbose);
        set_level(Level::Quiet);
        assert!(!verbose());
        assert_eq!(level(), Level::Quiet);
        set_level(prev);
    }
}
