//! Comparing two `BENCH_phantom.json` recordings.
//!
//! `repro --compare <baseline.json>` reads a previously committed bench
//! record, lines the current batch up against it run-by-run, and prints
//! per-scenario events/sec deltas. A drop past the configured relative
//! threshold is a *bench regression*: the harness exits with
//! [`EXIT_BENCH_REGRESSION`] so CI can gate on it (advisorily) without
//! conflating it with a correctness failure.
//!
//! The reader is line-oriented on purpose: `BenchRecord::to_json` emits
//! one flat object per run line, so each line parses with the same
//! dependency-free scalar-object parser the trace analyzer uses.
//! `phantom-bench/2` (no `calendar` field), `/3` (no `scale` object),
//! `/4` (no `shard_scaling` array) and `/5` baselines are all accepted —
//! comparing across the calendar change is the whole point of the gate,
//! and the scale probe gates only when both recordings carry one for the
//! same scene. Shard-scaling points are compared and rendered but never
//! gate: parallel speedup depends on the machine's core count, which CI
//! runners do not pin.

use phantom_analyze::jsonl::{parse_flat_object, Scalar};
use phantom_metrics::BenchRecord;
use std::fmt::Write as _;

/// Process exit code for "the benchmark regressed past the threshold".
/// Distinct from `1` (usage/correctness failure) so CI and scripts can
/// tell "the code is wrong" from "the code got slower".
pub const EXIT_BENCH_REGRESSION: u8 = 4;

/// One run parsed out of a baseline bench record.
#[derive(Clone, Debug)]
pub struct BaselineRun {
    /// Experiment id.
    pub id: String,
    /// Master seed.
    pub seed: u64,
    /// Events per wall-clock second in the baseline recording.
    pub events_per_sec: f64,
    /// Events dispatched in the baseline recording.
    pub events: u64,
}

/// The scale probe parsed out of a `phantom-bench/4` baseline.
#[derive(Clone, Debug)]
pub struct BaselineScale {
    /// Scene id of the probe.
    pub scene: String,
    /// Events per wall-clock second in the baseline probe.
    pub events_per_sec: f64,
    /// Sessions per gigabyte in the baseline probe.
    pub sessions_per_gb: f64,
}

/// One shard-scaling point parsed out of a `phantom-bench/5` baseline.
#[derive(Clone, Debug)]
pub struct BaselineShardPoint {
    /// Shard count of the point.
    pub shards: u64,
    /// Scene id of the probe.
    pub scene: String,
    /// Events per wall-clock second at this shard count.
    pub events_per_sec: f64,
    /// Events dispatched — identical across shard counts by contract.
    pub events: u64,
}

/// The subset of a `BENCH_phantom.json` document the comparison needs.
#[derive(Clone, Debug)]
pub struct BenchBaseline {
    /// Schema tag of the baseline document.
    pub schema: String,
    /// Calendar tag, if the baseline is new enough to carry one.
    pub calendar: Option<String>,
    /// Aggregate events per second across the baseline batch.
    pub events_per_sec: f64,
    /// Per-run baseline numbers.
    pub runs: Vec<BaselineRun>,
    /// Scale probe, if the baseline is a `/4` record that carries one.
    pub scale: Option<BaselineScale>,
    /// Shard-scaling points, if the baseline is a `/5` record that
    /// carries them; empty for older baselines.
    pub shard_scaling: Vec<BaselineShardPoint>,
}

fn top_level_value(line: &str, key: &str) -> Option<String> {
    let rest = line.trim_start().strip_prefix(&format!("\"{key}\":"))?;
    Some(
        rest.trim()
            .trim_end_matches(',')
            .trim_matches('"')
            .to_string(),
    )
}

/// Parse a bench record document written by this workspace's
/// `BenchRecord::write` (any schema version ≥ 2).
pub fn parse_bench_json(text: &str) -> Result<BenchBaseline, String> {
    let mut schema = None;
    let mut calendar = None;
    let mut events_per_sec = None;
    let mut runs = Vec::new();
    let mut scale = None;
    let mut shard_scaling = Vec::new();
    for line in text.lines() {
        let t = line.trim();
        if let Some(obj) = t.strip_prefix("\"scale\":").map(str::trim) {
            // In a `/5` document with a `shard_scaling` probe the scale
            // line is no longer last, so it carries a trailing comma.
            let obj = obj.trim_end_matches(',');
            let pairs =
                parse_flat_object(obj).map_err(|e| format!("bad scale line `{obj}`: {e}"))?;
            let mut scene = None;
            let mut eps = None;
            let mut spg = None;
            for (k, v) in pairs {
                match (k.as_str(), v) {
                    ("scene", Scalar::Str(s)) => scene = Some(s),
                    ("events_per_sec", Scalar::Num(n)) => eps = Some(n),
                    ("sessions_per_gb", Scalar::Num(n)) => spg = Some(n),
                    _ => {}
                }
            }
            scale = Some(BaselineScale {
                scene: scene.ok_or("scale line missing `scene`")?,
                events_per_sec: eps.ok_or("scale line missing `events_per_sec`")?,
                sessions_per_gb: spg.ok_or("scale line missing `sessions_per_gb`")?,
            });
        } else if t.starts_with("{\"shards\":") {
            let obj = t.trim_end_matches(',');
            let pairs =
                parse_flat_object(obj).map_err(|e| format!("bad shard line `{obj}`: {e}"))?;
            let mut shards = None;
            let mut scene = None;
            let mut eps = None;
            let mut events = None;
            for (k, v) in pairs {
                match (k.as_str(), v) {
                    ("shards", Scalar::Num(n)) => shards = Some(n as u64),
                    ("scene", Scalar::Str(s)) => scene = Some(s),
                    ("events_per_sec", Scalar::Num(n)) => eps = Some(n),
                    ("events", Scalar::Num(n)) => events = Some(n as u64),
                    _ => {}
                }
            }
            shard_scaling.push(BaselineShardPoint {
                shards: shards.ok_or("shard line missing `shards`")?,
                scene: scene.ok_or("shard line missing `scene`")?,
                events_per_sec: eps.ok_or("shard line missing `events_per_sec`")?,
                events: events.ok_or("shard line missing `events`")?,
            });
        } else if t.starts_with("{\"id\":") || t.starts_with("{ \"id\":") {
            let obj = t.trim_end_matches(',');
            let pairs = parse_flat_object(obj).map_err(|e| format!("bad run line `{obj}`: {e}"))?;
            let mut id = None;
            let mut seed = None;
            let mut eps = None;
            let mut events = None;
            for (k, v) in pairs {
                match (k.as_str(), v) {
                    ("id", Scalar::Str(s)) => id = Some(s),
                    ("seed", Scalar::Num(n)) => seed = Some(n as u64),
                    ("events_per_sec", Scalar::Num(n)) => eps = Some(n),
                    ("events", Scalar::Num(n)) => events = Some(n as u64),
                    _ => {}
                }
            }
            runs.push(BaselineRun {
                id: id.ok_or("run line missing `id`")?,
                seed: seed.ok_or("run line missing `seed`")?,
                events_per_sec: eps.ok_or("run line missing `events_per_sec`")?,
                events: events.ok_or("run line missing `events`")?,
            });
        } else if schema.is_none() {
            if let Some(v) = top_level_value(line, "schema") {
                schema = Some(v);
            }
        }
        if calendar.is_none() && !t.starts_with('{') {
            if let Some(v) = top_level_value(line, "calendar") {
                calendar = Some(v);
            }
        }
        if events_per_sec.is_none() && !t.starts_with('{') {
            if let Some(v) = top_level_value(line, "events_per_sec") {
                events_per_sec = v.parse::<f64>().ok();
            }
        }
    }
    Ok(BenchBaseline {
        schema: schema.ok_or("no `schema` key found")?,
        calendar,
        events_per_sec: events_per_sec.ok_or("no aggregate `events_per_sec` found")?,
        runs,
        scale,
        shard_scaling,
    })
}

/// Events/sec delta for one `(id, seed)` present in both recordings.
#[derive(Clone, Debug)]
pub struct RunDelta {
    /// Experiment id.
    pub id: String,
    /// Master seed.
    pub seed: u64,
    /// Baseline events/sec.
    pub base: f64,
    /// Current events/sec.
    pub cur: f64,
    /// `cur / base`.
    pub ratio: f64,
    /// True when the event *count* changed — a determinism red flag far
    /// more serious than any throughput delta.
    pub events_changed: bool,
}

/// Scale-probe deltas when both recordings probed the same scene.
#[derive(Clone, Debug)]
pub struct ScaleDelta {
    /// Scene id probed by both recordings.
    pub scene: String,
    /// Baseline probe events/sec.
    pub base_events_per_sec: f64,
    /// Current probe events/sec.
    pub cur_events_per_sec: f64,
    /// Baseline sessions per gigabyte.
    pub base_sessions_per_gb: f64,
    /// Current sessions per gigabyte.
    pub cur_sessions_per_gb: f64,
}

impl ScaleDelta {
    /// `cur / base` throughput ratio of the probe.
    pub fn throughput_ratio(&self) -> f64 {
        if self.base_events_per_sec > 0.0 {
            self.cur_events_per_sec / self.base_events_per_sec
        } else {
            f64::INFINITY
        }
    }

    /// `cur / base` memory-capacity ratio (sessions that fit in a GB);
    /// below 1.0 means each session got more expensive.
    pub fn capacity_ratio(&self) -> f64 {
        if self.base_sessions_per_gb > 0.0 {
            self.cur_sessions_per_gb / self.base_sessions_per_gb
        } else {
            f64::INFINITY
        }
    }
}

/// Advisory delta for one shard count probed by both recordings.
#[derive(Clone, Debug)]
pub struct ShardScaleDelta {
    /// Shard count of the matched points.
    pub shards: u64,
    /// Scene id probed by both recordings.
    pub scene: String,
    /// Baseline events/sec at this shard count.
    pub base_events_per_sec: f64,
    /// Current events/sec at this shard count.
    pub cur_events_per_sec: f64,
    /// True when the event count differs between the recordings — on a
    /// fixed scene that is a determinism red flag, not a perf delta.
    pub events_changed: bool,
}

impl ShardScaleDelta {
    /// `cur / base` throughput ratio at this shard count.
    pub fn ratio(&self) -> f64 {
        if self.base_events_per_sec > 0.0 {
            self.cur_events_per_sec / self.base_events_per_sec
        } else {
            f64::INFINITY
        }
    }
}

/// The result of lining a current batch up against a baseline.
#[derive(Clone, Debug)]
pub struct Comparison {
    /// Aggregate baseline events/sec.
    pub base_events_per_sec: f64,
    /// Aggregate current events/sec.
    pub cur_events_per_sec: f64,
    /// Per-run deltas for runs present in both recordings.
    pub deltas: Vec<RunDelta>,
    /// `(id, seed)` present only in the baseline.
    pub missing: Vec<(String, u64)>,
    /// `(id, seed)` present only in the current batch.
    pub extra: Vec<(String, u64)>,
    /// Scale-probe deltas, when both recordings probed the same scene.
    pub scale: Option<ScaleDelta>,
    /// Shard-scaling deltas for shard counts probed by both recordings
    /// on the same scene. Advisory only — never part of [`Self::regressed`],
    /// because parallel speedup is a property of the machine's core
    /// count as much as of the code.
    pub shard_scaling: Vec<ShardScaleDelta>,
}

impl Comparison {
    /// Aggregate `cur / base` events-per-second ratio.
    pub fn aggregate_ratio(&self) -> f64 {
        if self.base_events_per_sec > 0.0 {
            self.cur_events_per_sec / self.base_events_per_sec
        } else {
            f64::INFINITY
        }
    }

    /// True when both recordings actually swept runs. A probe-only
    /// batch (`repro --scenes … --scale <id>` with no experiment ids —
    /// the CI scale-gate shape) records zero sweep throughput, which
    /// must read as "no aggregate to compare", not as a regression to
    /// zero.
    pub fn aggregate_comparable(&self) -> bool {
        self.base_events_per_sec > 0.0 && self.cur_events_per_sec > 0.0
    }

    /// True when the aggregate throughput dropped by more than
    /// `threshold_pct` percent relative to the baseline — or, when both
    /// recordings carry a scale probe of the same scene, when the
    /// probe's throughput or its sessions-per-GB capacity did.
    /// Per-scenario deltas are reported but do not gate individually:
    /// single-scenario wall times on shared machines are too noisy to
    /// fail a build on. (Sessions-per-GB is RSS-derived and *does* gate:
    /// allocator-level noise is far below any real per-session cost
    /// change at 10^5 sessions.)
    pub fn regressed(&self, threshold_pct: f64) -> bool {
        let floor = 1.0 - threshold_pct / 100.0;
        if self.aggregate_comparable() && self.aggregate_ratio() < floor {
            return true;
        }
        if let Some(s) = &self.scale {
            if s.throughput_ratio() < floor || s.capacity_ratio() < floor {
                return true;
            }
        }
        false
    }

    /// Render the per-scenario delta table plus the aggregate verdict.
    pub fn render(&self, threshold_pct: f64) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "bench comparison (current vs baseline):");
        let _ = writeln!(
            s,
            "  {:<10} {:>6} {:>12} {:>12} {:>8}",
            "id", "seed", "base ev/s", "cur ev/s", "ratio"
        );
        for d in &self.deltas {
            let _ = writeln!(
                s,
                "  {:<10} {:>6} {:>12.0} {:>12.0} {:>7.3}x{}",
                d.id,
                d.seed,
                d.base,
                d.cur,
                d.ratio,
                if d.events_changed {
                    "  [! event count changed]"
                } else {
                    ""
                }
            );
        }
        for (id, seed) in &self.missing {
            let _ = writeln!(s, "  {id:<10} {seed:>6} only in baseline");
        }
        for (id, seed) in &self.extra {
            let _ = writeln!(s, "  {id:<10} {seed:>6} only in current batch");
        }
        if let Some(d) = &self.scale {
            let _ = writeln!(
                s,
                "  scale {}: {:.0} -> {:.0} ev/s ({:.3}x), {:.0} -> {:.0} sessions/GB ({:.3}x)",
                d.scene,
                d.base_events_per_sec,
                d.cur_events_per_sec,
                d.throughput_ratio(),
                d.base_sessions_per_gb,
                d.cur_sessions_per_gb,
                d.capacity_ratio()
            );
        }
        for d in &self.shard_scaling {
            let _ = writeln!(
                s,
                "  shards={} {}: {:.0} -> {:.0} ev/s ({:.3}x, advisory){}",
                d.shards,
                d.scene,
                d.base_events_per_sec,
                d.cur_events_per_sec,
                d.ratio(),
                if d.events_changed {
                    "  [! event count changed]"
                } else {
                    ""
                }
            );
        }
        let verdict = if self.regressed(threshold_pct) {
            "REGRESSED"
        } else {
            "ok"
        };
        if self.aggregate_comparable() {
            let _ = writeln!(
                s,
                "  aggregate: {:.0} -> {:.0} ev/s ({:.3}x), threshold -{}%: {}",
                self.base_events_per_sec,
                self.cur_events_per_sec,
                self.aggregate_ratio(),
                threshold_pct,
                verdict
            );
        } else {
            let _ = writeln!(
                s,
                "  aggregate: n/a (probe-only batch), threshold -{threshold_pct}%: {verdict}"
            );
        }
        s
    }
}

/// Line `current` up against `baseline` by `(id, seed)`.
pub fn compare(current: &BenchRecord, baseline: &BenchBaseline) -> Comparison {
    let mut deltas = Vec::new();
    let mut missing = Vec::new();
    let mut extra = Vec::new();
    for b in &baseline.runs {
        match current
            .runs
            .iter()
            .find(|r| r.id == b.id && r.seed == b.seed)
        {
            Some(r) => deltas.push(RunDelta {
                id: b.id.clone(),
                seed: b.seed,
                base: b.events_per_sec,
                cur: r.events_per_sec(),
                ratio: if b.events_per_sec > 0.0 {
                    r.events_per_sec() / b.events_per_sec
                } else {
                    f64::INFINITY
                },
                events_changed: r.events != b.events,
            }),
            None => missing.push((b.id.clone(), b.seed)),
        }
    }
    for r in &current.runs {
        if !baseline
            .runs
            .iter()
            .any(|b| b.id == r.id && b.seed == r.seed)
        {
            extra.push((r.id.clone(), r.seed));
        }
    }
    let scale = match (&current.scale, &baseline.scale) {
        (Some(cur), Some(base)) if cur.scene == base.scene => Some(ScaleDelta {
            scene: cur.scene.clone(),
            base_events_per_sec: base.events_per_sec,
            cur_events_per_sec: cur.events_per_sec(),
            base_sessions_per_gb: base.sessions_per_gb,
            cur_sessions_per_gb: cur.sessions_per_gb(),
        }),
        _ => None,
    };
    let mut shard_scaling = Vec::new();
    for b in &baseline.shard_scaling {
        if let Some(c) = current
            .shard_scaling
            .iter()
            .find(|c| c.shards as u64 == b.shards && c.scene == b.scene)
        {
            shard_scaling.push(ShardScaleDelta {
                shards: b.shards,
                scene: b.scene.clone(),
                base_events_per_sec: b.events_per_sec,
                cur_events_per_sec: c.events_per_sec(),
                events_changed: c.events != b.events,
            });
        }
    }
    Comparison {
        base_events_per_sec: baseline.events_per_sec,
        cur_events_per_sec: current.events_per_sec(),
        deltas,
        missing,
        extra,
        scale,
        shard_scaling,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phantom_metrics::manifest::{Manifest, BENCH_SCHEMA};
    use phantom_metrics::RunRecord;

    fn record(ids: &[(&str, u64, f64, u64)], total_wall: f64) -> BenchRecord {
        BenchRecord {
            manifest: Manifest::new(BENCH_SCHEMA, "repro", 1996, "test"),
            jobs: 1,
            calendar: phantom_sim::CALENDAR.to_string(),
            total_wall_secs: total_wall,
            runs: ids
                .iter()
                .map(|(id, seed, wall, events)| RunRecord {
                    id: (*id).into(),
                    seed: *seed,
                    wall_secs: *wall,
                    events: *events,
                    drops: 0,
                    retransmits: 0,
                    queue_peak: 0,
                })
                .collect(),
            scale: None,
            shard_scaling: Vec::new(),
        }
    }

    fn shard_points(walls: &[(usize, f64)]) -> Vec<phantom_metrics::ShardScalePoint> {
        walls
            .iter()
            .map(|&(shards, wall)| phantom_metrics::ShardScalePoint {
                shards,
                scene: "metro-100k".into(),
                seed: 1996,
                events: 10_000_000,
                wall_secs: wall,
            })
            .collect()
    }

    fn scale_probe(events: u64, wall: f64, rss: u64) -> phantom_metrics::ScaleRecord {
        phantom_metrics::ScaleRecord {
            scene: "metro-100k".into(),
            seed: 1996,
            sessions: 100_000,
            nodes: 300_052,
            events,
            wall_secs: wall,
            rss_delta_bytes: Some(rss),
            arena_bytes: 40_000_000,
            drops: 0,
            queue_peak: 100,
        }
    }

    #[test]
    fn scale_line_with_null_rss_parses_and_compares() {
        // A probe on a platform without /proc records `rss: null`; the
        // baseline must still parse and the (arena-derived) capacity
        // numbers must still gate.
        let mut base_rec = record(&[("fig2", 1996, 1.0, 1_000_000)], 1.0);
        let mut probe = scale_probe(10_000_000, 4.0, 0);
        probe.rss_delta_bytes = None;
        base_rec.scale = Some(probe.clone());
        assert!(base_rec.to_json().contains("\"rss_delta_bytes\": null"));
        let base = parse_bench_json(&base_rec.to_json()).unwrap();
        let bs = base.scale.as_ref().expect("null-rss scale line parses");
        // 40 MB arena / 100k sessions = 400 B/session = 2.5M sessions/GB.
        assert!((bs.sessions_per_gb - 2_500_000.0).abs() < 1e-6);
        let mut cur = record(&[("fig2", 1996, 1.0, 1_000_000)], 1.0);
        cur.scale = Some(probe);
        assert!(!compare(&cur, &base).regressed(10.0));
    }

    #[test]
    fn roundtrips_through_the_writer() {
        let rec = record(
            &[("fig2", 1996, 0.5, 1_000_000), ("fig9", 7, 0.5, 500_000)],
            1.0,
        );
        let parsed = parse_bench_json(&rec.to_json()).unwrap();
        assert_eq!(parsed.schema, BENCH_SCHEMA);
        assert_eq!(parsed.calendar.as_deref(), Some(phantom_sim::CALENDAR));
        assert_eq!(parsed.runs.len(), 2);
        assert_eq!(parsed.runs[0].id, "fig2");
        assert_eq!(parsed.runs[0].events, 1_000_000);
        assert!((parsed.events_per_sec - 1_500_000.0).abs() < 1e-6);
    }

    #[test]
    fn accepts_a_v2_baseline_without_calendar() {
        let doc = r#"{
  "schema": "phantom-bench/2",
  "manifest": {"schema":"phantom-bench/2","scenario":"repro"},
  "jobs": 1,
  "total_wall_secs": 2,
  "runs_per_sec": 0.5,
  "events_total": 100,
  "events_per_sec": 50,
  "runs": [
    {"id": "fig2", "seed": 1996, "wall_secs": 2, "events": 100, "events_per_sec": 50, "drops": 0, "retransmits": 0, "queue_peak": 3}
  ]
}
"#;
        let parsed = parse_bench_json(doc).unwrap();
        assert_eq!(parsed.schema, "phantom-bench/2");
        assert_eq!(parsed.calendar, None);
        assert_eq!(parsed.runs.len(), 1);
        assert_eq!(parsed.events_per_sec, 50.0);
    }

    #[test]
    fn compare_flags_speedups_regressions_and_set_changes() {
        let base = parse_bench_json(
            &record(
                &[("fig2", 1996, 1.0, 1_000_000), ("fig9", 1996, 1.0, 500_000)],
                2.0,
            )
            .to_json(),
        )
        .unwrap();
        // fig2 twice as fast, fig9 missing, table1 new.
        let cur = record(
            &[("fig2", 1996, 0.5, 1_000_000), ("table1", 1996, 0.5, 9)],
            1.0,
        );
        let cmp = compare(&cur, &base);
        assert_eq!(cmp.deltas.len(), 1);
        assert!((cmp.deltas[0].ratio - 2.0).abs() < 1e-9);
        assert!(!cmp.deltas[0].events_changed);
        assert_eq!(cmp.missing, vec![("fig9".to_string(), 1996)]);
        assert_eq!(cmp.extra, vec![("table1".to_string(), 1996)]);
        let txt = cmp.render(10.0);
        assert!(txt.contains("fig2"));
        assert!(txt.contains("only in baseline"));
    }

    #[test]
    fn event_count_changes_are_flagged() {
        let base =
            parse_bench_json(&record(&[("fig2", 1996, 1.0, 1_000_000)], 1.0).to_json()).unwrap();
        let cur = record(&[("fig2", 1996, 1.0, 999_999)], 1.0);
        let cmp = compare(&cur, &base);
        assert!(cmp.deltas[0].events_changed);
        assert!(cmp.render(10.0).contains("event count changed"));
    }

    #[test]
    fn scale_round_trips_and_gates_on_memory_and_throughput() {
        let mut base_rec = record(&[("fig2", 1996, 1.0, 1_000_000)], 1.0);
        base_rec.scale = Some(scale_probe(10_000_000, 4.0, 2_000_000_000));
        let base = parse_bench_json(&base_rec.to_json()).unwrap();
        let bs = base.scale.as_ref().expect("scale parsed from /4 baseline");
        assert_eq!(bs.scene, "metro-100k");
        assert!((bs.events_per_sec - 2_500_000.0).abs() < 1e-6);
        assert!((bs.sessions_per_gb - 50_000.0).abs() < 1e-6);

        // Same sweep speed; probe 20% slower and sessions 20% costlier.
        let mut cur = record(&[("fig2", 1996, 1.0, 1_000_000)], 1.0);
        cur.scale = Some(scale_probe(10_000_000, 5.0, 2_500_000_000));
        let cmp = compare(&cur, &base);
        let d = cmp.scale.as_ref().expect("matched scale probes");
        assert!((d.throughput_ratio() - 0.8).abs() < 1e-9);
        assert!((d.capacity_ratio() - 0.8).abs() < 1e-9);
        assert!(cmp.regressed(10.0), "20% scale drop must gate at 10%");
        assert!(!cmp.regressed(25.0), "20% scale drop passes at 25%");
        assert!(cmp.render(10.0).contains("scale metro-100k"));

        // An identical probe does not gate.
        let mut same = record(&[("fig2", 1996, 1.0, 1_000_000)], 1.0);
        same.scale = Some(scale_probe(10_000_000, 4.0, 2_000_000_000));
        assert!(!compare(&same, &base).regressed(10.0));
    }

    #[test]
    fn scale_is_ignored_when_either_side_lacks_it_or_scenes_differ() {
        // /3-style baseline without a scale object.
        let base =
            parse_bench_json(&record(&[("fig2", 1996, 1.0, 1_000_000)], 1.0).to_json()).unwrap();
        assert!(base.scale.is_none());
        let mut cur = record(&[("fig2", 1996, 1.0, 1_000_000)], 1.0);
        cur.scale = Some(scale_probe(1, 100.0, u64::MAX / 2));
        let cmp = compare(&cur, &base);
        assert!(cmp.scale.is_none());
        assert!(!cmp.regressed(10.0), "unmatched probe must not gate");

        // Same schema but a different probed scene: no comparison.
        let mut base_rec = record(&[("fig2", 1996, 1.0, 1_000_000)], 1.0);
        let mut other = scale_probe(10_000_000, 4.0, 2_000_000_000);
        other.scene = "metro-1m".into();
        base_rec.scale = Some(other);
        let base2 = parse_bench_json(&base_rec.to_json()).unwrap();
        assert!(compare(&cur, &base2).scale.is_none());
    }

    #[test]
    fn probe_only_batch_skips_the_aggregate_gate_but_not_the_scale_gate() {
        // Baseline: full sweep + probe. Current: probe only (no ids),
        // the CI scale-gate invocation. The zero aggregate must not
        // read as a throughput collapse…
        let mut base_rec = record(&[("fig2", 1996, 1.0, 1_000_000)], 1.0);
        base_rec.scale = Some(scale_probe(10_000_000, 4.0, 2_000_000_000));
        let base = parse_bench_json(&base_rec.to_json()).unwrap();
        let mut cur = record(&[], 0.0);
        cur.scale = Some(scale_probe(10_000_000, 4.0, 2_000_000_000));
        let cmp = compare(&cur, &base);
        assert!(!cmp.aggregate_comparable());
        assert!(!cmp.regressed(10.0), "matching probe must pass");
        assert!(cmp.render(10.0).contains("aggregate: n/a"));

        // …but a genuine probe regression still gates.
        let mut slow = record(&[], 0.0);
        slow.scale = Some(scale_probe(10_000_000, 5.0, 2_500_000_000));
        assert!(compare(&slow, &base).regressed(10.0));
    }

    #[test]
    fn shard_scaling_round_trips_and_stays_advisory() {
        let mut base_rec = record(&[("fig2", 1996, 1.0, 1_000_000)], 1.0);
        // Include a scale probe: with `shard_scaling` present the scale
        // line is no longer last, so it renders with a trailing comma
        // that the parser must tolerate.
        base_rec.scale = Some(scale_probe(50_000_000, 25.0, 2_000_000_000));
        base_rec.shard_scaling = shard_points(&[(1, 4.0), (2, 2.5), (4, 1.6)]);
        let base = parse_bench_json(&base_rec.to_json()).unwrap();
        assert!(
            base.scale.is_some(),
            "scale line with trailing comma parses"
        );
        assert_eq!(base.shard_scaling.len(), 3);
        assert_eq!(base.shard_scaling[0].shards, 1);
        assert_eq!(base.shard_scaling[0].scene, "metro-100k");
        assert!((base.shard_scaling[0].events_per_sec - 2_500_000.0).abs() < 1e-6);
        assert_eq!(base.shard_scaling[2].events, 10_000_000);

        // Current batch: shards=1 matches, shards=4 is 2x slower,
        // shards=2 not re-measured. The huge shards=4 drop must be
        // reported but must NOT gate.
        let mut cur = record(&[("fig2", 1996, 1.0, 1_000_000)], 1.0);
        cur.shard_scaling = shard_points(&[(1, 4.0), (4, 3.2)]);
        let cmp = compare(&cur, &base);
        assert_eq!(cmp.shard_scaling.len(), 2);
        assert!((cmp.shard_scaling[0].ratio() - 1.0).abs() < 1e-9);
        assert!((cmp.shard_scaling[1].ratio() - 0.5).abs() < 1e-9);
        assert!(!cmp.shard_scaling[1].events_changed);
        assert!(
            !cmp.regressed(10.0),
            "shard-scaling deltas are advisory and must not gate"
        );
        let txt = cmp.render(10.0);
        assert!(txt.contains("shards=4 metro-100k"));
        assert!(txt.contains("advisory"));

        // A /4 baseline (no shard lines) parses to an empty vec and
        // produces no shard deltas.
        let v4 =
            parse_bench_json(&record(&[("fig2", 1996, 1.0, 1_000_000)], 1.0).to_json()).unwrap();
        assert!(v4.shard_scaling.is_empty());
        assert!(compare(&cur, &v4).shard_scaling.is_empty());

        // An event-count mismatch on a matched point is flagged.
        let mut drifted = record(&[("fig2", 1996, 1.0, 1_000_000)], 1.0);
        drifted.shard_scaling = shard_points(&[(1, 4.0)]);
        drifted.shard_scaling[0].events = 9_999_999;
        let cmp2 = compare(&drifted, &base);
        assert!(cmp2.shard_scaling[0].events_changed);
        assert!(cmp2.render(10.0).contains("event count changed"));
    }

    #[test]
    fn threshold_gates_on_the_aggregate() {
        let base =
            parse_bench_json(&record(&[("fig2", 1996, 1.0, 1_000_000)], 1.0).to_json()).unwrap();
        // 8% slower than baseline.
        let cur = record(&[("fig2", 1996, 1.087, 1_000_000)], 1.087);
        let cmp = compare(&cur, &base);
        assert!(!cmp.regressed(10.0), "8% drop is inside a 10% threshold");
        assert!(cmp.regressed(5.0), "8% drop is outside a 5% threshold");
        assert!(!record(&[("fig2", 1996, 0.9, 1_000_000)], 0.9)
            .runs
            .is_empty());
    }
}
