//! Comparing two `BENCH_phantom.json` recordings.
//!
//! `repro --compare <baseline.json>` reads a previously committed bench
//! record, lines the current batch up against it run-by-run, and prints
//! per-scenario events/sec deltas. A drop past the configured relative
//! threshold is a *bench regression*: the harness exits with
//! [`EXIT_BENCH_REGRESSION`] so CI can gate on it (advisorily) without
//! conflating it with a correctness failure.
//!
//! The reader is line-oriented on purpose: `BenchRecord::to_json` emits
//! one flat object per run line, so each line parses with the same
//! dependency-free scalar-object parser the trace analyzer uses. Both
//! `phantom-bench/2` (no `calendar` field) and `phantom-bench/3`
//! baselines are accepted — comparing across the calendar change is the
//! whole point of the gate.

use phantom_analyze::jsonl::{parse_flat_object, Scalar};
use phantom_metrics::BenchRecord;
use std::fmt::Write as _;

/// Process exit code for "the benchmark regressed past the threshold".
/// Distinct from `1` (usage/correctness failure) so CI and scripts can
/// tell "the code is wrong" from "the code got slower".
pub const EXIT_BENCH_REGRESSION: u8 = 4;

/// One run parsed out of a baseline bench record.
#[derive(Clone, Debug)]
pub struct BaselineRun {
    /// Experiment id.
    pub id: String,
    /// Master seed.
    pub seed: u64,
    /// Events per wall-clock second in the baseline recording.
    pub events_per_sec: f64,
    /// Events dispatched in the baseline recording.
    pub events: u64,
}

/// The subset of a `BENCH_phantom.json` document the comparison needs.
#[derive(Clone, Debug)]
pub struct BenchBaseline {
    /// Schema tag of the baseline document.
    pub schema: String,
    /// Calendar tag, if the baseline is new enough to carry one.
    pub calendar: Option<String>,
    /// Aggregate events per second across the baseline batch.
    pub events_per_sec: f64,
    /// Per-run baseline numbers.
    pub runs: Vec<BaselineRun>,
}

fn top_level_value(line: &str, key: &str) -> Option<String> {
    let rest = line.trim_start().strip_prefix(&format!("\"{key}\":"))?;
    Some(
        rest.trim()
            .trim_end_matches(',')
            .trim_matches('"')
            .to_string(),
    )
}

/// Parse a bench record document written by this workspace's
/// `BenchRecord::write` (any schema version ≥ 2).
pub fn parse_bench_json(text: &str) -> Result<BenchBaseline, String> {
    let mut schema = None;
    let mut calendar = None;
    let mut events_per_sec = None;
    let mut runs = Vec::new();
    for line in text.lines() {
        let t = line.trim();
        if t.starts_with("{\"id\":") || t.starts_with("{ \"id\":") {
            let obj = t.trim_end_matches(',');
            let pairs = parse_flat_object(obj).map_err(|e| format!("bad run line `{obj}`: {e}"))?;
            let mut id = None;
            let mut seed = None;
            let mut eps = None;
            let mut events = None;
            for (k, v) in pairs {
                match (k.as_str(), v) {
                    ("id", Scalar::Str(s)) => id = Some(s),
                    ("seed", Scalar::Num(n)) => seed = Some(n as u64),
                    ("events_per_sec", Scalar::Num(n)) => eps = Some(n),
                    ("events", Scalar::Num(n)) => events = Some(n as u64),
                    _ => {}
                }
            }
            runs.push(BaselineRun {
                id: id.ok_or("run line missing `id`")?,
                seed: seed.ok_or("run line missing `seed`")?,
                events_per_sec: eps.ok_or("run line missing `events_per_sec`")?,
                events: events.ok_or("run line missing `events`")?,
            });
        } else if schema.is_none() {
            if let Some(v) = top_level_value(line, "schema") {
                schema = Some(v);
            }
        }
        if calendar.is_none() && !t.starts_with('{') {
            if let Some(v) = top_level_value(line, "calendar") {
                calendar = Some(v);
            }
        }
        if events_per_sec.is_none() && !t.starts_with('{') {
            if let Some(v) = top_level_value(line, "events_per_sec") {
                events_per_sec = v.parse::<f64>().ok();
            }
        }
    }
    Ok(BenchBaseline {
        schema: schema.ok_or("no `schema` key found")?,
        calendar,
        events_per_sec: events_per_sec.ok_or("no aggregate `events_per_sec` found")?,
        runs,
    })
}

/// Events/sec delta for one `(id, seed)` present in both recordings.
#[derive(Clone, Debug)]
pub struct RunDelta {
    /// Experiment id.
    pub id: String,
    /// Master seed.
    pub seed: u64,
    /// Baseline events/sec.
    pub base: f64,
    /// Current events/sec.
    pub cur: f64,
    /// `cur / base`.
    pub ratio: f64,
    /// True when the event *count* changed — a determinism red flag far
    /// more serious than any throughput delta.
    pub events_changed: bool,
}

/// The result of lining a current batch up against a baseline.
#[derive(Clone, Debug)]
pub struct Comparison {
    /// Aggregate baseline events/sec.
    pub base_events_per_sec: f64,
    /// Aggregate current events/sec.
    pub cur_events_per_sec: f64,
    /// Per-run deltas for runs present in both recordings.
    pub deltas: Vec<RunDelta>,
    /// `(id, seed)` present only in the baseline.
    pub missing: Vec<(String, u64)>,
    /// `(id, seed)` present only in the current batch.
    pub extra: Vec<(String, u64)>,
}

impl Comparison {
    /// Aggregate `cur / base` events-per-second ratio.
    pub fn aggregate_ratio(&self) -> f64 {
        if self.base_events_per_sec > 0.0 {
            self.cur_events_per_sec / self.base_events_per_sec
        } else {
            f64::INFINITY
        }
    }

    /// True when the aggregate throughput dropped by more than
    /// `threshold_pct` percent relative to the baseline. Per-scenario
    /// deltas are reported but only the aggregate gates: single-scenario
    /// wall times on shared machines are too noisy to fail a build on.
    pub fn regressed(&self, threshold_pct: f64) -> bool {
        self.aggregate_ratio() < 1.0 - threshold_pct / 100.0
    }

    /// Render the per-scenario delta table plus the aggregate verdict.
    pub fn render(&self, threshold_pct: f64) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "bench comparison (current vs baseline):");
        let _ = writeln!(
            s,
            "  {:<10} {:>6} {:>12} {:>12} {:>8}",
            "id", "seed", "base ev/s", "cur ev/s", "ratio"
        );
        for d in &self.deltas {
            let _ = writeln!(
                s,
                "  {:<10} {:>6} {:>12.0} {:>12.0} {:>7.3}x{}",
                d.id,
                d.seed,
                d.base,
                d.cur,
                d.ratio,
                if d.events_changed {
                    "  [! event count changed]"
                } else {
                    ""
                }
            );
        }
        for (id, seed) in &self.missing {
            let _ = writeln!(s, "  {id:<10} {seed:>6} only in baseline");
        }
        for (id, seed) in &self.extra {
            let _ = writeln!(s, "  {id:<10} {seed:>6} only in current batch");
        }
        let _ = writeln!(
            s,
            "  aggregate: {:.0} -> {:.0} ev/s ({:.3}x), threshold -{}%: {}",
            self.base_events_per_sec,
            self.cur_events_per_sec,
            self.aggregate_ratio(),
            threshold_pct,
            if self.regressed(threshold_pct) {
                "REGRESSED"
            } else {
                "ok"
            }
        );
        s
    }
}

/// Line `current` up against `baseline` by `(id, seed)`.
pub fn compare(current: &BenchRecord, baseline: &BenchBaseline) -> Comparison {
    let mut deltas = Vec::new();
    let mut missing = Vec::new();
    let mut extra = Vec::new();
    for b in &baseline.runs {
        match current
            .runs
            .iter()
            .find(|r| r.id == b.id && r.seed == b.seed)
        {
            Some(r) => deltas.push(RunDelta {
                id: b.id.clone(),
                seed: b.seed,
                base: b.events_per_sec,
                cur: r.events_per_sec(),
                ratio: if b.events_per_sec > 0.0 {
                    r.events_per_sec() / b.events_per_sec
                } else {
                    f64::INFINITY
                },
                events_changed: r.events != b.events,
            }),
            None => missing.push((b.id.clone(), b.seed)),
        }
    }
    for r in &current.runs {
        if !baseline
            .runs
            .iter()
            .any(|b| b.id == r.id && b.seed == r.seed)
        {
            extra.push((r.id.clone(), r.seed));
        }
    }
    Comparison {
        base_events_per_sec: baseline.events_per_sec,
        cur_events_per_sec: current.events_per_sec(),
        deltas,
        missing,
        extra,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phantom_metrics::manifest::{Manifest, BENCH_SCHEMA};
    use phantom_metrics::RunRecord;

    fn record(ids: &[(&str, u64, f64, u64)], total_wall: f64) -> BenchRecord {
        BenchRecord {
            manifest: Manifest::new(BENCH_SCHEMA, "repro", 1996, "test"),
            jobs: 1,
            calendar: phantom_sim::CALENDAR.to_string(),
            total_wall_secs: total_wall,
            runs: ids
                .iter()
                .map(|(id, seed, wall, events)| RunRecord {
                    id: (*id).into(),
                    seed: *seed,
                    wall_secs: *wall,
                    events: *events,
                    drops: 0,
                    retransmits: 0,
                    queue_peak: 0,
                })
                .collect(),
        }
    }

    #[test]
    fn roundtrips_through_the_writer() {
        let rec = record(
            &[("fig2", 1996, 0.5, 1_000_000), ("fig9", 7, 0.5, 500_000)],
            1.0,
        );
        let parsed = parse_bench_json(&rec.to_json()).unwrap();
        assert_eq!(parsed.schema, BENCH_SCHEMA);
        assert_eq!(parsed.calendar.as_deref(), Some(phantom_sim::CALENDAR));
        assert_eq!(parsed.runs.len(), 2);
        assert_eq!(parsed.runs[0].id, "fig2");
        assert_eq!(parsed.runs[0].events, 1_000_000);
        assert!((parsed.events_per_sec - 1_500_000.0).abs() < 1e-6);
    }

    #[test]
    fn accepts_a_v2_baseline_without_calendar() {
        let doc = r#"{
  "schema": "phantom-bench/2",
  "manifest": {"schema":"phantom-bench/2","scenario":"repro"},
  "jobs": 1,
  "total_wall_secs": 2,
  "runs_per_sec": 0.5,
  "events_total": 100,
  "events_per_sec": 50,
  "runs": [
    {"id": "fig2", "seed": 1996, "wall_secs": 2, "events": 100, "events_per_sec": 50, "drops": 0, "retransmits": 0, "queue_peak": 3}
  ]
}
"#;
        let parsed = parse_bench_json(doc).unwrap();
        assert_eq!(parsed.schema, "phantom-bench/2");
        assert_eq!(parsed.calendar, None);
        assert_eq!(parsed.runs.len(), 1);
        assert_eq!(parsed.events_per_sec, 50.0);
    }

    #[test]
    fn compare_flags_speedups_regressions_and_set_changes() {
        let base = parse_bench_json(
            &record(
                &[("fig2", 1996, 1.0, 1_000_000), ("fig9", 1996, 1.0, 500_000)],
                2.0,
            )
            .to_json(),
        )
        .unwrap();
        // fig2 twice as fast, fig9 missing, table1 new.
        let cur = record(
            &[("fig2", 1996, 0.5, 1_000_000), ("table1", 1996, 0.5, 9)],
            1.0,
        );
        let cmp = compare(&cur, &base);
        assert_eq!(cmp.deltas.len(), 1);
        assert!((cmp.deltas[0].ratio - 2.0).abs() < 1e-9);
        assert!(!cmp.deltas[0].events_changed);
        assert_eq!(cmp.missing, vec![("fig9".to_string(), 1996)]);
        assert_eq!(cmp.extra, vec![("table1".to_string(), 1996)]);
        let txt = cmp.render(10.0);
        assert!(txt.contains("fig2"));
        assert!(txt.contains("only in baseline"));
    }

    #[test]
    fn event_count_changes_are_flagged() {
        let base =
            parse_bench_json(&record(&[("fig2", 1996, 1.0, 1_000_000)], 1.0).to_json()).unwrap();
        let cur = record(&[("fig2", 1996, 1.0, 999_999)], 1.0);
        let cmp = compare(&cur, &base);
        assert!(cmp.deltas[0].events_changed);
        assert!(cmp.render(10.0).contains("event count changed"));
    }

    #[test]
    fn threshold_gates_on_the_aggregate() {
        let base =
            parse_bench_json(&record(&[("fig2", 1996, 1.0, 1_000_000)], 1.0).to_json()).unwrap();
        // 8% slower than baseline.
        let cur = record(&[("fig2", 1996, 1.087, 1_000_000)], 1.087);
        let cmp = compare(&cur, &base);
        assert!(!cmp.regressed(10.0), "8% drop is inside a 10% threshold");
        assert!(cmp.regressed(5.0), "8% drop is outside a 5% threshold");
        assert!(!record(&[("fig2", 1996, 0.9, 1_000_000)], 0.9)
            .runs
            .is_empty());
    }
}
