//! Micro-benches of the hot paths: per-interval and per-RM-cell cost of
//! every rate allocator, per-packet decision cost of every queue
//! discipline (the paper's Fig. 18 pseudo-code among them — bench target
//! `fig_seldiscard_cost` of DESIGN.md), and the raw event throughput of
//! the simulation kernel.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use phantom_atm::allocator::{PortMeasurement, RateAllocator};
use phantom_atm::cell::{RmCell, VcId};
use phantom_baselines::{Aprc, Capc, Eprca, Erica};
use phantom_core::{PhantomAllocator, PhantomNi};
use phantom_sim::event::EventQueue;
use phantom_sim::{Ctx, Engine, Node, SimDuration, SimTime};
use phantom_tcp::packet::{FlowId, Packet};
use phantom_tcp::qdisc::{DropTail, QueueDiscipline, Red, SelectiveDiscard, SelectiveQuench};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn meas() -> PortMeasurement {
    PortMeasurement {
        dt: 0.001,
        arrivals: 300,
        departures: 290,
        queue: 42,
        capacity: 353_773.6,
    }
}

fn bench_allocators(c: &mut Criterion) {
    let mut group = c.benchmark_group("allocator");
    let m = meas();
    let allocators: Vec<(&str, Box<dyn RateAllocator>)> = vec![
        ("phantom", Box::new(PhantomAllocator::paper())),
        ("phantom-ni", Box::new(PhantomNi::paper())),
        ("eprca", Box::new(Eprca::recommended())),
        ("aprc", Box::new(Aprc::recommended())),
        ("capc", Box::new(Capc::recommended())),
        ("erica", Box::new(Erica::recommended())),
    ];
    for (name, mut alloc) in allocators {
        alloc.on_interval(&m);
        group.bench_function(format!("{name}/on_interval"), |b| {
            b.iter(|| alloc.on_interval(criterion::black_box(&m)))
        });
        group.bench_function(format!("{name}/backward_rm"), |b| {
            b.iter_batched(
                || RmCell::forward(100_000.0, 353_773.6).turned_around(),
                |mut rm| {
                    alloc.backward_rm(VcId(0), &mut rm, 42);
                    rm.er
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_qdiscs(c: &mut Criterion) {
    let mut group = c.benchmark_group("qdisc");
    let m = phantom_tcp::qdisc::RouterMeasurement {
        dt: 0.01,
        arrival_bytes: 10_000,
        departure_bytes: 10_000,
        queue_pkts: 20,
        queue_bytes: 11_040,
        capacity: 1.25e6,
    };
    let qdiscs: Vec<(&str, Box<dyn QueueDiscipline>)> = vec![
        ("drop-tail", Box::new(DropTail)),
        ("red", Box::new(Red::recommended())),
        // fig_seldiscard_cost: the per-packet price of the paper's
        // Fig. 18 predicate.
        ("selective-discard", Box::new(SelectiveDiscard::paper())),
        ("selective-quench", Box::new(SelectiveQuench::paper())),
    ];
    for (name, mut q) in qdiscs {
        q.on_interval(&m);
        let pkt = Packet::data(FlowId(0), 0, 512, 900_000.0);
        let mut rng = SmallRng::seed_from_u64(1);
        group.bench_function(format!("{name}/on_arrival"), |b| {
            b.iter(|| q.on_arrival(criterion::black_box(&pkt), 20, 11_040, &mut rng))
        });
    }
    group.finish();
}

/// A node that forwards an event to its peer forever; measures raw
/// engine dispatch throughput.
struct PingPong {
    peer: phantom_sim::NodeId,
}

impl Node<u32> for PingPong {
    fn on_event(&mut self, ctx: &mut Ctx<'_, u32>, msg: u32) {
        ctx.send(self.peer, SimDuration::from_nanos(100), msg);
    }
}

/// A payload the size of a realistic ATM/TCP message enum. With a deep
/// calendar this stresses how the wheel moves entries between slices:
/// the payload is written once at push and read once at delivery.
#[derive(Clone, Copy)]
struct FatMsg([u64; 4]);

/// A node that re-arms itself forever at a fixed period, touching the
/// payload so delivery is not dead code.
struct Timer {
    period: SimDuration,
    acc: u64,
}

impl Node<FatMsg> for Timer {
    fn on_event(&mut self, ctx: &mut Ctx<'_, FatMsg>, msg: FatMsg) {
        self.acc ^= msg.0[0];
        ctx.send_self(self.period, msg);
    }
}

fn bench_engine(c: &mut Criterion) {
    c.bench_function("engine/dispatch_100k_events", |b| {
        b.iter_batched(
            || {
                let mut e = Engine::<u32>::new(1);
                let a = e.add_node(PingPong {
                    peer: phantom_sim::NodeId(1),
                });
                let p = e.add_node(PingPong { peer: a });
                e.schedule(SimTime::ZERO, p, 0);
                e
            },
            |mut e| e.run_to_completion(100_000),
            BatchSize::SmallInput,
        )
    });
    // The profiler's *disabled* overhead is guarded by the benchmark
    // above: profiling is always compiled, so `dispatch_100k_events`
    // pays the one thread-local check per run call that every
    // unprofiled run pays, and the bench regression gate
    // (`repro bench --compare`) would catch it growing into the hot
    // loop. This variant measures the *enabled* cost for contrast —
    // two monotonic-clock readings per dispatch plus the attribution
    // bookkeeping — so profile-guided sessions know the observer tax.
    c.bench_function("engine/dispatch_100k_events_profiled", |b| {
        b.iter_batched(
            || {
                let mut e = Engine::<u32>::new(1);
                let a = e.add_node(PingPong {
                    peer: phantom_sim::NodeId(1),
                });
                let p = e.add_node(PingPong { peer: a });
                e.schedule(SimTime::ZERO, p, 0);
                e
            },
            |mut e| {
                let marker = phantom_sim::profile::begin_profile();
                e.run_to_completion(100_000);
                marker.finish()
            },
            BatchSize::SmallInput,
        )
    });
    // 256 staggered timers keep the calendar 256 deep with 32-byte
    // payloads — the regime every multi-source scenario runs in.
    c.bench_function("engine/dispatch_100k_events_deep_calendar", |b| {
        b.iter_batched(
            || {
                let mut e = Engine::<FatMsg>::new(1);
                for i in 0..256u64 {
                    let id = e.add_node(Timer {
                        period: SimDuration::from_nanos(101 + 7 * i),
                        acc: 0,
                    });
                    e.schedule(SimTime(i), id, FatMsg([i; 4]));
                }
                e
            },
            |mut e| e.run_to_completion(100_000),
            BatchSize::SmallInput,
        )
    });
}

/// The timer wheel's three scheduling regimes, measured on the bare
/// [`EventQueue`] (no node dispatch, no probes): a hold of 256 pending
/// events where each op pops the head and re-arms it one delay later.
///
/// * `dense-cell-times` — ACR-paced cell sends a few µs apart: pushes
///   land in the current slice or the first wheel slots (the regime that
///   dominates every saturated ATM scenario).
/// * `bimodal-wire` — a TCP router's two serialization times (MSS data
///   vs 40-byte ACK): alternating near/nearer pushes.
/// * `far-rtt-timers` — RTO-style arms hundreds of ms out, interleaved
///   with µs-scale work: exercises the far-future slab and its overflow
///   heap, and the slice-advance scan that pulls timers back in.
fn bench_wheel(c: &mut Criterion) {
    let mut group = c.benchmark_group("wheel");
    let dists: Vec<(&str, Vec<u64>)> = vec![
        ("dense-cell-times", vec![2_827, 2_827, 2_829, 2_831]),
        ("bimodal-wire", vec![9_920, 320]),
        (
            "far-rtt-timers",
            vec![3_000, 200_000_000, 3_100, 500_000_000],
        ),
    ];
    for (name, delays) in dists {
        group.bench_function(format!("{name}/100k_ops_hold_256"), |b| {
            b.iter_batched(
                || {
                    let mut q = EventQueue::<[u64; 4]>::new();
                    for i in 0..256u64 {
                        q.push(SimTime(i * 37), phantom_sim::NodeId(0), [i; 4]);
                    }
                    q
                },
                |mut q| {
                    let mut di = 0usize;
                    let mut acc = 0u64;
                    for _ in 0..100_000 {
                        let ev = q.pop().expect("hold never drains");
                        acc ^= ev.msg[0];
                        q.push(
                            ev.time + SimDuration::from_nanos(delays[di]),
                            ev.dst,
                            ev.msg,
                        );
                        di += 1;
                        if di == delays.len() {
                            di = 0;
                        }
                    }
                    acc
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_allocators,
    bench_qdiscs,
    bench_engine,
    bench_wheel
);
criterion_main!(benches);
