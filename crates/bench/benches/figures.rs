//! End-to-end regeneration benches: one Criterion benchmark per paper
//! figure/table (the benchmark body runs the full deterministic
//! simulation behind that figure). Useful both as a performance
//! regression net for the simulator and as a single `cargo bench`
//! entry point that exercises every experiment.

use criterion::{criterion_group, criterion_main, Criterion};
use phantom_bench::{experiments, DEFAULT_SEED};
use std::time::Duration;

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("paper");
    // Full experiments are seconds-long simulations: keep the sample
    // count at criterion's minimum and the measurement window tight.
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    for e in experiments() {
        group.bench_function(e.id, |b| {
            b.iter(|| {
                let out = (e.run)(DEFAULT_SEED);
                criterion::black_box(out.id().len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
