//! Closed-loop sanity tests for the baseline algorithms over the real ATM
//! substrate: each must actually control the link (bounded queue, decent
//! utilization, rough fairness) so that the paper's comparisons measure
//! algorithm quality, not implementation breakage.

use phantom_atm::allocator::RateAllocator;
use phantom_atm::network::SessionId;
use phantom_atm::network::TrunkIdx;
use phantom_atm::units::mbps_to_cps;
use phantom_atm::{AtmMsg, NetworkBuilder, Traffic};
use phantom_baselines::{Aprc, Capc, Eprca};
use phantom_sim::{Engine, SimDuration, SimTime};

fn run_two_sessions(
    alloc: &mut dyn FnMut() -> Box<dyn RateAllocator>,
    seed: u64,
) -> (Engine<AtmMsg>, phantom_atm::Network) {
    let mut b = NetworkBuilder::new();
    let s1 = b.switch("s1");
    let s2 = b.switch("s2");
    b.trunk(s1, s2, 150.0, SimDuration::from_micros(10));
    for _ in 0..2 {
        b.session(&[s1, s2], Traffic::greedy());
    }
    let mut engine = Engine::new(seed);
    let net = b.build(&mut engine, alloc);
    engine.run_until(SimTime::from_millis(800));
    (engine, net)
}

fn assert_controls_the_link(
    name: &str,
    engine: &Engine<AtmMsg>,
    net: &phantom_atm::Network,
    min_util: f64,
) {
    let port = net.trunk_port(engine, TrunkIdx(0));
    assert_eq!(port.drops(), 0, "{name}: dropped cells (queue cap 16k)");
    let tail_q = net.trunk_queue(engine, TrunkIdx(0)).mean_after(0.5);
    assert!(
        tail_q < 2000.0,
        "{name}: steady-state queue runaway ({tail_q:.0} cells)"
    );
    let util = net.trunk_throughput(engine, TrunkIdx(0)).mean_after(0.5) / mbps_to_cps(150.0);
    assert!(
        util > min_util && util <= 1.001,
        "{name}: utilization {util:.3} out of range"
    );
    let r0 = net.session_rate(engine, SessionId(0)).mean_after(0.5);
    let r1 = net.session_rate(engine, SessionId(1)).mean_after(0.5);
    let jain = phantom_metrics::jain_index(&[r0, r1]);
    assert!(
        jain > 0.9,
        "{name}: unfair between equals ({r0:.0} vs {r1:.0}, jain {jain:.3})"
    );
}

#[test]
fn eprca_controls_two_greedy_sessions() {
    let (engine, net) = run_two_sessions(&mut || Box::new(Eprca::recommended()), 21);
    assert_controls_the_link("eprca", &engine, &net, 0.80);
}

#[test]
fn aprc_controls_two_greedy_sessions() {
    let (engine, net) = run_two_sessions(&mut || Box::new(Aprc::recommended()), 22);
    assert_controls_the_link("aprc", &engine, &net, 0.80);
}

#[test]
fn capc_controls_two_greedy_sessions() {
    let (engine, net) = run_two_sessions(&mut || Box::new(Capc::recommended()), 23);
    assert_controls_the_link("capc", &engine, &net, 0.80);
}

#[test]
fn capc_queue_is_smaller_than_eprca_queue() {
    // The paper's qualitative ranking: CAPC's congestion-avoidance target
    // keeps queues near zero, while EPRCA oscillates around its queue
    // threshold.
    let (e1, n1) = run_two_sessions(&mut || Box::new(Eprca::recommended()), 31);
    let (e2, n2) = run_two_sessions(&mut || Box::new(Capc::recommended()), 31);
    let q_eprca = n1.trunk_queue(&e1, TrunkIdx(0)).mean_after(0.4);
    let q_capc = n2.trunk_queue(&e2, TrunkIdx(0)).mean_after(0.4);
    assert!(
        q_capc < q_eprca,
        "CAPC queue {q_capc:.0} should undercut EPRCA queue {q_eprca:.0}"
    );
}
