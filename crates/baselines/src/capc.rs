//! CAPC — Congestion Avoidance using Proportional Control \[Bar94\].
//!
//! Barnhart's scheme "uses the *fraction* of unused capacity to control
//! the algorithm actions — in this respect it is analogous to Phantom,
//! which uses the *absolute amount* of unused bandwidth" (paper, §5.2).
//! Per interval the port measures the load factor against a target
//! utilization and scales its explicit-rate setpoint multiplicatively:
//!
//! ```text
//! z = input_rate / (target_util · C)
//! z < 1:  ERS *= min(ERU, 1 + (1 − z)·Rup)      # gentle increase
//! z ≥ 1:  ERS *= max(ERD, 1 − (z − 1)·Rdn)      # proportional decrease
//! ER := min(ER, ERS) on backward RM cells
//! ```
//!
//! CI is set (on everyone) when the queue exceeds a threshold — the
//! binary "very congested" mode that, per the paper, makes CAPC prone to
//! the beat-down unfairness of \[BdJ94\].
//!
//! Expected comparative shape (paper Fig. 22): **longer convergence time
//! than Phantom, smaller transient queue**, because the multiplicative
//! steps are conservative while Phantom's measurement-driven MACR moves
//! as fast as the measurement does.

use phantom_atm::allocator::{PortMeasurement, RateAllocator};
use phantom_atm::cell::{RmCell, VcId};

/// CAPC parameters (\[Bar94\] recommendations).
#[derive(Clone, Copy, Debug)]
pub struct CapcConfig {
    /// Target utilization of the link (0.95).
    pub target_util: f64,
    /// Gain of the increase step (0.1).
    pub rup: f64,
    /// Gain of the decrease step (0.8).
    pub rdn: f64,
    /// Upper bound of a single increase step (1.5).
    pub eru: f64,
    /// Lower bound of a single decrease step (0.5).
    pub erd: f64,
    /// Queue threshold above which CI is set on all backward RM cells.
    pub ci_threshold: usize,
    /// Initial ERS as a fraction of capacity.
    pub init_frac: f64,
}

impl Default for CapcConfig {
    fn default() -> Self {
        CapcConfig {
            target_util: 0.95,
            rup: 0.1,
            rdn: 0.8,
            eru: 1.5,
            erd: 0.5,
            ci_threshold: 300,
            init_frac: 0.05,
        }
    }
}

/// The CAPC per-port allocator.
#[derive(Clone, Copy, Debug)]
pub struct Capc {
    cfg: CapcConfig,
    ers: f64,
    queue: usize,
    capacity: f64,
}

impl Capc {
    /// A CAPC instance with the given parameters.
    pub fn new(cfg: CapcConfig) -> Self {
        assert!(cfg.target_util > 0.0 && cfg.target_util <= 1.0);
        assert!(cfg.rup > 0.0 && cfg.rdn > 0.0);
        assert!(cfg.eru > 1.0 && cfg.erd > 0.0 && cfg.erd < 1.0);
        assert!(cfg.init_frac > 0.0 && cfg.init_frac <= 1.0);
        Capc {
            cfg,
            ers: 0.0, // initialized at the first interval
            queue: 0,
            capacity: 0.0,
        }
    }

    /// Recommended parameters.
    pub fn recommended() -> Self {
        Self::new(CapcConfig::default())
    }

    /// Current explicit-rate setpoint.
    pub fn ers(&self) -> f64 {
        self.ers
    }
}

impl RateAllocator for Capc {
    fn on_interval(&mut self, m: &PortMeasurement) {
        if self.capacity == 0.0 {
            self.capacity = m.capacity;
            self.ers = self.cfg.init_frac * m.capacity;
        }
        self.queue = m.queue;
        let target = self.cfg.target_util * m.capacity;
        let z = m.arrival_rate() / target;
        let factor = if z < 1.0 {
            (1.0 + (1.0 - z) * self.cfg.rup).min(self.cfg.eru)
        } else {
            (1.0 - (z - 1.0) * self.cfg.rdn).max(self.cfg.erd)
        };
        self.ers = (self.ers * factor).clamp(1.0, m.capacity);
    }

    fn forward_rm(&mut self, _vc: VcId, _rm: &mut RmCell, _queue: usize) {}

    fn backward_rm(&mut self, _vc: VcId, rm: &mut RmCell, queue: usize) {
        self.queue = queue;
        if self.capacity == 0.0 {
            return; // not initialized yet
        }
        rm.limit_er(self.ers);
        if self.queue > self.cfg.ci_threshold {
            rm.ci = true; // indiscriminate binary pressure
        }
    }

    fn fair_share(&self) -> f64 {
        self.ers
    }

    fn name(&self) -> &'static str {
        "capc"
    }

    fn save_state(&self, w: &mut phantom_sim::KvWriter) -> Result<(), String> {
        w.f64("ers", self.ers);
        w.u64("queue", self.queue as u64);
        w.f64("capacity", self.capacity);
        Ok(())
    }

    fn restore_state(&mut self, r: &mut phantom_sim::KvReader) -> Result<(), String> {
        self.ers = r.f64("ers")?;
        self.queue = r.u64("queue")? as usize;
        self.capacity = r.f64("capacity")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meas(arrival_rate: f64, queue: usize) -> PortMeasurement {
        let dt = 0.001;
        PortMeasurement {
            dt,
            arrivals: (arrival_rate * dt) as u64,
            departures: 0,
            queue,
            capacity: 100_000.0,
        }
    }

    #[test]
    fn underload_raises_ers_overload_lowers_it() {
        let mut c = Capc::recommended();
        c.on_interval(&meas(0.0, 0));
        let e0 = c.ers();
        c.on_interval(&meas(0.0, 0)); // z = 0 -> max increase step
        assert!((c.ers() - e0 * 1.1).abs() < 1e-6, "1 + (1-0)*0.1 = 1.1");
        // grossly overloaded: z = 2 -> factor max(0.5, 1-0.8) = 0.5
        let e1 = c.ers();
        c.on_interval(&meas(200_000.0, 0));
        assert!((c.ers() - e1 * 0.5).abs() < 1e-6);
    }

    #[test]
    fn at_target_load_ers_is_stationary() {
        let mut c = Capc::recommended();
        c.on_interval(&meas(0.0, 0));
        let before = c.ers();
        c.on_interval(&meas(95_000.0, 0)); // exactly target
        assert!((c.ers() - before).abs() < 1e-9 * before);
    }

    #[test]
    fn convergence_to_target_with_closed_loop() {
        // n sessions obeying ERS: input = n * ERS. Fixed point: ERS such
        // that n·ERS = target -> ERS = 0.95·C/n.
        let n = 4.0;
        let mut c = Capc::recommended();
        let mut input = 1000.0;
        for _ in 0..5000 {
            c.on_interval(&meas(input, 0));
            input = n * c.ers();
        }
        let expected = 0.95 * 100_000.0 / n;
        assert!(
            (c.ers() - expected).abs() < 0.02 * expected,
            "ers {} vs {}",
            c.ers(),
            expected
        );
    }

    #[test]
    fn er_stamped_unconditionally_ci_only_over_threshold() {
        let mut c = Capc::recommended();
        c.on_interval(&meas(0.0, 0));
        let mut rm = RmCell::forward(1.0, 1e9).turned_around();
        c.backward_rm(VcId(0), &mut rm, 0);
        assert!(rm.er < 1e9, "CAPC always stamps its ERS");
        assert!(!rm.ci);
        let mut rm = RmCell::forward(1.0, 1e9).turned_around();
        c.backward_rm(VcId(0), &mut rm, 301);
        assert!(rm.ci);
    }

    #[test]
    fn silent_before_initialization() {
        let mut c = Capc::recommended();
        let mut rm = RmCell::forward(1.0, 1e9).turned_around();
        c.backward_rm(VcId(0), &mut rm, 1000);
        assert_eq!(rm.er, 1e9);
        assert!(!rm.ci);
    }

    #[test]
    fn step_bounds_are_respected() {
        let mut c = Capc::recommended();
        c.on_interval(&meas(0.0, 0));
        // even an absurd overload cannot shrink by more than ERD per step
        let before = c.ers();
        c.on_interval(&meas(10_000_000.0, 0));
        assert!(c.ers() >= before * 0.5 - 1e-9);
    }

    #[test]
    fn constant_space() {
        assert!(std::mem::size_of::<Capc>() <= 128);
    }
}
