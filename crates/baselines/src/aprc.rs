//! APRC — Adaptive Proportional Rate Control \[ST94\].
//!
//! Siu and Tzeng's modification of EPRCA: "rather than being a function of
//! the queue length, [the congested state] is now a function of the rate
//! at which the queue length is changing" — the switch is *congested*
//! while the queue is growing, which reacts earlier than a fixed
//! threshold. The *very congested* state remains a queue threshold; the
//! paper quotes 300 cells and notes that "in some scenarios the queue
//! length might often exceed the very congested threshold".
//!
//! MACR estimation and the ER/CI actions are inherited from EPRCA.

use phantom_atm::allocator::{PortMeasurement, RateAllocator};
use phantom_atm::cell::{RmCell, VcId};

/// APRC parameters (\[ST94\] recommendations; thresholds per the paper).
#[derive(Clone, Copy, Debug)]
pub struct AprcConfig {
    /// Averaging factor for the MACR update (1/16).
    pub av: f64,
    /// Explicit Reduction Factor (0.95).
    pub erf: f64,
    /// Down-Pressure Factor (7/8).
    pub dpf: f64,
    /// Queue growth (cells per measurement interval) above which the port
    /// counts as congested. 0 = "any growth".
    pub growth_threshold: i64,
    /// Very-congested queue threshold: 300 cells (quoted by the paper).
    pub dqt: usize,
    /// Initial MACR, cells/s.
    pub init_macr: f64,
}

impl Default for AprcConfig {
    fn default() -> Self {
        AprcConfig {
            av: 1.0 / 16.0,
            erf: 0.95,
            dpf: 7.0 / 8.0,
            growth_threshold: 0,
            dqt: 300,
            init_macr: phantom_atm::units::mbps_to_cps(8.5),
        }
    }
}

/// The APRC per-port allocator.
#[derive(Clone, Copy, Debug)]
pub struct Aprc {
    cfg: AprcConfig,
    macr: f64,
    queue: usize,
    prev_queue: usize,
    congested: bool,
}

impl Aprc {
    /// An APRC instance with the given parameters.
    pub fn new(cfg: AprcConfig) -> Self {
        assert!(cfg.av > 0.0 && cfg.av <= 1.0);
        assert!(cfg.erf > 0.0 && cfg.erf <= 1.0);
        assert!(cfg.dpf > 0.0 && cfg.dpf <= 1.0);
        Aprc {
            cfg,
            macr: cfg.init_macr,
            queue: 0,
            prev_queue: 0,
            congested: false,
        }
    }

    /// Recommended parameters.
    pub fn recommended() -> Self {
        Self::new(AprcConfig::default())
    }

    fn very_congested(&self) -> bool {
        self.queue > self.cfg.dqt
    }
}

impl RateAllocator for Aprc {
    fn on_interval(&mut self, m: &PortMeasurement) {
        // Intelligent congestion indication: congested while the queue is
        // growing faster than the threshold (and non-empty).
        let growth = m.queue as i64 - self.prev_queue as i64;
        self.congested = m.queue > 0 && growth > self.cfg.growth_threshold;
        self.prev_queue = m.queue;
        self.queue = m.queue;
    }

    fn forward_rm(&mut self, _vc: VcId, rm: &mut RmCell, queue: usize) {
        self.queue = queue;
        if !self.congested || rm.ccr < self.macr {
            self.macr += (rm.ccr - self.macr) * self.cfg.av;
        }
    }

    fn backward_rm(&mut self, _vc: VcId, rm: &mut RmCell, queue: usize) {
        self.queue = queue;
        if self.very_congested() {
            rm.ci = true;
        } else if self.congested && rm.ccr > self.cfg.dpf * self.macr {
            rm.limit_er(self.cfg.erf * self.macr);
        }
    }

    fn fair_share(&self) -> f64 {
        self.macr
    }

    fn name(&self) -> &'static str {
        "aprc"
    }

    fn save_state(&self, w: &mut phantom_sim::KvWriter) -> Result<(), String> {
        w.f64("macr", self.macr);
        w.u64("queue", self.queue as u64);
        w.u64("prev_queue", self.prev_queue as u64);
        w.bool("congested", self.congested);
        Ok(())
    }

    fn restore_state(&mut self, r: &mut phantom_sim::KvReader) -> Result<(), String> {
        self.macr = r.f64("macr")?;
        self.queue = r.u64("queue")? as usize;
        self.prev_queue = r.u64("prev_queue")? as usize;
        self.congested = r.bool("congested")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meas(queue: usize) -> PortMeasurement {
        PortMeasurement {
            dt: 0.001,
            arrivals: 0,
            departures: 0,
            queue,
            capacity: 100_000.0,
        }
    }

    fn bwd(ccr: f64) -> RmCell {
        RmCell::forward(ccr, 1e9).turned_around()
    }

    #[test]
    fn congestion_follows_queue_growth_not_level() {
        let mut a = Aprc::recommended();
        // large but *shrinking* queue -> not congested
        a.on_interval(&meas(250));
        a.on_interval(&meas(200));
        let mut rm = bwd(1e9);
        a.backward_rm(VcId(0), &mut rm, 200);
        assert_eq!(rm.er, 1e9, "shrinking queue must not stamp ER");
        // small but *growing* queue -> congested
        a.on_interval(&meas(10));
        a.on_interval(&meas(20));
        let mut rm = bwd(1e9);
        a.backward_rm(VcId(0), &mut rm, 20);
        assert!(rm.er < 1e9, "growing queue must stamp ER");
    }

    #[test]
    fn very_congested_at_300_cells_sets_ci() {
        let mut a = Aprc::recommended();
        a.on_interval(&meas(200));
        a.on_interval(&meas(301));
        let mut rm = bwd(1.0);
        a.backward_rm(VcId(0), &mut rm, 301);
        assert!(rm.ci);
        let mut rm = bwd(1.0);
        a.backward_rm(VcId(0), &mut rm, 300);
        assert!(!rm.ci, "exactly at threshold is not 'very congested'");
    }

    #[test]
    fn macr_average_matches_eprca_semantics() {
        let mut a = Aprc::recommended();
        for _ in 0..500 {
            a.forward_rm(VcId(0), &mut RmCell::forward(42_000.0, 1e9), 0);
        }
        assert!((a.fair_share() - 42_000.0).abs() < 100.0);
    }

    #[test]
    fn constant_space() {
        assert!(std::mem::size_of::<Aprc>() <= 128);
    }
}
