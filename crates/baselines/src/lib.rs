//! # phantom-baselines — EPRCA, APRC and CAPC
//!
//! The three constant-space ATM-forum rate-based flow-control algorithms
//! the paper compares Phantom against (its Section 5):
//!
//! * [`eprca`] — Roberts' Enhanced Proportional Rate Control Algorithm
//!   \[Rob94\]: per-port MACR is an exponential average of the CCR values
//!   read from forward RM cells; binary congestion (queue thresholds)
//!   gates when ER is stamped and when CI beats everyone down.
//! * [`aprc`] — Siu and Tzeng's Adaptive Proportional Rate Control
//!   \[ST94\]: EPRCA with "intelligent congestion indication" — congestion
//!   is a function of the *queue growth rate* rather than the queue
//!   length; the very-congested threshold is 300 cells (the value the
//!   paper quotes).
//! * [`capc`] — Barnhart's Congestion Avoidance using Proportional
//!   Control \[Bar94\]: a target-utilization controller that scales its
//!   explicit-rate setpoint (ERS) multiplicatively by the measured load
//!   factor; the paper's observed shape is slower convergence than
//!   Phantom with a smaller transient queue.
//! * [`osu`] — the basic OSU load-factor scheme \[JKV94\], constant space,
//!   fast congestion control without fairness equalization.
//! * [`erica`] — OSU's successor ERICA \[JKVG95\], the paper's example of
//!   the *unbounded-space* class (per-VC state); included so the
//!   space/quality trade of the paper's taxonomy can be measured.
//!
//! All three implement [`phantom_atm::RateAllocator`], so every scenario
//! can swap algorithms without touching the topology. Parameters default
//! to the values recommended in the respective ATM-forum contributions
//! (documented per field); the paper states it used those
//! recommendations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aprc;
pub mod capc;
pub mod eprca;
pub mod erica;
pub mod osu;

pub use aprc::{Aprc, AprcConfig};
pub use capc::{Capc, CapcConfig};
pub use eprca::{Eprca, EprcaConfig};
pub use erica::{Erica, EricaConfig};
pub use osu::{Osu, OsuConfig};
