//! ERICA — Explicit Rate Indication for Congestion Avoidance
//! \[JKV94, JKVG95\].
//!
//! The paper's Section 5 names ERICA as the well-known representative of
//! the **unbounded-space** class: "its advanced versions — ERICA/ERICA+
//! maintain a counter per session" — the opposite end of the taxonomy
//! from Phantom's O(1) state. Implemented here so the reproduction can
//! quantify the space/quality trade the paper's taxonomy is about.
//!
//! Per output port and measurement interval:
//!
//! ```text
//! N         = number of distinct active VCs seen in the interval
//! z         = input_rate / (target_util · C)          # load factor
//! fairshare = target_util · C / N
//! ```
//!
//! On each backward RM cell: `ER := min(ER, max(fairshare, CCR / z))` —
//! every session is offered at least the equal split, and overloaded
//! links scale everyone's rate down proportionally, which converges to
//! max-min fairness. The per-VC activity set is the unbounded state
//! ([`Erica::state_bytes`] reports its size so experiments can plot the
//! cost).

use phantom_atm::allocator::{PortMeasurement, RateAllocator};
use phantom_atm::cell::{RmCell, VcId};
use std::collections::HashSet;

/// ERICA parameters (\[JKVG95\] sample-switch recommendations).
#[derive(Clone, Copy, Debug)]
pub struct EricaConfig {
    /// Target utilization of the link (0.9 in the OSU contributions).
    pub target_util: f64,
    /// Floor of the load factor, guarding the division.
    pub min_z: f64,
    /// Initial fair share as a fraction of capacity (until the first
    /// interval has counted sessions).
    pub init_frac: f64,
}

impl Default for EricaConfig {
    fn default() -> Self {
        EricaConfig {
            target_util: 0.9,
            min_z: 0.05,
            init_frac: 0.05,
        }
    }
}

/// The ERICA per-port allocator (unbounded space: O(active VCs)).
#[derive(Clone, Debug)]
pub struct Erica {
    cfg: EricaConfig,
    capacity: f64,
    z: f64,
    fairshare: f64,
    /// VCs seen since the last interval boundary.
    active: HashSet<VcId>,
    /// Session count used for the current fairshare.
    n_active: usize,
}

impl Erica {
    /// An ERICA instance with the given parameters.
    pub fn new(cfg: EricaConfig) -> Self {
        assert!(cfg.target_util > 0.0 && cfg.target_util <= 1.0);
        assert!(cfg.min_z > 0.0);
        assert!(cfg.init_frac > 0.0 && cfg.init_frac <= 1.0);
        Erica {
            cfg,
            capacity: 0.0,
            z: 1.0,
            fairshare: 0.0,
            active: HashSet::new(),
            n_active: 0,
        }
    }

    /// Recommended parameters.
    pub fn recommended() -> Self {
        Self::new(EricaConfig::default())
    }

    /// Number of sessions currently tracked (the unbounded part).
    pub fn tracked_sessions(&self) -> usize {
        self.n_active.max(self.active.len())
    }

    /// Approximate heap footprint of the per-VC state, in bytes — the
    /// quantity the constant-space taxonomy is about.
    pub fn state_bytes(&self) -> usize {
        self.active.capacity() * std::mem::size_of::<VcId>() + std::mem::size_of::<Self>()
    }

    /// Current load factor.
    pub fn load_factor(&self) -> f64 {
        self.z
    }
}

impl RateAllocator for Erica {
    fn on_interval(&mut self, m: &PortMeasurement) {
        if self.capacity == 0.0 {
            self.capacity = m.capacity;
            self.fairshare = self.cfg.init_frac * m.capacity;
        }
        let target = self.cfg.target_util * m.capacity;
        self.z = (m.arrival_rate() / target).max(self.cfg.min_z);
        self.n_active = self.active.len().max(1);
        self.fairshare = target / self.n_active as f64;
        self.active.clear();
    }

    fn forward_rm(&mut self, vc: VcId, _rm: &mut RmCell, _queue: usize) {
        self.active.insert(vc);
    }

    fn backward_rm(&mut self, _vc: VcId, rm: &mut RmCell, _queue: usize) {
        if self.capacity == 0.0 {
            return; // not initialized
        }
        let vcshare = rm.ccr / self.z;
        rm.limit_er(self.fairshare.max(vcshare));
    }

    fn fair_share(&self) -> f64 {
        self.fairshare
    }

    fn name(&self) -> &'static str {
        "erica"
    }

    fn save_state(&self, w: &mut phantom_sim::KvWriter) -> Result<(), String> {
        w.f64("capacity", self.capacity);
        w.f64("z", self.z);
        w.f64("fairshare", self.fairshare);
        w.u64("n_active", self.n_active as u64);
        // HashSet iteration order is nondeterministic; sort so identical
        // states produce identical checkpoints.
        let mut vcs: Vec<u64> = self.active.iter().map(|vc| u64::from(vc.0)).collect();
        vcs.sort_unstable();
        w.u64_list("active", &vcs);
        Ok(())
    }

    fn restore_state(&mut self, r: &mut phantom_sim::KvReader) -> Result<(), String> {
        self.capacity = r.f64("capacity")?;
        self.z = r.f64("z")?;
        self.fairshare = r.f64("fairshare")?;
        self.n_active = r.u64("n_active")? as usize;
        self.active = r
            .u64_list("active")?
            .into_iter()
            .map(|v| {
                u32::try_from(v)
                    .map(VcId)
                    .map_err(|_| "vc out of range".to_string())
            })
            .collect::<Result<_, _>>()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meas(arrival_rate: f64, capacity: f64) -> PortMeasurement {
        let dt = 0.001;
        PortMeasurement {
            dt,
            arrivals: (arrival_rate * dt).round() as u64,
            departures: 0,
            queue: 0,
            capacity,
        }
    }

    fn bwd(ccr: f64) -> RmCell {
        RmCell::forward(ccr, 1e12).turned_around()
    }

    #[test]
    fn fairshare_divides_target_by_active_count() {
        let mut e = Erica::recommended();
        for i in 0..3 {
            e.forward_rm(VcId(i), &mut RmCell::forward(1.0, 1e12), 0);
        }
        e.on_interval(&meas(0.0, 100_000.0));
        assert!((e.fair_share() - 0.9 * 100_000.0 / 3.0).abs() < 1e-6);
        assert_eq!(e.tracked_sessions(), 3);
    }

    #[test]
    fn overload_scales_vc_share_down() {
        let mut e = Erica::recommended();
        e.forward_rm(VcId(0), &mut RmCell::forward(1.0, 1e12), 0);
        // z = 180k / 90k = 2
        e.on_interval(&meas(180_000.0, 100_000.0));
        assert!((e.load_factor() - 2.0).abs() < 0.05);
        // a session at CCR 80k is told max(fairshare=90k, 80k/2=40k) = 90k
        let mut rm = bwd(80_000.0);
        e.backward_rm(VcId(0), &mut rm, 0);
        assert!((rm.er - 90_000.0).abs() < 1e-6);
    }

    #[test]
    fn underload_lets_fast_sessions_keep_their_rate() {
        let mut e = Erica::recommended();
        for i in 0..2 {
            e.forward_rm(VcId(i), &mut RmCell::forward(1.0, 1e12), 0);
        }
        // z = 45k/90k = 0.5: a session at 80k gets max(45k, 160k) = 160k
        e.on_interval(&meas(45_000.0, 100_000.0));
        let mut rm = bwd(80_000.0);
        e.backward_rm(VcId(0), &mut rm, 0);
        assert!((rm.er - 160_000.0).abs() < 1e-6);
    }

    #[test]
    fn er_never_raised() {
        let mut e = Erica::recommended();
        e.forward_rm(VcId(0), &mut RmCell::forward(1.0, 1e12), 0);
        e.on_interval(&meas(45_000.0, 100_000.0));
        let mut rm = RmCell::forward(80_000.0, 10.0).turned_around(); // ER already tiny
        e.backward_rm(VcId(0), &mut rm, 0);
        assert_eq!(rm.er, 10.0);
    }

    #[test]
    fn silent_before_initialization() {
        let mut e = Erica::recommended();
        let mut rm = bwd(1.0);
        e.backward_rm(VcId(0), &mut rm, 0);
        assert_eq!(rm.er, 1e12);
    }

    #[test]
    fn state_grows_with_session_count_unbounded_space() {
        // The defining contrast with Phantom: per-VC state.
        let mut e = Erica::recommended();
        let before = e.state_bytes();
        for i in 0..10_000 {
            e.forward_rm(VcId(i), &mut RmCell::forward(1.0, 1e12), 0);
        }
        assert!(
            e.state_bytes() > before + 10_000 * std::mem::size_of::<VcId>() / 2,
            "ERICA's state must grow with the number of sessions"
        );
        assert_eq!(e.tracked_sessions(), 10_000);
    }

    #[test]
    fn closed_loop_converges_to_equal_split_at_target() {
        // n sessions obeying ER with one interval of delay.
        let n = 4u32;
        let c = 100_000.0;
        let mut e = Erica::recommended();
        let mut offered = vec![1_000.0f64; n as usize];
        for _ in 0..3000 {
            for vc in 0..n {
                e.forward_rm(
                    VcId(vc),
                    &mut RmCell::forward(offered[vc as usize], 1e12),
                    0,
                );
            }
            let total: f64 = offered.iter().sum();
            e.on_interval(&meas(total, c));
            for vc in 0..n {
                let mut rm = bwd(offered[vc as usize]);
                e.backward_rm(VcId(vc), &mut rm, 0);
                offered[vc as usize] = rm.er.min(c);
            }
        }
        for r in &offered {
            assert!(
                (r - 0.9 * c / n as f64).abs() < 0.05 * c,
                "rate {r} vs equal split {}",
                0.9 * c / n as f64
            );
        }
    }
}
