//! OSU — the Ohio State explicit-rate scheme \[JKV94\].
//!
//! "Another well known constant space rate-based flow control algorithm
//! is OSU, suggested by Jain et al." (paper §5). The switch measures the
//! load factor over an averaging interval,
//!
//! ```text
//! z = input_rate / (target_util · C)
//! ```
//!
//! and tells every session to scale itself by it: backward RM cells get
//! `ER := min(ER, CCR / z)`. The aggregate then converges geometrically
//! to the target utilization. The textbook weakness (which motivated the
//! ERICA successor): plain load-factor scaling preserves whatever rate
//! *proportions* the sessions happen to have — it controls congestion
//! but does not equalize; the fairness logic of the full proposal needs
//! an active-source count, which is where ERICA's per-VC state crept
//! in. We implement the basic constant-space scheme plus the customary
//! dead band: while |z − 1| ≤ δ rates are left alone, which damps
//! oscillation around the target.

use phantom_atm::allocator::{PortMeasurement, RateAllocator};
use phantom_atm::cell::{RmCell, VcId};

/// OSU parameters (\[JKV94\] recommendations).
#[derive(Clone, Copy, Debug)]
pub struct OsuConfig {
    /// Target utilization (0.95).
    pub target_util: f64,
    /// Load factor floor, guarding the division.
    pub min_z: f64,
    /// Half-width of the "in-band" region around z = 1 where rates are
    /// left alone (reduces oscillation).
    pub band: f64,
}

impl Default for OsuConfig {
    fn default() -> Self {
        OsuConfig {
            target_util: 0.95,
            min_z: 0.05,
            band: 0.05,
        }
    }
}

/// The OSU per-port allocator (constant space).
#[derive(Clone, Copy, Debug)]
pub struct Osu {
    cfg: OsuConfig,
    z: f64,
    capacity: f64,
}

impl Osu {
    /// An OSU instance with the given parameters.
    pub fn new(cfg: OsuConfig) -> Self {
        assert!(cfg.target_util > 0.0 && cfg.target_util <= 1.0);
        assert!(cfg.min_z > 0.0);
        assert!(cfg.band >= 0.0 && cfg.band < 1.0);
        Osu {
            cfg,
            z: 1.0,
            capacity: 0.0,
        }
    }

    /// Recommended parameters.
    pub fn recommended() -> Self {
        Self::new(OsuConfig::default())
    }

    /// Current load factor.
    pub fn load_factor(&self) -> f64 {
        self.z
    }
}

impl RateAllocator for Osu {
    fn on_interval(&mut self, m: &PortMeasurement) {
        self.capacity = m.capacity;
        let target = self.cfg.target_util * m.capacity;
        self.z = (m.arrival_rate() / target).max(self.cfg.min_z);
    }

    fn forward_rm(&mut self, _vc: VcId, _rm: &mut RmCell, _queue: usize) {}

    fn backward_rm(&mut self, _vc: VcId, rm: &mut RmCell, _queue: usize) {
        if self.capacity == 0.0 {
            return;
        }
        if (self.z - 1.0).abs() <= self.cfg.band {
            return; // in band: leave rates alone
        }
        rm.limit_er(rm.ccr / self.z);
    }

    fn fair_share(&self) -> f64 {
        // OSU has no fair-share variable; report the per-unit-CCR scale,
        // expressed against capacity so the trace is comparable.
        self.cfg.target_util * self.capacity / self.z.max(self.cfg.min_z)
    }

    fn name(&self) -> &'static str {
        "osu"
    }

    fn save_state(&self, w: &mut phantom_sim::KvWriter) -> Result<(), String> {
        w.f64("z", self.z);
        w.f64("capacity", self.capacity);
        Ok(())
    }

    fn restore_state(&mut self, r: &mut phantom_sim::KvReader) -> Result<(), String> {
        self.z = r.f64("z")?;
        self.capacity = r.f64("capacity")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meas(arrival_rate: f64, capacity: f64) -> PortMeasurement {
        let dt = 0.001;
        PortMeasurement {
            dt,
            arrivals: (arrival_rate * dt).round() as u64,
            departures: 0,
            queue: 0,
            capacity,
        }
    }

    fn bwd(ccr: f64) -> RmCell {
        RmCell::forward(ccr, 1e12).turned_around()
    }

    #[test]
    fn overload_scales_sessions_down_by_z() {
        let mut o = Osu::recommended();
        o.on_interval(&meas(190_000.0, 100_000.0)); // z = 2
        assert!((o.load_factor() - 2.0).abs() < 0.02);
        let mut rm = bwd(60_000.0);
        o.backward_rm(VcId(0), &mut rm, 0);
        assert!((rm.er - 30_000.0).abs() < 500.0);
    }

    #[test]
    fn underload_lets_sessions_grow_by_z() {
        let mut o = Osu::recommended();
        o.on_interval(&meas(47_500.0, 100_000.0)); // z = 0.5
        let mut rm = bwd(20_000.0);
        o.backward_rm(VcId(0), &mut rm, 0);
        assert!((rm.er - 40_000.0).abs() < 500.0);
    }

    #[test]
    fn in_band_rates_are_left_alone() {
        let mut o = Osu::recommended();
        o.on_interval(&meas(95_000.0, 100_000.0)); // z = 1
        let mut rm = bwd(60_000.0);
        o.backward_rm(VcId(0), &mut rm, 0);
        assert_eq!(rm.er, 1e12, "in the band, ER untouched");
    }

    #[test]
    fn scaling_preserves_proportions_the_known_weakness() {
        // Two sessions at a 3:1 ratio; closed loop converges to the
        // target but keeps the 3:1 split.
        let mut o = Osu::recommended();
        let c = 100_000.0;
        let mut rates = [60_000.0, 20_000.0];
        for _ in 0..200 {
            o.on_interval(&meas(rates.iter().sum::<f64>(), c));
            for r in rates.iter_mut() {
                let mut rm = bwd(*r);
                o.backward_rm(VcId(0), &mut rm, 0);
                // A stamped ER is the new allowed rate; an untouched ER
                // (in band) means "hold".
                if rm.er < 1e11 {
                    *r = rm.er.min(c);
                }
            }
        }
        let total: f64 = rates.iter().sum();
        assert!(
            (total - 95_000.0).abs() < 7_000.0,
            "total {total} should settle near the 95k target"
        );
        let ratio = rates[0] / rates[1];
        assert!(
            (ratio - 3.0).abs() < 0.3,
            "proportions should persist (no equalization): {ratio:.2}"
        );
    }

    #[test]
    fn silent_before_initialization() {
        let mut o = Osu::recommended();
        let mut rm = bwd(1.0);
        o.backward_rm(VcId(0), &mut rm, 0);
        assert_eq!(rm.er, 1e12);
    }

    #[test]
    fn constant_space() {
        assert!(std::mem::size_of::<Osu>() <= 64);
    }
}
