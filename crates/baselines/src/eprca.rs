//! EPRCA — Enhanced Proportional Rate Control Algorithm \[Rob94\].
//!
//! Proposed by Roberts at the July 1994 ATM Forum meeting. Per output
//! port the switch keeps a MACR that is an exponential running average of
//! the CCR values carried by **forward** RM cells:
//!
//! ```text
//! MACR += (CCR − MACR) · AV          (AV = 1/16)
//! ```
//!
//! with *intelligent marking*: while congested, only cells with
//! `CCR < MACR` update the average (so the estimate ratchets down).
//! Congestion is binary, from the instantaneous queue length:
//!
//! * `queue > qt`  (congested): backward RM cells of sessions with
//!   `CCR > DPF·MACR` get `ER := min(ER, ERF·MACR)` (DPF = 7/8,
//!   ERF = 0.95).
//! * `queue > dqt` (very congested): **all** backward RM cells get CI=1 —
//!   the indiscriminate pressure responsible for the "beat-down"
//!   unfairness the paper discusses (\[BdJ94\]).
//!
//! Weaknesses the paper demonstrates (and our scenarios reproduce): the
//! MACR is an average of *rates*, not a measurement of the link, so it
//! tracks whatever the sources happen to be doing; queue-threshold binary
//! feedback plus control-loop delay causes oscillation; and sessions with
//! long paths are beaten down in very-congested states.

use phantom_atm::allocator::{PortMeasurement, RateAllocator};
use phantom_atm::cell::{RmCell, VcId};

/// EPRCA parameters (\[Rob94\] recommendations).
#[derive(Clone, Copy, Debug)]
pub struct EprcaConfig {
    /// Averaging factor for the MACR update (1/16).
    pub av: f64,
    /// Explicit Reduction Factor: ER is stamped to `erf × MACR` (0.95).
    pub erf: f64,
    /// Down-Pressure Factor: only sessions above `dpf × MACR` are pushed
    /// down (7/8).
    pub dpf: f64,
    /// Congested queue threshold, cells.
    pub qt: usize,
    /// Very-congested queue threshold, cells.
    pub dqt: usize,
    /// Initial MACR, cells/s (EPRCA seeds from the first CCRs quickly, so
    /// this matters little; we start at the paper's ICR).
    pub init_macr: f64,
}

impl Default for EprcaConfig {
    fn default() -> Self {
        EprcaConfig {
            av: 1.0 / 16.0,
            erf: 0.95,
            dpf: 7.0 / 8.0,
            qt: 100,
            dqt: 1000,
            init_macr: phantom_atm::units::mbps_to_cps(8.5),
        }
    }
}

/// The EPRCA per-port allocator.
#[derive(Clone, Copy, Debug)]
pub struct Eprca {
    cfg: EprcaConfig,
    macr: f64,
    queue: usize,
}

impl Eprca {
    /// An EPRCA instance with the given parameters.
    pub fn new(cfg: EprcaConfig) -> Self {
        assert!(cfg.av > 0.0 && cfg.av <= 1.0);
        assert!(cfg.erf > 0.0 && cfg.erf <= 1.0);
        assert!(cfg.dpf > 0.0 && cfg.dpf <= 1.0);
        assert!(cfg.qt < cfg.dqt, "qt must be below dqt");
        Eprca {
            cfg,
            macr: cfg.init_macr,
            queue: 0,
        }
    }

    /// Recommended parameters.
    pub fn recommended() -> Self {
        Self::new(EprcaConfig::default())
    }

    fn congested(&self) -> bool {
        self.queue > self.cfg.qt
    }

    fn very_congested(&self) -> bool {
        self.queue > self.cfg.dqt
    }
}

impl RateAllocator for Eprca {
    fn on_interval(&mut self, m: &PortMeasurement) {
        // EPRCA has no interval measurement; we only refresh the queue
        // snapshot (the RM hooks also receive the live queue).
        self.queue = m.queue;
    }

    fn forward_rm(&mut self, _vc: VcId, rm: &mut RmCell, queue: usize) {
        self.queue = queue;
        // Intelligent marking: in congestion only average downwards.
        if !self.congested() || rm.ccr < self.macr {
            self.macr += (rm.ccr - self.macr) * self.cfg.av;
        }
    }

    fn backward_rm(&mut self, _vc: VcId, rm: &mut RmCell, queue: usize) {
        self.queue = queue;
        if self.very_congested() {
            rm.ci = true; // indiscriminate: the beat-down mechanism
        } else if self.congested() && rm.ccr > self.cfg.dpf * self.macr {
            rm.limit_er(self.cfg.erf * self.macr);
        }
    }

    fn fair_share(&self) -> f64 {
        self.macr
    }

    fn name(&self) -> &'static str {
        "eprca"
    }

    fn save_state(&self, w: &mut phantom_sim::KvWriter) -> Result<(), String> {
        w.f64("macr", self.macr);
        w.u64("queue", self.queue as u64);
        Ok(())
    }

    fn restore_state(&mut self, r: &mut phantom_sim::KvReader) -> Result<(), String> {
        self.macr = r.f64("macr")?;
        self.queue = r.u64("queue")? as usize;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fwd(ccr: f64) -> RmCell {
        RmCell::forward(ccr, 1e9)
    }

    fn bwd(ccr: f64) -> RmCell {
        RmCell::forward(ccr, 1e9).turned_around()
    }

    #[test]
    fn macr_tracks_mean_ccr_when_uncongested() {
        let mut e = Eprca::recommended();
        for _ in 0..500 {
            let mut rm = fwd(50_000.0);
            e.forward_rm(VcId(0), &mut rm, 0);
        }
        assert!((e.fair_share() - 50_000.0).abs() < 100.0);
    }

    #[test]
    fn intelligent_marking_only_averages_down_in_congestion() {
        let mut e = Eprca::recommended();
        for _ in 0..500 {
            e.forward_rm(VcId(0), &mut fwd(10_000.0), 0);
        }
        let before = e.fair_share();
        // Congested: higher CCRs must NOT raise the estimate…
        for _ in 0..100 {
            e.forward_rm(VcId(0), &mut fwd(100_000.0), 200);
        }
        assert_eq!(e.fair_share(), before);
        // …but lower CCRs still pull it down.
        for _ in 0..100 {
            e.forward_rm(VcId(0), &mut fwd(1_000.0), 200);
        }
        assert!(e.fair_share() < before);
    }

    #[test]
    fn er_stamped_only_in_congestion_and_only_above_dpf() {
        let mut e = Eprca::recommended();
        for _ in 0..500 {
            e.forward_rm(VcId(0), &mut fwd(10_000.0), 0);
        }
        // Not congested: untouched.
        let mut rm = bwd(20_000.0);
        e.backward_rm(VcId(0), &mut rm, 0);
        assert_eq!(rm.er, 1e9);
        // Congested, CCR above DPF·MACR: stamped to ERF·MACR.
        let mut rm = bwd(20_000.0);
        e.backward_rm(VcId(0), &mut rm, 200);
        assert!((rm.er - 0.95 * e.fair_share()).abs() < 1e-6);
        // Congested, CCR below DPF·MACR: spared.
        let mut rm = bwd(1_000.0);
        e.backward_rm(VcId(0), &mut rm, 200);
        assert_eq!(rm.er, 1e9);
    }

    #[test]
    fn very_congested_sets_ci_on_everyone() {
        let mut e = Eprca::recommended();
        let mut rm = bwd(1.0); // even the tiniest session
        e.backward_rm(VcId(0), &mut rm, 1500);
        assert!(rm.ci, "beat-down: CI hits all sessions");
    }

    #[test]
    fn constant_space() {
        assert!(std::mem::size_of::<Eprca>() <= 128);
    }

    #[test]
    #[should_panic(expected = "qt must be below dqt")]
    fn threshold_ordering_enforced() {
        let cfg = EprcaConfig {
            qt: 500,
            dqt: 100,
            ..EprcaConfig::default()
        };
        let _ = Eprca::new(cfg);
    }
}
