//! The per-output-port rate-allocation hook.
//!
//! This is the seam between the algorithm-agnostic switch and the
//! flow-control algorithms being compared. Phantom (`phantom-core`),
//! EPRCA, APRC and CAPC (`phantom-baselines`) each implement
//! [`RateAllocator`]; the switch calls the hooks and otherwise knows
//! nothing about the algorithm.
//!
//! The paper's taxonomy — *constant space* algorithms keep O(1) state per
//! port regardless of how many sessions cross it — is enforced socially by
//! this trait: the hooks receive no per-session storage, only the cell in
//! hand and the port's aggregate measurements. A size test in each
//! implementing crate pins the state to a few machine words.

use crate::cell::{RmCell, VcId};
use std::any::Any;

/// Aggregate measurements of one port over one measurement interval.
#[derive(Clone, Copy, Debug)]
pub struct PortMeasurement {
    /// Interval length in seconds.
    pub dt: f64,
    /// Cells that *arrived* at the port during the interval (queued or
    /// dropped). Arrival rate is what Phantom measures residual bandwidth
    /// against.
    pub arrivals: u64,
    /// Cells transmitted during the interval.
    pub departures: u64,
    /// Queue length (cells) at the end of the interval.
    pub queue: usize,
    /// Link capacity in cells/s.
    pub capacity: f64,
}

impl PortMeasurement {
    /// Arrival rate over the interval, cells/s.
    pub fn arrival_rate(&self) -> f64 {
        self.arrivals as f64 / self.dt
    }

    /// Departure (service) rate over the interval, cells/s.
    pub fn departure_rate(&self) -> f64 {
        self.departures as f64 / self.dt
    }
}

/// Estimator internals exposed for instrumentation — the Δ/dev/gain of
/// the last estimate update. Algorithms that don't track a quantity
/// report NaN for it.
#[derive(Clone, Copy, Debug)]
pub struct AllocatorTelemetry {
    /// Error fed into the last estimate update (residual − estimate).
    pub delta: f64,
    /// Mean deviation tracked by the estimator.
    pub dev: f64,
    /// Gain actually applied by the last update.
    pub gain: f64,
}

impl AllocatorTelemetry {
    /// Nothing tracked: all NaN.
    pub const UNTRACKED: AllocatorTelemetry = AllocatorTelemetry {
        delta: f64::NAN,
        dev: f64::NAN,
        gain: f64::NAN,
    };
}

/// A constant-space per-port rate-control algorithm.
pub trait RateAllocator: Any + Send {
    /// Called at the end of every measurement interval.
    fn on_interval(&mut self, m: &PortMeasurement);

    /// Called for every *forward* RM cell leaving through this port, with
    /// the session id and the current queue length. EPRCA-family
    /// algorithms read CCR here; unbounded-space algorithms (ERICA) track
    /// per-VC state; algorithms may also set CI/NI on the forward cell
    /// (it will be carried to the destination and turned around).
    fn forward_rm(&mut self, vc: VcId, rm: &mut RmCell, queue: usize);

    /// Called for every *backward* RM cell of a session whose forward
    /// direction crosses this port. This is where ER is stamped.
    fn backward_rm(&mut self, vc: VcId, rm: &mut RmCell, queue: usize);

    /// Should arriving data cells have their EFCI bit set right now?
    /// (Used by binary-feedback modes; default: never.)
    fn mark_efci(&self, _queue: usize) -> bool {
        false
    }

    /// The algorithm's current fair-share estimate (MACR or equivalent),
    /// recorded each interval for the figures.
    fn fair_share(&self) -> f64;

    /// Estimator internals for instrumentation (the probe's MACR-update
    /// events). Default: untracked.
    fn telemetry(&self) -> AllocatorTelemetry {
        AllocatorTelemetry::UNTRACKED
    }

    /// Short algorithm name for reports.
    fn name(&self) -> &'static str;

    /// Serialize the allocator's evolving state for a checkpoint.
    /// Configuration is static and must not be written. The default
    /// refuses, so an algorithm that has not audited its state for
    /// checkpointing fails loudly instead of resuming wrong.
    fn save_state(&self, _w: &mut phantom_sim::KvWriter) -> Result<(), String> {
        Err(format!(
            "allocator {} does not support checkpointing",
            self.name()
        ))
    }

    /// Overwrite the evolving state from a [`RateAllocator::save_state`]
    /// record. The allocator must have been rebuilt with the original
    /// configuration.
    fn restore_state(&mut self, _r: &mut phantom_sim::KvReader) -> Result<(), String> {
        Err(format!(
            "allocator {} does not support checkpointing",
            self.name()
        ))
    }
}

/// A pass-through allocator: no control at all. Sources stay at whatever
/// ACR their own rules produce (ER remains PCR). Useful as an experimental
/// control and for substrate tests.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoControl;

impl RateAllocator for NoControl {
    fn on_interval(&mut self, _m: &PortMeasurement) {}
    fn forward_rm(&mut self, _vc: VcId, _rm: &mut RmCell, _queue: usize) {}
    fn backward_rm(&mut self, _vc: VcId, _rm: &mut RmCell, _queue: usize) {}
    fn fair_share(&self) -> f64 {
        f64::INFINITY
    }
    fn name(&self) -> &'static str {
        "none"
    }
    fn save_state(&self, _w: &mut phantom_sim::KvWriter) -> Result<(), String> {
        Ok(()) // stateless
    }
    fn restore_state(&mut self, _r: &mut phantom_sim::KvReader) -> Result<(), String> {
        Ok(())
    }
}

/// Stamps a fixed ER on every backward RM cell. Used by substrate tests to
/// verify the feedback plumbing end to end.
#[derive(Clone, Copy, Debug)]
pub struct FixedEr(pub f64);

impl RateAllocator for FixedEr {
    fn on_interval(&mut self, _m: &PortMeasurement) {}
    fn forward_rm(&mut self, _vc: VcId, _rm: &mut RmCell, _queue: usize) {}
    fn backward_rm(&mut self, _vc: VcId, rm: &mut RmCell, _queue: usize) {
        rm.limit_er(self.0);
    }
    fn fair_share(&self) -> f64 {
        self.0
    }
    fn name(&self) -> &'static str {
        "fixed-er"
    }
    fn save_state(&self, _w: &mut phantom_sim::KvWriter) -> Result<(), String> {
        Ok(()) // the stamped rate is configuration, not evolving state
    }
    fn restore_state(&mut self, _r: &mut phantom_sim::KvReader) -> Result<(), String> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::RmCell;

    #[test]
    fn measurement_rates() {
        let m = PortMeasurement {
            dt: 0.001,
            arrivals: 100,
            departures: 80,
            queue: 20,
            capacity: 353_773.6,
        };
        assert_eq!(m.arrival_rate(), 100_000.0);
        assert_eq!(m.departure_rate(), 80_000.0);
    }

    #[test]
    fn no_control_leaves_er_alone() {
        let mut a = NoControl;
        let mut rm = RmCell::forward(1.0, 1000.0).turned_around();
        a.backward_rm(VcId(0), &mut rm, 50);
        assert_eq!(rm.er, 1000.0);
        assert!(!a.mark_efci(10_000));
    }

    #[test]
    fn fixed_er_stamps() {
        let mut a = FixedEr(250.0);
        let mut rm = RmCell::forward(1.0, 1000.0).turned_around();
        a.backward_rm(VcId(0), &mut rm, 0);
        assert_eq!(rm.er, 250.0);
    }
}
