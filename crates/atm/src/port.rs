//! A switch output port: bounded FIFO, cell-by-cell transmission at link
//! rate, periodic measurement intervals, and the per-port allocator.
//!
//! The port is where everything the paper plots lives: the queue-length
//! trace, the MACR trace (the allocator's fair-share estimate) and the
//! utilization counters.

use crate::allocator::{PortMeasurement, RateAllocator};
use crate::cell::{Cell, CellKind, ServiceClass};
use crate::msg::{AtmMsg, Timer};
use crate::units::cell_time;
use phantom_metrics::registry::{CounterHandle, GaugeHandle, Registry};
use phantom_sim::probe::{self, DropReason, ProbeEvent};
use phantom_sim::stats::{TimeSeries, TimeWeighted};
use phantom_sim::{telemetry, BoundedFifo, Ctx, NodeId, SimDuration};
use std::sync::atomic::{AtomicU32, Ordering};

/// Cells a busy port may transmit per `TxDone` dispatch (see
/// [`set_tx_batch_limit`]). Global rather than per-port or thread-local so
/// sweep worker threads at any `--jobs` level see the same knob.
static BATCH_LIMIT: AtomicU32 = AtomicU32::new(64);

/// Set the maximum number of cells a busy port transmits per `TxDone`
/// event. `1` disables batching (one cell per dispatch, the pre-batching
/// behaviour); values are clamped to at least 1. Batching never changes
/// simulation results — cells beyond the first are only coalesced while
/// no other event could intervene — so this is purely a performance knob.
pub fn set_tx_batch_limit(limit: u32) {
    BATCH_LIMIT.store(limit.max(1), Ordering::Relaxed);
}

/// The current busy-port batch limit.
pub fn tx_batch_limit() -> u32 {
    BATCH_LIMIT.load(Ordering::Relaxed)
}

/// Registry handles a port updates when metrics are bound.
struct PortMetrics {
    tx_cells: CounterHandle,
    dropped_cells: CounterHandle,
    queue_cells: GaugeHandle,
    macr: GaugeHandle,
    throughput: GaugeHandle,
}

/// One output port of a switch.
pub struct Port {
    queue: BoundedFifo<Cell>,
    /// High-priority queue for CBR-class cells (None = single FIFO).
    high: Option<BoundedFifo<Cell>>,
    link_to: NodeId,
    prop: SimDuration,
    capacity: f64,
    cell_time: SimDuration,
    busy: bool,
    allocator: Box<dyn RateAllocator>,
    measure_interval: SimDuration,
    arrivals: u64,
    departures: u64,
    /// Probability that a departing cell is lost on the wire (models
    /// link-level corruption; 0 = perfect link). Uses the owning
    /// switch's deterministic RNG stream.
    loss_prob: f64,
    /// Cells lost to injected link errors.
    pub wire_losses: u64,
    /// Time-weighted queue occupancy (exact).
    pub queue_tw: TimeWeighted,
    /// Fair-share (MACR) samples, one per measurement interval.
    pub macr_series: TimeSeries,
    /// Queue-length samples, one per measurement interval.
    pub queue_series: TimeSeries,
    /// Departure-rate samples (cells/s), one per measurement interval —
    /// the utilization trace.
    pub throughput_series: TimeSeries,
    metrics: Option<PortMetrics>,
}

impl Port {
    /// A port transmitting to `link_to` at `capacity` cells/s with
    /// propagation delay `prop`, queue bound `queue_cap` cells, running
    /// `allocator` every `measure_interval`.
    pub fn new(
        link_to: NodeId,
        capacity: f64,
        prop: SimDuration,
        queue_cap: usize,
        allocator: Box<dyn RateAllocator>,
        measure_interval: SimDuration,
    ) -> Self {
        assert!(capacity > 0.0, "port capacity must be positive");
        Port {
            queue: BoundedFifo::new(queue_cap),
            high: None,
            link_to,
            prop,
            capacity,
            cell_time: cell_time(capacity),
            busy: false,
            allocator,
            measure_interval,
            arrivals: 0,
            departures: 0,
            loss_prob: 0.0,
            wire_losses: 0,
            queue_tw: TimeWeighted::new(),
            macr_series: TimeSeries::new(),
            queue_series: TimeSeries::new(),
            throughput_series: TimeSeries::new(),
            metrics: None,
        }
    }

    /// Register this port's counters and gauges into `registry`, labelled
    /// `link=<label>`. Call once at build time; unbound ports skip all
    /// metric updates.
    pub fn bind_metrics(&mut self, registry: &Registry, label: &str) {
        let l: &[(&str, &str)] = &[("link", label)];
        self.metrics = Some(PortMetrics {
            tx_cells: registry.counter("atm_tx_cells_total", l),
            dropped_cells: registry.counter("atm_dropped_cells_total", l),
            queue_cells: registry.gauge("atm_queue_cells", l),
            macr: registry.gauge("atm_macr_cells_per_sec", l),
            throughput: registry.gauge("atm_throughput_cells_per_sec", l),
        });
    }

    /// Serve CBR-class cells from a separate strict-priority queue
    /// (capacity `cap` cells). Real switches isolate reserved traffic
    /// from ABR queueing this way.
    pub fn enable_cbr_priority(&mut self, cap: usize) {
        self.high = Some(BoundedFifo::new(cap));
    }

    /// Inject link-level loss: each departing cell is dropped with
    /// probability `p` (failure injection for resilience tests).
    /// `1.0` models a failed link: the port keeps serializing, but
    /// every cell is lost on the wire.
    pub fn set_loss_prob(&mut self, p: f64) {
        assert!((0.0..=1.0).contains(&p), "loss probability in [0, 1]");
        self.loss_prob = p;
    }

    /// Re-rate the link to `cps` cells/s mid-run (scene timeline
    /// capacity changes). A cell already serializing keeps its old
    /// departure time; the allocator picks up the new capacity at its
    /// next measurement interval.
    pub fn set_capacity(&mut self, cps: f64) {
        assert!(cps > 0.0, "port capacity must be positive");
        self.capacity = cps;
        self.cell_time = cell_time(cps);
    }

    /// Current queue length in cells (both classes).
    pub fn queue_len(&self) -> usize {
        self.queue.len() + self.high.as_ref().map_or(0, |h| h.len())
    }

    /// Current ABR-class (low-priority) queue length.
    pub fn abr_queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Cells dropped at this port (queue overflow, both classes).
    pub fn drops(&self) -> u64 {
        self.queue.drops() + self.high.as_ref().map_or(0, |h| h.drops())
    }

    /// Total cells transmitted.
    pub fn total_departures(&self) -> u64 {
        self.queue.departures()
    }

    /// Link capacity in cells/s.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// The allocator's current fair-share estimate.
    pub fn fair_share(&self) -> f64 {
        self.allocator.fair_share()
    }

    /// Immutable access to the allocator (downcast with `Any` if needed).
    pub fn allocator(&self) -> &dyn RateAllocator {
        self.allocator.as_ref()
    }

    /// Mutable access to the allocator.
    pub fn allocator_mut(&mut self) -> &mut dyn RateAllocator {
        self.allocator.as_mut()
    }

    /// Largest (combined) queue length seen.
    pub fn queue_high_water(&self) -> usize {
        self.queue.high_water() + self.high.as_ref().map_or(0, |h| h.high_water())
    }

    /// Enqueue `cell` for transmission; `me` is this port's index within
    /// the owning switch, used to address the TxDone timer.
    pub fn enqueue(&mut self, ctx: &mut Ctx<'_, AtmMsg>, me: usize, mut cell: Cell) {
        self.arrivals += 1;
        if matches!(cell.kind, CellKind::Data) && self.allocator.mark_efci(self.queue.len()) {
            cell.efci = true;
        }
        let accepted = match (&mut self.high, cell.class) {
            (Some(high), ServiceClass::Cbr) => high.push(cell),
            _ => self.queue.push(cell),
        };
        if accepted == phantom_sim::fifo::EnqueueResult::Accepted {
            self.queue_tw.set(ctx.now(), self.queue_len() as f64);
            ctx.emit(|| ProbeEvent::Enqueue {
                port: me as u32,
                qlen: self.queue_len() as u32,
            });
            if !self.busy {
                self.busy = true;
                ctx.send_self(self.cell_time, AtmMsg::Timer(Timer::TxDone { port: me }));
            }
        } else {
            if let Some(m) = &self.metrics {
                m.dropped_cells.inc();
            }
            ctx.emit(|| ProbeEvent::Drop {
                port: me as u32,
                qlen: self.queue_len() as u32,
                reason: DropReason::Overflow,
            });
        }
    }

    /// The head-of-line cell finished serializing: deliver it — and, while
    /// the line stays busy and nothing else can happen, the next ones too.
    ///
    /// Batching argument: between `now` and the calendar's next pending
    /// event ([`Ctx::quiet_until`]) no dispatch occurs, so no arrival,
    /// measurement or control action can observe or perturb this port.
    /// Every cell whose departure instant falls strictly inside that quiet
    /// window — narrowed by the arrivals this batch itself schedules — is
    /// transmitted in this dispatch, with probes, the time-weighted queue
    /// gauge and the RNG loss draws stamped at the exact per-cell departure
    /// times the one-cell-per-`TxDone` code produced. Traces, telemetry
    /// and series are byte-identical with batching on or off; only the
    /// number of engine round-trips changes (reported via
    /// [`Ctx::note_coalesced`] so event counts stay comparable).
    pub fn tx_done(&mut self, ctx: &mut Ctx<'_, AtmMsg>, me: usize) {
        let limit = tx_batch_limit();
        let mut quiet = ctx.quiet_until();
        let mut depart = ctx.now();
        let mut sent: u32 = 0;
        loop {
            // Strict priority: CBR-class cells first.
            let cell = match &mut self.high {
                Some(high) if !high.is_empty() => high.pop(),
                _ => self.queue.pop(),
            }
            .expect("TxDone fired with an empty queue");
            sent += 1;
            self.departures += 1;
            self.queue_tw.set(depart, self.queue_len() as f64);
            if let Some(m) = &self.metrics {
                m.tx_cells.inc();
            }
            probe::emit(depart, ctx.self_id(), || ProbeEvent::Dequeue {
                port: me as u32,
                qlen: self.queue_len() as u32,
            });
            let lost = self.loss_prob > 0.0 && {
                use rand::Rng;
                ctx.rng().gen::<f64>() < self.loss_prob
            };
            if lost {
                self.wire_losses += 1;
                telemetry::note_drop();
                if let Some(m) = &self.metrics {
                    m.dropped_cells.inc();
                }
                probe::emit(depart, ctx.self_id(), || ProbeEvent::Drop {
                    port: me as u32,
                    qlen: self.queue_len() as u32,
                    reason: DropReason::Wire,
                });
            } else {
                let arrive = depart + self.prop;
                ctx.send_at(self.link_to, arrive, AtmMsg::Cell(cell));
                // The scheduled arrival is itself a future dispatch; the
                // quiet window must not extend past it.
                if arrive < quiet {
                    quiet = arrive;
                }
            }
            if self.queue_len() == 0 {
                self.busy = false;
                break;
            }
            let next = depart + self.cell_time;
            if sent < limit && next < quiet {
                depart = next;
            } else {
                let id = ctx.self_id();
                ctx.send_at(id, next, AtmMsg::Timer(Timer::TxDone { port: me }));
                break;
            }
        }
        ctx.note_coalesced(u64::from(sent) - 1);
    }

    /// End of a measurement interval: feed the allocator, record traces,
    /// reschedule.
    pub fn measure(&mut self, ctx: &mut Ctx<'_, AtmMsg>, me: usize) {
        let m = PortMeasurement {
            dt: self.measure_interval.as_secs_f64(),
            arrivals: self.arrivals,
            departures: self.departures,
            queue: self.queue_len(),
            capacity: self.capacity,
        };
        self.allocator.on_interval(&m);
        let fair_share = self.allocator.fair_share();
        self.macr_series.push(ctx.now(), fair_share);
        self.queue_series.push(ctx.now(), self.queue_len() as f64);
        self.throughput_series.push(ctx.now(), m.departure_rate());
        if let Some(h) = &self.metrics {
            h.queue_cells.set(ctx.now(), self.queue_len() as f64);
            h.throughput.set(ctx.now(), m.departure_rate());
            if fair_share.is_finite() {
                h.macr.set(ctx.now(), fair_share);
            }
        }
        if fair_share.is_finite() {
            ctx.emit(|| {
                let t = self.allocator.telemetry();
                ProbeEvent::MacrUpdate {
                    port: me as u32,
                    macr: fair_share,
                    delta: t.delta,
                    dev: t.dev,
                    gain: t.gain,
                }
            });
        }
        self.arrivals = 0;
        self.departures = 0;
        ctx.send_self(
            self.measure_interval,
            AtmMsg::Timer(Timer::Measure { port: me }),
        );
    }

    /// Stamp a backward RM cell of a session whose forward path crosses
    /// this port (ER reduction happens against *this* port's congestion
    /// state, per the standard ATM practice the paper follows).
    pub fn stamp_backward(&mut self, vc: crate::cell::VcId, rm: &mut crate::cell::RmCell) {
        let q = self.queue.len();
        self.allocator.backward_rm(vc, rm, q);
    }

    /// Observe a forward RM cell about to be queued on this port.
    pub fn observe_forward(&mut self, vc: crate::cell::VcId, rm: &mut crate::cell::RmCell) {
        let q = self.queue.len();
        self.allocator.forward_rm(vc, rm, q);
    }

    /// The measurement interval this port was built with.
    pub fn measure_interval(&self) -> SimDuration {
        self.measure_interval
    }

    /// Serialize the port's evolving state for a checkpoint. Static
    /// configuration (link target, propagation delay, queue bounds,
    /// measurement interval) is not written — it comes back when the
    /// scenario is rebuilt. Capacity and loss probability *are* written:
    /// scene timelines mutate them mid-run.
    pub fn save_state(&self, w: &mut phantom_sim::KvWriter) -> Result<(), String> {
        w.scope("q", |w| self.queue.save(w, Cell::encode_str));
        if let Some(high) = &self.high {
            w.scope("hq", |w| high.save(w, Cell::encode_str));
        }
        w.f64("capacity", self.capacity);
        w.bool("busy", self.busy);
        w.f64("loss_prob", self.loss_prob);
        w.u64("arrivals", self.arrivals);
        w.u64("departures", self.departures);
        w.u64("wire_losses", self.wire_losses);
        w.scope("tw", |w| self.queue_tw.save(w));
        w.scope("macr", |w| self.macr_series.save(w));
        w.scope("qs", |w| self.queue_series.save(w));
        w.scope("tp", |w| self.throughput_series.save(w));
        let mut alloc = Ok(());
        w.scope("alloc", |w| alloc = self.allocator.save_state(w));
        alloc
    }

    /// Overwrite the port's evolving state from a [`Port::save_state`]
    /// record. The port must have been rebuilt with the original static
    /// configuration (including CBR priority, which decides whether the
    /// high queue exists).
    pub fn restore_state(&mut self, r: &mut phantom_sim::KvReader) -> Result<(), String> {
        r.scope("q", |r| self.queue.restore(r, Cell::decode_str))?;
        if let Some(high) = &mut self.high {
            r.scope("hq", |r| high.restore(r, Cell::decode_str))?;
        }
        // Route through the setter so cell_time is recomputed in lock-step.
        self.set_capacity(r.f64("capacity")?);
        self.busy = r.bool("busy")?;
        self.loss_prob = r.f64("loss_prob")?;
        self.arrivals = r.u64("arrivals")?;
        self.departures = r.u64("departures")?;
        self.wire_losses = r.u64("wire_losses")?;
        r.scope("tw", |r| self.queue_tw.restore(r))?;
        r.scope("macr", |r| self.macr_series.restore(r))?;
        r.scope("qs", |r| self.queue_series.restore(r))?;
        r.scope("tp", |r| self.throughput_series.restore(r))?;
        r.scope("alloc", |r| self.allocator.restore_state(r))
    }
}
