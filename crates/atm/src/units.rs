//! Unit conversions for ATM rates.
//!
//! Throughout the crate rates are `f64` **cells per second**. The paper
//! quotes parameters in Mb/s; an ATM cell is 53 bytes = 424 bits, so
//! 150 Mb/s ≈ 353 773.6 cells/s.

use phantom_sim::SimDuration;

/// Bytes in one ATM cell (48 payload + 5 header).
pub const CELL_BYTES: u64 = 53;

/// Bits in one ATM cell.
pub const CELL_BITS: u64 = CELL_BYTES * 8;

/// Convert megabits per second to cells per second.
pub fn mbps_to_cps(mbps: f64) -> f64 {
    mbps * 1e6 / CELL_BITS as f64
}

/// Convert cells per second to megabits per second.
pub fn cps_to_mbps(cps: f64) -> f64 {
    cps * CELL_BITS as f64 / 1e6
}

/// Serialization time of one cell on a link of `cps` cells/s.
pub fn cell_time(cps: f64) -> SimDuration {
    debug_assert!(cps > 0.0);
    SimDuration::from_secs_f64(1.0 / cps)
}

/// Inter-cell spacing for a source sending at `rate` cells/s, clamped so a
/// (nearly) zero rate cannot produce an unschedulable interval.
pub fn pacing_interval(rate: f64) -> SimDuration {
    let r = rate.max(1e-3); // floor: one cell per ~17 minutes
    SimDuration::from_secs_f64(1.0 / r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mbps_round_trip() {
        let cps = mbps_to_cps(150.0);
        assert!((cps - 353_773.58).abs() < 0.1);
        assert!((cps_to_mbps(cps) - 150.0).abs() < 1e-9);
    }

    #[test]
    fn cell_time_on_oc3() {
        let t = cell_time(mbps_to_cps(150.0));
        // 424 bits / 150 Mb/s = 2.8267 us
        assert_eq!(t.as_nanos(), 2_827);
    }

    #[test]
    fn pacing_handles_tiny_rates() {
        let d = pacing_interval(0.0);
        assert!(d.as_secs_f64() <= 1000.0 + 1.0);
        let d2 = pacing_interval(1000.0);
        assert_eq!(d2, SimDuration::from_millis(1));
    }
}
