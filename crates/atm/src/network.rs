//! Topology builder: declare switches, trunks and sessions; get a wired
//! [`phantom_sim::Engine`] with all timers kicked off and handles for
//! reading traces back after the run.
//!
//! Conventions (matching the paper's BONeS configurations):
//!
//! * Sessions attach to their first switch through an *access link*
//!   (default: PCR capacity, 0.01 ms propagation — the paper's
//!   "negligible RTT" links). Access ports carry no allocator; rate
//!   control lives on the contended trunk ports.
//! * Each inter-switch *trunk* creates one output port per direction, each
//!   running its own instance of the allocator under test.
//! * The forward path of a session is source → sw₀ → … → swₖ → dest; the
//!   backward RM path retraces it in reverse.

use crate::allocator::{NoControl, RateAllocator};
use crate::cbr::CbrSource;
use crate::cell::VcId;
use crate::dest::AbrDest;
use crate::msg::{AtmMsg, Timer};
use crate::params::AtmParams;
use crate::port::Port;
use crate::source::AbrSource;
use crate::switch::{Switch, VcRoute};
use crate::traffic::Traffic;
use crate::units::mbps_to_cps;
use phantom_metrics::Registry;
use phantom_sim::stats::TimeSeries;
use phantom_sim::{Engine, NodeId, ShardHints, SimDuration, SimTime};

/// Index of a switch within the builder.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SwIdx(pub usize);

/// Index of a trunk within the builder.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TrunkIdx(pub usize);

/// Index of a session within the builder (and the built [`Network`]).
///
/// Handed out by [`NetworkBuilder::session`] and friends in declaration
/// order; equal to the session's [`VcId`] value. Typed so a session index
/// cannot be confused with a switch, trunk or raw node index at
/// metro-scale call sites.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SessionId(pub usize);

struct TrunkSpec {
    a: usize,
    b: usize,
    capacity: f64,
    prop: SimDuration,
    loss_prob: f64,
}

enum SessionKind {
    Abr { traffic: Traffic, params: AtmParams },
    Cbr { rate: f64, traffic: Traffic },
}

struct SessionSpec {
    path: Vec<usize>,
    kind: SessionKind,
    access_prop: SimDuration,
}

/// Declarative topology description.
pub struct NetworkBuilder {
    default_params: AtmParams,
    measure_interval: SimDuration,
    rate_sample_interval: SimDuration,
    queue_cap: usize,
    access_capacity: f64,
    access_prop: SimDuration,
    switch_names: Vec<String>,
    trunks: Vec<TrunkSpec>,
    sessions: Vec<SessionSpec>,
    cbr_priority: bool,
    lean_access: bool,
    acr_sample_stride: u64,
}

impl Default for NetworkBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl NetworkBuilder {
    /// A builder with the paper's defaults: TM4.0 parameters, 1 ms
    /// measurement interval, 16 Ki-cell port buffers, PCR-speed access
    /// links with 0.01 ms propagation.
    pub fn new() -> Self {
        let params = AtmParams::paper();
        NetworkBuilder {
            default_params: params,
            measure_interval: SimDuration::from_millis(1),
            rate_sample_interval: SimDuration::from_millis(5),
            queue_cap: 16_384,
            access_capacity: params.pcr,
            access_prop: SimDuration::from_micros(10),
            switch_names: Vec::new(),
            trunks: Vec::new(),
            sessions: Vec::new(),
            cbr_priority: false,
            lean_access: false,
            acr_sample_stride: 1,
        }
    }

    /// Serve CBR-class cells from strict-priority queues on every port
    /// (how real switches isolate reserved traffic from ABR queueing).
    pub fn cbr_priority(mut self, on: bool) -> Self {
        self.cbr_priority = on;
        self
    }

    /// Skip measurement timers on *access* ports (generated metro-scale
    /// scenes). Access ports carry no allocator, so their measurement
    /// ticks exist only to record per-port series nobody reads at
    /// 10^5–10^6 sessions; skipping them removes two timers per session
    /// per interval. Trunk ports — where rate allocation happens — still
    /// measure every interval. Default off: the standard figures keep
    /// their historical event streams byte-identical.
    pub fn lean_access(mut self, on: bool) -> Self {
        self.lean_access = on;
        self
    }

    /// Record only every `stride`-th ACR sample on every session source
    /// (trace-memory control for metro-scale runs). Default 1: record
    /// every update, as the paper figures do.
    pub fn acr_sample_stride(mut self, stride: u64) -> Self {
        self.acr_sample_stride = stride.max(1);
        self
    }

    /// Override the default end-system parameters for sessions added later.
    pub fn params(mut self, p: AtmParams) -> Self {
        self.default_params = p;
        self.access_capacity = p.pcr;
        self
    }

    /// Override the allocator measurement interval (the paper's Δt).
    pub fn measure_interval(mut self, dt: SimDuration) -> Self {
        assert!(!dt.is_zero());
        self.measure_interval = dt;
        self
    }

    /// Override the destination goodput sampling interval.
    pub fn rate_sample_interval(mut self, dt: SimDuration) -> Self {
        assert!(!dt.is_zero());
        self.rate_sample_interval = dt;
        self
    }

    /// Override the per-port queue bound, in cells.
    pub fn queue_cap(mut self, cells: usize) -> Self {
        self.queue_cap = cells;
        self
    }

    /// Override the default access-link propagation delay.
    pub fn access_prop(mut self, prop: SimDuration) -> Self {
        self.access_prop = prop;
        self
    }

    /// Declare a switch.
    pub fn switch(&mut self, name: &str) -> SwIdx {
        self.switch_names.push(name.to_string());
        SwIdx(self.switch_names.len() - 1)
    }

    /// Declare a bidirectional trunk between `a` and `b` with the given
    /// capacity (Mb/s) and one-way propagation delay.
    pub fn trunk(&mut self, a: SwIdx, b: SwIdx, mbps: f64, prop: SimDuration) -> TrunkIdx {
        assert!(a != b, "self-trunk");
        assert!(a.0 < self.switch_names.len() && b.0 < self.switch_names.len());
        self.trunks.push(TrunkSpec {
            a: a.0,
            b: b.0,
            capacity: mbps_to_cps(mbps),
            prop,
            loss_prob: 0.0,
        });
        TrunkIdx(self.trunks.len() - 1)
    }

    /// Inject link-level loss on the most recently declared trunk: each
    /// cell is dropped on the wire with probability `p` (both
    /// directions). Failure injection for resilience experiments.
    pub fn last_trunk_loss(&mut self, p: f64) {
        assert!((0.0..1.0).contains(&p));
        self.trunks.last_mut().expect("no trunk yet").loss_prob = p;
    }

    /// Declare a session crossing `path` (consecutive switches must be
    /// connected by trunks), with the given traffic model and default
    /// parameters. Returns the session index.
    pub fn session(&mut self, path: &[SwIdx], traffic: Traffic) -> SessionId {
        let params = self.default_params;
        self.session_with(path, traffic, params)
    }

    /// Like [`NetworkBuilder::session`] with per-session parameters.
    pub fn session_with(
        &mut self,
        path: &[SwIdx],
        traffic: Traffic,
        params: AtmParams,
    ) -> SessionId {
        self.push_session(path, SessionKind::Abr { traffic, params })
    }

    /// Declare an *unresponsive* CBR session sending at `mbps` whenever
    /// `traffic` is active. It emits no RM cells and ignores all
    /// feedback — background load the rate allocators must live with.
    pub fn cbr_session(&mut self, path: &[SwIdx], mbps: f64, traffic: Traffic) -> SessionId {
        assert!(mbps > 0.0);
        self.push_session(
            path,
            SessionKind::Cbr {
                rate: mbps_to_cps(mbps),
                traffic,
            },
        )
    }

    fn push_session(&mut self, path: &[SwIdx], kind: SessionKind) -> SessionId {
        assert!(
            !path.is_empty(),
            "session path must name at least one switch"
        );
        for w in path.windows(2) {
            assert!(
                self.find_trunk(w[0].0, w[1].0).is_some(),
                "no trunk between consecutive path switches {:?} and {:?}",
                w[0],
                w[1]
            );
        }
        self.sessions.push(SessionSpec {
            path: path.iter().map(|s| s.0).collect(),
            kind,
            access_prop: self.access_prop,
        });
        SessionId(self.sessions.len() - 1)
    }

    /// Override the access-link propagation delay of the *most recently
    /// added* session (for heterogeneous-RTT scenarios).
    pub fn last_session_access_prop(&mut self, prop: SimDuration) {
        self.sessions
            .last_mut()
            .expect("no session added yet")
            .access_prop = prop;
    }

    fn find_trunk(&self, a: usize, b: usize) -> Option<usize> {
        self.trunks
            .iter()
            .position(|t| (t.a == a && t.b == b) || (t.a == b && t.b == a))
    }

    /// Wire everything into `engine`. `alloc` is called once per trunk
    /// direction to create that port's allocator.
    pub fn build(
        self,
        engine: &mut Engine<AtmMsg>,
        alloc: &mut dyn FnMut() -> Box<dyn RateAllocator>,
    ) -> Network {
        // Event-kind attribution for the in-run profiler (free when
        // profiling is off: the classifier is only consulted from the
        // instrumented run loop).
        engine.set_event_classifier(|m| m.kind_label());

        // 1. Switch nodes.
        let switch_ids: Vec<NodeId> = self
            .switch_names
            .iter()
            .map(|n| engine.add_node(Switch::new(n)))
            .collect();

        // 2. End-system nodes.
        let mut sessions = Vec::new();
        for (i, spec) in self.sessions.iter().enumerate() {
            let vc = VcId(i as u32);
            let first = switch_ids[spec.path[0]];
            let last = switch_ids[*spec.path.last().unwrap()];
            let source = match spec.kind {
                SessionKind::Abr { traffic, params } => engine.add_node(
                    AbrSource::new(vc, params, traffic, first, spec.access_prop)
                        .with_acr_sample_stride(self.acr_sample_stride),
                ),
                SessionKind::Cbr { rate, traffic } => {
                    engine.add_node(CbrSource::new(vc, rate, traffic, first, spec.access_prop))
                }
            };
            let dest = engine.add_node(AbrDest::new(
                vc,
                last,
                spec.access_prop,
                self.rate_sample_interval,
            ));
            sessions.push(SessionHandle {
                vc,
                source,
                dest,
                path: spec.path.clone(),
            });
        }

        // 3. Trunk ports (one per direction, each with its own allocator).
        let mut trunk_handles = Vec::new();
        for t in &self.trunks {
            let mut mk = |to: NodeId| {
                let mut p = Port::new(
                    to,
                    t.capacity,
                    t.prop,
                    self.queue_cap,
                    alloc(),
                    self.measure_interval,
                );
                if t.loss_prob > 0.0 {
                    p.set_loss_prob(t.loss_prob);
                }
                if self.cbr_priority {
                    p.enable_cbr_priority(self.queue_cap);
                }
                p
            };
            let pa = mk(switch_ids[t.b]);
            let pb = mk(switch_ids[t.a]);
            let a_port = engine.node_mut::<Switch>(switch_ids[t.a]).add_port(pa);
            let b_port = engine.node_mut::<Switch>(switch_ids[t.b]).add_port(pb);
            trunk_handles.push(TrunkHandle {
                a_switch: switch_ids[t.a],
                a_port,
                b_switch: switch_ids[t.b],
                b_port,
                a_idx: t.a,
            });
        }

        // Ports added so far are trunk ports; everything after is access.
        let trunk_port_count: Vec<usize> = switch_ids
            .iter()
            .map(|&sw| engine.node::<Switch>(sw).port_count())
            .collect();

        // 4. Access ports and routes.
        for (i, spec) in self.sessions.iter().enumerate() {
            let h = &sessions[i];
            let vc = h.vc;
            let src_access = engine
                .node_mut::<Switch>(switch_ids[spec.path[0]])
                .add_port(Port::new(
                    h.source,
                    self.access_capacity,
                    spec.access_prop,
                    self.queue_cap,
                    Box::new(NoControl),
                    self.measure_interval,
                ));
            let dst_access = engine
                .node_mut::<Switch>(switch_ids[*spec.path.last().unwrap()])
                .add_port(Port::new(
                    h.dest,
                    self.access_capacity,
                    spec.access_prop,
                    self.queue_cap,
                    Box::new(NoControl),
                    self.measure_interval,
                ));
            // Per-switch routes along the path.
            for (pos, &sw) in spec.path.iter().enumerate() {
                let fwd_port = if pos + 1 < spec.path.len() {
                    let tr = self.find_trunk(sw, spec.path[pos + 1]).unwrap();
                    let th = &trunk_handles[tr];
                    if th.a_idx == sw {
                        th.a_port
                    } else {
                        th.b_port
                    }
                } else {
                    dst_access
                };
                let bwd_port = if pos > 0 {
                    let tr = self.find_trunk(sw, spec.path[pos - 1]).unwrap();
                    let th = &trunk_handles[tr];
                    if th.a_idx == sw {
                        th.a_port
                    } else {
                        th.b_port
                    }
                } else {
                    src_access
                };
                engine
                    .node_mut::<Switch>(switch_ids[sw])
                    .add_route(vc, VcRoute { fwd_port, bwd_port });
            }
        }

        // 5. Kick off timers. With `lean_access`, access ports (every
        // port index at or past the trunk count) get no measurement
        // timer at all — `Port::measure` self-reschedules, so omitting
        // the initial kick silences the port for the whole run.
        for (si, &sw) in switch_ids.iter().enumerate() {
            let nports = if self.lean_access {
                trunk_port_count[si]
            } else {
                engine.node::<Switch>(sw).port_count()
            };
            for p in 0..nports {
                engine.schedule(
                    SimTime::ZERO + self.measure_interval,
                    sw,
                    AtmMsg::Timer(Timer::Measure { port: p }),
                );
            }
        }
        for (i, spec) in self.sessions.iter().enumerate() {
            let traffic = match spec.kind {
                SessionKind::Abr { traffic, .. } => traffic,
                SessionKind::Cbr { traffic, .. } => traffic,
            };
            let kick = match traffic {
                Traffic::Random { .. } => Some(SimTime::ZERO),
                t => t.next_active(SimTime::ZERO),
            };
            if let Some(t) = kick {
                engine.schedule(t, sessions[i].source, AtmMsg::Timer(Timer::SourceTx));
            }
            engine.schedule(
                SimTime::ZERO + self.rate_sample_interval,
                sessions[i].dest,
                AtmMsg::Timer(Timer::Measure { port: 0 }),
            );
        }

        // 6. Shard hints: every inter-node message crosses a declared
        // link (trunk or access), so the minimum declared propagation
        // delay is a sound conservative lookahead for `--shards` runs.
        // Both endpoints of each session are anchored to its *first*
        // switch: the source-side access link and the whole forward data
        // path from the first switch stay shard-local for single-trunk
        // scenes, and fan-in destinations spread with their sources.
        let lookahead = self
            .trunks
            .iter()
            .map(|t| t.prop)
            .chain(self.sessions.iter().map(|s| s.access_prop))
            .min()
            .unwrap_or(SimDuration::ZERO);
        let mut affinity = Vec::with_capacity(sessions.len() * 2);
        for h in &sessions {
            let anchor = switch_ids[h.path[0]];
            affinity.push((h.source, anchor));
            affinity.push((h.dest, anchor));
        }
        engine.set_shard_hints(ShardHints {
            lookahead,
            affinity,
        });

        Network {
            switches: switch_ids
                .iter()
                .zip(&self.switch_names)
                .map(|(&node, name)| SwitchHandle {
                    node,
                    name: name.clone(),
                })
                .collect(),
            trunks: trunk_handles,
            sessions,
        }
    }
}

/// Handle to a built switch.
pub struct SwitchHandle {
    /// The engine node id.
    pub node: NodeId,
    /// The declared name.
    pub name: String,
}

/// Handle to a built trunk: the two directional ports.
pub struct TrunkHandle {
    /// Switch owning the a→b port.
    pub a_switch: NodeId,
    /// Port index of the a→b direction.
    pub a_port: usize,
    /// Switch owning the b→a port.
    pub b_switch: NodeId,
    /// Port index of the b→a direction.
    pub b_port: usize,
    a_idx: usize,
}

/// Handle to a built session.
pub struct SessionHandle {
    /// The session's VC id.
    pub vc: VcId,
    /// Source end-system node.
    pub source: NodeId,
    /// Destination end-system node.
    pub dest: NodeId,
    /// Switch indices along the forward path.
    pub path: Vec<usize>,
}

/// The built network: node handles for reading state after a run.
pub struct Network {
    /// All switches, in declaration order.
    pub switches: Vec<SwitchHandle>,
    /// All trunks, in declaration order.
    pub trunks: Vec<TrunkHandle>,
    /// All sessions, in declaration order.
    pub sessions: Vec<SessionHandle>,
}

impl Network {
    /// Register every trunk port and every switch into `registry`:
    /// per-direction trunk metrics labelled `link="A->B"` (declared
    /// switch names) and per-switch routed-cells counters. Call once
    /// after [`NetworkBuilder::build`], before running the engine.
    pub fn bind_metrics(&self, engine: &mut Engine<AtmMsg>, registry: &Registry) {
        for sh in &self.switches {
            engine.node_mut::<Switch>(sh.node).bind_metrics(registry);
        }
        for th in &self.trunks {
            let fwd = format!(
                "{}->{}",
                self.switch_name(th.a_switch),
                self.switch_name(th.b_switch)
            );
            let bwd = format!(
                "{}->{}",
                self.switch_name(th.b_switch),
                self.switch_name(th.a_switch)
            );
            engine
                .node_mut::<Switch>(th.a_switch)
                .port_mut(th.a_port)
                .bind_metrics(registry, &fwd);
            engine
                .node_mut::<Switch>(th.b_switch)
                .port_mut(th.b_port)
                .bind_metrics(registry, &bwd);
        }
    }

    fn switch_name(&self, node: NodeId) -> &str {
        self.switches
            .iter()
            .find(|s| s.node == node)
            .map(|s| s.name.as_str())
            .unwrap_or("?")
    }

    /// MACR (fair-share) trace of trunk `t`'s a→b port.
    pub fn trunk_macr<'e>(&self, engine: &'e Engine<AtmMsg>, t: TrunkIdx) -> &'e TimeSeries {
        let th = &self.trunks[t.0];
        &engine
            .node::<Switch>(th.a_switch)
            .port(th.a_port)
            .macr_series
    }

    /// Queue-length trace of trunk `t`'s a→b port.
    pub fn trunk_queue<'e>(&self, engine: &'e Engine<AtmMsg>, t: TrunkIdx) -> &'e TimeSeries {
        let th = &self.trunks[t.0];
        &engine
            .node::<Switch>(th.a_switch)
            .port(th.a_port)
            .queue_series
    }

    /// Throughput trace (cells/s) of trunk `t`'s a→b port.
    pub fn trunk_throughput<'e>(&self, engine: &'e Engine<AtmMsg>, t: TrunkIdx) -> &'e TimeSeries {
        let th = &self.trunks[t.0];
        &engine
            .node::<Switch>(th.a_switch)
            .port(th.a_port)
            .throughput_series
    }

    /// The a→b port of trunk `t` itself.
    pub fn trunk_port<'e>(&self, engine: &'e Engine<AtmMsg>, t: TrunkIdx) -> &'e Port {
        let th = &self.trunks[t.0];
        engine.node::<Switch>(th.a_switch).port(th.a_port)
    }

    /// ACR trace of session `s`.
    pub fn session_acr<'e>(&self, engine: &'e Engine<AtmMsg>, s: SessionId) -> &'e TimeSeries {
        &engine
            .node::<AbrSource>(self.sessions[s.0].source)
            .acr_series
    }

    /// Delivered-rate trace of session `s`.
    pub fn session_rate<'e>(&self, engine: &'e Engine<AtmMsg>, s: SessionId) -> &'e TimeSeries {
        &engine.node::<AbrDest>(self.sessions[s.0].dest).rate_series
    }

    /// Mean delivered rate of session `s` over the run, cells/s.
    pub fn session_mean_rate(&self, engine: &Engine<AtmMsg>, s: SessionId) -> f64 {
        engine
            .node::<AbrDest>(self.sessions[s.0].dest)
            .mean_rate(engine.now().as_secs_f64())
    }

    /// Data cells delivered for session `s`.
    pub fn session_delivered(&self, engine: &Engine<AtmMsg>, s: SessionId) -> u64 {
        engine
            .node::<AbrDest>(self.sessions[s.0].dest)
            .data_received
    }

    /// Number of sessions, for iterating `(0..n).map(SessionId)`.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// The [`SessionHandle`] of session `s`.
    pub fn session(&self, s: SessionId) -> &SessionHandle {
        &self.sessions[s.0]
    }
}
