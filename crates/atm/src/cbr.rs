//! A constant-bit-rate (CBR/VBR-style) source: unresponsive background
//! traffic.
//!
//! Real ATM links carry CBR and VBR circuits that reserve bandwidth and
//! ignore ABR feedback entirely. Phantom handles them for free — the
//! residual-bandwidth measurement simply sees less capacity — but
//! demonstrating that requires sources that send at a fixed rate, emit
//! no RM cells, and never react to anything. The `burst` option makes
//! the source alternate between its rate and silence (a crude VBR),
//! driving the adaptation experiments.

use crate::cell::{Cell, VcId};
use crate::msg::{AtmMsg, Timer};
use crate::traffic::{Traffic, TrafficGate};
use crate::units::pacing_interval;
use phantom_sim::{Ctx, Node, NodeId, SimDuration};

/// An unresponsive fixed-rate source.
pub struct CbrSource {
    vc: VcId,
    rate: f64, // cells/s
    gate: TrafficGate,
    next_hop: NodeId,
    prop: SimDuration,
    /// Cells transmitted.
    pub cells_sent: u64,
}

impl CbrSource {
    /// A CBR source for `vc` sending at `rate` cells/s whenever `traffic`
    /// says it is active.
    pub fn new(vc: VcId, rate: f64, traffic: Traffic, next_hop: NodeId, prop: SimDuration) -> Self {
        assert!(rate > 0.0, "CBR rate must be positive");
        CbrSource {
            vc,
            rate,
            gate: TrafficGate::new(traffic),
            next_hop,
            prop,
            cells_sent: 0,
        }
    }

    /// The configured rate, cells/s.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The session id.
    pub fn vc(&self) -> VcId {
        self.vc
    }
}

impl Node<AtmMsg> for CbrSource {
    fn on_event(&mut self, ctx: &mut Ctx<'_, AtmMsg>, msg: AtmMsg) {
        match msg {
            AtmMsg::Timer(Timer::SourceTx) => {
                let now = ctx.now();
                let (active, wake) = {
                    let mut gate = self.gate;
                    let r = gate.poll(now, ctx.rng());
                    self.gate = gate;
                    r
                };
                if !active {
                    if let Some(t) = wake {
                        debug_assert!(t > now);
                        ctx.send_at(ctx.self_id(), t, AtmMsg::Timer(Timer::SourceTx));
                    }
                    return;
                }
                self.cells_sent += 1;
                ctx.send(
                    self.next_hop,
                    self.prop,
                    AtmMsg::Cell(Cell::data(self.vc, now).cbr_class()),
                );
                ctx.send_self(pacing_interval(self.rate), AtmMsg::Timer(Timer::SourceTx));
            }
            AtmMsg::Cell(_) => {
                // Unresponsive by definition: any stray feedback is ignored.
            }
            AtmMsg::Timer(t) => unreachable!("CBR source received {t:?}"),
            AtmMsg::Admin(c) => unreachable!("CBR source received {c:?}"),
        }
    }

    fn save_state(&self, w: &mut phantom_sim::KvWriter) -> Result<(), String> {
        w.scope("gate", |w| self.gate.save_state(w));
        w.u64("cells_sent", self.cells_sent);
        Ok(())
    }

    fn restore_state(&mut self, r: &mut phantom_sim::KvReader) -> Result<(), String> {
        r.scope("gate", |r| self.gate.restore_state(r))?;
        self.cells_sent = r.u64("cells_sent")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_validates_rate() {
        let s = CbrSource::new(
            VcId(9),
            1000.0,
            Traffic::greedy(),
            NodeId(0),
            SimDuration::from_micros(1),
        );
        assert_eq!(s.rate(), 1000.0);
        assert_eq!(s.vc(), VcId(9));
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_rejected() {
        let _ = CbrSource::new(
            VcId(0),
            0.0,
            Traffic::greedy(),
            NodeId(0),
            SimDuration::ZERO,
        );
    }
}
