//! An output-queued ATM switch.
//!
//! The switch is algorithm-agnostic: it routes cells by VC, queues them on
//! output ports, and calls the port allocator's hooks. Backward RM cells
//! are stamped by the allocator of the session's **forward-direction**
//! output port — the queueing point whose congestion the feedback must
//! reflect — and then forwarded through the backward-direction port.

use crate::cell::{Cell, VcId};
use crate::msg::{AdminCmd, AtmMsg, Timer};
use crate::port::Port;
use phantom_metrics::registry::{CounterHandle, Registry};
use phantom_sim::{Ctx, Node};

/// Per-VC routing state: which output port the forward and backward
/// directions of the session use.
#[derive(Clone, Copy, Debug)]
pub struct VcRoute {
    /// Output port for source→destination cells.
    pub fwd_port: usize,
    /// Output port for destination→source (backward RM) cells.
    pub bwd_port: usize,
}

/// An output-queued switch with per-port allocators.
pub struct Switch {
    name: String,
    ports: Vec<Port>,
    /// Routing table indexed by `vc - route_base`. Session VCs are dense
    /// integers, so a flat vector turns the per-cell route lookup — half
    /// of all dispatches in a saturated run — into one bounds-checked
    /// load instead of a hash. The base offset keeps the table sized to
    /// the switch's *own* VC range: a metro leaf switch carrying VCs
    /// 90 000–91 562 stores ~1.5 k entries, not 91 563.
    routes: Vec<Option<VcRoute>>,
    route_base: u32,
    routed_cells: Option<CounterHandle>,
}

impl Switch {
    /// An empty switch (ports and routes are added by the builder).
    pub fn new(name: &str) -> Self {
        Switch {
            name: name.to_string(),
            ports: Vec::new(),
            routes: Vec::new(),
            route_base: 0,
            routed_cells: None,
        }
    }

    /// Switch name (for reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Register the switch-level routed-cells counter into `registry`,
    /// labelled `switch=<name>`. Unbound switches skip the update.
    pub fn bind_metrics(&mut self, registry: &Registry) {
        let counter = registry.counter("atm_cells_routed_total", &[("switch", self.name.as_str())]);
        self.routed_cells = Some(counter);
    }

    /// Add an output port, returning its index.
    pub fn add_port(&mut self, port: Port) -> usize {
        self.ports.push(port);
        self.ports.len() - 1
    }

    /// Install the route for `vc`.
    pub fn add_route(&mut self, vc: VcId, route: VcRoute) {
        assert!(route.fwd_port < self.ports.len(), "fwd port out of range");
        assert!(route.bwd_port < self.ports.len(), "bwd port out of range");
        if self.routes.is_empty() {
            self.route_base = vc.0;
        } else if vc.0 < self.route_base {
            let shift = (self.route_base - vc.0) as usize;
            self.routes.splice(0..0, std::iter::repeat_n(None, shift));
            self.route_base = vc.0;
        }
        let idx = (vc.0 - self.route_base) as usize;
        if idx >= self.routes.len() {
            self.routes.resize(idx + 1, None);
        }
        assert!(self.routes[idx].is_none(), "duplicate route for {vc:?}");
        self.routes[idx] = Some(route);
    }

    /// Number of ports.
    pub fn port_count(&self) -> usize {
        self.ports.len()
    }

    /// Access a port's state (traces, counters).
    pub fn port(&self, idx: usize) -> &Port {
        &self.ports[idx]
    }

    /// Mutable access to a port.
    pub fn port_mut(&mut self, idx: usize) -> &mut Port {
        &mut self.ports[idx]
    }

    fn handle_cell(&mut self, ctx: &mut Ctx<'_, AtmMsg>, mut cell: Cell) {
        if let Some(c) = &self.routed_cells {
            c.inc();
        }
        // `wrapping_sub` sends a below-base VC to a huge index, which
        // `get` rejects like any other unrouted VC — the hot path stays
        // one subtract and one bounds-checked load.
        let route = self
            .routes
            .get(cell.vc.0.wrapping_sub(self.route_base) as usize)
            .copied()
            .flatten()
            .unwrap_or_else(|| panic!("switch {}: no route for {:?}", self.name, cell.vc));
        let vc = cell.vc;
        if cell.is_backward_rm() {
            // Feedback for the forward direction: stamp at the forward
            // port, transmit through the backward port.
            if let Some(rm) = cell.as_rm_mut() {
                self.ports[route.fwd_port].stamp_backward(vc, rm);
            }
            self.ports[route.bwd_port].enqueue(ctx, route.bwd_port, cell);
        } else {
            if cell.is_forward_rm() {
                if let Some(rm) = cell.as_rm_mut() {
                    self.ports[route.fwd_port].observe_forward(vc, rm);
                }
            }
            self.ports[route.fwd_port].enqueue(ctx, route.fwd_port, cell);
        }
    }
}

impl Node<AtmMsg> for Switch {
    fn on_event(&mut self, ctx: &mut Ctx<'_, AtmMsg>, msg: AtmMsg) {
        match msg {
            AtmMsg::Cell(cell) => self.handle_cell(ctx, cell),
            AtmMsg::Timer(Timer::TxDone { port }) => self.ports[port].tx_done(ctx, port),
            AtmMsg::Timer(Timer::Measure { port }) => self.ports[port].measure(ctx, port),
            AtmMsg::Timer(Timer::SourceTx) => {
                unreachable!("switch received a source timer")
            }
            AtmMsg::Admin(cmd) => match cmd {
                AdminCmd::SetCapacity { port, cps } => self.ports[port].set_capacity(cps),
                AdminCmd::SetLoss { port, loss } => self.ports[port].set_loss_prob(loss),
            },
        }
    }

    fn save_state(&self, w: &mut phantom_sim::KvWriter) -> Result<(), String> {
        // Routes, name and the route base are topology: rebuilt, not saved.
        w.u64("ports", self.ports.len() as u64);
        let mut res = Ok(());
        for (i, p) in self.ports.iter().enumerate() {
            if res.is_ok() {
                w.scope(&format!("p{i}"), |w| res = p.save_state(w));
            }
        }
        res
    }

    fn restore_state(&mut self, r: &mut phantom_sim::KvReader) -> Result<(), String> {
        let n = r.u64("ports")? as usize;
        if n != self.ports.len() {
            return Err(format!(
                "checkpoint has {n} ports but switch {} was rebuilt with {}",
                self.name,
                self.ports.len()
            ));
        }
        for (i, p) in self.ports.iter_mut().enumerate() {
            r.scope(&format!("p{i}"), |r| p.restore_state(r))?;
        }
        Ok(())
    }
}
