//! The ABR destination end system.
//!
//! Per TM 4.0 the destination turns forward RM cells around (flipping the
//! direction bit) and echoes congestion experienced by data cells: if any
//! data cell since the last RM arrived with its EFCI bit set, the
//! turned-around RM cell carries CI=1. The destination also meters the
//! session's delivered rate — the "measured rate" lines in the paper's
//! TCP-style figures.

use crate::cell::{Cell, CellKind, VcId};
use crate::msg::{AtmMsg, Timer};
use phantom_sim::probe::ProbeEvent;
use phantom_sim::stats::{Histogram, TimeSeries};
use phantom_sim::{Ctx, Node, NodeId, SimDuration};

/// An ABR destination end system.
pub struct AbrDest {
    vc: VcId,
    reply_to: NodeId,
    prop: SimDuration,
    efci_seen: bool,
    /// Total cells received (data + RM).
    pub cells_received: u64,
    /// Data cells received.
    pub data_received: u64,
    /// Forward RM cells turned around.
    pub rm_turned: u64,
    /// Delivered goodput (cells/s), sampled every `sample_interval`.
    pub rate_series: TimeSeries,
    /// End-to-end delay of delivered data cells, milliseconds (1 ms bins
    /// up to 1 s) — the session's cell-delay statistics.
    pub delay_hist: Histogram,
    sample_interval: SimDuration,
    data_in_window: u64,
}

impl AbrDest {
    /// A destination for `vc`, sending backward RM cells to `reply_to`
    /// (its attached switch) over a link with propagation delay `prop`,
    /// sampling goodput every `sample_interval`.
    pub fn new(
        vc: VcId,
        reply_to: NodeId,
        prop: SimDuration,
        sample_interval: SimDuration,
    ) -> Self {
        assert!(!sample_interval.is_zero());
        AbrDest {
            vc,
            reply_to,
            prop,
            efci_seen: false,
            cells_received: 0,
            data_received: 0,
            rm_turned: 0,
            rate_series: TimeSeries::new(),
            delay_hist: Histogram::new(0.1, 10_000),
            sample_interval,
            data_in_window: 0,
        }
    }

    /// The session id.
    pub fn vc(&self) -> VcId {
        self.vc
    }

    /// Mean delivered rate over the whole run so far, cells/s.
    pub fn mean_rate(&self, elapsed_secs: f64) -> f64 {
        if elapsed_secs <= 0.0 {
            0.0
        } else {
            self.data_received as f64 / elapsed_secs
        }
    }
}

impl Node<AtmMsg> for AbrDest {
    fn on_event(&mut self, ctx: &mut Ctx<'_, AtmMsg>, msg: AtmMsg) {
        match msg {
            AtmMsg::Cell(cell) => {
                debug_assert_eq!(cell.vc, self.vc, "mis-routed cell");
                self.cells_received += 1;
                match cell.kind {
                    CellKind::Data => {
                        self.data_received += 1;
                        self.data_in_window += 1;
                        let delay_ms = ctx.now().saturating_sub(cell.created).as_millis_f64();
                        self.delay_hist.record(delay_ms);
                        if cell.efci {
                            self.efci_seen = true;
                        }
                    }
                    CellKind::Rm(rm) => {
                        debug_assert!(
                            matches!(rm.dir, crate::cell::Dir::Forward),
                            "destination received a backward RM cell"
                        );
                        let mut back = rm.turned_around();
                        if self.efci_seen {
                            back.ci = true;
                            self.efci_seen = false;
                        }
                        self.rm_turned += 1;
                        ctx.emit(|| ProbeEvent::RmTurnaround {
                            vc: self.vc.0,
                            er: back.er,
                            ci: back.ci,
                        });
                        ctx.send(
                            self.reply_to,
                            self.prop,
                            AtmMsg::Cell(Cell::rm(self.vc, back, ctx.now())),
                        );
                    }
                }
            }
            AtmMsg::Timer(Timer::Measure { .. }) => {
                let rate = self.data_in_window as f64 / self.sample_interval.as_secs_f64();
                self.rate_series.push(ctx.now(), rate);
                self.data_in_window = 0;
                ctx.send_self(
                    self.sample_interval,
                    AtmMsg::Timer(Timer::Measure { port: 0 }),
                );
            }
            AtmMsg::Timer(t) => unreachable!("destination received {t:?}"),
            AtmMsg::Admin(c) => unreachable!("destination received {c:?}"),
        }
    }

    fn save_state(&self, w: &mut phantom_sim::KvWriter) -> Result<(), String> {
        // vc, reply_to, prop and the sample interval are static.
        w.bool("efci_seen", self.efci_seen);
        w.u64("cells_received", self.cells_received);
        w.u64("data_received", self.data_received);
        w.u64("rm_turned", self.rm_turned);
        w.u64("data_in_window", self.data_in_window);
        w.scope("rate_series", |w| self.rate_series.save(w));
        w.scope("delay_hist", |w| self.delay_hist.save(w));
        Ok(())
    }

    fn restore_state(&mut self, r: &mut phantom_sim::KvReader) -> Result<(), String> {
        self.efci_seen = r.bool("efci_seen")?;
        self.cells_received = r.u64("cells_received")?;
        self.data_received = r.u64("data_received")?;
        self.rm_turned = r.u64("rm_turned")?;
        self.data_in_window = r.u64("data_in_window")?;
        r.scope("rate_series", |r| self.rate_series.restore(r))?;
        r.scope("delay_hist", |r| self.delay_hist.restore(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_rate_requires_elapsed_time() {
        let d = AbrDest::new(
            VcId(1),
            NodeId(0),
            SimDuration::from_micros(1),
            SimDuration::from_millis(5),
        );
        assert_eq!(d.mean_rate(0.0), 0.0);
    }

    #[test]
    #[should_panic]
    fn zero_sample_interval_rejected() {
        let _ = AbrDest::new(VcId(1), NodeId(0), SimDuration::ZERO, SimDuration::ZERO);
    }
}
