//! The message type of the ATM simulation domain.

use crate::cell::Cell;

/// Everything that can be delivered to an ATM node.
#[derive(Clone, Copy, Debug)]
pub enum AtmMsg {
    /// A cell arriving over a link.
    Cell(Cell),
    /// A node-internal timer.
    Timer(Timer),
    /// A scheduled mid-run reconfiguration (scene timeline events).
    Admin(AdminCmd),
}

/// Mid-run reconfiguration commands, addressed to a switch. Scene
/// timelines (link capacity changes, failure/recovery) are lowered to
/// these and scheduled as ordinary engine events at build time, so a
/// dynamic run stays a pure function of `(scene, seed)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AdminCmd {
    /// Re-rate output port `port` to `cps` cells/s. Takes effect for
    /// the next serialized cell; allocators see the new capacity at
    /// their next measurement interval.
    SetCapacity {
        /// Output-port index within the switch.
        port: usize,
        /// New link capacity, cells/s (must be positive).
        cps: f64,
    },
    /// Set output port `port`'s wire-loss probability to `loss`
    /// (`1.0` = link down: every departing cell is lost; `0.0` =
    /// recovered).
    SetLoss {
        /// Output-port index within the switch.
        port: usize,
        /// Per-cell loss probability in `[0, 1]`.
        loss: f64,
    },
}

/// Timer kinds, multiplexed per node.
#[derive(Clone, Copy, Debug)]
pub enum Timer {
    /// Source: time to (attempt to) transmit the next cell.
    SourceTx,
    /// Switch: the cell at the head of `port`'s queue finished serializing.
    TxDone {
        /// Output-port index within the switch.
        port: usize,
    },
    /// Switch: end of a measurement interval on `port`.
    Measure {
        /// Output-port index within the switch.
        port: usize,
    },
}

impl AtmMsg {
    /// The profiler's event-kind label for this message. Installed as
    /// the engine's event classifier by `NetworkBuilder::build`, so a
    /// profiled ATM run breaks its time down into cell deliveries, the
    /// three timer flavours and admin commands.
    pub fn kind_label(&self) -> &'static str {
        match self {
            AtmMsg::Cell(_) => "cell",
            AtmMsg::Timer(Timer::SourceTx) => "timer.source_tx",
            AtmMsg::Timer(Timer::TxDone { .. }) => "timer.tx_done",
            AtmMsg::Timer(Timer::Measure { .. }) => "timer.measure",
            AtmMsg::Admin(_) => "admin",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_labels_distinguish_every_flavour() {
        assert_eq!(
            AtmMsg::Timer(Timer::SourceTx).kind_label(),
            "timer.source_tx"
        );
        assert_eq!(
            AtmMsg::Timer(Timer::TxDone { port: 3 }).kind_label(),
            "timer.tx_done"
        );
        assert_eq!(
            AtmMsg::Timer(Timer::Measure { port: 0 }).kind_label(),
            "timer.measure"
        );
        assert_eq!(
            AtmMsg::Admin(AdminCmd::SetLoss { port: 0, loss: 1.0 }).kind_label(),
            "admin"
        );
    }
}
