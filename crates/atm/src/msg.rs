//! The message type of the ATM simulation domain.

use crate::cell::Cell;

/// Everything that can be delivered to an ATM node.
#[derive(Clone, Copy, Debug)]
pub enum AtmMsg {
    /// A cell arriving over a link.
    Cell(Cell),
    /// A node-internal timer.
    Timer(Timer),
    /// A scheduled mid-run reconfiguration (scene timeline events).
    Admin(AdminCmd),
}

/// Mid-run reconfiguration commands, addressed to a switch. Scene
/// timelines (link capacity changes, failure/recovery) are lowered to
/// these and scheduled as ordinary engine events at build time, so a
/// dynamic run stays a pure function of `(scene, seed)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AdminCmd {
    /// Re-rate output port `port` to `cps` cells/s. Takes effect for
    /// the next serialized cell; allocators see the new capacity at
    /// their next measurement interval.
    SetCapacity {
        /// Output-port index within the switch.
        port: usize,
        /// New link capacity, cells/s (must be positive).
        cps: f64,
    },
    /// Set output port `port`'s wire-loss probability to `loss`
    /// (`1.0` = link down: every departing cell is lost; `0.0` =
    /// recovered).
    SetLoss {
        /// Output-port index within the switch.
        port: usize,
        /// Per-cell loss probability in `[0, 1]`.
        loss: f64,
    },
}

/// Timer kinds, multiplexed per node.
#[derive(Clone, Copy, Debug)]
pub enum Timer {
    /// Source: time to (attempt to) transmit the next cell.
    SourceTx,
    /// Switch: the cell at the head of `port`'s queue finished serializing.
    TxDone {
        /// Output-port index within the switch.
        port: usize,
    },
    /// Switch: end of a measurement interval on `port`.
    Measure {
        /// Output-port index within the switch.
        port: usize,
    },
}
