//! The message type of the ATM simulation domain.

use crate::cell::Cell;

/// Everything that can be delivered to an ATM node.
#[derive(Clone, Copy, Debug)]
pub enum AtmMsg {
    /// A cell arriving over a link.
    Cell(Cell),
    /// A node-internal timer.
    Timer(Timer),
    /// A scheduled mid-run reconfiguration (scene timeline events).
    Admin(AdminCmd),
}

/// Mid-run reconfiguration commands, addressed to a switch. Scene
/// timelines (link capacity changes, failure/recovery) are lowered to
/// these and scheduled as ordinary engine events at build time, so a
/// dynamic run stays a pure function of `(scene, seed)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AdminCmd {
    /// Re-rate output port `port` to `cps` cells/s. Takes effect for
    /// the next serialized cell; allocators see the new capacity at
    /// their next measurement interval.
    SetCapacity {
        /// Output-port index within the switch.
        port: usize,
        /// New link capacity, cells/s (must be positive).
        cps: f64,
    },
    /// Set output port `port`'s wire-loss probability to `loss`
    /// (`1.0` = link down: every departing cell is lost; `0.0` =
    /// recovered).
    SetLoss {
        /// Output-port index within the switch.
        port: usize,
        /// Per-cell loss probability in `[0, 1]`.
        loss: f64,
    },
}

/// Timer kinds, multiplexed per node.
#[derive(Clone, Copy, Debug)]
pub enum Timer {
    /// Source: time to (attempt to) transmit the next cell.
    SourceTx,
    /// Switch: the cell at the head of `port`'s queue finished serializing.
    TxDone {
        /// Output-port index within the switch.
        port: usize,
    },
    /// Switch: end of a measurement interval on `port`.
    Measure {
        /// Output-port index within the switch.
        port: usize,
    },
}

impl AtmMsg {
    /// The profiler's event-kind label for this message. Installed as
    /// the engine's event classifier by `NetworkBuilder::build`, so a
    /// profiled ATM run breaks its time down into cell deliveries, the
    /// three timer flavours and admin commands.
    pub fn kind_label(&self) -> &'static str {
        match self {
            AtmMsg::Cell(_) => "cell",
            AtmMsg::Timer(Timer::SourceTx) => "timer.source_tx",
            AtmMsg::Timer(Timer::TxDone { .. }) => "timer.tx_done",
            AtmMsg::Timer(Timer::Measure { .. }) => "timer.measure",
            AtmMsg::Admin(_) => "admin",
        }
    }
}

impl phantom_sim::SnapshotMessage for AtmMsg {
    fn encode(&self) -> String {
        let mut w = phantom_sim::KvWriter::new();
        match self {
            AtmMsg::Cell(c) => {
                w.str("m", "cell");
                w.scope("c", |w| c.save(w));
            }
            AtmMsg::Timer(Timer::SourceTx) => w.str("m", "tx"),
            AtmMsg::Timer(Timer::TxDone { port }) => {
                w.str("m", "txdone");
                w.u64("port", *port as u64);
            }
            AtmMsg::Timer(Timer::Measure { port }) => {
                w.str("m", "measure");
                w.u64("port", *port as u64);
            }
            AtmMsg::Admin(AdminCmd::SetCapacity { port, cps }) => {
                w.str("m", "setcap");
                w.u64("port", *port as u64);
                w.f64("cps", *cps);
            }
            AtmMsg::Admin(AdminCmd::SetLoss { port, loss }) => {
                w.str("m", "setloss");
                w.u64("port", *port as u64);
                w.f64("loss", *loss);
            }
        }
        w.finish()
    }

    fn decode(s: &str) -> Result<Self, String> {
        let mut r = phantom_sim::KvReader::parse(s)?;
        let port =
            |r: &phantom_sim::KvReader| -> Result<usize, String> { Ok(r.u64("port")? as usize) };
        Ok(match r.str("m")?.as_str() {
            "cell" => AtmMsg::Cell(r.scope("c", Cell::load)?),
            "tx" => AtmMsg::Timer(Timer::SourceTx),
            "txdone" => AtmMsg::Timer(Timer::TxDone { port: port(&r)? }),
            "measure" => AtmMsg::Timer(Timer::Measure { port: port(&r)? }),
            "setcap" => AtmMsg::Admin(AdminCmd::SetCapacity {
                port: port(&r)?,
                cps: r.f64("cps")?,
            }),
            "setloss" => AtmMsg::Admin(AdminCmd::SetLoss {
                port: port(&r)?,
                loss: r.f64("loss")?,
            }),
            other => return Err(format!("unknown ATM message kind {other:?}")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_labels_distinguish_every_flavour() {
        assert_eq!(
            AtmMsg::Timer(Timer::SourceTx).kind_label(),
            "timer.source_tx"
        );
        assert_eq!(
            AtmMsg::Timer(Timer::TxDone { port: 3 }).kind_label(),
            "timer.tx_done"
        );
        assert_eq!(
            AtmMsg::Timer(Timer::Measure { port: 0 }).kind_label(),
            "timer.measure"
        );
        assert_eq!(
            AtmMsg::Admin(AdminCmd::SetLoss { port: 0, loss: 1.0 }).kind_label(),
            "admin"
        );
    }

    #[test]
    fn snapshot_codec_round_trips_every_flavour() {
        use crate::cell::{RmCell, VcId};
        use phantom_sim::{SimTime, SnapshotMessage};

        let rm = Cell::rm(
            VcId(7),
            RmCell::forward(1234.5, 350_000.0)
                .with_mcr(10.25)
                .turned_around(),
            SimTime(987_654_321),
        );
        let mut data = Cell::data(VcId(3), SimTime(42)).cbr_class();
        data.efci = true;
        let msgs = [
            AtmMsg::Cell(rm),
            AtmMsg::Cell(data),
            AtmMsg::Timer(Timer::SourceTx),
            AtmMsg::Timer(Timer::TxDone { port: 3 }),
            AtmMsg::Timer(Timer::Measure { port: 0 }),
            AtmMsg::Admin(AdminCmd::SetCapacity {
                port: 1,
                cps: 1.0 / 3.0,
            }),
            AtmMsg::Admin(AdminCmd::SetLoss { port: 2, loss: 0.5 }),
        ];
        for msg in msgs {
            let enc = msg.encode();
            assert!(!enc.contains('\n'));
            let back = AtmMsg::decode(&enc).expect("decode");
            // AtmMsg has no PartialEq (Cell carries floats used bit-exactly);
            // compare via re-encoding, which is field-exhaustive.
            assert_eq!(back.encode(), enc, "{msg:?}");
        }
        assert!(AtmMsg::decode("m=bogus").is_err());
    }
}
