//! The message type of the ATM simulation domain.

use crate::cell::Cell;

/// Everything that can be delivered to an ATM node.
#[derive(Clone, Copy, Debug)]
pub enum AtmMsg {
    /// A cell arriving over a link.
    Cell(Cell),
    /// A node-internal timer.
    Timer(Timer),
}

/// Timer kinds, multiplexed per node.
#[derive(Clone, Copy, Debug)]
pub enum Timer {
    /// Source: time to (attempt to) transmit the next cell.
    SourceTx,
    /// Switch: the cell at the head of `port`'s queue finished serializing.
    TxDone {
        /// Output-port index within the switch.
        port: usize,
    },
    /// Switch: end of a measurement interval on `port`.
    Measure {
        /// Output-port index within the switch.
        port: usize,
    },
}
