//! TM 4.0 end-system parameters, with the paper's values as defaults.
//!
//! From the paper (Section "simulation configuration", quoting the ATM
//! Forum TM 4.0 end systems of \[Sat96\] Appendix I):
//!
//! > Nrm = 32, AIR·Nrm = 42.5 Mb/s, RDF = 256, PCR = 150 Mb/s, TOF = 2,
//! > TCR = 10 cells/s (4.24 Kb/s) and ICR = 8.5 Mb/s.
//!
//! Interpretation notes (recorded in DESIGN.md): AIR is the additive
//! increase applied per backward RM cell, so `AIR = 42.5/32 Mb/s`; RDF is
//! the divisor of the multiplicative decrease applied per CI-marked
//! backward RM cell (`ACR -= ACR/RDF`); TOF guards the idle timeout —
//! we implement the TM 4.0 ADTF-style rule "after an idle period the
//! source restarts from ICR".

use crate::units::mbps_to_cps;
use phantom_sim::SimDuration;

/// ABR end-system parameters (all rates in cells/s).
#[derive(Clone, Copy, Debug)]
pub struct AtmParams {
    /// Peak Cell Rate: the line rate and the hard ceiling of ACR.
    pub pcr: f64,
    /// Initial Cell Rate: ACR at session start and after long idles.
    pub icr: f64,
    /// Minimum Cell Rate floor (the paper's TCR, 10 cells/s).
    pub mcr: f64,
    /// Cells between consecutive forward RM cells.
    pub nrm: u32,
    /// Additive increase per unmarked backward RM cell, cells/s.
    pub air: f64,
    /// Divisor of the multiplicative decrease per CI-marked backward RM
    /// cell: `ACR -= ACR / rdf`.
    pub rdf: f64,
    /// Idle interval after which ACR is reset towards ICR (stands in for
    /// the TOF/ADTF use-it-or-lose-it rule).
    pub adtf: SimDuration,
    /// Missing-RM-cell limit: after this many forward RM cells with no
    /// backward RM received, the source starts decreasing (TM 4.0's CRM).
    pub crm: u32,
    /// Multiplicative decrease applied per forward RM while the CRM limit
    /// is exceeded (TM 4.0's CDF, as a fraction).
    pub cdf: f64,
}

impl Default for AtmParams {
    fn default() -> Self {
        AtmParams {
            pcr: mbps_to_cps(150.0),
            icr: mbps_to_cps(8.5),
            mcr: 10.0,
            nrm: 32,
            air: mbps_to_cps(42.5 / 32.0),
            rdf: 256.0,
            adtf: SimDuration::from_millis(500),
            crm: 32,
            cdf: 1.0 / 16.0,
        }
    }
}

impl AtmParams {
    /// The paper's configuration (alias of `Default`).
    pub fn paper() -> Self {
        Self::default()
    }

    /// Override PCR, given in Mb/s.
    pub fn with_pcr_mbps(mut self, mbps: f64) -> Self {
        self.pcr = mbps_to_cps(mbps);
        self
    }

    /// Override ICR, given in Mb/s.
    pub fn with_icr_mbps(mut self, mbps: f64) -> Self {
        self.icr = mbps_to_cps(mbps);
        self
    }

    /// Override the additive increase, given as AIR·Nrm in Mb/s (the
    /// paper's way of quoting it).
    pub fn with_air_nrm_mbps(mut self, mbps: f64) -> Self {
        self.air = mbps_to_cps(mbps / self.nrm as f64);
        self
    }

    /// Override Nrm.
    pub fn with_nrm(mut self, nrm: u32) -> Self {
        assert!(nrm >= 2, "Nrm must be at least 2");
        self.nrm = nrm;
        self
    }

    /// Override RDF.
    pub fn with_rdf(mut self, rdf: f64) -> Self {
        assert!(rdf > 1.0, "RDF must exceed 1");
        self.rdf = rdf;
        self
    }

    /// Sanity-check the invariants the end system relies on.
    // `!(x > 0)`-style checks are deliberate: they reject NaN as well.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn validate(&self) -> Result<(), String> {
        if !(self.pcr > 0.0) {
            return Err("PCR must be positive".into());
        }
        if !(self.icr > 0.0 && self.icr <= self.pcr) {
            return Err("ICR must be in (0, PCR]".into());
        }
        if !(self.mcr >= 0.0 && self.mcr <= self.icr) {
            return Err("MCR must be in [0, ICR]".into());
        }
        if self.nrm < 2 {
            return Err("Nrm must be at least 2".into());
        }
        if !(self.air > 0.0) {
            return Err("AIR must be positive".into());
        }
        if !(self.rdf > 1.0) {
            return Err("RDF must exceed 1".into());
        }
        if self.crm == 0 {
            return Err("CRM must be positive".into());
        }
        if !(self.cdf > 0.0 && self.cdf < 1.0) {
            return Err("CDF must be in (0, 1)".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::cps_to_mbps;

    #[test]
    fn paper_defaults_match_quoted_values() {
        let p = AtmParams::paper();
        assert!((cps_to_mbps(p.pcr) - 150.0).abs() < 1e-9);
        assert!((cps_to_mbps(p.icr) - 8.5).abs() < 1e-9);
        assert_eq!(p.mcr, 10.0);
        assert_eq!(p.nrm, 32);
        assert!((cps_to_mbps(p.air) * 32.0 - 42.5).abs() < 1e-9);
        assert_eq!(p.rdf, 256.0);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn builders_override_fields() {
        let p = AtmParams::paper()
            .with_pcr_mbps(155.0)
            .with_icr_mbps(10.0)
            .with_nrm(16)
            .with_air_nrm_mbps(32.0)
            .with_rdf(64.0);
        assert!((cps_to_mbps(p.pcr) - 155.0).abs() < 1e-9);
        assert_eq!(p.nrm, 16);
        assert!((cps_to_mbps(p.air) * 16.0 - 32.0).abs() < 1e-9);
        assert_eq!(p.rdf, 64.0);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut p = AtmParams::paper();
        p.icr = p.pcr * 2.0;
        assert!(p.validate().is_err());
        let mut p = AtmParams::paper();
        p.mcr = p.icr * 2.0;
        assert!(p.validate().is_err());
        let mut p = AtmParams::paper();
        p.air = 0.0;
        assert!(p.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "Nrm must be at least 2")]
    fn nrm_builder_asserts() {
        let _ = AtmParams::paper().with_nrm(1);
    }
}
