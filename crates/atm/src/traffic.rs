//! Workload models for ABR sources.
//!
//! The paper's scenarios use three source behaviors: *greedy* sources that
//! always have cells to send, *staggered* greedy sources that join (and
//! possibly leave) at given times, and *on/off* (bursty) sources that
//! alternate between active and silent periods. All are deterministic so
//! that runs reproduce exactly; randomized burst lengths can be layered on
//! by the scenario if needed.

use phantom_sim::{SimDuration, SimTime};

/// When a source is allowed to transmit.
#[derive(Clone, Copy, Debug)]
pub enum Traffic {
    /// Always active from `start` until `stop`.
    Greedy {
        /// First instant the source may send.
        start: SimTime,
        /// Instant the source stops (use [`SimTime::MAX`] for "never").
        stop: SimTime,
    },
    /// Periodic bursts: active for `on`, silent for `off`, starting (in the
    /// active state) at `start`.
    OnOff {
        /// Beginning of the first active period.
        start: SimTime,
        /// Length of each active period.
        on: SimDuration,
        /// Length of each silent period.
        off: SimDuration,
    },
    /// Stochastic bursts: on/off phases with exponentially distributed
    /// durations, drawn from the source node's seeded RNG. Evaluate
    /// through a [`TrafficGate`]; the pure [`Traffic::is_active`] /
    /// [`Traffic::next_active`] cannot answer for this variant.
    Random {
        /// Mean active-phase duration.
        mean_on: SimDuration,
        /// Mean silent-phase duration.
        mean_off: SimDuration,
    },
}

impl Traffic {
    /// A source that is always on.
    pub fn greedy() -> Self {
        Traffic::Greedy {
            start: SimTime::ZERO,
            stop: SimTime::MAX,
        }
    }

    /// A greedy source active only during `[start, stop)`.
    pub fn window(start: SimTime, stop: SimTime) -> Self {
        assert!(stop > start, "empty activity window");
        Traffic::Greedy { start, stop }
    }

    /// A periodic on/off source.
    pub fn on_off(start: SimTime, on: SimDuration, off: SimDuration) -> Self {
        assert!(!on.is_zero(), "on period must be positive");
        assert!(!off.is_zero(), "off period must be positive");
        Traffic::OnOff { start, on, off }
    }

    /// A stochastic on/off source with exponential phase durations.
    pub fn random(mean_on: SimDuration, mean_off: SimDuration) -> Self {
        assert!(!mean_on.is_zero(), "mean on period must be positive");
        assert!(!mean_off.is_zero(), "mean off period must be positive");
        Traffic::Random { mean_on, mean_off }
    }

    /// Is the source allowed to send at time `t`?
    pub fn is_active(&self, t: SimTime) -> bool {
        match *self {
            Traffic::Greedy { start, stop } => t >= start && t < stop,
            Traffic::OnOff { start, on, off } => {
                if t < start {
                    return false;
                }
                let period = (on + off).as_nanos();
                let phase = (t - start).as_nanos() % period;
                phase < on.as_nanos()
            }
            Traffic::Random { .. } => {
                panic!("Traffic::Random is stateful; evaluate it through a TrafficGate")
            }
        }
    }

    /// The next time at or after `t` when the source becomes (or still is
    /// about to become) active. Returns `None` if it never will be.
    pub fn next_active(&self, t: SimTime) -> Option<SimTime> {
        match *self {
            Traffic::Greedy { start, stop } => {
                if t < start {
                    Some(start)
                } else if t < stop {
                    Some(t)
                } else {
                    None
                }
            }
            Traffic::OnOff { start, on, off } => {
                if t < start {
                    return Some(start);
                }
                if self.is_active(t) {
                    return Some(t);
                }
                let period = (on + off).as_nanos();
                let phase = (t - start).as_nanos() % period;
                Some(t + SimDuration::from_nanos(period - phase))
            }
            Traffic::Random { .. } => {
                panic!("Traffic::Random is stateful; evaluate it through a TrafficGate")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greedy_is_always_on() {
        let t = Traffic::greedy();
        assert!(t.is_active(SimTime::ZERO));
        assert!(t.is_active(SimTime::from_secs(100)));
        assert_eq!(
            t.next_active(SimTime::from_secs(5)),
            Some(SimTime::from_secs(5))
        );
    }

    #[test]
    fn window_respects_bounds() {
        let t = Traffic::window(SimTime::from_millis(10), SimTime::from_millis(20));
        assert!(!t.is_active(SimTime::from_millis(5)));
        assert!(t.is_active(SimTime::from_millis(10)));
        assert!(t.is_active(SimTime::from_millis(19)));
        assert!(!t.is_active(SimTime::from_millis(20)));
        assert_eq!(
            t.next_active(SimTime::from_millis(5)),
            Some(SimTime::from_millis(10))
        );
        assert_eq!(t.next_active(SimTime::from_millis(25)), None);
    }

    #[test]
    fn on_off_cycles() {
        let t = Traffic::on_off(
            SimTime::from_millis(100),
            SimDuration::from_millis(30),
            SimDuration::from_millis(70),
        );
        assert!(!t.is_active(SimTime::from_millis(50)));
        assert!(t.is_active(SimTime::from_millis(100)));
        assert!(t.is_active(SimTime::from_millis(129)));
        assert!(!t.is_active(SimTime::from_millis(130)));
        assert!(!t.is_active(SimTime::from_millis(199)));
        assert!(t.is_active(SimTime::from_millis(200))); // next period
                                                         // second period's on-phase
        assert!(t.is_active(SimTime::from_millis(229)));
        assert!(!t.is_active(SimTime::from_millis(230)));
    }

    #[test]
    fn on_off_next_active_jumps_to_period_start() {
        let t = Traffic::on_off(
            SimTime::ZERO,
            SimDuration::from_millis(10),
            SimDuration::from_millis(90),
        );
        assert_eq!(
            t.next_active(SimTime::from_millis(50)),
            Some(SimTime::from_millis(100))
        );
        assert_eq!(
            t.next_active(SimTime::from_millis(5)),
            Some(SimTime::from_millis(5))
        );
        // before start
        let t2 = Traffic::on_off(
            SimTime::from_millis(7),
            SimDuration::from_millis(1),
            SimDuration::from_millis(1),
        );
        assert_eq!(t2.next_active(SimTime::ZERO), Some(SimTime::from_millis(7)));
    }

    #[test]
    #[should_panic(expected = "empty activity window")]
    fn bad_window_panics() {
        let _ = Traffic::window(SimTime::from_secs(2), SimTime::from_secs(1));
    }
}

/// Runtime gate a source drives its traffic model through. Deterministic
/// models ([`Traffic::Greedy`], [`Traffic::OnOff`]) delegate to the pure
/// methods; [`Traffic::Random`] keeps the sampled phase state here and
/// draws exponential on/off durations from the node's seeded RNG.
#[derive(Clone, Copy, Debug)]
pub struct TrafficGate {
    traffic: Traffic,
    /// Random-mode state: current phase and when it ends.
    random: Option<(bool, SimTime)>,
}

impl TrafficGate {
    /// A gate for `traffic`; Random mode starts in the off phase at t = 0
    /// with a sampled duration on first poll.
    pub fn new(traffic: Traffic) -> Self {
        TrafficGate {
            traffic,
            random: None,
        }
    }

    /// The model this gate drives.
    pub fn traffic(&self) -> Traffic {
        self.traffic
    }

    /// Serialize the gate's evolving state for a checkpoint. Only
    /// [`Traffic::Random`] has any: the current phase and its end time.
    /// The model itself is configuration and not written.
    pub fn save_state(&self, w: &mut phantom_sim::KvWriter) {
        match self.random {
            Some((active, until)) => {
                w.bool("sampled", true);
                w.bool("active", active);
                w.u64("until", until.0);
            }
            None => w.bool("sampled", false),
        }
    }

    /// Overwrite the gate's evolving state from a
    /// [`TrafficGate::save_state`] record.
    pub fn restore_state(&mut self, r: &mut phantom_sim::KvReader) -> Result<(), String> {
        self.random = if r.bool("sampled")? {
            Some((r.bool("active")?, SimTime(r.u64("until")?)))
        } else {
            None
        };
        Ok(())
    }

    /// Is the source allowed to send at `now`? When inactive, also
    /// returns the wake-up time (if the model ever resumes).
    pub fn poll(
        &mut self,
        now: SimTime,
        rng: &mut rand::rngs::SmallRng,
    ) -> (bool, Option<SimTime>) {
        match self.traffic {
            Traffic::Random { mean_on, mean_off } => {
                let (mut active, mut until) = self.random.unwrap_or((false, now));
                while now >= until {
                    active = !active;
                    let mean = if active { mean_on } else { mean_off };
                    until += exp_sample(mean, rng);
                }
                self.random = Some((active, until));
                if active {
                    (true, None)
                } else {
                    (false, Some(until))
                }
            }
            t => {
                if t.is_active(now) {
                    (true, None)
                } else {
                    (false, t.next_active(now).filter(|&w| w > now))
                }
            }
        }
    }
}

/// One exponential duration with the given mean (never zero).
fn exp_sample(mean: SimDuration, rng: &mut rand::rngs::SmallRng) -> SimDuration {
    use rand::Rng;
    let u: f64 = rng.gen_range(1e-12..1.0);
    let secs = -mean.as_secs_f64() * u.ln();
    SimDuration::from_secs_f64(secs.max(1e-9))
}

#[cfg(test)]
mod gate_tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn deterministic_models_pass_through() {
        let mut g = TrafficGate::new(Traffic::window(
            SimTime::from_millis(10),
            SimTime::from_millis(20),
        ));
        let mut rng = SmallRng::seed_from_u64(0);
        let (active, wake) = g.poll(SimTime::ZERO, &mut rng);
        assert!(!active);
        assert_eq!(wake, Some(SimTime::from_millis(10)));
        let (active, _) = g.poll(SimTime::from_millis(15), &mut rng);
        assert!(active);
        let (active, wake) = g.poll(SimTime::from_millis(25), &mut rng);
        assert!(!active);
        assert_eq!(wake, None, "window never reopens");
    }

    #[test]
    fn random_gate_duty_cycle_matches_means() {
        // Poll a random gate on a fine grid and check the long-run duty
        // cycle ≈ mean_on / (mean_on + mean_off).
        let traffic = Traffic::Random {
            mean_on: SimDuration::from_millis(30),
            mean_off: SimDuration::from_millis(10),
        };
        let mut g = TrafficGate::new(traffic);
        let mut rng = SmallRng::seed_from_u64(42);
        let mut active_ticks = 0u64;
        let ticks = 400_000u64;
        for i in 0..ticks {
            let (active, _) = g.poll(SimTime::from_micros(i * 10), &mut rng);
            if active {
                active_ticks += 1;
            }
        }
        let duty = active_ticks as f64 / ticks as f64;
        assert!(
            (duty - 0.75).abs() < 0.05,
            "duty cycle {duty:.3} vs expected 0.75"
        );
    }

    #[test]
    fn random_gate_is_seed_dependent_but_reproducible() {
        let traffic = Traffic::Random {
            mean_on: SimDuration::from_millis(5),
            mean_off: SimDuration::from_millis(5),
        };
        let trace = |seed: u64| -> Vec<bool> {
            let mut g = TrafficGate::new(traffic);
            let mut rng = SmallRng::seed_from_u64(seed);
            (0..1000)
                .map(|i| g.poll(SimTime::from_micros(i * 100), &mut rng).0)
                .collect()
        };
        assert_eq!(trace(1), trace(1), "same seed, same phases");
        assert_ne!(trace(1), trace(2), "different seeds differ");
    }

    #[test]
    fn exp_samples_are_positive_with_roughly_the_right_mean() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mean = SimDuration::from_millis(20);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let d = exp_sample(mean, &mut rng);
            assert!(d.as_nanos() > 0);
            sum += d.as_secs_f64();
        }
        let measured = sum / n as f64;
        assert!(
            (measured - 0.020).abs() < 0.001,
            "mean {measured:.4}s vs 0.020s"
        );
    }
}
