//! The ABR source end system (TM 4.0, \[Sat96\] Appendix I).
//!
//! The source paces cells at its Allowed Cell Rate (ACR). Every Nrm-th
//! cell is a forward RM cell carrying the current rate (CCR) and an ER
//! field initialized to PCR. On every backward RM cell the source applies
//! the TM 4.0 rules:
//!
//! ```text
//! if CI      { ACR -= ACR / RDF }          # multiplicative decrease
//! else if !NI{ ACR += AIR }                # additive increase
//! ACR = min(ACR, ER, PCR); ACR = max(ACR, MCR)
//! ```
//!
//! After an idle period longer than ADTF the source restarts from ICR
//! (use-it-or-lose-it). The traffic model gates *whether* the source has
//! cells to send; ACR gates *how fast* it may send them.

use crate::cell::{Cell, RmCell, VcId};
use crate::msg::{AtmMsg, Timer};
use crate::params::AtmParams;
use crate::traffic::{Traffic, TrafficGate};
use crate::units::pacing_interval;
use phantom_sim::probe::ProbeEvent;
use phantom_sim::stats::TimeSeries;
use phantom_sim::{Ctx, Node, NodeId, SimDuration, SimTime};

/// An ABR source end system.
pub struct AbrSource {
    vc: VcId,
    params: AtmParams,
    gate: TrafficGate,
    next_hop: NodeId,
    prop: SimDuration,
    acr: f64,
    /// Cached `pacing_interval(pace_acr)` — ACR only changes on backward
    /// RM feedback (once per Nrm cells), so the per-cell pacing send can
    /// skip the division while the rate is unchanged.
    pace: SimDuration,
    pace_acr: f64,
    cells_since_rm: u32,
    unacked_rm: u32,
    last_tx: Option<SimTime>,
    was_active: bool,
    /// Total cells sent (data + RM).
    pub cells_sent: u64,
    /// Forward RM cells sent.
    pub rm_sent: u64,
    /// Backward RM cells received.
    pub rm_received: u64,
    /// ACR trace — the paper's "sessions' allowed rate" lines.
    pub acr_series: TimeSeries,
    /// Sampling stride for the ACR trace: record at most one sample per
    /// this many backward RM cells (1 = every one).
    acr_sample_stride: u64,
}

impl AbrSource {
    /// A source for session `vc`, attached to `next_hop` over a link with
    /// propagation delay `prop`.
    pub fn new(
        vc: VcId,
        params: AtmParams,
        traffic: Traffic,
        next_hop: NodeId,
        prop: SimDuration,
    ) -> Self {
        params.validate().expect("invalid ATM parameters");
        AbrSource {
            vc,
            params,
            gate: TrafficGate::new(traffic),
            next_hop,
            prop,
            acr: params.icr,
            pace: pacing_interval(params.icr),
            pace_acr: params.icr,
            cells_since_rm: 0,
            unacked_rm: 0,
            last_tx: None,
            was_active: false,
            cells_sent: 0,
            rm_sent: 0,
            rm_received: 0,
            acr_series: TimeSeries::new(),
            acr_sample_stride: 1,
        }
    }

    /// Record only every `stride`-th ACR update (trace size control for
    /// long runs).
    pub fn with_acr_sample_stride(mut self, stride: u64) -> Self {
        self.acr_sample_stride = stride.max(1);
        self
    }

    /// Current allowed cell rate.
    pub fn acr(&self) -> f64 {
        self.acr
    }

    /// The session id.
    pub fn vc(&self) -> VcId {
        self.vc
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, AtmMsg>) {
        let now = ctx.now();
        let (active, wake) = self.gate.poll(now, ctx.rng());
        if active != self.was_active {
            self.was_active = active;
            let session = self.vc.0;
            if active {
                ctx.emit(|| ProbeEvent::SessionStart { session });
            } else {
                ctx.emit(|| ProbeEvent::SessionStop { session });
            }
        }
        if !active {
            // Sleep until the next active period (if any).
            if let Some(t) = wake {
                debug_assert!(t > now);
                ctx.send_at(ctx.self_id(), t, AtmMsg::Timer(Timer::SourceTx));
            }
            return;
        }
        // Use-it-or-lose-it: a long idle resets ACR towards ICR.
        if let Some(last) = self.last_tx {
            if now.saturating_sub(last) > self.params.adtf && self.acr > self.params.icr {
                self.acr = self.params.icr;
                self.acr_series.push(now, self.acr);
            }
        }
        // Every Nrm-th cell (starting with the very first) is a forward RM.
        let cell = if self.cells_since_rm == 0 {
            self.rm_sent += 1;
            // TM 4.0 CRM rule: too many forward RM cells in flight with no
            // feedback means the reverse path is broken or congested —
            // decrease instead of coasting at the last allowed rate.
            self.unacked_rm += 1;
            if self.unacked_rm > self.params.crm {
                self.acr = (self.acr - self.acr * self.params.cdf).max(self.params.mcr);
                self.acr_series.push(now, self.acr);
            }
            Cell::rm(
                self.vc,
                RmCell::forward(self.acr, self.params.pcr).with_mcr(self.params.mcr),
                now,
            )
        } else {
            Cell::data(self.vc, now)
        };
        // Counter stays in [0, Nrm); a compare beats a hardware divide on
        // this per-cell path.
        self.cells_since_rm += 1;
        if self.cells_since_rm == self.params.nrm {
            self.cells_since_rm = 0;
        }
        self.cells_sent += 1;
        self.last_tx = Some(now);
        ctx.send(self.next_hop, self.prop, AtmMsg::Cell(cell));
        if self.acr != self.pace_acr {
            self.pace_acr = self.acr;
            self.pace = pacing_interval(self.acr);
        }
        ctx.send_self(self.pace, AtmMsg::Timer(Timer::SourceTx));
    }

    fn on_backward_rm(&mut self, ctx: &mut Ctx<'_, AtmMsg>, rm: &RmCell) {
        self.rm_received += 1;
        self.unacked_rm = 0;
        if rm.ci {
            self.acr -= self.acr / self.params.rdf;
        } else if !rm.ni {
            self.acr += self.params.air;
        }
        self.acr = self.acr.min(rm.er).min(self.params.pcr);
        self.acr = self.acr.max(self.params.mcr);
        if self.rm_received.is_multiple_of(self.acr_sample_stride) {
            self.acr_series.push(ctx.now(), self.acr);
        }
    }
}

impl Node<AtmMsg> for AbrSource {
    fn on_event(&mut self, ctx: &mut Ctx<'_, AtmMsg>, msg: AtmMsg) {
        match msg {
            AtmMsg::Timer(Timer::SourceTx) => self.on_timer(ctx),
            AtmMsg::Cell(cell) => {
                debug_assert!(cell.is_backward_rm(), "source received a non-RM cell");
                if let Some(rm) = cell.as_rm() {
                    let rm = *rm;
                    self.on_backward_rm(ctx, &rm);
                }
            }
            AtmMsg::Timer(t) => unreachable!("source received {t:?}"),
            AtmMsg::Admin(c) => unreachable!("source received {c:?}"),
        }
    }

    fn save_state(&self, w: &mut phantom_sim::KvWriter) -> Result<(), String> {
        // Params, vc, next hop, prop and the sampling stride are static.
        w.scope("gate", |w| self.gate.save_state(w));
        w.f64("acr", self.acr);
        // `pace` is recomputed from `pace_acr` on restore (the invariant
        // pace == pacing_interval(pace_acr) holds at every dispatch edge).
        w.f64("pace_acr", self.pace_acr);
        w.u64("cells_since_rm", u64::from(self.cells_since_rm));
        w.u64("unacked_rm", u64::from(self.unacked_rm));
        w.bool("has_last_tx", self.last_tx.is_some());
        w.u64("last_tx", self.last_tx.map_or(0, |t| t.0));
        w.bool("was_active", self.was_active);
        w.u64("cells_sent", self.cells_sent);
        w.u64("rm_sent", self.rm_sent);
        w.u64("rm_received", self.rm_received);
        w.scope("acr_series", |w| self.acr_series.save(w));
        Ok(())
    }

    fn restore_state(&mut self, r: &mut phantom_sim::KvReader) -> Result<(), String> {
        r.scope("gate", |r| self.gate.restore_state(r))?;
        self.acr = r.f64("acr")?;
        self.pace_acr = r.f64("pace_acr")?;
        self.pace = pacing_interval(self.pace_acr);
        self.cells_since_rm = r.u64("cells_since_rm")? as u32;
        self.unacked_rm = r.u64("unacked_rm")? as u32;
        self.last_tx = if r.bool("has_last_tx")? {
            Some(SimTime(r.u64("last_tx")?))
        } else {
            None
        };
        self.was_active = r.bool("was_active")?;
        self.cells_sent = r.u64("cells_sent")?;
        self.rm_sent = r.u64("rm_sent")?;
        self.rm_received = r.u64("rm_received")?;
        r.scope("acr_series", |r| self.acr_series.restore(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::mbps_to_cps;

    fn mk() -> AbrSource {
        AbrSource::new(
            VcId(1),
            AtmParams::paper(),
            Traffic::greedy(),
            NodeId(0),
            SimDuration::from_micros(10),
        )
    }

    /// Drive the TM4.0 rate rules directly (no engine) through a fake Ctx
    /// is impractical; instead verify the arithmetic via a tiny engine in
    /// the integration tests. Here we check construction invariants.
    #[test]
    fn starts_at_icr() {
        let s = mk();
        assert_eq!(s.acr(), AtmParams::paper().icr);
        assert_eq!(s.vc(), VcId(1));
    }

    #[test]
    fn rate_rules_applied_in_order() {
        // Replicate the backward-RM arithmetic standalone.
        let p = AtmParams::paper();
        let mut acr = mbps_to_cps(100.0);
        // CI decrease
        let before = acr;
        acr -= acr / p.rdf;
        assert!(acr < before);
        assert!((acr - before * (1.0 - 1.0 / 256.0)).abs() < 1e-9);
        // additive increase then ER clamp
        acr += p.air;
        let er = mbps_to_cps(50.0);
        acr = acr.min(er).min(p.pcr).max(p.mcr);
        assert_eq!(acr, er);
    }

    #[test]
    #[should_panic(expected = "invalid ATM parameters")]
    fn invalid_params_rejected() {
        let mut p = AtmParams::paper();
        p.air = -1.0;
        let _ = AbrSource::new(VcId(1), p, Traffic::greedy(), NodeId(0), SimDuration::ZERO);
    }
}
