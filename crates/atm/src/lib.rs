//! # phantom-atm — ATM ABR substrate
//!
//! The Phantom paper evaluates its algorithm on ATM Available Bit Rate
//! (ABR) traffic, with end systems following the ATM Forum Traffic
//! Management 4.0 specification (\[Sat96\] Appendix I in the paper's
//! references). This crate is that substrate, rebuilt from scratch on the
//! [`phantom_sim`] kernel:
//!
//! * [`cell`] — ATM cells and resource-management (RM) cells with the TM4.0
//!   fields the flow-control loop uses: direction, CCR, ER, CI, NI.
//! * [`params`] — end-system parameters with the paper's values
//!   (Nrm=32, AIR·Nrm=42.5 Mb/s, RDF=256, PCR=150 Mb/s, ICR=8.5 Mb/s,
//!   TCR=10 cells/s).
//! * [`cbr`] — unresponsive CBR/VBR-style background sources.
//! * [`source`] / [`dest`] — ABR source and destination end systems: the
//!   source paces cells at ACR, inserts a forward RM cell every Nrm cells,
//!   and adjusts ACR on every backward RM cell; the destination turns RM
//!   cells around.
//! * [`traffic`] — greedy, staggered and on/off workload models used by the
//!   paper's scenarios.
//! * [`allocator`] — the constant-space per-port rate-allocation hook that
//!   Phantom, EPRCA, APRC and CAPC all implement; the switch is
//!   algorithm-agnostic.
//! * [`port`] / [`switch`] — output-queued switches: per-port FIFO,
//!   cell-by-cell transmission at link rate, periodic measurement
//!   intervals, ER stamping of backward RM cells at the forward port.
//! * [`network`] — a topology builder that wires sources, switches and
//!   destinations into an [`phantom_sim::Engine`] and exposes handles for
//!   reading traces back out.
//!
//! Rates are `f64` cells/second throughout; [`units`] converts to and from
//! Mb/s (1 cell = 53 bytes = 424 bits).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allocator;
pub mod cbr;
pub mod cell;
pub mod dest;
pub mod msg;
pub mod network;
pub mod params;
pub mod port;
pub mod source;
pub mod switch;
pub mod traffic;
pub mod units;

pub use allocator::{PortMeasurement, RateAllocator};
pub use cell::{Cell, CellKind, Dir, RmCell, VcId};
pub use msg::{AdminCmd, AtmMsg};
pub use network::{Network, NetworkBuilder, SessionHandle, SwitchHandle};
pub use params::AtmParams;
pub use port::{set_tx_batch_limit, tx_batch_limit};
pub use traffic::Traffic;
