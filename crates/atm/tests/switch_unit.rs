//! Direct tests of the switch/port machinery: routing, stamping hooks,
//! serialization pacing, and the EFCI data-path marking with destination
//! echo (the binary-feedback plumbing of TM 4.0).

use phantom_atm::allocator::{PortMeasurement, RateAllocator};
use phantom_atm::cell::{Cell, RmCell, VcId};
use phantom_atm::msg::{AtmMsg, Timer};
use phantom_atm::port::Port;
use phantom_atm::switch::{Switch, VcRoute};
use phantom_sim::{Ctx, Engine, Node, NodeId, SimDuration, SimTime};

/// Collects every message it receives, with timestamps.
#[derive(Default)]
struct Collector {
    cells: Vec<(SimTime, Cell)>,
}

impl Node<AtmMsg> for Collector {
    fn on_event(&mut self, ctx: &mut Ctx<'_, AtmMsg>, msg: AtmMsg) {
        if let AtmMsg::Cell(c) = msg {
            self.cells.push((ctx.now(), c));
        }
    }
}

/// An allocator that marks every data cell's EFCI bit and counts hook
/// invocations.
#[derive(Default)]
struct MarkAll {
    forward_seen: u64,
    backward_seen: u64,
}

impl RateAllocator for MarkAll {
    fn on_interval(&mut self, _m: &PortMeasurement) {}
    fn forward_rm(&mut self, _vc: VcId, _rm: &mut RmCell, _q: usize) {
        self.forward_seen += 1;
    }
    fn backward_rm(&mut self, _vc: VcId, rm: &mut RmCell, _q: usize) {
        self.backward_seen += 1;
        rm.limit_er(12_345.0);
    }
    fn mark_efci(&self, _q: usize) -> bool {
        true
    }
    fn fair_share(&self) -> f64 {
        0.0
    }
    fn name(&self) -> &'static str {
        "mark-all"
    }
}

/// One switch with a forward port (to `dst`) and a backward port (to
/// `src`), routing VC 1 between them.
fn build(
    alloc: Box<dyn RateAllocator>,
) -> (
    Engine<AtmMsg>,
    NodeId, /*switch*/
    NodeId, /*fwd*/
    NodeId, /*bwd*/
) {
    let mut engine = Engine::new(3);
    let fwd_sink = engine.add_node(Collector::default());
    let bwd_sink = engine.add_node(Collector::default());
    let mut sw = Switch::new("sw");
    let fwd_port = sw.add_port(Port::new(
        fwd_sink,
        100_000.0, // cells/s -> 10 us per cell
        SimDuration::from_micros(5),
        64,
        alloc,
        SimDuration::from_millis(1),
    ));
    let bwd_port = sw.add_port(Port::new(
        bwd_sink,
        100_000.0,
        SimDuration::from_micros(5),
        64,
        Box::new(phantom_atm::allocator::NoControl),
        SimDuration::from_millis(1),
    ));
    sw.add_route(VcId(1), VcRoute { fwd_port, bwd_port });
    let sw_id = engine.add_node(sw);
    (engine, sw_id, fwd_sink, bwd_sink)
}

#[test]
fn data_cells_route_forward_and_get_efci_marked() {
    let (mut engine, sw, fwd, bwd) = build(Box::new(MarkAll::default()));
    engine.schedule(
        SimTime::ZERO,
        sw,
        AtmMsg::Cell(Cell::data(VcId(1), SimTime::ZERO)),
    );
    engine.run_until(SimTime::from_millis(1));
    let fwd_cells = &engine.node::<Collector>(fwd).cells;
    assert_eq!(fwd_cells.len(), 1);
    assert!(fwd_cells[0].1.efci, "MarkAll must set EFCI on data cells");
    assert!(engine.node::<Collector>(bwd).cells.is_empty());
}

#[test]
fn backward_rm_is_stamped_by_the_forward_ports_allocator() {
    let (mut engine, sw, fwd, bwd) = build(Box::new(MarkAll::default()));
    let rm = RmCell::forward(1.0, 1e9).turned_around();
    engine.schedule(
        SimTime::ZERO,
        sw,
        AtmMsg::Cell(Cell::rm(VcId(1), rm, SimTime::ZERO)),
    );
    engine.run_until(SimTime::from_millis(1));
    // The cell leaves through the *backward* port…
    let bwd_cells = &engine.node::<Collector>(bwd).cells;
    assert_eq!(bwd_cells.len(), 1);
    assert!(engine.node::<Collector>(fwd).cells.is_empty());
    // …stamped by the *forward* port's allocator.
    let er = bwd_cells[0].1.as_rm().unwrap().er;
    assert_eq!(er, 12_345.0);
}

#[test]
fn serialization_paces_back_to_back_cells_at_cell_time() {
    let (mut engine, sw, fwd, _) = build(Box::new(phantom_atm::allocator::NoControl));
    // Three cells arriving simultaneously serialize 10 us apart.
    for _ in 0..3 {
        engine.schedule(
            SimTime::ZERO,
            sw,
            AtmMsg::Cell(Cell::data(VcId(1), SimTime::ZERO)),
        );
    }
    engine.run_until(SimTime::from_millis(1));
    let t: Vec<u64> = engine
        .node::<Collector>(fwd)
        .cells
        .iter()
        .map(|(t, _)| t.as_nanos())
        .collect();
    assert_eq!(t.len(), 3);
    assert_eq!(t[1] - t[0], 10_000, "cell spacing must equal 1/capacity");
    assert_eq!(t[2] - t[1], 10_000);
    // First cell: 10 us serialization + 5 us propagation.
    assert_eq!(t[0], 15_000);
}

#[test]
fn forward_rm_hook_fires_once_per_forward_rm_cell() {
    let (mut engine, sw, _, _) = build(Box::new(MarkAll::default()));
    for i in 0..4 {
        let rm = RmCell::forward(i as f64, 1e9);
        engine.schedule(
            SimTime::from_micros(i),
            sw,
            AtmMsg::Cell(Cell::rm(VcId(1), rm, SimTime::ZERO)),
        );
    }
    engine.run_until(SimTime::from_millis(1));
    let sw_ref = engine.node::<Switch>(sw);
    let any: &dyn std::any::Any = sw_ref.port(0).allocator();
    let alloc = any.downcast_ref::<MarkAll>().unwrap();
    assert_eq!(alloc.forward_seen, 4);
    assert_eq!(alloc.backward_seen, 0);
}

#[test]
fn measurement_timer_reschedules_itself() {
    let (mut engine, sw, _, _) = build(Box::new(phantom_atm::allocator::NoControl));
    engine.schedule(
        SimTime::from_millis(1),
        sw,
        AtmMsg::Timer(Timer::Measure { port: 0 }),
    );
    engine.run_until(SimTime::from_millis(10));
    let series = &engine.node::<Switch>(sw).port(0).macr_series;
    assert!(
        (9..=11).contains(&series.len()),
        "expected ~10 interval samples, got {}",
        series.len()
    );
}

#[test]
#[should_panic(expected = "no route")]
fn unrouted_vc_panics_loudly() {
    let (mut engine, sw, _, _) = build(Box::new(phantom_atm::allocator::NoControl));
    engine.schedule(
        SimTime::ZERO,
        sw,
        AtmMsg::Cell(Cell::data(VcId(99), SimTime::ZERO)),
    );
    engine.run_until(SimTime::from_millis(1));
}

#[test]
fn destination_echoes_efci_into_backward_ci() {
    use phantom_atm::dest::AbrDest;
    // dest <- marked data cell, then a forward RM: the turned-around RM
    // must carry CI=1 exactly once.
    let mut engine = Engine::new(4);
    let sink = engine.add_node(Collector::default());
    let dest = engine.add_node(AbrDest::new(
        VcId(1),
        sink,
        SimDuration::from_micros(1),
        SimDuration::from_millis(5),
    ));
    let mut marked = Cell::data(VcId(1), SimTime::ZERO);
    marked.efci = true;
    engine.schedule(SimTime::ZERO, dest, AtmMsg::Cell(marked));
    let rm = || Cell::rm(VcId(1), RmCell::forward(1.0, 1e9), SimTime::ZERO);
    engine.schedule(SimTime::from_micros(10), dest, AtmMsg::Cell(rm()));
    engine.schedule(SimTime::from_micros(20), dest, AtmMsg::Cell(rm()));
    engine.run_until(SimTime::from_millis(1));
    let got = &engine.node::<Collector>(sink).cells;
    assert_eq!(got.len(), 2);
    assert!(
        got[0].1.as_rm().unwrap().ci,
        "first RM after a marked data cell echoes CI"
    );
    assert!(
        !got[1].1.as_rm().unwrap().ci,
        "the echo clears after one RM"
    );
}
