//! End-to-end tests of the ATM substrate with trivial allocators: these
//! pin the TM 4.0 end-system behavior and the feedback plumbing before any
//! real flow-control algorithm enters the picture.

use phantom_atm::allocator::FixedEr;
use phantom_atm::dest::AbrDest;
use phantom_atm::network::SessionId;
use phantom_atm::network::TrunkIdx;
use phantom_atm::source::AbrSource;
use phantom_atm::switch::Switch;
use phantom_atm::units::{cps_to_mbps, mbps_to_cps};
use phantom_atm::{AtmMsg, AtmParams, NetworkBuilder, RateAllocator, Traffic};
use phantom_sim::{Engine, SimDuration, SimTime};

fn one_link(
    n_sessions: usize,
    alloc: &mut dyn FnMut() -> Box<dyn RateAllocator>,
) -> (Engine<AtmMsg>, phantom_atm::Network) {
    let mut b = NetworkBuilder::new();
    let s1 = b.switch("s1");
    let s2 = b.switch("s2");
    b.trunk(s1, s2, 150.0, SimDuration::from_micros(10));
    for _ in 0..n_sessions {
        b.session(&[s1, s2], Traffic::greedy());
    }
    let mut engine = Engine::new(7);
    let net = b.build(&mut engine, alloc);
    (engine, net)
}

#[test]
fn no_control_lets_a_single_source_reach_pcr() {
    let (mut engine, net) = one_link(1, &mut || Box::new(phantom_atm::allocator::NoControl));
    engine.run_until(SimTime::from_millis(200));
    let src = engine.node::<AbrSource>(net.sessions[0].source);
    // Additive increase with no ER restriction marches ACR to PCR.
    assert!(
        cps_to_mbps(src.acr()) > 149.0,
        "ACR should reach PCR, got {} Mb/s",
        cps_to_mbps(src.acr())
    );
    // And the source actually delivers near line rate at steady state.
    let rate = net.session_rate(&engine, SessionId(0)).mean_after(0.1);
    assert!(
        cps_to_mbps(rate) > 130.0,
        "delivered rate too low: {} Mb/s",
        cps_to_mbps(rate)
    );
}

#[test]
fn fixed_er_caps_acr_exactly() {
    let cap = mbps_to_cps(40.0);
    let (mut engine, net) = one_link(1, &mut || Box::new(FixedEr(cap)));
    engine.run_until(SimTime::from_millis(200));
    let src = engine.node::<AbrSource>(net.sessions[0].source);
    assert!(
        (src.acr() - cap).abs() < 1e-6,
        "ACR should sit exactly at the stamped ER"
    );
}

#[test]
fn rm_cells_are_one_per_nrm_cells() {
    let (mut engine, net) = one_link(1, &mut || Box::new(phantom_atm::allocator::NoControl));
    engine.run_until(SimTime::from_millis(100));
    let src = engine.node::<AbrSource>(net.sessions[0].source);
    let nrm = AtmParams::paper().nrm as u64;
    // cells_sent = rm_sent + data; every Nrm-th cell is RM.
    assert!(src.cells_sent > 1000, "source barely sent anything");
    let expected_rm = src.cells_sent / nrm + u64::from(src.cells_sent % nrm != 0);
    assert_eq!(src.rm_sent, expected_rm);
}

#[test]
fn destination_turns_every_rm_around() {
    let (mut engine, net) = one_link(2, &mut || Box::new(phantom_atm::allocator::NoControl));
    engine.run_until(SimTime::from_millis(100));
    for s in &net.sessions {
        let dest = engine.node::<AbrDest>(s.dest);
        let src = engine.node::<AbrSource>(s.source);
        assert!(dest.rm_turned > 0);
        // Every backward RM the source got was turned by the dest; allow
        // for cells still in flight.
        assert!(src.rm_received <= dest.rm_turned);
        assert!(dest.rm_turned - src.rm_received < 20);
    }
}

#[test]
fn conservation_no_cells_created_or_lost() {
    let (mut engine, net) = one_link(3, &mut || Box::new(phantom_atm::allocator::NoControl));
    engine.run_until(SimTime::from_millis(150));
    let mut sent = 0;
    let mut received = 0;
    for s in &net.sessions {
        sent += engine.node::<AbrSource>(s.source).cells_sent;
        received += engine.node::<AbrDest>(s.dest).cells_received;
    }
    let trunk = net.trunk_port(&engine, TrunkIdx(0));
    let dropped = trunk.drops();
    let queued = trunk.queue_len() as u64;
    // received + dropped + queued + in-flight == sent; in-flight is small.
    assert!(received + dropped + queued <= sent);
    assert!(
        sent - received - dropped - queued < 3 * 50,
        "too many cells unaccounted: sent={sent} received={received} \
         dropped={dropped} queued={queued}"
    );
}

#[test]
fn uncontrolled_overload_builds_queue_and_drops() {
    // 3 greedy sources at PCR onto one 150 Mb/s trunk with no control:
    // the port queue must grow and eventually tail-drop.
    let mut b = NetworkBuilder::new().queue_cap(2000);
    let s1 = b.switch("s1");
    let s2 = b.switch("s2");
    b.trunk(s1, s2, 150.0, SimDuration::from_micros(10));
    for _ in 0..3 {
        b.session(&[s1, s2], Traffic::greedy());
    }
    let mut engine = Engine::new(11);
    let net = b.build(&mut engine, &mut || {
        Box::new(phantom_atm::allocator::NoControl)
    });
    engine.run_until(SimTime::from_millis(300));
    let port = net.trunk_port(&engine, TrunkIdx(0));
    assert_eq!(port.queue_high_water(), 2000, "queue should hit its cap");
    assert!(port.drops() > 0, "overload must drop cells");
}

#[test]
fn on_off_source_is_silent_during_off_periods() {
    let mut b = NetworkBuilder::new();
    let s1 = b.switch("s1");
    let s2 = b.switch("s2");
    b.trunk(s1, s2, 150.0, SimDuration::from_micros(10));
    b.session(
        &[s1, s2],
        Traffic::on_off(
            SimTime::ZERO,
            SimDuration::from_millis(20),
            SimDuration::from_millis(20),
        ),
    );
    let mut engine = Engine::new(3);
    let net = b.build(&mut engine, &mut || {
        Box::new(phantom_atm::allocator::NoControl)
    });
    // run to the middle of the first off period
    engine.run_until(SimTime::from_millis(25));
    let sent_mid_off = engine.node::<AbrSource>(net.sessions[0].source).cells_sent;
    engine.run_until(SimTime::from_millis(39));
    let sent_end_off = engine.node::<AbrSource>(net.sessions[0].source).cells_sent;
    assert_eq!(
        sent_mid_off, sent_end_off,
        "source transmitted during its off period"
    );
    engine.run_until(SimTime::from_millis(60));
    let sent_second_on = engine.node::<AbrSource>(net.sessions[0].source).cells_sent;
    assert!(sent_second_on > sent_end_off, "source never woke up again");
}

#[test]
fn two_sessions_share_a_fixed_er_equally() {
    let cap = mbps_to_cps(30.0);
    let (mut engine, net) = one_link(2, &mut || Box::new(FixedEr(cap)));
    engine.run_until(SimTime::from_millis(300));
    for s in 0..2 {
        let rate = net.session_rate(&engine, SessionId(s)).mean_after(0.2);
        // each source sits at ER; delivered rate ≈ 30 Mb/s each
        assert!(
            (cps_to_mbps(rate) - 30.0).abs() < 2.0,
            "session {s} rate {} Mb/s",
            cps_to_mbps(rate)
        );
    }
}

#[test]
fn deterministic_runs_produce_identical_traces() {
    let run = || {
        let (mut engine, net) = one_link(2, &mut || Box::new(FixedEr(mbps_to_cps(50.0))));
        engine.run_until(SimTime::from_millis(100));
        let acr: Vec<f64> = net.session_acr(&engine, SessionId(0)).values().to_vec();
        let q: Vec<f64> = net.trunk_queue(&engine, TrunkIdx(0)).values().to_vec();
        (acr, q, engine.events_processed())
    };
    let (a1, q1, e1) = run();
    let (a2, q2, e2) = run();
    assert_eq!(a1, a2);
    assert_eq!(q1, q2);
    assert_eq!(e1, e2);
}

#[test]
fn switch_port_traces_are_recorded_each_interval() {
    let (mut engine, net) = one_link(1, &mut || Box::new(FixedEr(mbps_to_cps(50.0))));
    engine.run_until(SimTime::from_millis(50));
    let q = net.trunk_queue(&engine, TrunkIdx(0));
    // 1 ms interval for 50 ms -> ~50 samples
    assert!((45..=55).contains(&q.len()), "got {} samples", q.len());
    let sw = engine.node::<Switch>(net.trunks[0].a_switch);
    assert_eq!(sw.name(), "s1");
}

/// A node that swallows everything — used to test the CRM rule.
struct BlackHole;
impl phantom_sim::Node<AtmMsg> for BlackHole {
    fn on_event(&mut self, _ctx: &mut phantom_sim::Ctx<'_, AtmMsg>, _msg: AtmMsg) {}
}

#[test]
fn crm_rule_decays_acr_when_feedback_stops() {
    use phantom_atm::cell::VcId;
    use phantom_atm::source::AbrSource;
    let mut engine: Engine<AtmMsg> = Engine::new(1);
    let hole = engine.add_node(BlackHole);
    let params = AtmParams::paper();
    let src = engine.add_node(AbrSource::new(
        VcId(0),
        params,
        Traffic::greedy(),
        hole,
        SimDuration::from_micros(10),
    ));
    engine.schedule(
        SimTime::ZERO,
        src,
        AtmMsg::Timer(phantom_atm::msg::Timer::SourceTx),
    );
    engine.run_until(SimTime::from_secs(3));
    let s = engine.node::<AbrSource>(src);
    // With no backward RM cells ever arriving, the CRM rule must have
    // driven ACR well below ICR (a source without the rule would coast
    // at ICR forever, blasting a dead path).
    assert!(
        s.acr() < params.icr * 0.5,
        "ACR should decay without feedback: {} vs ICR {}",
        s.acr(),
        params.icr
    );
    assert!(s.acr() >= params.mcr, "ACR must respect the MCR floor");
}

#[test]
fn destination_records_cell_delays() {
    let (mut engine, net) = one_link(2, &mut || Box::new(phantom_atm::allocator::NoControl));
    engine.run_until(SimTime::from_millis(200));
    let dest = engine.node::<AbrDest>(net.sessions[0].dest);
    assert!(dest.delay_hist.count() > 1000, "no delays recorded");
    // Minimum possible delay: source pacing + access prop + trunk
    // serialization + trunk prop + access prop ≈ 25-30 us. Under overload
    // the mean is dominated by trunk queueing, but must stay below the
    // 16k-cell buffer's drain time (~46 ms).
    assert!(dest.delay_hist.mean() > 0.02, "mean delay suspiciously low");
    assert!(
        dest.delay_hist.mean() < 60.0,
        "mean delay {} ms exceeds the buffer bound",
        dest.delay_hist.mean()
    );
    assert!(dest.delay_hist.quantile(0.99) >= dest.delay_hist.quantile(0.5));
}

#[test]
fn injected_link_loss_does_not_wedge_the_control_loop() {
    // 1% cell loss on the bottleneck (both directions): data and RM
    // cells die at random. The TM 4.0 rules (CRM missing-RM decrease +
    // additive re-increase) must keep both sessions alive and the
    // allocation roughly fair, with throughput close to the lossless
    // fixed point.
    // FixedEr as the controller: loss resilience is an end-system
    // property, not an allocator property.
    let mut b = NetworkBuilder::new();
    let s1 = b.switch("s1");
    let s2 = b.switch("s2");
    b.trunk(s1, s2, 150.0, SimDuration::from_micros(10));
    b.last_trunk_loss(0.01);
    for _ in 0..2 {
        b.session(&[s1, s2], Traffic::greedy());
    }
    let mut engine = Engine::new(77);
    let er = mbps_to_cps(60.0);
    let net = b.build(&mut engine, &mut || Box::new(FixedEr(er)));
    engine.run_until(SimTime::from_millis(800));

    let port = net.trunk_port(&engine, TrunkIdx(0));
    assert!(port.wire_losses > 100, "loss injection never fired");
    for s in 0..2 {
        let rate = net.session_rate(&engine, SessionId(s)).mean_after(0.4);
        // ~60 Mb/s ER minus ~1% wire loss and CRM-induced dips.
        assert!(
            cps_to_mbps(rate) > 40.0,
            "session {s} starved under 1% loss: {:.1} Mb/s",
            cps_to_mbps(rate)
        );
    }
    // Sources survived: they are still sending at a healthy ACR.
    for s in &net.sessions {
        let src = engine.node::<AbrSource>(s.source);
        assert!(
            cps_to_mbps(src.acr()) > 10.0,
            "ACR collapsed under loss: {:.2} Mb/s",
            cps_to_mbps(src.acr())
        );
    }
}

#[test]
fn loss_injection_is_deterministic_per_seed() {
    let run = |seed: u64| {
        let mut b = NetworkBuilder::new();
        let s1 = b.switch("s1");
        let s2 = b.switch("s2");
        b.trunk(s1, s2, 150.0, SimDuration::from_micros(10));
        b.last_trunk_loss(0.05);
        b.session(&[s1, s2], Traffic::greedy());
        let mut engine = Engine::new(seed);
        let net = b.build(&mut engine, &mut || {
            Box::new(phantom_atm::allocator::NoControl)
        });
        engine.run_until(SimTime::from_millis(100));
        net.trunk_port(&engine, TrunkIdx(0)).wire_losses
    };
    assert_eq!(run(9), run(9));
    assert_ne!(run(9), run(10));
}

#[test]
fn cbr_priority_isolates_reserved_traffic_from_abr_queueing() {
    // An uncontrolled ABR flood builds a deep queue. A 10 Mb/s CBR
    // circuit shares the trunk. FIFO: the CBR cells wade through the
    // ABR backlog. Priority: their delay collapses to near-propagation.
    let run = |priority: bool| -> f64 {
        let mut b = NetworkBuilder::new().queue_cap(4000).cbr_priority(priority);
        let s1 = b.switch("s1");
        let s2 = b.switch("s2");
        b.trunk(s1, s2, 150.0, SimDuration::from_micros(10));
        for _ in 0..2 {
            b.session(&[s1, s2], Traffic::greedy()); // uncontrolled flood
        }
        b.cbr_session(&[s1, s2], 10.0, Traffic::greedy());
        let mut engine = Engine::new(13);
        let net = b.build(&mut engine, &mut || {
            Box::new(phantom_atm::allocator::NoControl)
        });
        engine.run_until(SimTime::from_millis(300));
        engine
            .node::<AbrDest>(net.sessions[2].dest)
            .delay_hist
            .quantile(0.99)
    };
    let fifo_p99 = run(false);
    let prio_p99 = run(true);
    // FIFO: queue of thousands of cells at 2.8 us each => several ms.
    assert!(fifo_p99 > 1.0, "FIFO CBR p99 {fifo_p99:.3} ms too low");
    // Priority: only in-flight ABR cell ahead => well under a millisecond.
    assert!(
        prio_p99 < 0.3,
        "priority CBR p99 {prio_p99:.3} ms should be near-propagation"
    );
    assert!(prio_p99 < fifo_p99 / 10.0);
}
