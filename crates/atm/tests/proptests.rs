//! Property-based tests of the ATM substrate's pure pieces.

use phantom_atm::cell::RmCell;
use phantom_atm::params::AtmParams;
use phantom_atm::traffic::Traffic;
use phantom_atm::units::{cps_to_mbps, mbps_to_cps};
use phantom_sim::{SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    /// Unit conversion round-trips.
    #[test]
    fn units_round_trip(mbps in 0.001f64..10_000.0) {
        let back = cps_to_mbps(mbps_to_cps(mbps));
        prop_assert!((back - mbps).abs() < 1e-9 * mbps);
    }

    /// On/off traffic is periodic and next_active always lands on an
    /// active instant at or after the query.
    #[test]
    fn on_off_periodicity(
        start_ms in 0u64..100,
        on_ms in 1u64..100,
        off_ms in 1u64..100,
        t_ms in 0u64..10_000,
    ) {
        let tr = Traffic::on_off(
            SimTime::from_millis(start_ms),
            SimDuration::from_millis(on_ms),
            SimDuration::from_millis(off_ms),
        );
        let t = SimTime::from_millis(t_ms);
        let period = SimDuration::from_millis(on_ms + off_ms);
        if t >= SimTime::from_millis(start_ms) {
            prop_assert_eq!(tr.is_active(t), tr.is_active(t + period));
        }
        let next = tr.next_active(t).expect("on/off never dies");
        prop_assert!(next >= t);
        prop_assert!(tr.is_active(next), "next_active returned an inactive instant");
        // no active instant in (t, next) — spot-check the midpoint
        if next > t {
            let mid = SimTime((t.as_nanos() + next.as_nanos()) / 2);
            if mid > t && mid < next {
                prop_assert!(!tr.is_active(mid));
            }
        }
    }

    /// Greedy windows: active exactly inside [start, stop).
    #[test]
    fn window_activity(start in 0u64..1000, len in 1u64..1000, t in 0u64..3000) {
        let tr = Traffic::window(
            SimTime::from_millis(start),
            SimTime::from_millis(start + len),
        );
        let active = tr.is_active(SimTime::from_millis(t));
        prop_assert_eq!(active, t >= start && t < start + len);
    }

    /// ER can only decrease through any sequence of limit operations.
    #[test]
    fn er_never_increases(limits in proptest::collection::vec(0.0f64..1e7, 1..100)) {
        let mut rm = RmCell::forward(0.0, 1e7).turned_around();
        let mut floor = 1e7f64;
        for l in limits {
            rm.limit_er(l);
            floor = floor.min(l);
            prop_assert!((rm.er - floor).abs() < 1e-9);
        }
    }

    /// The TM4.0 source arithmetic keeps ACR inside [MCR, min(ER, PCR)]
    /// for any backward-RM sequence (replicates the source's update rule).
    #[test]
    fn acr_stays_in_bounds(
        events in proptest::collection::vec((any::<bool>(), any::<bool>(), 0.0f64..500_000.0), 1..300),
    ) {
        let p = AtmParams::paper();
        let mut acr = p.icr;
        for (ci, ni, er) in events {
            if ci {
                acr -= acr / p.rdf;
            } else if !ni {
                acr += p.air;
            }
            acr = acr.min(er).min(p.pcr).max(p.mcr);
            prop_assert!(acr >= p.mcr - 1e-9);
            prop_assert!(acr <= p.pcr + 1e-9);
            prop_assert!(acr.is_finite());
        }
    }

    /// Parameter validation: ICR above PCR or MCR above ICR always fails.
    #[test]
    fn params_validation_ordering(a in 1.0f64..1e6, b in 1.0f64..1e6) {
        let mut p = AtmParams::paper();
        p.pcr = a.min(b);
        p.icr = a.max(b) + 1.0;
        prop_assert!(p.validate().is_err());
    }
}
