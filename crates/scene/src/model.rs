//! The `phantom-scene/1` scene model: parsing, validation, serialization.
//!
//! A scene is a declarative description of one experiment — an arbitrary
//! switch/trunk topology, a session mix (greedy/windowed/bursty ABR plus
//! unresponsive CBR), optional per-trunk Phantom parameter overrides —
//! plus a *timeline* of mid-run events (session churn, link capacity
//! changes, link failure/recovery) and the analysis targets the scenario
//! predicts (fixed-point MACR, perturbation epochs).
//!
//! Parsing is strict: unknown keys, dangling route hops, zero-capacity
//! links, duplicate session ids and ill-formed timelines are all
//! rejected with an error naming the offending key (e.g.
//! `sessions[2].path[1]: no trunk between ...`), so a typo in a scene
//! file can never silently change the experiment.

use crate::json::Json;
use phantom_metrics::json::{json_f64, json_str};
use std::fmt::Write as _;

/// Schema tag of scene files.
pub const SCENE_SCHEMA: &str = "phantom-scene/1";

/// The algorithm names a scene may request (the registry's catalog).
pub const ALGORITHMS: [&str; 9] = [
    "phantom",
    "phantom-fixed-alpha",
    "phantom-departures",
    "phantom-ni",
    "eprca",
    "aprc",
    "capc",
    "erica",
    "osu",
];

/// A parsed scene.
#[derive(Clone, Debug, PartialEq)]
pub struct Scene {
    /// Experiment id the scene registers under (may shadow a built-in).
    pub id: String,
    /// One-line description.
    pub describe: String,
    /// Rate-control algorithm name (one of [`ALGORITHMS`]).
    pub algorithm: String,
    /// Run length in milliseconds.
    pub duration_ms: f64,
    /// Scene-wide Phantom utilization factor override (`u`).
    pub u: Option<f64>,
    /// Strict-priority CBR queueing at every port.
    pub cbr_priority: bool,
    /// Generated (parametric) topology. Mutually exclusive with
    /// explicit `switches`/`trunks`/`sessions`.
    pub generate: Option<GenerateDecl>,
    /// Switch names, in declaration order.
    pub switches: Vec<String>,
    /// Trunks, in declaration order.
    pub trunks: Vec<TrunkDecl>,
    /// Sessions, in declaration order.
    pub sessions: Vec<SessionDecl>,
    /// Index of the trunk the standard panels and the analyzer watch.
    pub bottleneck: usize,
    /// Mid-run events, applied in declaration order.
    pub timeline: Vec<TimelineEvent>,
    /// Analysis targets (fixed point, epochs).
    pub analysis: AnalysisDecl,
}

/// One bidirectional trunk.
#[derive(Clone, Debug, PartialEq)]
pub struct TrunkDecl {
    /// Endpoint switch names.
    pub a: String,
    /// See [`TrunkDecl::a`].
    pub b: String,
    /// Capacity, Mb/s.
    pub mbps: f64,
    /// One-way propagation delay, microseconds.
    pub prop_us: f64,
    /// Per-trunk Phantom utilization factor override.
    pub u: Option<f64>,
    /// Per-trunk MACR increase-gain override (`alpha_inc`).
    pub alpha_inc: Option<f64>,
    /// Per-trunk MACR decrease-gain override (`alpha_dec`).
    pub alpha_dec: Option<f64>,
}

/// One session.
#[derive(Clone, Debug, PartialEq)]
pub struct SessionDecl {
    /// Unique session id (referenced by timeline churn events).
    pub id: String,
    /// Switch names along the route, in order.
    pub path: Vec<String>,
    /// Offered-load pattern.
    pub traffic: TrafficDecl,
    /// `Some(rate)` makes this an unresponsive CBR source at `rate` Mb/s.
    pub cbr_mbps: Option<f64>,
}

/// A seeded parametric topology: the "metro" scene class. Instead of
/// declaring every switch/trunk/session, the scene names a generator
/// shape and its parameters, and [`crate::compile::compile`] drives the
/// `NetworkBuilder` directly — no per-session strings are ever
/// materialized, so 10^5–10^6-session scenes compile in O(sessions)
/// with small constants.
#[derive(Clone, Debug, PartialEq)]
pub struct GenerateDecl {
    /// Topology shape.
    pub kind: GenerateKind,
    /// Generation seed: per-session start jitter is a pure function of
    /// `(seed, session index)`, independent of the run seed.
    pub seed: u64,
    /// Session activation times are spread uniformly over
    /// `[0, start_spread_ms)` so 10^5 sources don't fire their initial
    /// cell in the same nanosecond (0 = all greedy from t=0).
    pub start_spread_ms: f64,
    /// Destination goodput sampling period, ms (coarser than the 5 ms
    /// figure default — per-session series dominate memory at scale).
    pub rate_sample_ms: f64,
    /// Record every `acr_stride`-th ACR update per source (1 = all).
    pub acr_stride: u64,
    /// Initial Cell Rate override, Mb/s. The paper's 8.5 Mb/s default
    /// is per-figure realistic but catastrophic at metro scale (10^5
    /// sources would offer 850 Gb/s at t=0); metro scenes set this near
    /// the per-session fair share.
    pub icr_mbps: Option<f64>,
}

/// The generator shapes.
#[derive(Clone, Debug, PartialEq)]
pub enum GenerateKind {
    /// `leaves` access switches each feeding `sessions_per_leaf`
    /// sessions over a private trunk into one core switch, which drains
    /// into a sink over the shared root trunk (trunk 0 — the natural
    /// bottleneck). Trunks `1..=leaves` are the leaf uplinks.
    FanIn {
        /// Access switch count.
        leaves: usize,
        /// Sessions homed on each leaf.
        sessions_per_leaf: usize,
        /// Leaf → core uplink capacity, Mb/s.
        leaf_mbps: f64,
        /// Core → sink root capacity, Mb/s.
        root_mbps: f64,
        /// One-way propagation per trunk, microseconds.
        prop_us: f64,
    },
    /// A chain of `hops + 1` switches. `long_sessions` sessions cross
    /// every hop; `cross_per_hop` sessions ride each single hop. Trunk
    /// `i` is hop `i` (bottleneck defaults to trunk 0).
    ParkingLot {
        /// Hop (trunk) count.
        hops: usize,
        /// Sessions crossing the whole chain.
        long_sessions: usize,
        /// Single-hop sessions per hop.
        cross_per_hop: usize,
        /// Per-hop capacity, Mb/s.
        hop_mbps: f64,
        /// One-way propagation per hop, microseconds.
        prop_us: f64,
    },
}

impl GenerateDecl {
    /// Total sessions the generator will create.
    pub fn n_sessions(&self) -> usize {
        match self.kind {
            GenerateKind::FanIn {
                leaves,
                sessions_per_leaf,
                ..
            } => leaves.saturating_mul(sessions_per_leaf),
            GenerateKind::ParkingLot {
                hops,
                long_sessions,
                cross_per_hop,
                ..
            } => long_sessions.saturating_add(hops.saturating_mul(cross_per_hop)),
        }
    }

    /// Trunks the generator will create (indexable by `bottleneck` and
    /// timeline trunk events).
    pub fn n_trunks(&self) -> usize {
        match self.kind {
            GenerateKind::FanIn { leaves, .. } => leaves + 1,
            GenerateKind::ParkingLot { hops, .. } => hops,
        }
    }

    /// Capacity of generated trunk `t`, Mb/s.
    pub fn trunk_mbps(&self, t: usize) -> f64 {
        match self.kind {
            GenerateKind::FanIn {
                leaf_mbps,
                root_mbps,
                ..
            } => {
                if t == 0 {
                    root_mbps
                } else {
                    leaf_mbps
                }
            }
            GenerateKind::ParkingLot { hop_mbps, .. } => hop_mbps,
        }
    }
}

/// The offered-load patterns a scene can declare.
#[derive(Clone, Debug, PartialEq)]
pub enum TrafficDecl {
    /// Always has cells to send.
    Greedy,
    /// Greedy inside `[start, stop)`, idle outside.
    Window {
        /// Activation time, ms.
        start_ms: f64,
        /// Deactivation time, ms.
        stop_ms: f64,
    },
    /// Deterministic on/off bursts.
    OnOff {
        /// First burst start, ms.
        start_ms: f64,
        /// Burst length, ms.
        on_ms: f64,
        /// Silence length, ms.
        off_ms: f64,
    },
    /// Exponentially distributed on/off bursts (seeded, deterministic).
    Random {
        /// Mean burst length, ms.
        mean_on_ms: f64,
        /// Mean silence length, ms.
        mean_off_ms: f64,
    },
}

/// One timeline entry.
#[derive(Clone, Debug, PartialEq)]
pub struct TimelineEvent {
    /// When the event fires, ms into the run.
    pub at_ms: f64,
    /// What happens.
    pub kind: EventKind,
}

/// The mid-run events a timeline can schedule.
#[derive(Clone, Debug, PartialEq)]
pub enum EventKind {
    /// Re-rate both directions of a trunk.
    SetCapacity {
        /// Trunk index.
        trunk: usize,
        /// New capacity, Mb/s.
        mbps: f64,
    },
    /// Fail a trunk (both directions drop every cell).
    LinkDown {
        /// Trunk index.
        trunk: usize,
    },
    /// Recover a failed trunk.
    LinkUp {
        /// Trunk index.
        trunk: usize,
    },
    /// Start a (declared-greedy) session at this time.
    SessionStart {
        /// Session id.
        session: String,
    },
    /// Stop a session at this time.
    SessionStop {
        /// Session id.
        session: String,
    },
}

/// Analysis targets the scene predicts for its bottleneck trunk.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct AnalysisDecl {
    /// Tail start for the whole-run aggregates, ms (default: half the run).
    pub tail_from_ms: Option<f64>,
    /// Convergence band as a fraction of the target (default 0.15).
    pub conv_tol: Option<f64>,
    /// Explicit whole-run MACR fixed-point target, Mb/s.
    pub macr_mbps: Option<f64>,
    /// Alternative: derive the target as `C/(1+n·u)` from this `n`.
    pub n_sessions: Option<usize>,
    /// Perturbation epochs, ascending and non-overlapping.
    pub epochs: Vec<EpochDecl>,
}

/// One perturbation epoch: the analyzer measures re-convergence time and
/// fixed-point error against the epoch's own MACR target, with the tail
/// being the second half of the epoch.
#[derive(Clone, Debug, PartialEq)]
pub struct EpochDecl {
    /// Epoch start, ms.
    pub from_ms: f64,
    /// Epoch end (exclusive), ms.
    pub to_ms: f64,
    /// Explicit MACR target, Mb/s.
    pub macr_mbps: Option<f64>,
    /// Alternative: derive the target as `C/(1+n·u)` from this `n`.
    pub n_sessions: Option<usize>,
    /// Capacity `C` used with `n_sessions`, Mb/s (default: the
    /// bottleneck trunk's declared capacity).
    pub capacity_mbps: Option<f64>,
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

fn expect_obj<'a>(
    j: &'a Json,
    path: &str,
    allowed: &[&str],
) -> Result<&'a [(String, Json)], String> {
    let pairs = j
        .as_obj()
        .ok_or_else(|| format!("{path}: expected an object"))?;
    for (k, _) in pairs {
        if !allowed.contains(&k.as_str()) {
            return Err(format!("{path}: unknown key `{k}`"));
        }
    }
    Ok(pairs)
}

fn get<'a>(pairs: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn req<'a>(pairs: &'a [(String, Json)], key: &str, path: &str) -> Result<&'a Json, String> {
    get(pairs, key).ok_or_else(|| format!("{path}: missing key `{key}`"))
}

fn num(j: &Json, path: &str, key: &str) -> Result<f64, String> {
    j.as_f64()
        .ok_or_else(|| format!("{path}.{key}: expected a number"))
}

fn opt_num(pairs: &[(String, Json)], key: &str, path: &str) -> Result<Option<f64>, String> {
    get(pairs, key).map(|j| num(j, path, key)).transpose()
}

fn string(j: &Json, path: &str, key: &str) -> Result<String, String> {
    j.as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("{path}.{key}: expected a string"))
}

fn uint(j: &Json, path: &str, key: &str) -> Result<usize, String> {
    let v = num(j, path, key)?;
    if v.fract() != 0.0 || !(0.0..=u32::MAX as f64).contains(&v) {
        return Err(format!("{path}.{key}: expected a non-negative integer"));
    }
    Ok(v as usize)
}

fn opt_uint(pairs: &[(String, Json)], key: &str, path: &str) -> Result<Option<usize>, String> {
    get(pairs, key).map(|j| uint(j, path, key)).transpose()
}

impl GenerateDecl {
    fn from_json(j: &Json, path: &str) -> Result<GenerateDecl, String> {
        let common = [
            "kind",
            "seed",
            "start_spread_ms",
            "rate_sample_ms",
            "acr_stride",
            "icr_mbps",
        ];
        let probe = j
            .as_obj()
            .ok_or_else(|| format!("{path}: expected an object"))?;
        let kind_name = string(req(probe, "kind", path)?, path, "kind")?;
        let kind = match kind_name.as_str() {
            "fan_in" => {
                let allowed: Vec<&str> = common
                    .iter()
                    .chain(&[
                        "leaves",
                        "sessions_per_leaf",
                        "leaf_mbps",
                        "root_mbps",
                        "prop_us",
                    ])
                    .copied()
                    .collect();
                let p = expect_obj(j, path, &allowed)?;
                GenerateKind::FanIn {
                    leaves: uint(req(p, "leaves", path)?, path, "leaves")?,
                    sessions_per_leaf: uint(
                        req(p, "sessions_per_leaf", path)?,
                        path,
                        "sessions_per_leaf",
                    )?,
                    leaf_mbps: num(req(p, "leaf_mbps", path)?, path, "leaf_mbps")?,
                    root_mbps: num(req(p, "root_mbps", path)?, path, "root_mbps")?,
                    prop_us: num(req(p, "prop_us", path)?, path, "prop_us")?,
                }
            }
            "parking_lot" => {
                let allowed: Vec<&str> = common
                    .iter()
                    .chain(&[
                        "hops",
                        "long_sessions",
                        "cross_per_hop",
                        "hop_mbps",
                        "prop_us",
                    ])
                    .copied()
                    .collect();
                let p = expect_obj(j, path, &allowed)?;
                GenerateKind::ParkingLot {
                    hops: uint(req(p, "hops", path)?, path, "hops")?,
                    long_sessions: uint(req(p, "long_sessions", path)?, path, "long_sessions")?,
                    cross_per_hop: uint(req(p, "cross_per_hop", path)?, path, "cross_per_hop")?,
                    hop_mbps: num(req(p, "hop_mbps", path)?, path, "hop_mbps")?,
                    prop_us: num(req(p, "prop_us", path)?, path, "prop_us")?,
                }
            }
            other => {
                return Err(format!(
                    "{path}.kind: unknown generator `{other}` (fan_in|parking_lot)"
                ))
            }
        };
        Ok(GenerateDecl {
            kind,
            seed: uint(req(probe, "seed", path)?, path, "seed")? as u64,
            start_spread_ms: opt_num(probe, "start_spread_ms", path)?.unwrap_or(0.0),
            rate_sample_ms: opt_num(probe, "rate_sample_ms", path)?.unwrap_or(5.0),
            acr_stride: opt_uint(probe, "acr_stride", path)?.unwrap_or(1) as u64,
            icr_mbps: opt_num(probe, "icr_mbps", path)?,
        })
    }

    fn write(&self, out: &mut String) {
        match self.kind {
            GenerateKind::FanIn {
                leaves,
                sessions_per_leaf,
                leaf_mbps,
                root_mbps,
                prop_us,
            } => {
                let _ = write!(
                    out,
                    r#"{{"kind":"fan_in","seed":{},"leaves":{leaves},"sessions_per_leaf":{sessions_per_leaf},"leaf_mbps":{},"root_mbps":{},"prop_us":{}"#,
                    self.seed,
                    json_f64(leaf_mbps),
                    json_f64(root_mbps),
                    json_f64(prop_us)
                );
            }
            GenerateKind::ParkingLot {
                hops,
                long_sessions,
                cross_per_hop,
                hop_mbps,
                prop_us,
            } => {
                let _ = write!(
                    out,
                    r#"{{"kind":"parking_lot","seed":{},"hops":{hops},"long_sessions":{long_sessions},"cross_per_hop":{cross_per_hop},"hop_mbps":{},"prop_us":{}"#,
                    self.seed,
                    json_f64(hop_mbps),
                    json_f64(prop_us)
                );
            }
        }
        if self.start_spread_ms != 0.0 {
            let _ = write!(
                out,
                r#","start_spread_ms":{}"#,
                json_f64(self.start_spread_ms)
            );
        }
        if self.rate_sample_ms != 5.0 {
            let _ = write!(
                out,
                r#","rate_sample_ms":{}"#,
                json_f64(self.rate_sample_ms)
            );
        }
        if self.acr_stride != 1 {
            let _ = write!(out, r#","acr_stride":{}"#, self.acr_stride);
        }
        if let Some(icr) = self.icr_mbps {
            let _ = write!(out, r#","icr_mbps":{}"#, json_f64(icr));
        }
        out.push('}');
    }
}

impl TrafficDecl {
    fn from_json(j: &Json, path: &str) -> Result<TrafficDecl, String> {
        let pairs = expect_obj(
            j,
            path,
            &[
                "kind",
                "start_ms",
                "stop_ms",
                "on_ms",
                "off_ms",
                "mean_on_ms",
                "mean_off_ms",
            ],
        )?;
        let kind = string(req(pairs, "kind", path)?, path, "kind")?;
        let field = |key: &str| num(req(pairs, key, path)?, path, key);
        match kind.as_str() {
            "greedy" => Ok(TrafficDecl::Greedy),
            "window" => Ok(TrafficDecl::Window {
                start_ms: field("start_ms")?,
                stop_ms: field("stop_ms")?,
            }),
            "on_off" => Ok(TrafficDecl::OnOff {
                start_ms: field("start_ms")?,
                on_ms: field("on_ms")?,
                off_ms: field("off_ms")?,
            }),
            "random" => Ok(TrafficDecl::Random {
                mean_on_ms: field("mean_on_ms")?,
                mean_off_ms: field("mean_off_ms")?,
            }),
            other => Err(format!(
                "{path}.kind: unknown traffic kind `{other}` \
                 (greedy|window|on_off|random)"
            )),
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            TrafficDecl::Greedy => out.push_str(r#"{"kind":"greedy"}"#),
            TrafficDecl::Window { start_ms, stop_ms } => {
                let _ = write!(
                    out,
                    r#"{{"kind":"window","start_ms":{},"stop_ms":{}}}"#,
                    json_f64(*start_ms),
                    json_f64(*stop_ms)
                );
            }
            TrafficDecl::OnOff {
                start_ms,
                on_ms,
                off_ms,
            } => {
                let _ = write!(
                    out,
                    r#"{{"kind":"on_off","start_ms":{},"on_ms":{},"off_ms":{}}}"#,
                    json_f64(*start_ms),
                    json_f64(*on_ms),
                    json_f64(*off_ms)
                );
            }
            TrafficDecl::Random {
                mean_on_ms,
                mean_off_ms,
            } => {
                let _ = write!(
                    out,
                    r#"{{"kind":"random","mean_on_ms":{},"mean_off_ms":{}}}"#,
                    json_f64(*mean_on_ms),
                    json_f64(*mean_off_ms)
                );
            }
        }
    }
}

impl TimelineEvent {
    fn from_json(j: &Json, path: &str) -> Result<TimelineEvent, String> {
        let pairs = expect_obj(j, path, &["at_ms", "event", "trunk", "mbps", "session"])?;
        let at_ms = num(req(pairs, "at_ms", path)?, path, "at_ms")?;
        let event = string(req(pairs, "event", path)?, path, "event")?;
        let trunk = || uint(req(pairs, "trunk", path)?, path, "trunk");
        let session = || string(req(pairs, "session", path)?, path, "session");
        let kind = match event.as_str() {
            "set_capacity" => EventKind::SetCapacity {
                trunk: trunk()?,
                mbps: num(req(pairs, "mbps", path)?, path, "mbps")?,
            },
            "link_down" => EventKind::LinkDown { trunk: trunk()? },
            "link_up" => EventKind::LinkUp { trunk: trunk()? },
            "session_start" => EventKind::SessionStart {
                session: session()?,
            },
            "session_stop" => EventKind::SessionStop {
                session: session()?,
            },
            other => {
                return Err(format!(
                    "{path}.event: unknown event `{other}` (set_capacity|\
                     link_down|link_up|session_start|session_stop)"
                ))
            }
        };
        Ok(TimelineEvent { at_ms, kind })
    }

    fn write(&self, out: &mut String) {
        let at = json_f64(self.at_ms);
        match &self.kind {
            EventKind::SetCapacity { trunk, mbps } => {
                let _ = write!(
                    out,
                    r#"{{"at_ms":{at},"event":"set_capacity","trunk":{trunk},"mbps":{}}}"#,
                    json_f64(*mbps)
                );
            }
            EventKind::LinkDown { trunk } => {
                let _ = write!(
                    out,
                    r#"{{"at_ms":{at},"event":"link_down","trunk":{trunk}}}"#
                );
            }
            EventKind::LinkUp { trunk } => {
                let _ = write!(out, r#"{{"at_ms":{at},"event":"link_up","trunk":{trunk}}}"#);
            }
            EventKind::SessionStart { session } => {
                let _ = write!(
                    out,
                    r#"{{"at_ms":{at},"event":"session_start","session":{}}}"#,
                    json_str(session)
                );
            }
            EventKind::SessionStop { session } => {
                let _ = write!(
                    out,
                    r#"{{"at_ms":{at},"event":"session_stop","session":{}}}"#,
                    json_str(session)
                );
            }
        }
    }
}

impl Scene {
    /// Parse and validate a scene document.
    pub fn parse(text: &str) -> Result<Scene, String> {
        let scene = Scene::from_json(&Json::parse(text)?)?;
        scene.validate()?;
        Ok(scene)
    }

    /// Structural decode (no semantic validation — see [`Scene::validate`]).
    pub fn from_json(j: &Json) -> Result<Scene, String> {
        let pairs = expect_obj(
            j,
            "scene",
            &[
                "schema",
                "id",
                "describe",
                "algorithm",
                "duration_ms",
                "u",
                "cbr_priority",
                "generate",
                "switches",
                "trunks",
                "sessions",
                "bottleneck",
                "timeline",
                "analysis",
            ],
        )?;
        match req(pairs, "schema", "scene")?.as_str() {
            Some(SCENE_SCHEMA) => {}
            _ => return Err(format!("scene.schema: expected \"{SCENE_SCHEMA}\"")),
        }
        let generate = get(pairs, "generate")
            .map(|g| GenerateDecl::from_json(g, "generate"))
            .transpose()?;
        // Generated scenes may omit the explicit topology keys entirely;
        // declarative scenes keep the strict missing-key errors.
        let topo_key = |key: &'static str| -> Result<Option<&Json>, String> {
            match (get(pairs, key), &generate) {
                (Some(j), _) => Ok(Some(j)),
                (None, Some(_)) => Ok(None),
                (None, None) => Err(format!("scene: missing key `{key}`")),
            }
        };
        let switches = match topo_key("switches")? {
            None => Vec::new(),
            Some(j) => j
                .as_arr()
                .ok_or("scene.switches: expected an array")?
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    s.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| format!("switches[{i}]: expected a string"))
                })
                .collect::<Result<Vec<_>, _>>()?,
        };

        let mut trunks = Vec::new();
        for (i, t) in topo_key("trunks")?
            .map(|j| j.as_arr().ok_or("scene.trunks: expected an array"))
            .transpose()?
            .unwrap_or(&[])
            .iter()
            .enumerate()
        {
            let path = format!("trunks[{i}]");
            let tp = expect_obj(
                t,
                &path,
                &["a", "b", "mbps", "prop_us", "u", "alpha_inc", "alpha_dec"],
            )?;
            trunks.push(TrunkDecl {
                a: string(req(tp, "a", &path)?, &path, "a")?,
                b: string(req(tp, "b", &path)?, &path, "b")?,
                mbps: num(req(tp, "mbps", &path)?, &path, "mbps")?,
                prop_us: num(req(tp, "prop_us", &path)?, &path, "prop_us")?,
                u: opt_num(tp, "u", &path)?,
                alpha_inc: opt_num(tp, "alpha_inc", &path)?,
                alpha_dec: opt_num(tp, "alpha_dec", &path)?,
            });
        }

        let mut sessions = Vec::new();
        for (i, s) in topo_key("sessions")?
            .map(|j| j.as_arr().ok_or("scene.sessions: expected an array"))
            .transpose()?
            .unwrap_or(&[])
            .iter()
            .enumerate()
        {
            let path = format!("sessions[{i}]");
            let sp = expect_obj(s, &path, &["id", "path", "traffic", "cbr_mbps"])?;
            let hops = req(sp, "path", &path)?
                .as_arr()
                .ok_or_else(|| format!("{path}.path: expected an array"))?
                .iter()
                .enumerate()
                .map(|(h, j)| {
                    j.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| format!("{path}.path[{h}]: expected a string"))
                })
                .collect::<Result<Vec<_>, _>>()?;
            let traffic = match get(sp, "traffic") {
                Some(t) => TrafficDecl::from_json(t, &format!("{path}.traffic"))?,
                None => TrafficDecl::Greedy,
            };
            sessions.push(SessionDecl {
                id: string(req(sp, "id", &path)?, &path, "id")?,
                path: hops,
                traffic,
                cbr_mbps: opt_num(sp, "cbr_mbps", &path)?,
            });
        }

        let mut timeline = Vec::new();
        if let Some(tl) = get(pairs, "timeline") {
            for (i, e) in tl
                .as_arr()
                .ok_or("scene.timeline: expected an array")?
                .iter()
                .enumerate()
            {
                timeline.push(TimelineEvent::from_json(e, &format!("timeline[{i}]"))?);
            }
        }

        let mut analysis = AnalysisDecl::default();
        if let Some(a) = get(pairs, "analysis") {
            let ap = expect_obj(
                a,
                "analysis",
                &[
                    "tail_from_ms",
                    "conv_tol",
                    "macr_mbps",
                    "n_sessions",
                    "epochs",
                ],
            )?;
            analysis.tail_from_ms = opt_num(ap, "tail_from_ms", "analysis")?;
            analysis.conv_tol = opt_num(ap, "conv_tol", "analysis")?;
            analysis.macr_mbps = opt_num(ap, "macr_mbps", "analysis")?;
            analysis.n_sessions = opt_uint(ap, "n_sessions", "analysis")?;
            if let Some(eps) = get(ap, "epochs") {
                for (i, e) in eps
                    .as_arr()
                    .ok_or("analysis.epochs: expected an array")?
                    .iter()
                    .enumerate()
                {
                    let path = format!("analysis.epochs[{i}]");
                    let ep = expect_obj(
                        e,
                        &path,
                        &[
                            "from_ms",
                            "to_ms",
                            "macr_mbps",
                            "n_sessions",
                            "capacity_mbps",
                        ],
                    )?;
                    analysis.epochs.push(EpochDecl {
                        from_ms: num(req(ep, "from_ms", &path)?, &path, "from_ms")?,
                        to_ms: num(req(ep, "to_ms", &path)?, &path, "to_ms")?,
                        macr_mbps: opt_num(ep, "macr_mbps", &path)?,
                        n_sessions: opt_uint(ep, "n_sessions", &path)?,
                        capacity_mbps: opt_num(ep, "capacity_mbps", &path)?,
                    });
                }
            }
        }

        Ok(Scene {
            id: string(req(pairs, "id", "scene")?, "scene", "id")?,
            describe: string(req(pairs, "describe", "scene")?, "scene", "describe")?,
            algorithm: string(req(pairs, "algorithm", "scene")?, "scene", "algorithm")?,
            duration_ms: num(req(pairs, "duration_ms", "scene")?, "scene", "duration_ms")?,
            u: opt_num(pairs, "u", "scene")?,
            cbr_priority: match get(pairs, "cbr_priority") {
                Some(b) => b
                    .as_bool()
                    .ok_or("scene.cbr_priority: expected a boolean")?,
                None => false,
            },
            generate,
            switches,
            trunks,
            sessions,
            bottleneck: match get(pairs, "bottleneck") {
                Some(b) => uint(b, "scene", "bottleneck")?,
                None => 0,
            },
            timeline,
            analysis,
        })
    }

    /// Canonical compact serialization: `Scene::parse(s.to_json()) == s`
    /// for every valid scene (the round-trip property test).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            r#"{{"schema":{},"id":{},"describe":{},"algorithm":{},"duration_ms":{}"#,
            json_str(SCENE_SCHEMA),
            json_str(&self.id),
            json_str(&self.describe),
            json_str(&self.algorithm),
            json_f64(self.duration_ms)
        );
        if let Some(u) = self.u {
            let _ = write!(out, r#","u":{}"#, json_f64(u));
        }
        if self.cbr_priority {
            out.push_str(r#","cbr_priority":true"#);
        }
        if let Some(g) = &self.generate {
            out.push_str(",\"generate\":");
            g.write(&mut out);
            // Generated scenes omit the (empty) explicit-topology keys:
            // `Scene::parse(s.to_json()) == s` still holds because the
            // decoder defaults them to empty when `generate` is present.
            let _ = write!(out, r#","bottleneck":{}"#, self.bottleneck);
            self.write_timeline_and_analysis(&mut out);
            out.push('}');
            return out;
        }
        out.push_str(",\"switches\":[");
        for (i, s) in self.switches.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_str(s));
        }
        out.push_str("],\"trunks\":[");
        for (i, t) in self.trunks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                r#"{{"a":{},"b":{},"mbps":{},"prop_us":{}"#,
                json_str(&t.a),
                json_str(&t.b),
                json_f64(t.mbps),
                json_f64(t.prop_us)
            );
            for (key, v) in [
                ("u", t.u),
                ("alpha_inc", t.alpha_inc),
                ("alpha_dec", t.alpha_dec),
            ] {
                if let Some(v) = v {
                    let _ = write!(out, r#","{key}":{}"#, json_f64(v));
                }
            }
            out.push('}');
        }
        out.push_str("],\"sessions\":[");
        for (i, s) in self.sessions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, r#"{{"id":{},"path":["#, json_str(&s.id));
            for (h, hop) in s.path.iter().enumerate() {
                if h > 0 {
                    out.push(',');
                }
                out.push_str(&json_str(hop));
            }
            out.push_str("],\"traffic\":");
            s.traffic.write(&mut out);
            if let Some(r) = s.cbr_mbps {
                let _ = write!(out, r#","cbr_mbps":{}"#, json_f64(r));
            }
            out.push('}');
        }
        let _ = write!(out, r#"],"bottleneck":{}"#, self.bottleneck);
        self.write_timeline_and_analysis(&mut out);
        out.push('}');
        out
    }

    /// The shared `to_json` tail: timeline and analysis blocks.
    fn write_timeline_and_analysis(&self, out: &mut String) {
        if !self.timeline.is_empty() {
            out.push_str(",\"timeline\":[");
            for (i, e) in self.timeline.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                e.write(out);
            }
            out.push(']');
        }
        let a = &self.analysis;
        if *a != AnalysisDecl::default() {
            out.push_str(",\"analysis\":{");
            let mut first = true;
            let mut sep = |out: &mut String| {
                if !first {
                    out.push(',');
                }
                first = false;
            };
            for (key, v) in [
                ("tail_from_ms", a.tail_from_ms),
                ("conv_tol", a.conv_tol),
                ("macr_mbps", a.macr_mbps),
            ] {
                if let Some(v) = v {
                    sep(out);
                    let _ = write!(out, r#""{key}":{}"#, json_f64(v));
                }
            }
            if let Some(n) = a.n_sessions {
                sep(out);
                let _ = write!(out, r#""n_sessions":{n}"#);
            }
            if !a.epochs.is_empty() {
                sep(out);
                out.push_str("\"epochs\":[");
                for (i, e) in a.epochs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(
                        out,
                        r#"{{"from_ms":{},"to_ms":{}"#,
                        json_f64(e.from_ms),
                        json_f64(e.to_ms)
                    );
                    if let Some(m) = e.macr_mbps {
                        let _ = write!(out, r#","macr_mbps":{}"#, json_f64(m));
                    }
                    if let Some(n) = e.n_sessions {
                        let _ = write!(out, r#","n_sessions":{n}"#);
                    }
                    if let Some(c) = e.capacity_mbps {
                        let _ = write!(out, r#","capacity_mbps":{}"#, json_f64(c));
                    }
                    out.push('}');
                }
                out.push(']');
            }
            out.push('}');
        }
    }

    fn switch_index(&self, name: &str) -> Option<usize> {
        self.switches.iter().position(|s| s == name)
    }

    /// Find the trunk connecting two named switches (either direction).
    pub fn trunk_between(&self, a: &str, b: &str) -> Option<usize> {
        self.trunks
            .iter()
            .position(|t| (t.a == a && t.b == b) || (t.a == b && t.b == a))
    }

    fn session_index(&self, id: &str) -> Option<usize> {
        self.sessions.iter().position(|s| s.id == id)
    }

    /// True when any Phantom parameter is overridden (scene-level `u` or
    /// any per-trunk `u`/`alpha_*`).
    pub fn has_overrides(&self) -> bool {
        self.u.is_some()
            || self
                .trunks
                .iter()
                .any(|t| t.u.is_some() || t.alpha_inc.is_some() || t.alpha_dec.is_some())
    }

    /// Declared capacity of the bottleneck trunk, Mb/s — works for both
    /// explicit and generated topologies (call after [`Scene::validate`]).
    pub fn bottleneck_mbps(&self) -> f64 {
        match &self.generate {
            Some(g) => g.trunk_mbps(self.bottleneck),
            None => self.trunks[self.bottleneck].mbps,
        }
    }

    /// Parameter-range checks for a generated topology. The session cap
    /// bounds accidental `sessions_per_leaf: 1e9` typos, not the design
    /// scale — 2×10^6 sessions is ~4×10^6 end-system nodes.
    fn validate_generate(&self, g: &GenerateDecl) -> Result<(), String> {
        const MAX_SESSIONS: usize = 2_000_000;
        let pos = |v: f64, key: &str| -> Result<(), String> {
            if v.is_finite() && v > 0.0 {
                Ok(())
            } else {
                Err(format!("{key}: must be positive and finite, got {v}"))
            }
        };
        let count = |v: usize, key: &str, max: usize| -> Result<(), String> {
            if (1..=max).contains(&v) {
                Ok(())
            } else {
                Err(format!("{key}: must be in 1..={max}, got {v}"))
            }
        };
        match g.kind {
            GenerateKind::FanIn {
                leaves,
                sessions_per_leaf,
                leaf_mbps,
                root_mbps,
                prop_us,
            } => {
                count(leaves, "generate.leaves", 4096)?;
                count(
                    sessions_per_leaf,
                    "generate.sessions_per_leaf",
                    MAX_SESSIONS,
                )?;
                pos(leaf_mbps, "generate.leaf_mbps")?;
                pos(root_mbps, "generate.root_mbps")?;
                if !prop_us.is_finite() || prop_us < 0.0 {
                    return Err("generate.prop_us: must be non-negative and finite".into());
                }
            }
            GenerateKind::ParkingLot {
                hops,
                long_sessions,
                cross_per_hop,
                hop_mbps,
                prop_us,
            } => {
                count(hops, "generate.hops", 1024)?;
                if long_sessions == 0 && cross_per_hop == 0 {
                    return Err(
                        "generate: at least one of long_sessions/cross_per_hop must be nonzero"
                            .into(),
                    );
                }
                pos(hop_mbps, "generate.hop_mbps")?;
                if !prop_us.is_finite() || prop_us < 0.0 {
                    return Err("generate.prop_us: must be non-negative and finite".into());
                }
            }
        }
        if g.n_sessions() > MAX_SESSIONS {
            return Err(format!(
                "generate: {} sessions exceeds the {MAX_SESSIONS} cap",
                g.n_sessions()
            ));
        }
        if !g.start_spread_ms.is_finite()
            || g.start_spread_ms < 0.0
            || g.start_spread_ms > self.duration_ms
        {
            return Err(format!(
                "generate.start_spread_ms: must lie within the run [0, {}] ms, got {}",
                self.duration_ms, g.start_spread_ms
            ));
        }
        pos(g.rate_sample_ms, "generate.rate_sample_ms")?;
        if g.acr_stride == 0 {
            return Err("generate.acr_stride: must be at least 1".into());
        }
        if let Some(icr) = g.icr_mbps {
            // The end-system invariants (ICR in (0, PCR], above the MCR
            // floor) are checked by the same validator the builder uses.
            phantom_atm::params::AtmParams::paper()
                .with_icr_mbps(icr)
                .validate()
                .map_err(|e| format!("generate.icr_mbps: {e}"))?;
        }
        Ok(())
    }

    /// Semantic validation. Every error names the offending key.
    pub fn validate(&self) -> Result<(), String> {
        let pos = |v: f64, key: &str| -> Result<(), String> {
            if v.is_finite() && v > 0.0 {
                Ok(())
            } else {
                Err(format!("{key}: must be positive and finite, got {v}"))
            }
        };
        let time_in_run = |v: f64, key: &str| -> Result<(), String> {
            if v.is_finite() && (0.0..=self.duration_ms).contains(&v) {
                Ok(())
            } else {
                Err(format!(
                    "{key}: must lie within the run [0, {}] ms, got {v}",
                    self.duration_ms
                ))
            }
        };

        if self.id.is_empty()
            || !self
                .id
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
        {
            return Err(format!(
                "id: must be non-empty [A-Za-z0-9_-]+, got `{}`",
                self.id
            ));
        }
        if !ALGORITHMS.contains(&self.algorithm.as_str()) {
            return Err(format!(
                "algorithm: unknown `{}` (one of {})",
                self.algorithm,
                ALGORITHMS.join("|")
            ));
        }
        pos(self.duration_ms, "duration_ms")?;
        if let Some(u) = self.u {
            pos(u, "u")?;
        }
        if self.has_overrides() && self.algorithm != "phantom" {
            return Err(format!(
                "u/alpha overrides require algorithm \"phantom\", got \"{}\"",
                self.algorithm
            ));
        }

        if let Some(g) = &self.generate {
            if !self.switches.is_empty() || !self.trunks.is_empty() || !self.sessions.is_empty() {
                return Err(
                    "generate: mutually exclusive with explicit switches/trunks/sessions".into(),
                );
            }
            self.validate_generate(g)?;
        }

        if self.switches.is_empty() && self.generate.is_none() {
            return Err("switches: at least one switch is required".into());
        }
        for (i, s) in self.switches.iter().enumerate() {
            if s.is_empty() {
                return Err(format!("switches[{i}]: empty name"));
            }
            if self.switches[..i].contains(s) {
                return Err(format!("switches[{i}]: duplicate switch `{s}`"));
            }
        }

        if self.trunks.is_empty() && self.generate.is_none() {
            return Err("trunks: at least one trunk is required".into());
        }
        for (i, t) in self.trunks.iter().enumerate() {
            for (end, name) in [("a", &t.a), ("b", &t.b)] {
                if self.switch_index(name).is_none() {
                    return Err(format!("trunks[{i}].{end}: unknown switch `{name}`"));
                }
            }
            if t.a == t.b {
                return Err(format!("trunks[{i}]: both ends are `{}`", t.a));
            }
            pos(t.mbps, &format!("trunks[{i}].mbps"))?;
            if !t.prop_us.is_finite() || t.prop_us < 0.0 {
                return Err(format!(
                    "trunks[{i}].prop_us: must be non-negative and finite"
                ));
            }
            for (key, v) in [
                ("u", t.u),
                ("alpha_inc", t.alpha_inc),
                ("alpha_dec", t.alpha_dec),
            ] {
                if let Some(v) = v {
                    pos(v, &format!("trunks[{i}].{key}"))?;
                }
            }
            if self.trunks[..i]
                .iter()
                .any(|p| (p.a == t.a && p.b == t.b) || (p.a == t.b && p.b == t.a))
            {
                return Err(format!(
                    "trunks[{i}]: duplicate trunk between `{}` and `{}`",
                    t.a, t.b
                ));
            }
        }
        // Generated scenes are indexed against the trunks the generator
        // *will* create.
        let n_trunks = self
            .generate
            .as_ref()
            .map(|g| g.n_trunks())
            .unwrap_or(self.trunks.len());
        if self.bottleneck >= n_trunks {
            return Err(format!(
                "bottleneck: index {} out of range ({} trunks)",
                self.bottleneck, n_trunks
            ));
        }

        if self.sessions.is_empty() && self.generate.is_none() {
            return Err("sessions: at least one session is required".into());
        }
        for (i, s) in self.sessions.iter().enumerate() {
            if s.id.is_empty() {
                return Err(format!("sessions[{i}].id: empty id"));
            }
            if self.sessions[..i].iter().any(|p| p.id == s.id) {
                return Err(format!("sessions[{i}].id: duplicate session id `{}`", s.id));
            }
            if s.path.len() < 2 {
                return Err(format!("sessions[{i}].path: needs at least two hops"));
            }
            for (h, hop) in s.path.iter().enumerate() {
                if self.switch_index(hop).is_none() {
                    return Err(format!("sessions[{i}].path[{h}]: unknown switch `{hop}`"));
                }
            }
            for (h, w) in s.path.windows(2).enumerate() {
                if self.trunk_between(&w[0], &w[1]).is_none() {
                    return Err(format!(
                        "sessions[{i}].path[{}]: no trunk between `{}` and `{}`",
                        h + 1,
                        w[0],
                        w[1]
                    ));
                }
            }
            if let Some(r) = s.cbr_mbps {
                pos(r, &format!("sessions[{i}].cbr_mbps"))?;
            }
            let tpath = format!("sessions[{i}].traffic");
            match s.traffic {
                TrafficDecl::Greedy => {}
                TrafficDecl::Window { start_ms, stop_ms } => {
                    time_in_run(start_ms, &format!("{tpath}.start_ms"))?;
                    if !stop_ms.is_finite() || stop_ms <= start_ms {
                        return Err(format!("{tpath}.stop_ms: must come after start_ms"));
                    }
                }
                TrafficDecl::OnOff {
                    start_ms,
                    on_ms,
                    off_ms,
                } => {
                    time_in_run(start_ms, &format!("{tpath}.start_ms"))?;
                    pos(on_ms, &format!("{tpath}.on_ms"))?;
                    pos(off_ms, &format!("{tpath}.off_ms"))?;
                }
                TrafficDecl::Random {
                    mean_on_ms,
                    mean_off_ms,
                } => {
                    pos(mean_on_ms, &format!("{tpath}.mean_on_ms"))?;
                    pos(mean_off_ms, &format!("{tpath}.mean_off_ms"))?;
                }
            }
        }

        // Timeline: valid references, plausible times, well-formed
        // churn windows and down/up alternation per trunk.
        let mut windows: Vec<(Option<f64>, Option<f64>)> = vec![(None, None); self.sessions.len()];
        let mut flaps: Vec<Vec<(f64, bool)>> = vec![Vec::new(); n_trunks];
        for (i, e) in self.timeline.iter().enumerate() {
            let path = format!("timeline[{i}]");
            time_in_run(e.at_ms, &format!("{path}.at_ms"))?;
            match &e.kind {
                EventKind::SetCapacity { trunk, mbps } => {
                    if *trunk >= n_trunks {
                        return Err(format!("{path}.trunk: index {trunk} out of range"));
                    }
                    pos(*mbps, &format!("{path}.mbps"))?;
                }
                EventKind::LinkDown { trunk } | EventKind::LinkUp { trunk } => {
                    if *trunk >= n_trunks {
                        return Err(format!("{path}.trunk: index {trunk} out of range"));
                    }
                    flaps[*trunk].push((e.at_ms, matches!(e.kind, EventKind::LinkDown { .. })));
                }
                EventKind::SessionStart { session } | EventKind::SessionStop { session } => {
                    let Some(s) = self.session_index(session) else {
                        return Err(format!("{path}.session: unknown session `{session}`"));
                    };
                    if self.sessions[s].traffic != TrafficDecl::Greedy {
                        return Err(format!(
                            "{path}: session churn requires `{session}` to declare \
                             greedy traffic (its window is derived from the timeline)"
                        ));
                    }
                    let w = &mut windows[s];
                    let starting = matches!(e.kind, EventKind::SessionStart { .. });
                    let slot = if starting { &mut w.0 } else { &mut w.1 };
                    if slot.is_some() {
                        return Err(format!(
                            "{path}: second session_{} for `{session}`",
                            if starting { "start" } else { "stop" }
                        ));
                    }
                    *slot = Some(e.at_ms);
                }
            }
        }
        for (s, (start, stop)) in windows.iter().enumerate() {
            if let (Some(a), Some(b)) = (start, stop) {
                if b <= a {
                    return Err(format!(
                        "timeline: session_stop for `{}` at {b} ms does not come \
                         after its session_start at {a} ms",
                        self.sessions[s].id
                    ));
                }
            }
        }
        for (t, mut events) in flaps.into_iter().enumerate() {
            events.sort_by(|x, y| x.0.total_cmp(&y.0));
            let mut want_down = true;
            for (at, is_down) in events {
                if is_down != want_down {
                    return Err(format!(
                        "timeline: trunk {t} link_{} at {at} ms out of order \
                         (down/up must alternate, starting with link_down)",
                        if is_down { "down" } else { "up" }
                    ));
                }
                want_down = !want_down;
            }
        }

        // Analysis targets.
        let a = &self.analysis;
        if let Some(t) = a.tail_from_ms {
            time_in_run(t, "analysis.tail_from_ms")?;
        }
        if let Some(tol) = a.conv_tol {
            if !tol.is_finite() || !(0.0..=1.0).contains(&tol) || tol == 0.0 {
                return Err(format!("analysis.conv_tol: must be in (0, 1], got {tol}"));
            }
        }
        if a.macr_mbps.is_some() && a.n_sessions.is_some() {
            return Err("analysis: give either macr_mbps or n_sessions, not both".into());
        }
        if let Some(m) = a.macr_mbps {
            pos(m, "analysis.macr_mbps")?;
        }
        let mut prev_to = f64::NEG_INFINITY;
        for (i, e) in a.epochs.iter().enumerate() {
            let path = format!("analysis.epochs[{i}]");
            time_in_run(e.from_ms, &format!("{path}.from_ms"))?;
            time_in_run(e.to_ms, &format!("{path}.to_ms"))?;
            if e.to_ms <= e.from_ms {
                return Err(format!("{path}.to_ms: must come after from_ms"));
            }
            if e.from_ms < prev_to {
                return Err(format!("{path}: overlaps epoch {}", i.saturating_sub(1)));
            }
            prev_to = e.to_ms;
            match (e.macr_mbps, e.n_sessions) {
                (Some(m), None) => pos(m, &format!("{path}.macr_mbps"))?,
                (None, Some(_)) => {}
                _ => {
                    return Err(format!(
                        "{path}: give exactly one of macr_mbps or n_sessions"
                    ))
                }
            }
            if let Some(c) = e.capacity_mbps {
                if e.n_sessions.is_none() {
                    return Err(format!(
                        "{path}.capacity_mbps: only meaningful with n_sessions"
                    ));
                }
                pos(c, &format!("{path}.capacity_mbps"))?;
            }
        }
        Ok(())
    }
}
