//! `phantom-scene`: declarative experiment descriptions for the
//! Phantom reproduction.
//!
//! A *scene* is a JSON document (schema tag `phantom-scene/1`) that
//! declares a topology (switches, trunks with capacity/delay), a
//! session mix (greedy/windowed/bursty ABR sources plus unresponsive
//! CBR background), optional Phantom parameter overrides (`u`,
//! `alpha_inc`, `alpha_dec` — scene-wide or per trunk), a *timeline*
//! of mid-run events (session churn, link capacity changes, link
//! failure/recovery) and the analysis targets the configuration
//! predicts.
//!
//! The pipeline is: [`Scene::parse`] (strict JSON decode + semantic
//! validation, every error naming the offending key) →
//! [`compile::compile`] (lowering onto the existing
//! [`phantom_sim::Engine`] / `NetworkBuilder`, timeline events
//! scheduled as admin messages) → [`run::run_scene`] (the standard
//! figure panels and metrics) — or [`run::register_scene`], which
//! makes the scene a first-class experiment id for `repro` and the
//! parallel sweep runner.
//!
//! Determinism contract: a compiled scene is a pure function of
//! `(scene, seed)`, and a scene that transliterates a hard-coded
//! figure reproduces its event stream — traces and analysis reports —
//! byte-identically at any `--jobs` level.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod compile;
pub mod json;
pub mod model;
pub mod run;

pub use check::{check_error_json, check_ok_json, CHECK_SCHEMA};
pub use compile::{compile, CompiledScene};
pub use json::Json;
pub use model::{
    AnalysisDecl, EpochDecl, EventKind, GenerateDecl, GenerateKind, Scene, SessionDecl,
    TimelineEvent, TrafficDecl, TrunkDecl, SCENE_SCHEMA,
};
pub use run::{
    analysis_targets, load_scene_dir, load_scene_file, parse_scene, register_scene, run_scene,
    scale_scene, shard_scale_scene,
};
