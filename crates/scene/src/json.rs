//! A hand-rolled JSON tree: recursive-descent parser plus a compact
//! serializer.
//!
//! The workspace builds without serde, so scene files get the same
//! treatment as every other artifact: a small exact implementation in
//! one place. Two properties matter for the rest of the crate:
//!
//! * **Order preservation** — objects are `Vec<(String, Json)>`, not a
//!   map, so serialize∘parse is the identity on the textual key order
//!   and scene files stay diffable.
//! * **Float round-trips** — numbers are emitted in Rust's
//!   shortest-roundtrip form ([`phantom_metrics::json::json_f64`]) and
//!   parsed with `str::parse::<f64>` (correctly rounded), so a parsed
//!   scene re-serializes to the very same bits.

use phantom_metrics::json::{json_f64, json_str};
use std::fmt::Write as _;

/// One JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always held as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in textual key order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document; trailing non-whitespace is an
    /// error. Errors name the line and column of the offending byte.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            s: text.as_bytes(),
            i: 0,
        };
        p.ws();
        let v = p.value(0)?;
        p.ws();
        if p.i != p.s.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(v)
    }

    /// Compact serialization (no whitespace). Non-finite numbers render
    /// as `null`, mirroring the artifact writers.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                let _ = write!(out, "{}", json_f64(*v));
            }
            Json::Str(s) => out.push_str(&json_str(s)),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&json_str(k));
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Object member lookup (first occurrence).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The bool, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array items, if this is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object members, if this is one.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }
}

/// Nesting-depth cap: scene files are shallow, and the parser recurses.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        let mut line = 1usize;
        let mut col = 1usize;
        for &b in &self.s[..self.i.min(self.s.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        format!("line {line} col {col}: {msg}")
    }

    fn ws(&mut self) {
        while let Some(&b) = self.s.get(self.i) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.i += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {what}")))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.s[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("expected a JSON value")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.eat(b'[', "`[`")?;
        let mut items = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.ws();
            items.push(self.value(depth + 1)?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.eat(b'{', "`{`")?;
        let mut pairs = Vec::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.eat(b':', "`:` after object key")?;
            self.ws();
            let val = self.value(depth + 1)?;
            if pairs.iter().any(|(k, _)| *k == key) {
                return Err(self.err(&format!("duplicate key `{key}`")));
            }
            pairs.push((key, val));
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"', "`\"`")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.i += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if !self.s[self.i..].starts_with(b"\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.i += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp).ok_or_else(|| self.err("bad code point"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("bad code point"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.i += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control byte in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar; the input is a &str, so the
                    // encoding is already valid.
                    let rest = std::str::from_utf8(&self.s[self.i..]).expect("input was a str");
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        if self.i + 4 > self.s.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.s[self.i..self.i + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.i += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        let digits = |p: &mut Parser| {
            let mut n = 0;
            while matches!(p.peek(), Some(b'0'..=b'9')) {
                p.i += 1;
                n += 1;
            }
            n
        };
        // Integer part: `0` or a non-zero-led digit run.
        match self.peek() {
            Some(b'0') => {
                self.i += 1;
            }
            Some(b'1'..=b'9') => {
                digits(self);
            }
            _ => return Err(self.err("expected a digit")),
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            if digits(self) == 0 {
                return Err(self.err("expected digits after `.`"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            if digits(self) == 0 {
                return Err(self.err("expected exponent digits"));
            }
        }
        let text = std::str::from_utf8(&self.s[start..self.i]).expect("ascii number");
        let v: f64 = text
            .parse()
            .map_err(|_| self.err(&format!("bad number `{text}`")))?;
        Ok(Json::Num(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_dumps_the_basics() {
        let j = Json::parse(r#"{"a":[1,2.5,-3e2],"b":"x\ny","c":null,"d":true}"#).unwrap();
        assert_eq!(j.get("b").unwrap().as_str(), Some("x\ny"));
        assert_eq!(j.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            j.dump(),
            r#"{"a":[1,2.5,-300],"b":"x\ny","c":null,"d":true}"#
        );
        // Dump → parse is the identity on the tree.
        assert_eq!(Json::parse(&j.dump()).unwrap(), j);
    }

    #[test]
    fn errors_name_line_and_column() {
        let e = Json::parse("{\n  \"a\": 01\n}").unwrap_err();
        assert!(e.starts_with("line 2"), "{e}");
        let e = Json::parse(r#"{"a":1,"a":2}"#).unwrap_err();
        assert!(e.contains("duplicate key `a`"), "{e}");
        assert!(Json::parse(r#"{"a":1}x"#).unwrap_err().contains("trailing"));
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"\\q\"").is_err());
    }

    #[test]
    fn floats_round_trip_exactly() {
        for v in [0.1, 1.0 / 3.0, 1e-300, 123_456_789.123_456_78, -0.0] {
            let s = Json::Num(v).dump();
            match Json::parse(&s).unwrap() {
                Json::Num(back) => assert_eq!(back.to_bits(), v.to_bits(), "{s}"),
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn surrogate_pairs_decode() {
        let j = Json::parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(j.as_str(), Some("😀"));
        assert!(Json::parse(r#""\ud83d""#).is_err());
    }
}
