//! Lowering a validated [`Scene`] onto the simulator.
//!
//! The compiler replays the exact builder sequence the hard-coded
//! scenario runners use — switches, then trunks, then sessions, then
//! `NetworkBuilder::build` on a fresh `Engine::new(seed)` — so a scene
//! that transliterates a built-in figure produces a byte-identical
//! event stream (and therefore byte-identical traces and analysis
//! reports) at any `--jobs` level.
//!
//! Timeline events are resolved at compile time:
//!
//! * `session_start` / `session_stop` (churn) fold into the session's
//!   [`Traffic`] window before the source node is even constructed, so
//!   churn costs nothing at run time;
//! * `set_capacity`, `link_down` and `link_up` lower to
//!   [`AdminCmd`] messages scheduled against *both* directional ports
//!   of the trunk, making a dynamic run a pure function of
//!   `(scene, seed)`.

use crate::model::{EventKind, Scene, TrafficDecl};
use phantom_atm::allocator::RateAllocator;
use phantom_atm::network::{Network, NetworkBuilder, SwIdx, TrunkIdx};
use phantom_atm::units::mbps_to_cps;
use phantom_atm::{AdminCmd, AtmMsg, Traffic};
use phantom_core::{MacrConfig, PhantomAllocator, PhantomConfig};
use phantom_scenarios::common::AtmAlgorithm;
use phantom_sim::{Engine, SimDuration, SimTime};

/// A scene lowered onto a ready-to-run engine.
pub struct CompiledScene {
    /// The engine, with all sources kicked off and timeline events queued.
    pub engine: Engine<AtmMsg>,
    /// Handles into the built topology.
    pub net: Network,
    /// Run horizon.
    pub until: SimTime,
    /// The trunk the standard panels watch.
    pub bottleneck: TrunkIdx,
    /// ABR session indices (traced in the standard panels).
    pub traced: Vec<usize>,
    /// Tail start (seconds) for whole-run aggregate metrics.
    pub tail_from_secs: f64,
}

/// Exact `ms → SimTime` conversion: agrees bit-for-bit with
/// `SimTime::from_millis` on integral inputs, so scene twins of the
/// hard-coded figures run the identical horizon.
pub fn ms_to_time(ms: f64) -> SimTime {
    SimTime((ms * 1e6).round() as u64)
}

fn ms_to_dur(ms: f64) -> SimDuration {
    SimDuration((ms * 1e6).round() as u64)
}

fn us_to_dur(us: f64) -> SimDuration {
    SimDuration((us * 1e3).round() as u64)
}

/// Resolve a scene algorithm name (already validated against
/// [`crate::model::ALGORITHMS`]).
pub fn algorithm(name: &str) -> AtmAlgorithm {
    match name {
        "phantom" => AtmAlgorithm::Phantom,
        "phantom-fixed-alpha" => AtmAlgorithm::PhantomFixedAlpha,
        "phantom-departures" => AtmAlgorithm::PhantomDepartures,
        "phantom-ni" => AtmAlgorithm::PhantomNi,
        "eprca" => AtmAlgorithm::Eprca,
        "aprc" => AtmAlgorithm::Aprc,
        "capc" => AtmAlgorithm::Capc,
        "erica" => AtmAlgorithm::Erica,
        "osu" => AtmAlgorithm::Osu,
        other => panic!("unvalidated scene algorithm `{other}`"),
    }
}

/// The allocator for one direction of trunk `t`, honouring scene-wide
/// and per-trunk Phantom overrides. With no overrides this is exactly
/// `alg.boxed()` — the same construction the hard-coded runners use.
fn make_allocator(scene: &Scene, alg: AtmAlgorithm, t: usize) -> Box<dyn RateAllocator> {
    let trunk = &scene.trunks[t];
    let u = trunk.u.or(scene.u);
    if u.is_none() && trunk.alpha_inc.is_none() && trunk.alpha_dec.is_none() {
        return alg.boxed();
    }
    // validate() guarantees overrides only appear with algorithm "phantom".
    let mut macr = MacrConfig::default();
    if let Some(a) = trunk.alpha_inc {
        macr.alpha_inc = a;
    }
    if let Some(a) = trunk.alpha_dec {
        macr.alpha_dec = a;
    }
    let mut cfg = PhantomConfig::paper().with_macr(macr);
    if let Some(u) = u {
        cfg = cfg.with_utilization_factor(u);
    }
    Box::new(PhantomAllocator::new(cfg))
}

/// The offered-load pattern of session index `s`, with timeline churn
/// folded into a `Traffic::window` (missing start ⇒ active from 0,
/// missing stop ⇒ active forever).
fn lower_traffic(scene: &Scene, s: usize) -> Traffic {
    let sess = &scene.sessions[s];
    match sess.traffic {
        TrafficDecl::Greedy => {
            let mut start = None;
            let mut stop = None;
            for e in &scene.timeline {
                match &e.kind {
                    EventKind::SessionStart { session } if *session == sess.id => {
                        start = Some(e.at_ms)
                    }
                    EventKind::SessionStop { session } if *session == sess.id => {
                        stop = Some(e.at_ms)
                    }
                    _ => {}
                }
            }
            if start.is_none() && stop.is_none() {
                Traffic::greedy()
            } else {
                Traffic::window(
                    start.map(ms_to_time).unwrap_or(SimTime::ZERO),
                    stop.map(ms_to_time).unwrap_or(SimTime::MAX),
                )
            }
        }
        TrafficDecl::Window { start_ms, stop_ms } => {
            Traffic::window(ms_to_time(start_ms), ms_to_time(stop_ms))
        }
        TrafficDecl::OnOff {
            start_ms,
            on_ms,
            off_ms,
        } => Traffic::on_off(ms_to_time(start_ms), ms_to_dur(on_ms), ms_to_dur(off_ms)),
        TrafficDecl::Random {
            mean_on_ms,
            mean_off_ms,
        } => Traffic::random(ms_to_dur(mean_on_ms), ms_to_dur(mean_off_ms)),
    }
}

/// Lower a validated scene onto a fresh engine seeded with `seed`.
///
/// Panics on unvalidated scenes — call [`Scene::validate`] (or parse
/// through [`Scene::parse`]) first.
pub fn compile(scene: &Scene, seed: u64) -> CompiledScene {
    let alg = algorithm(&scene.algorithm);
    let mut b = NetworkBuilder::new().cbr_priority(scene.cbr_priority);
    let sw: Vec<SwIdx> = scene.switches.iter().map(|n| b.switch(n)).collect();
    for t in &scene.trunks {
        let a = sw[scene.switches.iter().position(|s| *s == t.a).unwrap()];
        let bb = sw[scene.switches.iter().position(|s| *s == t.b).unwrap()];
        b.trunk(a, bb, t.mbps, us_to_dur(t.prop_us));
    }
    let mut traced = Vec::new();
    for (i, s) in scene.sessions.iter().enumerate() {
        let path: Vec<SwIdx> = s
            .path
            .iter()
            .map(|h| sw[scene.switches.iter().position(|n| n == h).unwrap()])
            .collect();
        let traffic = lower_traffic(scene, i);
        match s.cbr_mbps {
            Some(rate) => {
                b.cbr_session(&path, rate, traffic);
            }
            None => {
                b.session(&path, traffic);
                traced.push(i);
            }
        }
    }

    let mut engine = Engine::new(seed);
    let mut call = 0usize;
    let net = {
        let mut alloc = || {
            let t = call / 2;
            call += 1;
            make_allocator(scene, alg, t)
        };
        b.build(&mut engine, &mut alloc)
    };

    // Lower the link-level timeline to Admin messages on both
    // directional ports. Churn events were already folded into the
    // sessions' traffic windows above.
    for e in &scene.timeline {
        let at = ms_to_time(e.at_ms);
        let (trunk, a_cmd, b_cmd) = match e.kind {
            EventKind::SetCapacity { trunk, mbps } => {
                let h = &net.trunks[trunk];
                let cps = mbps_to_cps(mbps);
                (
                    h,
                    AdminCmd::SetCapacity {
                        port: h.a_port,
                        cps,
                    },
                    AdminCmd::SetCapacity {
                        port: h.b_port,
                        cps,
                    },
                )
            }
            EventKind::LinkDown { trunk } | EventKind::LinkUp { trunk } => {
                let h = &net.trunks[trunk];
                let loss = if matches!(e.kind, EventKind::LinkDown { .. }) {
                    1.0
                } else {
                    0.0
                };
                (
                    h,
                    AdminCmd::SetLoss {
                        port: h.a_port,
                        loss,
                    },
                    AdminCmd::SetLoss {
                        port: h.b_port,
                        loss,
                    },
                )
            }
            EventKind::SessionStart { .. } | EventKind::SessionStop { .. } => continue,
        };
        engine.schedule(at, trunk.a_switch, AtmMsg::Admin(a_cmd));
        engine.schedule(at, trunk.b_switch, AtmMsg::Admin(b_cmd));
    }

    CompiledScene {
        engine,
        net,
        until: ms_to_time(scene.duration_ms),
        bottleneck: TrunkIdx(scene.bottleneck),
        traced,
        tail_from_secs: scene
            .analysis
            .tail_from_ms
            .unwrap_or(scene.duration_ms / 2.0)
            / 1e3,
    }
}
