//! Lowering a validated [`Scene`] onto the simulator.
//!
//! The compiler replays the exact builder sequence the hard-coded
//! scenario runners use — switches, then trunks, then sessions, then
//! `NetworkBuilder::build` on a fresh `Engine::new(seed)` — so a scene
//! that transliterates a built-in figure produces a byte-identical
//! event stream (and therefore byte-identical traces and analysis
//! reports) at any `--jobs` level.
//!
//! Timeline events are resolved at compile time:
//!
//! * `session_start` / `session_stop` (churn) fold into the session's
//!   [`Traffic`] window before the source node is even constructed, so
//!   churn costs nothing at run time;
//! * `set_capacity`, `link_down` and `link_up` lower to
//!   [`AdminCmd`] messages scheduled against *both* directional ports
//!   of the trunk, making a dynamic run a pure function of
//!   `(scene, seed)`.

use crate::model::{EventKind, GenerateDecl, GenerateKind, Scene, TrafficDecl};
use phantom_atm::allocator::RateAllocator;
use phantom_atm::network::{Network, NetworkBuilder, SessionId, SwIdx, TrunkIdx};
use phantom_atm::units::mbps_to_cps;
use phantom_atm::{AdminCmd, AtmMsg, Traffic};
use phantom_core::{MacrConfig, PhantomAllocator, PhantomConfig};
use phantom_scenarios::common::AtmAlgorithm;
use phantom_sim::{Engine, SimDuration, SimTime};

/// A scene lowered onto a ready-to-run engine.
pub struct CompiledScene {
    /// The engine, with all sources kicked off and timeline events queued.
    pub engine: Engine<AtmMsg>,
    /// Handles into the built topology.
    pub net: Network,
    /// Run horizon.
    pub until: SimTime,
    /// The trunk the standard panels watch.
    pub bottleneck: TrunkIdx,
    /// ABR session ids (traced in the standard panels).
    pub traced: Vec<SessionId>,
    /// Tail start (seconds) for whole-run aggregate metrics.
    pub tail_from_secs: f64,
}

/// Exact `ms → SimTime` conversion: agrees bit-for-bit with
/// `SimTime::from_millis` on integral inputs, so scene twins of the
/// hard-coded figures run the identical horizon.
pub fn ms_to_time(ms: f64) -> SimTime {
    SimTime((ms * 1e6).round() as u64)
}

fn ms_to_dur(ms: f64) -> SimDuration {
    SimDuration((ms * 1e6).round() as u64)
}

fn us_to_dur(us: f64) -> SimDuration {
    SimDuration((us * 1e3).round() as u64)
}

/// Resolve a scene algorithm name (already validated against
/// [`crate::model::ALGORITHMS`]).
pub fn algorithm(name: &str) -> AtmAlgorithm {
    match name {
        "phantom" => AtmAlgorithm::Phantom,
        "phantom-fixed-alpha" => AtmAlgorithm::PhantomFixedAlpha,
        "phantom-departures" => AtmAlgorithm::PhantomDepartures,
        "phantom-ni" => AtmAlgorithm::PhantomNi,
        "eprca" => AtmAlgorithm::Eprca,
        "aprc" => AtmAlgorithm::Aprc,
        "capc" => AtmAlgorithm::Capc,
        "erica" => AtmAlgorithm::Erica,
        "osu" => AtmAlgorithm::Osu,
        other => panic!("unvalidated scene algorithm `{other}`"),
    }
}

/// The allocator for one direction of trunk `t`, honouring scene-wide
/// and per-trunk Phantom overrides. With no overrides this is exactly
/// `alg.boxed()` — the same construction the hard-coded runners use.
fn make_allocator(scene: &Scene, alg: AtmAlgorithm, t: usize) -> Box<dyn RateAllocator> {
    let trunk = &scene.trunks[t];
    let u = trunk.u.or(scene.u);
    if u.is_none() && trunk.alpha_inc.is_none() && trunk.alpha_dec.is_none() {
        return alg.boxed();
    }
    // validate() guarantees overrides only appear with algorithm "phantom".
    let mut macr = MacrConfig::default();
    if let Some(a) = trunk.alpha_inc {
        macr.alpha_inc = a;
    }
    if let Some(a) = trunk.alpha_dec {
        macr.alpha_dec = a;
    }
    let mut cfg = PhantomConfig::paper().with_macr(macr);
    if let Some(u) = u {
        cfg = cfg.with_utilization_factor(u);
    }
    Box::new(PhantomAllocator::new(cfg))
}

/// The offered-load pattern of session index `s`, with timeline churn
/// folded into a `Traffic::window` (missing start ⇒ active from 0,
/// missing stop ⇒ active forever).
fn lower_traffic(scene: &Scene, s: usize) -> Traffic {
    let sess = &scene.sessions[s];
    match sess.traffic {
        TrafficDecl::Greedy => {
            let mut start = None;
            let mut stop = None;
            for e in &scene.timeline {
                match &e.kind {
                    EventKind::SessionStart { session } if *session == sess.id => {
                        start = Some(e.at_ms)
                    }
                    EventKind::SessionStop { session } if *session == sess.id => {
                        stop = Some(e.at_ms)
                    }
                    _ => {}
                }
            }
            if start.is_none() && stop.is_none() {
                Traffic::greedy()
            } else {
                Traffic::window(
                    start.map(ms_to_time).unwrap_or(SimTime::ZERO),
                    stop.map(ms_to_time).unwrap_or(SimTime::MAX),
                )
            }
        }
        TrafficDecl::Window { start_ms, stop_ms } => {
            Traffic::window(ms_to_time(start_ms), ms_to_time(stop_ms))
        }
        TrafficDecl::OnOff {
            start_ms,
            on_ms,
            off_ms,
        } => Traffic::on_off(ms_to_time(start_ms), ms_to_dur(on_ms), ms_to_dur(off_ms)),
        TrafficDecl::Random {
            mean_on_ms,
            mean_off_ms,
        } => Traffic::random(ms_to_dur(mean_on_ms), ms_to_dur(mean_off_ms)),
    }
}

/// SplitMix64: the per-session jitter stream for generated scenes.
/// Dependency-free and stable by construction — the jitter of session
/// `i` is a pure function of the generation seed, so a metro scene is
/// reproducible from its JSON alone.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Lower a generated ("metro") topology: drive the builder directly,
/// leaning out per-session observability (no access-port measurement
/// timers, strided ACR samples, coarse goodput sampling) so memory per
/// session stays flat at 10^5–10^6 sessions. Only a 3-session sample
/// (first/middle/last) is traced in the standard panels.
fn compile_generated(scene: &Scene, g: &GenerateDecl, seed: u64) -> CompiledScene {
    let alg = algorithm(&scene.algorithm);
    let mut b = NetworkBuilder::new()
        .cbr_priority(scene.cbr_priority)
        .lean_access(true)
        .acr_sample_stride(g.acr_stride)
        .rate_sample_interval(ms_to_dur(g.rate_sample_ms));
    if let Some(icr) = g.icr_mbps {
        b = b.params(phantom_atm::params::AtmParams::paper().with_icr_mbps(icr));
    }
    let spread_ns = (g.start_spread_ms * 1e6).round() as u64;
    let mut jstate = g.seed;
    let mut jitter = move || {
        if spread_ns == 0 {
            Traffic::greedy()
        } else {
            Traffic::window(SimTime(splitmix64(&mut jstate) % spread_ns), SimTime::MAX)
        }
    };
    match g.kind {
        GenerateKind::FanIn {
            leaves,
            sessions_per_leaf,
            leaf_mbps,
            root_mbps,
            prop_us,
        } => {
            let core = b.switch("core");
            let sink = b.switch("sink");
            // Trunk 0 is the shared root — the default bottleneck.
            b.trunk(core, sink, root_mbps, us_to_dur(prop_us));
            for l in 0..leaves {
                let leaf = b.switch(&format!("leaf{l}"));
                b.trunk(leaf, core, leaf_mbps, us_to_dur(prop_us));
                for _ in 0..sessions_per_leaf {
                    b.session(&[leaf, core, sink], jitter());
                }
            }
        }
        GenerateKind::ParkingLot {
            hops,
            long_sessions,
            cross_per_hop,
            hop_mbps,
            prop_us,
        } => {
            let sws: Vec<SwIdx> = (0..=hops).map(|i| b.switch(&format!("s{i}"))).collect();
            for h in 0..hops {
                b.trunk(sws[h], sws[h + 1], hop_mbps, us_to_dur(prop_us));
            }
            for _ in 0..long_sessions {
                b.session(&sws, jitter());
            }
            for h in 0..hops {
                for _ in 0..cross_per_hop {
                    b.session(&sws[h..=h + 1], jitter());
                }
            }
        }
    }

    let mut engine = Engine::new(seed);
    let net = {
        // Generated scenes carry no per-trunk overrides (they declare no
        // trunks), so the only Phantom knob is the scene-wide `u`.
        let mut alloc = || -> Box<dyn RateAllocator> {
            match scene.u {
                None => alg.boxed(),
                Some(u) => Box::new(PhantomAllocator::new(
                    PhantomConfig::paper().with_utilization_factor(u),
                )),
            }
        };
        b.build(&mut engine, &mut alloc)
    };
    lower_link_timeline(scene, &net, &mut engine);

    let n = g.n_sessions();
    let mut sample = vec![0, n / 2, n - 1];
    sample.dedup();
    CompiledScene {
        engine,
        net,
        until: ms_to_time(scene.duration_ms),
        bottleneck: TrunkIdx(scene.bottleneck),
        traced: sample.into_iter().map(SessionId).collect(),
        tail_from_secs: scene
            .analysis
            .tail_from_ms
            .unwrap_or(scene.duration_ms / 2.0)
            / 1e3,
    }
}

/// Lower a validated scene onto a fresh engine seeded with `seed`.
///
/// Panics on unvalidated scenes — call [`Scene::validate`] (or parse
/// through [`Scene::parse`]) first.
pub fn compile(scene: &Scene, seed: u64) -> CompiledScene {
    if let Some(g) = &scene.generate {
        return compile_generated(scene, g, seed);
    }
    let alg = algorithm(&scene.algorithm);
    let mut b = NetworkBuilder::new().cbr_priority(scene.cbr_priority);
    let sw: Vec<SwIdx> = scene.switches.iter().map(|n| b.switch(n)).collect();
    // Name → index resolved once (first declaration wins, matching the
    // linear scan this replaces) so compile stays O(hops), not
    // O(hops × switches), on machine-generated topologies.
    let mut by_name = std::collections::HashMap::new();
    for (i, n) in scene.switches.iter().enumerate() {
        by_name.entry(n.as_str()).or_insert(i);
    }
    for t in &scene.trunks {
        let a = sw[by_name[t.a.as_str()]];
        let bb = sw[by_name[t.b.as_str()]];
        b.trunk(a, bb, t.mbps, us_to_dur(t.prop_us));
    }
    let mut traced = Vec::new();
    for (i, s) in scene.sessions.iter().enumerate() {
        let path: Vec<SwIdx> = s.path.iter().map(|h| sw[by_name[h.as_str()]]).collect();
        let traffic = lower_traffic(scene, i);
        match s.cbr_mbps {
            Some(rate) => {
                b.cbr_session(&path, rate, traffic);
            }
            None => {
                let sid = b.session(&path, traffic);
                debug_assert_eq!(sid.0, i, "session ids track declaration order");
                traced.push(sid);
            }
        }
    }

    let mut engine = Engine::new(seed);
    let mut call = 0usize;
    let net = {
        let mut alloc = || {
            let t = call / 2;
            call += 1;
            make_allocator(scene, alg, t)
        };
        b.build(&mut engine, &mut alloc)
    };

    lower_link_timeline(scene, &net, &mut engine);

    CompiledScene {
        engine,
        net,
        until: ms_to_time(scene.duration_ms),
        bottleneck: TrunkIdx(scene.bottleneck),
        traced,
        tail_from_secs: scene
            .analysis
            .tail_from_ms
            .unwrap_or(scene.duration_ms / 2.0)
            / 1e3,
    }
}

/// Lower the link-level timeline to Admin messages on both directional
/// ports of each referenced trunk. Churn events fold into the sessions'
/// traffic windows instead and are skipped here.
fn lower_link_timeline(scene: &Scene, net: &Network, engine: &mut Engine<AtmMsg>) {
    for e in &scene.timeline {
        let at = ms_to_time(e.at_ms);
        let (trunk, a_cmd, b_cmd) = match e.kind {
            EventKind::SetCapacity { trunk, mbps } => {
                let h = &net.trunks[trunk];
                let cps = mbps_to_cps(mbps);
                (
                    h,
                    AdminCmd::SetCapacity {
                        port: h.a_port,
                        cps,
                    },
                    AdminCmd::SetCapacity {
                        port: h.b_port,
                        cps,
                    },
                )
            }
            EventKind::LinkDown { trunk } | EventKind::LinkUp { trunk } => {
                let h = &net.trunks[trunk];
                let loss = if matches!(e.kind, EventKind::LinkDown { .. }) {
                    1.0
                } else {
                    0.0
                };
                (
                    h,
                    AdminCmd::SetLoss {
                        port: h.a_port,
                        loss,
                    },
                    AdminCmd::SetLoss {
                        port: h.b_port,
                        loss,
                    },
                )
            }
            EventKind::SessionStart { .. } | EventKind::SessionStop { .. } => continue,
        };
        engine.schedule(at, trunk.a_switch, AtmMsg::Admin(a_cmd));
        engine.schedule(at, trunk.b_switch, AtmMsg::Admin(b_cmd));
    }
}
