//! Machine-readable validation results (`phantom-check/1`).
//!
//! `phantom check --json` and the serve daemon's `400 Bad Request`
//! bodies share these renderers, so a client sees exactly the text a
//! human sees on stderr — wrapped in a stable one-line JSON envelope
//! instead of a prose prefix.

use crate::json::Json;
use crate::model::Scene;

/// Schema tag on every check document.
pub const CHECK_SCHEMA: &str = "phantom-check/1";

/// The leading `scene.foo[3].bar`-style qualifier of a validation
/// error, when the error carries one. Parser errors ("line 4, column
/// 2: …") and IO errors have no path and return `None`.
fn error_path(err: &str) -> Option<&str> {
    let (head, _) = err.split_once(": ")?;
    let pathish =
        |b: u8| b.is_ascii_alphanumeric() || matches!(b, b'_' | b'.' | b'[' | b']' | b'-');
    (!head.is_empty() && !head.contains(' ') && head.bytes().all(pathish)).then_some(head)
}

/// A failed validation as a one-line `phantom-check/1` document. The
/// `error` member is the exact string `phantom check` prints to
/// stderr (minus the `error: <file>: ` prefix); `path` is its leading
/// qualifier when the error names one, else `null`.
pub fn check_error_json(file: &str, err: &str) -> String {
    Json::Obj(vec![
        ("schema".into(), Json::Str(CHECK_SCHEMA.into())),
        ("ok".into(), Json::Bool(false)),
        ("file".into(), Json::Str(file.into())),
        (
            "path".into(),
            match error_path(err) {
                Some(p) => Json::Str(p.into()),
                None => Json::Null,
            },
        ),
        ("error".into(), Json::Str(err.into())),
    ])
    .dump()
}

/// A successful validation as a one-line `phantom-check/1` document,
/// carrying the same shape summary the human output prints. Generated
/// scenes report the expanded trunk/session counts and a `null`
/// switch count, exactly as the text form omits it.
pub fn check_ok_json(file: &str, scene: &Scene) -> String {
    let (switches, trunks, sessions) = match &scene.generate {
        Some(g) => (Json::Null, g.n_trunks(), g.n_sessions()),
        None => (
            Json::Num(scene.switches.len() as f64),
            scene.trunks.len(),
            scene.sessions.len(),
        ),
    };
    Json::Obj(vec![
        ("schema".into(), Json::Str(CHECK_SCHEMA.into())),
        ("ok".into(), Json::Bool(true)),
        ("file".into(), Json::Str(file.into())),
        ("scene".into(), Json::Str(scene.id.clone())),
        ("generated".into(), Json::Bool(scene.generate.is_some())),
        ("switches".into(), switches),
        ("trunks".into(), Json::Num(trunks as f64)),
        ("sessions".into(), Json::Num(sessions as f64)),
        (
            "timeline_events".into(),
            Json::Num(scene.timeline.len() as f64),
        ),
    ])
    .dump()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_qualified_errors_expose_their_path() {
        let doc = check_error_json(
            "bad.json",
            "scene.switches[0].buffer_cells: must be positive and finite, got 0",
        );
        let j = Json::parse(&doc).unwrap();
        assert_eq!(j.get("schema").unwrap().as_str(), Some(CHECK_SCHEMA));
        assert_eq!(j.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(j.get("file").unwrap().as_str(), Some("bad.json"));
        assert_eq!(
            j.get("path").unwrap().as_str(),
            Some("scene.switches[0].buffer_cells")
        );
        assert_eq!(
            j.get("error").unwrap().as_str(),
            Some("scene.switches[0].buffer_cells: must be positive and finite, got 0")
        );
    }

    #[test]
    fn parser_errors_have_a_null_path() {
        let doc = check_error_json("bad.json", "line 3, column 7: expected `:` after key");
        let j = Json::parse(&doc).unwrap();
        assert_eq!(j.get("path"), Some(&Json::Null));
        assert_eq!(
            j.get("error").unwrap().as_str(),
            Some("line 3, column 7: expected `:` after key")
        );
    }

    #[test]
    fn ok_document_mirrors_the_human_summary() {
        let scene = crate::parse_scene(
            r#"{
                "schema": "phantom-scene/1",
                "id": "check-json",
                "describe": "check --json fixture",
                "algorithm": "phantom",
                "duration_ms": 1.0,
                "switches": ["s1", "s2"],
                "trunks": [{"a": "s1", "b": "s2", "mbps": 150, "prop_us": 10}],
                "sessions": [{"id": "g0", "path": ["s1", "s2"], "traffic": {"kind": "greedy"}}],
                "bottleneck": 0
            }"#,
        )
        .expect("fixture scene validates");
        let doc = check_ok_json("check-json.json", &scene);
        let j = Json::parse(&doc).unwrap();
        assert_eq!(j.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(j.get("scene").unwrap().as_str(), Some("check-json"));
        assert_eq!(j.get("generated").unwrap().as_bool(), Some(false));
        assert_eq!(j.get("switches").unwrap().as_f64(), Some(2.0));
        assert_eq!(j.get("sessions").unwrap().as_f64(), Some(1.0));
        assert_eq!(j.get("timeline_events").unwrap().as_f64(), Some(0.0));
    }
}
