//! Running scenes and registering them as first-class experiments.
//!
//! [`register_scene`] wires a parsed scene into the scenario registry
//! (so `repro <id>` and the sweep runner treat it exactly like a
//! built-in figure) and into the shape registry (so `--analyze` checks
//! it against the targets its own topology and timeline predict,
//! including per-perturbation-epoch fixed points).

use crate::compile::compile;
use crate::model::Scene;
use phantom_analyze::{AnalysisTargets, EpochTarget};
use phantom_atm::units::mbps_to_cps;
use phantom_core::fixed_point::single_link_macr;
use phantom_metrics::{ExperimentResult, ScaleRecord, ShardScalePoint};
use phantom_scenarios::atm::run_standard;
use phantom_scenarios::registry::{register_dynamic, DynamicExperiment, ExperimentOutput};
use phantom_scenarios::shape::register_shape;
use std::path::Path;
use std::sync::Arc;

/// The paper's default utilization factor, used when a scene derives
/// MACR targets from session counts without overriding `u`.
const DEFAULT_U: f64 = 5.0;

/// Compile and run a validated scene, producing the same figure output
/// (standard panels + metrics) as the hard-coded runners.
pub fn run_scene(scene: &Scene, seed: u64) -> ExperimentResult {
    let c = compile(scene, seed);
    let (_engine, _net, result) = run_standard(
        c.engine,
        c.net,
        c.until,
        &scene.id,
        &scene.describe,
        "compiled from a phantom-scene/1 file",
        c.bottleneck,
        &c.traced,
        c.tail_from_secs,
    );
    result
}

/// Build and run `scene` once as a *scale probe*: measure resident-set
/// growth across build + run, the engine's own per-node accounting, and
/// run throughput. Returns the `phantom-bench/4` scale record plus the
/// per-arena breakdown (for human-readable reporting).
///
/// RSS comes from [`phantom_sim::telemetry::rss_bytes`] (the same
/// reader the heartbeat uses); when `/proc/self/status` is unreadable
/// on this platform the record carries `rss_delta_bytes: None` and the
/// capacity numbers fall back to the engine's own arena accounting —
/// the probe degrades, it does not fail.
///
/// The RSS delta is a whole-process measurement — run this on a quiet
/// process (the `repro --scale` probe runs after the sweep, serially)
/// or the number includes unrelated allocations.
pub fn scale_scene(scene: &Scene, seed: u64) -> (ScaleRecord, Vec<phantom_sim::ArenaStats>) {
    let rss0 = phantom_sim::telemetry::rss_bytes();
    let c = compile(scene, seed);
    let mut engine = c.engine;
    let marker = phantom_sim::telemetry::begin_run();
    let events_before = phantom_sim::thread_events_dispatched();
    let start = std::time::Instant::now();
    engine.run_until(c.until);
    let wall_secs = start.elapsed().as_secs_f64();
    let events = phantom_sim::thread_events_dispatched() - events_before;
    let counters = marker.finish();
    let rss1 = phantom_sim::telemetry::rss_bytes();
    let stats = engine.arena_stats();
    let record = ScaleRecord {
        scene: scene.id.clone(),
        seed,
        sessions: c.net.sessions.len() as u64,
        nodes: stats.iter().map(|s| s.nodes as u64).sum(),
        events,
        wall_secs,
        rss_delta_bytes: match (rss0, rss1) {
            (Some(before), Some(after)) => Some(after.saturating_sub(before)),
            _ => None,
        },
        arena_bytes: engine.nodes_footprint_bytes() as u64,
        drops: counters.drops,
        queue_peak: counters.queue_peak,
    };
    (record, stats)
}

/// Build and run `scene` once at a fixed `--shards` count, measuring
/// events dispatched and wall-clock time — one point of the
/// `phantom-bench/5` `shard_scaling` array. The build is excluded from
/// the measurement; the run is the same conservative-PDES execution
/// `phantom run --shards N` performs, so the events count must be
/// identical at every shard count.
pub fn shard_scale_scene(scene: &Scene, seed: u64, shards: usize) -> ShardScalePoint {
    let _guard = phantom_sim::ShardGuard::new(shards);
    let c = compile(scene, seed);
    let mut engine = c.engine;
    let marker = phantom_sim::telemetry::begin_run();
    let events_before = phantom_sim::thread_events_dispatched();
    let start = std::time::Instant::now();
    engine.run_until(c.until);
    let wall_secs = start.elapsed().as_secs_f64();
    let events = phantom_sim::thread_events_dispatched() - events_before;
    let _ = marker.finish();
    ShardScalePoint {
        shards,
        scene: scene.id.clone(),
        seed,
        events,
        wall_secs,
    }
}

/// The analysis targets a scene predicts: bottleneck capacity, the
/// `C/(1+n·u)` MACR fixed point (when declared via `macr_mbps` or
/// `n_sessions`), and one [`EpochTarget`] per declared perturbation
/// epoch.
pub fn analysis_targets(scene: &Scene) -> AnalysisTargets {
    let c = mbps_to_cps(scene.bottleneck_mbps());
    let u = scene.u.unwrap_or(DEFAULT_U);
    let a = &scene.analysis;
    let macr_cps = a
        .macr_mbps
        .map(mbps_to_cps)
        .or_else(|| a.n_sessions.map(|n| single_link_macr(c, n, u)));
    AnalysisTargets {
        macr_cps,
        capacity_cps: Some(c),
        conv_tol: a.conv_tol.unwrap_or(0.15),
        tail_from_secs: a.tail_from_ms.unwrap_or(scene.duration_ms / 2.0) / 1e3,
        epochs: a
            .epochs
            .iter()
            .map(|e| EpochTarget {
                from_secs: e.from_ms / 1e3,
                to_secs: e.to_ms / 1e3,
                macr_cps: e.macr_mbps.map(mbps_to_cps).unwrap_or_else(|| {
                    let ec = e.capacity_mbps.map(mbps_to_cps).unwrap_or(c);
                    single_link_macr(ec, e.n_sessions.expect("validated epoch"), u)
                }),
            })
            .collect(),
    }
}

/// Register a validated scene as a runnable experiment under its id,
/// shadowing any built-in of the same name, and publish its predicted
/// analysis shape. (For built-in ids the *static* shape table keeps
/// precedence, so twin scenes analyze against the identical committed
/// targets.)
pub fn register_scene(scene: Scene) {
    register_shape(&scene.id, analysis_targets(&scene));
    let id = scene.id.clone();
    let describe = scene.describe.clone();
    register_dynamic(DynamicExperiment {
        id,
        describe,
        run: Arc::new(move |seed| ExperimentOutput::Figure(run_scene(&scene, seed))),
    });
}

/// Parse **and validate** a scene document.
pub fn parse_scene(text: &str) -> Result<Scene, String> {
    Scene::parse(text)
}

/// Load one scene file.
pub fn load_scene_file(path: &Path) -> Result<Scene, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    Scene::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Load every `*.json` scene in a directory, sorted by file name so
/// registration order (and thus sweep job order) is deterministic.
pub fn load_scene_dir(dir: &Path) -> Result<Vec<Scene>, String> {
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    paths.sort();
    paths.iter().map(|p| load_scene_file(p)).collect()
}
