//! Generated-topology (metro) scenes: determinism and shape.
//!
//! The `generate` block expands a seeded parametric topology at
//! compile time. These tests pin the contract the scale harness
//! depends on: compilation is a pure function of `(scene, seed)` —
//! same event stream, same session/node counts, run after run — and
//! both generator kinds produce the declared shape.

use phantom_scene::{compile, parse_scene, scale_scene};

fn fan_in(id: &str, leaves: usize, per_leaf: usize) -> String {
    format!(
        r#"{{
  "schema": "phantom-scene/1",
  "id": "{id}",
  "describe": "test fan-in",
  "algorithm": "phantom",
  "duration_ms": 20,
  "generate": {{
    "kind": "fan_in",
    "seed": 7,
    "leaves": {leaves},
    "sessions_per_leaf": {per_leaf},
    "leaf_mbps": 155.0,
    "root_mbps": 622.0,
    "prop_us": 10.0,
    "start_spread_ms": 5.0,
    "rate_sample_ms": 5.0,
    "acr_stride": 4,
    "icr_mbps": 0.5
  }},
  "analysis": {{ "n_sessions": {} }}
}}"#,
        leaves * per_leaf
    )
}

const PARKING_LOT: &str = r#"{
  "schema": "phantom-scene/1",
  "id": "pl-test",
  "describe": "test parking lot",
  "algorithm": "phantom",
  "duration_ms": 20,
  "generate": {
    "kind": "parking_lot",
    "seed": 11,
    "hops": 3,
    "long_sessions": 4,
    "cross_per_hop": 2,
    "hop_mbps": 155.0,
    "prop_us": 10.0,
    "start_spread_ms": 5.0,
    "rate_sample_ms": 5.0,
    "acr_stride": 4,
    "icr_mbps": 0.5
  },
  "analysis": { "n_sessions": 6 }
}"#;

#[test]
fn fan_in_expands_to_the_declared_shape() {
    let scene = parse_scene(&fan_in("fi-shape", 3, 5)).unwrap();
    let c = compile(&scene, 1996);
    // 3 leaves + 1 core + 1 sink switch; 15 sources + 15 dests.
    assert_eq!(c.net.sessions.len(), 15);
    assert_eq!(c.net.switches.len(), 5);
    // Root trunk (trunk 0) is the declared bottleneck.
    assert_eq!(scene.bottleneck_mbps(), 622.0);
}

#[test]
fn parking_lot_expands_to_the_declared_shape() {
    let scene = parse_scene(PARKING_LOT).unwrap();
    let c = compile(&scene, 1996);
    // 4 long + 3 hops x 2 cross sessions; hops + 1 switches... plus sink.
    assert_eq!(c.net.sessions.len(), 10);
    assert!(c.net.switches.len() >= 4);
    assert_eq!(scene.bottleneck_mbps(), 155.0);
}

#[test]
fn generated_scenes_are_deterministic_per_seed() {
    let scene = parse_scene(&fan_in("fi-det", 2, 8)).unwrap();
    let (a, arenas_a) = scale_scene(&scene, 1996);
    let (b, arenas_b) = scale_scene(&scene, 1996);
    // Same seed: identical event stream and telemetry, bit for bit.
    assert_eq!(a.events, b.events);
    assert_eq!(a.sessions, b.sessions);
    assert_eq!(a.nodes, b.nodes);
    assert_eq!(a.drops, b.drops);
    assert_eq!(a.queue_peak, b.queue_peak);
    assert!(a.events > 0, "the generated scene must actually run");
    let counts_a: Vec<_> = arenas_a.iter().map(|s| (s.type_name, s.nodes)).collect();
    let counts_b: Vec<_> = arenas_b.iter().map(|s| (s.type_name, s.nodes)).collect();
    assert_eq!(counts_a, counts_b);

    // A different master seed keeps the topology but may reshuffle the
    // event interleaving; the *shape* stays fixed.
    let (c, _) = scale_scene(&scene, 7);
    assert_eq!(c.sessions, a.sessions);
    assert_eq!(c.nodes, a.nodes);
}

#[test]
fn generate_round_trips_through_to_json() {
    for text in [fan_in("fi-rt", 2, 3), PARKING_LOT.to_string()] {
        let scene = parse_scene(&text).unwrap();
        let back = parse_scene(&scene.to_json()).unwrap();
        assert_eq!(scene, back);
    }
}

#[test]
fn generate_rejects_out_of_range_parameters() {
    // Start spread must fit inside the run.
    let bad =
        fan_in("fi-bad", 2, 3).replace(r#""start_spread_ms": 5.0"#, r#""start_spread_ms": 50.0"#);
    let e = parse_scene(&bad).unwrap_err();
    assert!(e.contains("start_spread_ms"), "{e}");

    // The accidental-typo session cap.
    let huge = fan_in("fi-huge", 4096, 2_000_000);
    let e = parse_scene(&huge).unwrap_err();
    assert!(e.contains("sessions"), "{e}");
}
