//! The determinism contract of scene compilation:
//!
//! * a scene transliterating a hard-coded figure produces
//!   byte-identical traces — and, for ids with committed shapes,
//!   byte-identical analysis reports — at `--jobs 1` and `--jobs 4`;
//! * the committed churn scene (2 → 8 → 2 sessions) re-converges to
//!   `C/(1+n·u)` within 5% in every perturbation epoch, and stays
//!   inside its committed analysis baseline.

use phantom_analyze::baseline::{check_report, parse_baseline};
use phantom_analyze::DEFAULT_WINDOW_SECS;
use phantom_scenarios::sweep::{run_sweep_with, SweepJob, SweepOptions};
use phantom_scene::{load_scene_file, register_scene};
use phantom_sim::probe::KindSet;
use std::path::{Path, PathBuf};

const SEED: u64 = 1996;

fn scenes_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenes")
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("phantom-scene-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn opts(trace_dir: &Path) -> SweepOptions {
    SweepOptions {
        trace_dir: Some(trace_dir.to_path_buf()),
        trace_filter: KindSet::ALL,
        analyze_window: Some(DEFAULT_WINDOW_SECS),
        ..SweepOptions::default()
    }
}

fn trace_bytes(dir: &Path, id: &str) -> Vec<u8> {
    let path = dir.join(format!("{id}-{SEED}.jsonl"));
    std::fs::read(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

/// One test (not several) so the ordering is guaranteed: the
/// hard-coded figures must run *before* their scene twins shadow them
/// in the process-global registry.
#[test]
fn scene_twins_reproduce_hardcoded_figures_byte_identically() {
    let ids = ["fig2", "fig4", "fig6"];
    let jobs: Vec<SweepJob> = ids
        .iter()
        .map(|id| SweepJob {
            id: id.to_string(),
            seed: SEED,
        })
        .collect();

    // 1. The hard-coded runners, via the registry.
    let hard_dir = fresh_dir("hard");
    let hard = run_sweep_with(&jobs, 1, &opts(&hard_dir));

    // 2. Shadow all three ids with their committed scene twins.
    for id in ids {
        let scene = load_scene_file(&scenes_dir().join(format!("{id}.json"))).unwrap();
        assert_eq!(scene.id, id);
        register_scene(scene);
    }

    // 3. Re-run through the scene compiler, serial and parallel.
    let scene1_dir = fresh_dir("scene-j1");
    let scene4_dir = fresh_dir("scene-j4");
    let scene1 = run_sweep_with(&jobs, 1, &opts(&scene1_dir));
    let scene4 = run_sweep_with(&jobs, 4, &opts(&scene4_dir));

    for (i, id) in ids.iter().enumerate() {
        let reference = trace_bytes(&hard_dir, id);
        assert!(!reference.is_empty(), "{id}: empty hard-coded trace");
        assert_eq!(
            reference,
            trace_bytes(&scene1_dir, id),
            "{id}: scene trace differs from hard-coded at --jobs 1"
        );
        assert_eq!(
            reference,
            trace_bytes(&scene4_dir, id),
            "{id}: scene trace differs from hard-coded at --jobs 4"
        );

        // Analysis reports: byte-identical where a committed static
        // shape pins the targets (fig2, fig4). fig6 has no static
        // shape — the scene registers its own, so the hard-coded
        // (target-free) report is not comparable.
        if *id != "fig6" {
            let h = hard[i].analysis.as_ref().unwrap().to_json();
            assert_eq!(
                h,
                scene1[i].analysis.as_ref().unwrap().to_json(),
                "{id}: analysis report differs at --jobs 1"
            );
            assert_eq!(
                h,
                scene4[i].analysis.as_ref().unwrap().to_json(),
                "{id}: analysis report differs at --jobs 4"
            );
        }
    }

    for run in scene1.iter().chain(scene4.iter()).chain(hard.iter()) {
        assert!(run.output.is_some(), "{}: run failed", run.job.id);
    }
}

#[test]
fn churn_scene_reconverges_within_five_percent_every_epoch() {
    let scene = load_scene_file(&scenes_dir().join("churn.json")).unwrap();
    let n_epochs = scene.analysis.epochs.len();
    assert_eq!(n_epochs, 3);
    register_scene(scene);

    let jobs = [SweepJob {
        id: "churn".into(),
        seed: SEED,
    }];
    let runs = run_sweep_with(
        &jobs,
        1,
        &SweepOptions {
            trace_dir: None,
            trace_filter: KindSet::ALL,
            analyze_window: Some(DEFAULT_WINDOW_SECS),
            ..SweepOptions::default()
        },
    );
    let report = runs[0].analysis.as_ref().expect("analysis report");

    // The acceptance criterion: post-perturbation MACR within 5% of
    // C/(1+n·u) in every epoch (n = 2, 8, 2).
    for i in 0..n_epochs {
        let err = report
            .metric(&format!("epoch{i}_fixed_point_error_rel"))
            .unwrap_or_else(|| panic!("epoch{i}_fixed_point_error_rel missing"));
        assert!(
            err <= 0.05,
            "epoch {i}: fixed-point error {err:.4} exceeds 5%"
        );
        let reconv = report
            .metric(&format!("epoch{i}_reconvergence_secs"))
            .unwrap_or_else(|| panic!("epoch{i}_reconvergence_secs missing"));
        assert!(
            reconv.is_finite(),
            "epoch {i}: never re-entered the convergence band"
        );
    }

    // And the committed baseline gate holds.
    let baseline_path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../baselines/analysis/churn.json");
    let text = std::fs::read_to_string(&baseline_path)
        .unwrap_or_else(|e| panic!("{}: {e}", baseline_path.display()));
    let baseline = parse_baseline(&text).unwrap();
    let failures = check_report(report, &baseline);
    assert!(failures.is_empty(), "baseline check failed: {failures:?}");
}
