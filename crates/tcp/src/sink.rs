//! The TCP receiver end host.
//!
//! Acknowledges data segments cumulatively — per packet by default (the
//! configuration the paper's figures assume), or RFC 1122-style delayed
//! ACKs via [`TcpSink::with_delayed_ack`] — buffers out-of-order
//! segments, and echoes the EFCI/ECN bit back to the sender in the ACK.
//! Also meters delivered goodput, the "measured rate" of the paper's TCP
//! figures.

use crate::packet::{FlowId, Packet, PktKind, TcpMsg, TcpTimer};
use phantom_sim::stats::TimeSeries;
use phantom_sim::{Ctx, Node, NodeId, SimDuration};
use std::collections::BTreeSet;

/// A TCP receiver for one flow.
pub struct TcpSink {
    flow: FlowId,
    reply_to: NodeId,
    prop: SimDuration,
    rcv_next: u64,
    ooo: BTreeSet<u64>,
    sample_interval: SimDuration,
    bytes_in_window: u64,
    /// Delayed-ACK mode: ACK every second in-order segment, or after
    /// `delay`, whichever first. Out-of-order arrivals (duplicate ACKs)
    /// are always acknowledged immediately, preserving fast retransmit.
    delayed_ack: Option<SimDuration>,
    unacked_segments: u32,
    ack_timer_armed: bool,
    last_echo: bool,
    /// In-order bytes delivered to the application.
    pub bytes_delivered: u64,
    /// Data segments received (including duplicates).
    pub segments_received: u64,
    /// Duplicate segments discarded.
    pub duplicates: u64,
    /// Goodput trace, bytes/s.
    pub goodput_series: TimeSeries,
}

impl TcpSink {
    /// A sink for `flow` ACKing through `reply_to` (its attached router),
    /// sampling goodput every `sample_interval`.
    pub fn new(
        flow: FlowId,
        reply_to: NodeId,
        prop: SimDuration,
        sample_interval: SimDuration,
    ) -> Self {
        assert!(!sample_interval.is_zero());
        TcpSink {
            flow,
            reply_to,
            prop,
            rcv_next: 0,
            ooo: BTreeSet::new(),
            sample_interval,
            bytes_in_window: 0,
            delayed_ack: None,
            unacked_segments: 0,
            ack_timer_armed: false,
            last_echo: false,
            bytes_delivered: 0,
            segments_received: 0,
            duplicates: 0,
            goodput_series: TimeSeries::new(),
        }
    }

    /// Enable delayed ACKs (RFC 1122-style): at most every second
    /// segment is acknowledged, with `delay` bounding the wait.
    pub fn with_delayed_ack(mut self, delay: SimDuration) -> Self {
        assert!(!delay.is_zero());
        self.delayed_ack = Some(delay);
        self
    }

    /// The flow id.
    pub fn flow(&self) -> FlowId {
        self.flow
    }

    /// Mean goodput over `elapsed` seconds.
    pub fn mean_goodput(&self, elapsed: f64) -> f64 {
        if elapsed <= 0.0 {
            0.0
        } else {
            self.bytes_delivered as f64 / elapsed
        }
    }

    fn on_data(&mut self, ctx: &mut Ctx<'_, TcpMsg>, seq: u64, len: u32, ecn: bool) {
        self.segments_received += 1;
        let in_order = seq == self.rcv_next;
        if in_order {
            self.rcv_next += u64::from(len);
            self.advance_over_buffered(len);
        } else if seq > self.rcv_next {
            self.ooo.insert(seq);
        } else {
            self.duplicates += 1;
        }
        let newly = self.rcv_next - self.bytes_delivered;
        self.bytes_delivered = self.rcv_next;
        self.bytes_in_window += newly;
        self.last_echo = ecn || self.last_echo;
        match self.delayed_ack {
            // Delay only clean in-order arrivals; anything out of order
            // (or filling a hole) must generate the ACK immediately so
            // duplicate-ACK counting at the sender keeps working.
            Some(delay) if in_order && self.ooo.is_empty() && !ecn => {
                self.unacked_segments += 1;
                if self.unacked_segments >= 2 {
                    self.send_ack(ctx);
                } else if !self.ack_timer_armed {
                    self.ack_timer_armed = true;
                    ctx.send_self(delay, TcpMsg::Timer(TcpTimer::DelayedAck));
                }
            }
            _ => self.send_ack(ctx),
        }
    }

    fn send_ack(&mut self, ctx: &mut Ctx<'_, TcpMsg>) {
        let ack = Packet::ack(self.flow, self.rcv_next, self.last_echo);
        self.last_echo = false;
        self.unacked_segments = 0;
        ctx.send(self.reply_to, self.prop, TcpMsg::Pkt(ack));
    }

    /// All segments are `len` bytes (the sender only emits full MSS
    /// segments), so contiguity is a walk over stored starts.
    fn advance_over_buffered(&mut self, len: u32) {
        while self.ooo.remove(&self.rcv_next) {
            self.rcv_next += u64::from(len);
        }
        // Discard anything now below rcv_next (late duplicates).
        while let Some(&first) = self.ooo.iter().next() {
            if first < self.rcv_next {
                self.ooo.remove(&first);
                self.duplicates += 1;
            } else {
                break;
            }
        }
    }
}

impl Node<TcpMsg> for TcpSink {
    fn on_event(&mut self, ctx: &mut Ctx<'_, TcpMsg>, msg: TcpMsg) {
        match msg {
            TcpMsg::Pkt(pkt) => match pkt.kind {
                PktKind::Data { seq, len } => self.on_data(ctx, seq, len, pkt.ecn),
                k => unreachable!("sink received {k:?}"),
            },
            TcpMsg::Timer(TcpTimer::DelayedAck) => {
                self.ack_timer_armed = false;
                if self.unacked_segments > 0 {
                    self.send_ack(ctx);
                }
            }
            TcpMsg::Timer(TcpTimer::Measure { .. }) => {
                let rate = self.bytes_in_window as f64 / self.sample_interval.as_secs_f64();
                self.goodput_series.push(ctx.now(), rate);
                self.bytes_in_window = 0;
                ctx.send_self(
                    self.sample_interval,
                    TcpMsg::Timer(TcpTimer::Measure { port: 0 }),
                );
            }
            TcpMsg::Timer(t) => unreachable!("sink received {t:?}"),
        }
    }

    fn save_state(&self, w: &mut phantom_sim::KvWriter) -> Result<(), String> {
        w.u64("rcv_next", self.rcv_next);
        // BTreeSet iterates in ascending order — deterministic encoding.
        let ooo: Vec<u64> = self.ooo.iter().copied().collect();
        w.u64_list("ooo", &ooo);
        w.u64("bytes_in_window", self.bytes_in_window);
        w.u64("unacked_segments", u64::from(self.unacked_segments));
        w.bool("ack_timer_armed", self.ack_timer_armed);
        w.bool("last_echo", self.last_echo);
        w.u64("bytes_delivered", self.bytes_delivered);
        w.u64("segments_received", self.segments_received);
        w.u64("duplicates", self.duplicates);
        w.scope("gp", |w| self.goodput_series.save(w));
        Ok(())
    }

    fn restore_state(&mut self, r: &mut phantom_sim::KvReader) -> Result<(), String> {
        self.rcv_next = r.u64("rcv_next")?;
        self.ooo = r.u64_list("ooo")?.into_iter().collect();
        self.bytes_in_window = r.u64("bytes_in_window")?;
        self.unacked_segments = u32::try_from(r.u64("unacked_segments")?)
            .map_err(|_| "unacked_segments out of range")?;
        self.ack_timer_armed = r.bool("ack_timer_armed")?;
        self.last_echo = r.bool("last_echo")?;
        self.bytes_delivered = r.u64("bytes_delivered")?;
        self.segments_received = r.u64("segments_received")?;
        self.duplicates = r.u64("duplicates")?;
        r.scope("gp", |r| self.goodput_series.restore(r))
    }
}
