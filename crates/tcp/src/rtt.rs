//! Round-trip-time estimation and retransmission timeout (Jacobson/Karn).
//!
//! The classic filter from Jacobson's "Congestion Avoidance and Control"
//! \[Jac88\], as specified in Stevens ch. 21: smoothed RTT with gain 1/8,
//! mean deviation with gain 1/4, `RTO = srtt + 4·rttvar`, exponential
//! backoff on timeout, and Karn's rule (handled by the caller: never
//! sample a retransmitted segment).

use phantom_sim::SimDuration;

/// RTT estimator and RTO calculator.
#[derive(Clone, Copy, Debug)]
pub struct RttEstimator {
    srtt: f64,
    rttvar: f64,
    has_sample: bool,
    backoff: u32,
    min_rto: f64,
    max_rto: f64,
}

impl RttEstimator {
    /// A fresh estimator. Until the first sample, the RTO is
    /// `initial_rto`.
    pub fn new(min_rto: SimDuration, max_rto: SimDuration) -> Self {
        assert!(min_rto < max_rto);
        RttEstimator {
            srtt: 0.0,
            rttvar: 0.0,
            has_sample: false,
            backoff: 0,
            min_rto: min_rto.as_secs_f64(),
            max_rto: max_rto.as_secs_f64(),
        }
    }

    /// Defaults suitable for the paper's LAN/WAN scales: RTO in
    /// [50 ms, 4 s].
    pub fn default_paper() -> Self {
        Self::new(SimDuration::from_millis(50), SimDuration::from_secs(4))
    }

    /// Feed one RTT measurement (seconds). Resets the backoff.
    pub fn sample(&mut self, rtt: f64) {
        debug_assert!(rtt >= 0.0);
        if self.has_sample {
            let err = rtt - self.srtt;
            self.srtt += err / 8.0;
            self.rttvar += (err.abs() - self.rttvar) / 4.0;
        } else {
            self.srtt = rtt;
            self.rttvar = rtt / 2.0;
            self.has_sample = true;
        }
        self.backoff = 0;
    }

    /// Current smoothed RTT (seconds); 0 before the first sample.
    pub fn srtt(&self) -> f64 {
        self.srtt
    }

    /// Current retransmission timeout, including backoff.
    pub fn rto(&self) -> SimDuration {
        let base = if self.has_sample {
            self.srtt + 4.0 * self.rttvar
        } else {
            self.min_rto.max(0.2) // conservative initial RTO
        };
        let backed = base * f64::from(1u32 << self.backoff.min(16));
        SimDuration::from_secs_f64(backed.clamp(self.min_rto, self.max_rto))
    }

    /// Double the RTO (Karn's backoff), called on every timeout.
    pub fn back_off(&mut self) {
        self.backoff = (self.backoff + 1).min(16);
    }

    /// Serialize the dynamic state for engine checkpoints (the RTO
    /// bounds are construction-time configuration).
    pub fn save_state(&self, w: &mut phantom_sim::KvWriter) {
        w.f64("srtt", self.srtt);
        w.f64("rttvar", self.rttvar);
        w.bool("has_sample", self.has_sample);
        w.u64("backoff", u64::from(self.backoff));
    }

    /// Restore state written by [`RttEstimator::save_state`].
    pub fn restore_state(&mut self, r: &mut phantom_sim::KvReader) -> Result<(), String> {
        self.srtt = r.f64("srtt")?;
        self.rttvar = r.f64("rttvar")?;
        self.has_sample = r.bool("has_sample")?;
        self.backoff = u32::try_from(r.u64("backoff")?).map_err(|_| "backoff out of range")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est() -> RttEstimator {
        RttEstimator::default_paper()
    }

    #[test]
    fn first_sample_initializes_directly() {
        let mut e = est();
        e.sample(0.1);
        assert_eq!(e.srtt(), 0.1);
        // RTO = srtt + 4*rttvar = 0.1 + 4*0.05 = 0.3
        assert!((e.rto().as_secs_f64() - 0.3).abs() < 1e-9);
    }

    #[test]
    fn constant_rtt_converges_and_tightens() {
        let mut e = est();
        for _ in 0..200 {
            e.sample(0.08);
        }
        assert!((e.srtt() - 0.08).abs() < 1e-6);
        // variance decays; RTO approaches srtt (clamped at min_rto)
        assert!(e.rto().as_secs_f64() <= 0.1);
    }

    #[test]
    fn rto_clamped_to_bounds() {
        let mut e = est();
        e.sample(1e-6);
        assert!(e.rto() >= SimDuration::from_millis(50));
        let mut e2 = est();
        e2.sample(100.0);
        assert!(e2.rto() <= SimDuration::from_secs(4));
    }

    #[test]
    fn backoff_doubles_until_max_and_resets_on_sample() {
        let mut e = est();
        e.sample(0.1);
        let r0 = e.rto().as_secs_f64();
        e.back_off();
        assert!((e.rto().as_secs_f64() - (r0 * 2.0).min(4.0)).abs() < 1e-9);
        e.back_off();
        assert!((e.rto().as_secs_f64() - (r0 * 4.0).min(4.0)).abs() < 1e-9);
        for _ in 0..30 {
            e.back_off(); // saturates, must not overflow
        }
        assert!(e.rto() <= SimDuration::from_secs(4));
        e.sample(0.1);
        assert!((e.rto().as_secs_f64() - r0).abs() < 0.05);
    }

    #[test]
    fn initial_rto_is_conservative() {
        let e = est();
        assert!(e.rto() >= SimDuration::from_millis(200));
    }
}
