//! Packets and the TCP simulation message type.
//!
//! The only non-standard header field is `cr` — the sender's current rate
//! stamp the paper's router mechanisms read ("the source … indicates its
//! current rate (CR) in the IP (or TCP) header"). `ecn` models the
//! EFCI-style congestion bit of the paper's marking mechanism.

/// Identifier of one TCP flow (one direction of a connection).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FlowId(pub u32);

/// Payload-level kind of a packet.
#[derive(Clone, Copy, Debug)]
pub enum PktKind {
    /// A data segment carrying bytes `[seq, seq + len)`.
    Data {
        /// First byte number of the segment.
        seq: u64,
        /// Payload length in bytes.
        len: u32,
    },
    /// A cumulative acknowledgement: all bytes below `ack` received.
    Ack {
        /// Next byte expected by the receiver.
        ack: u64,
        /// Congestion-mark echo (receiver saw `ecn` on the data packet).
        ecn_echo: bool,
    },
    /// An ICMP Source Quench addressed to the flow's sender.
    Quench,
}

/// One packet in flight.
#[derive(Clone, Copy, Debug)]
pub struct Packet {
    /// The flow this packet belongs to.
    pub flow: FlowId,
    /// Kind and sequence information.
    pub kind: PktKind,
    /// The sender's current-rate stamp, bytes/s (0 on ACKs and quenches).
    pub cr: f64,
    /// EFCI/ECN congestion bit, set by routers.
    pub ecn: bool,
    /// Wire size in bytes (payload + headers), used for serialization
    /// delay and byte counting.
    pub wire: u32,
}

impl Packet {
    /// A data segment of `len` payload bytes with the given CR stamp.
    /// Wire size is payload + 40 bytes of TCP/IP header.
    pub fn data(flow: FlowId, seq: u64, len: u32, cr: f64) -> Self {
        Packet {
            flow,
            kind: PktKind::Data { seq, len },
            cr,
            ecn: false,
            wire: len + 40,
        }
    }

    /// A 40-byte cumulative ACK.
    pub fn ack(flow: FlowId, ack: u64, ecn_echo: bool) -> Self {
        Packet {
            flow,
            kind: PktKind::Ack { ack, ecn_echo },
            cr: 0.0,
            ecn: false,
            wire: 40,
        }
    }

    /// A 40-byte Source Quench.
    pub fn quench(flow: FlowId) -> Self {
        Packet {
            flow,
            kind: PktKind::Quench,
            cr: 0.0,
            ecn: false,
            wire: 40,
        }
    }

    /// True for data segments (the only packets Phantom mechanisms act on).
    pub fn is_data(&self) -> bool {
        matches!(self.kind, PktKind::Data { .. })
    }

    /// True for packets travelling toward the sender (ACKs, quenches).
    pub fn is_reverse(&self) -> bool {
        !self.is_data()
    }
}

/// Everything that can be delivered to a TCP-domain node.
#[derive(Clone, Copy, Debug)]
pub enum TcpMsg {
    /// A packet arriving over a link.
    Pkt(Packet),
    /// A node-internal timer.
    Timer(TcpTimer),
}

/// Timer kinds, multiplexed per node.
#[derive(Clone, Copy, Debug)]
pub enum TcpTimer {
    /// Source: NIC may transmit the next packet.
    Tick,
    /// Source: retransmission timeout with a generation counter (stale
    /// timers are ignored).
    Rto {
        /// Generation at scheduling time.
        gen: u64,
    },
    /// Source: sample the current rate (CR) for header stamping.
    CrSample,
    /// Router: head-of-line packet of `port` finished serializing.
    TxDone {
        /// Output-port index.
        port: usize,
    },
    /// Router: end of a measurement interval on `port`.
    Measure {
        /// Output-port index.
        port: usize,
    },
    /// Sink: the delayed-ACK timer expired.
    DelayedAck,
    /// Router: change `port`'s capacity to `bps` bytes/s (models a
    /// bottleneck whose bandwidth is allocated by an underlying network,
    /// e.g. an ATM ABR virtual circuit).
    SetRate {
        /// Output-port index.
        port: usize,
        /// New capacity, bytes/s.
        bps: f64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_fill_wire_sizes() {
        let d = Packet::data(FlowId(1), 512, 512, 1e6);
        assert_eq!(d.wire, 552);
        assert!(d.is_data());
        assert!(!d.is_reverse());
        let a = Packet::ack(FlowId(1), 1024, false);
        assert_eq!(a.wire, 40);
        assert!(a.is_reverse());
        let q = Packet::quench(FlowId(1));
        assert_eq!(q.wire, 40);
        assert!(q.is_reverse());
    }

    #[test]
    fn cr_defaults_to_zero_on_control_packets() {
        assert_eq!(Packet::ack(FlowId(0), 0, false).cr, 0.0);
        assert_eq!(Packet::quench(FlowId(0)).cr, 0.0);
    }
}
