//! Packets and the TCP simulation message type.
//!
//! The only non-standard header field is `cr` — the sender's current rate
//! stamp the paper's router mechanisms read ("the source … indicates its
//! current rate (CR) in the IP (or TCP) header"). `ecn` models the
//! EFCI-style congestion bit of the paper's marking mechanism.

/// Identifier of one TCP flow (one direction of a connection).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FlowId(pub u32);

/// Payload-level kind of a packet.
#[derive(Clone, Copy, Debug)]
pub enum PktKind {
    /// A data segment carrying bytes `[seq, seq + len)`.
    Data {
        /// First byte number of the segment.
        seq: u64,
        /// Payload length in bytes.
        len: u32,
    },
    /// A cumulative acknowledgement: all bytes below `ack` received.
    Ack {
        /// Next byte expected by the receiver.
        ack: u64,
        /// Congestion-mark echo (receiver saw `ecn` on the data packet).
        ecn_echo: bool,
    },
    /// An ICMP Source Quench addressed to the flow's sender.
    Quench,
}

/// One packet in flight.
#[derive(Clone, Copy, Debug)]
pub struct Packet {
    /// The flow this packet belongs to.
    pub flow: FlowId,
    /// Kind and sequence information.
    pub kind: PktKind,
    /// The sender's current-rate stamp, bytes/s (0 on ACKs and quenches).
    pub cr: f64,
    /// EFCI/ECN congestion bit, set by routers.
    pub ecn: bool,
    /// Wire size in bytes (payload + headers), used for serialization
    /// delay and byte counting.
    pub wire: u32,
}

impl Packet {
    /// A data segment of `len` payload bytes with the given CR stamp.
    /// Wire size is payload + 40 bytes of TCP/IP header.
    pub fn data(flow: FlowId, seq: u64, len: u32, cr: f64) -> Self {
        Packet {
            flow,
            kind: PktKind::Data { seq, len },
            cr,
            ecn: false,
            wire: len + 40,
        }
    }

    /// A 40-byte cumulative ACK.
    pub fn ack(flow: FlowId, ack: u64, ecn_echo: bool) -> Self {
        Packet {
            flow,
            kind: PktKind::Ack { ack, ecn_echo },
            cr: 0.0,
            ecn: false,
            wire: 40,
        }
    }

    /// A 40-byte Source Quench.
    pub fn quench(flow: FlowId) -> Self {
        Packet {
            flow,
            kind: PktKind::Quench,
            cr: 0.0,
            ecn: false,
            wire: 40,
        }
    }

    /// True for data segments (the only packets Phantom mechanisms act on).
    pub fn is_data(&self) -> bool {
        matches!(self.kind, PktKind::Data { .. })
    }

    /// True for packets travelling toward the sender (ACKs, quenches).
    pub fn is_reverse(&self) -> bool {
        !self.is_data()
    }

    /// Serialize every field for engine checkpoints.
    pub fn save(&self, w: &mut phantom_sim::KvWriter) {
        w.u64("flow", u64::from(self.flow.0));
        match self.kind {
            PktKind::Data { seq, len } => {
                w.str("kind", "data");
                w.u64("seq", seq);
                w.u64("len", u64::from(len));
            }
            PktKind::Ack { ack, ecn_echo } => {
                w.str("kind", "ack");
                w.u64("ack", ack);
                w.bool("echo", ecn_echo);
            }
            PktKind::Quench => w.str("kind", "quench"),
        }
        w.f64("cr", self.cr);
        w.bool("ecn", self.ecn);
        w.u64("wire", u64::from(self.wire));
    }

    /// Deserialize a [`Packet::save`] image.
    pub fn load(r: &mut phantom_sim::KvReader) -> Result<Self, String> {
        let u32of = |v: u64, what: &str| -> Result<u32, String> {
            u32::try_from(v).map_err(|_| format!("packet {what} {v} out of range"))
        };
        let kind = match r.str("kind")?.as_str() {
            "data" => PktKind::Data {
                seq: r.u64("seq")?,
                len: u32of(r.u64("len")?, "len")?,
            },
            "ack" => PktKind::Ack {
                ack: r.u64("ack")?,
                ecn_echo: r.bool("echo")?,
            },
            "quench" => PktKind::Quench,
            other => return Err(format!("unknown packet kind {other:?}")),
        };
        Ok(Packet {
            flow: FlowId(u32of(r.u64("flow")?, "flow")?),
            kind,
            cr: r.f64("cr")?,
            ecn: r.bool("ecn")?,
            wire: u32of(r.u64("wire")?, "wire")?,
        })
    }

    /// [`Packet::save`] as a standalone token string (queue occupants).
    pub fn encode_str(&self) -> String {
        let mut w = phantom_sim::KvWriter::new();
        self.save(&mut w);
        w.finish()
    }

    /// Invert [`Packet::encode_str`].
    pub fn decode_str(s: &str) -> Result<Self, String> {
        Self::load(&mut phantom_sim::KvReader::parse(s)?)
    }
}

/// Everything that can be delivered to a TCP-domain node.
#[derive(Clone, Copy, Debug)]
pub enum TcpMsg {
    /// A packet arriving over a link.
    Pkt(Packet),
    /// A node-internal timer.
    Timer(TcpTimer),
}

/// Timer kinds, multiplexed per node.
#[derive(Clone, Copy, Debug)]
pub enum TcpTimer {
    /// Source: NIC may transmit the next packet.
    Tick,
    /// Source: retransmission timeout with a generation counter (stale
    /// timers are ignored).
    Rto {
        /// Generation at scheduling time.
        gen: u64,
    },
    /// Source: sample the current rate (CR) for header stamping.
    CrSample,
    /// Router: head-of-line packet of `port` finished serializing.
    TxDone {
        /// Output-port index.
        port: usize,
    },
    /// Router: end of a measurement interval on `port`.
    Measure {
        /// Output-port index.
        port: usize,
    },
    /// Sink: the delayed-ACK timer expired.
    DelayedAck,
    /// Router: change `port`'s capacity to `bps` bytes/s (models a
    /// bottleneck whose bandwidth is allocated by an underlying network,
    /// e.g. an ATM ABR virtual circuit).
    SetRate {
        /// Output-port index.
        port: usize,
        /// New capacity, bytes/s.
        bps: f64,
    },
}

impl phantom_sim::SnapshotMessage for TcpMsg {
    fn encode(&self) -> String {
        let mut w = phantom_sim::KvWriter::new();
        match self {
            TcpMsg::Pkt(p) => {
                w.str("m", "pkt");
                w.scope("p", |w| p.save(w));
            }
            TcpMsg::Timer(TcpTimer::Tick) => w.str("m", "tick"),
            TcpMsg::Timer(TcpTimer::Rto { gen }) => {
                w.str("m", "rto");
                w.u64("gen", *gen);
            }
            TcpMsg::Timer(TcpTimer::CrSample) => w.str("m", "crsample"),
            TcpMsg::Timer(TcpTimer::TxDone { port }) => {
                w.str("m", "txdone");
                w.u64("port", *port as u64);
            }
            TcpMsg::Timer(TcpTimer::Measure { port }) => {
                w.str("m", "measure");
                w.u64("port", *port as u64);
            }
            TcpMsg::Timer(TcpTimer::DelayedAck) => w.str("m", "delack"),
            TcpMsg::Timer(TcpTimer::SetRate { port, bps }) => {
                w.str("m", "setrate");
                w.u64("port", *port as u64);
                w.f64("bps", *bps);
            }
        }
        w.finish()
    }

    fn decode(s: &str) -> Result<Self, String> {
        let mut r = phantom_sim::KvReader::parse(s)?;
        let port =
            |r: &phantom_sim::KvReader| -> Result<usize, String> { Ok(r.u64("port")? as usize) };
        Ok(match r.str("m")?.as_str() {
            "pkt" => TcpMsg::Pkt(r.scope("p", Packet::load)?),
            "tick" => TcpMsg::Timer(TcpTimer::Tick),
            "rto" => TcpMsg::Timer(TcpTimer::Rto { gen: r.u64("gen")? }),
            "crsample" => TcpMsg::Timer(TcpTimer::CrSample),
            "txdone" => TcpMsg::Timer(TcpTimer::TxDone { port: port(&r)? }),
            "measure" => TcpMsg::Timer(TcpTimer::Measure { port: port(&r)? }),
            "delack" => TcpMsg::Timer(TcpTimer::DelayedAck),
            "setrate" => TcpMsg::Timer(TcpTimer::SetRate {
                port: port(&r)?,
                bps: r.f64("bps")?,
            }),
            other => return Err(format!("unknown TCP message kind {other:?}")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_fill_wire_sizes() {
        let d = Packet::data(FlowId(1), 512, 512, 1e6);
        assert_eq!(d.wire, 552);
        assert!(d.is_data());
        assert!(!d.is_reverse());
        let a = Packet::ack(FlowId(1), 1024, false);
        assert_eq!(a.wire, 40);
        assert!(a.is_reverse());
        let q = Packet::quench(FlowId(1));
        assert_eq!(q.wire, 40);
        assert!(q.is_reverse());
    }

    #[test]
    fn cr_defaults_to_zero_on_control_packets() {
        assert_eq!(Packet::ack(FlowId(0), 0, false).cr, 0.0);
        assert_eq!(Packet::quench(FlowId(0)).cr, 0.0);
    }

    #[test]
    fn snapshot_codec_round_trips_every_flavour() {
        use phantom_sim::SnapshotMessage;

        let mut marked = Packet::data(FlowId(9), 123_456_789_012, 512, 1.0 / 3.0);
        marked.ecn = true;
        let msgs = [
            TcpMsg::Pkt(marked),
            TcpMsg::Pkt(Packet::ack(FlowId(2), 987_654, true)),
            TcpMsg::Pkt(Packet::quench(FlowId(0))),
            TcpMsg::Timer(TcpTimer::Tick),
            TcpMsg::Timer(TcpTimer::Rto { gen: 42 }),
            TcpMsg::Timer(TcpTimer::CrSample),
            TcpMsg::Timer(TcpTimer::TxDone { port: 3 }),
            TcpMsg::Timer(TcpTimer::Measure { port: 1 }),
            TcpMsg::Timer(TcpTimer::DelayedAck),
            TcpMsg::Timer(TcpTimer::SetRate {
                port: 0,
                bps: 1.25e6,
            }),
        ];
        for msg in msgs {
            let enc = msg.encode();
            assert!(!enc.contains('\n'));
            let back = TcpMsg::decode(&enc).expect("decode");
            // TcpMsg has no PartialEq (Packet carries bit-exact floats);
            // compare via re-encoding, which is field-exhaustive.
            assert_eq!(back.encode(), enc, "{msg:?}");
        }
        assert!(TcpMsg::decode("m=bogus").is_err());
    }
}
