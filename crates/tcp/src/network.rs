//! Topology builder for TCP scenarios, mirroring the ATM one.
//!
//! Routers are connected by trunks (each direction gets its own port and
//! its own queue-discipline instance); flows attach to their first router
//! through an access link whose propagation delay sets the flow's RTT
//! share (the heterogeneous-RTT experiments vary it per flow). Access
//! ports always run drop-tail — the mechanisms under test live on the
//! contended trunk ports.

use crate::cc::CongestionControl;
use crate::packet::{FlowId, TcpMsg, TcpTimer};
use crate::qdisc::{DropTail, QueueDiscipline};
use crate::reno::Reno;
use crate::router::{FlowRoute, RPort, Router};
use crate::sink::TcpSink;
use crate::source::TcpSource;
use crate::vegas::{Vegas, VegasConfig};
use phantom_metrics::Registry;
use phantom_sim::stats::TimeSeries;
use phantom_sim::{Engine, NodeId, ShardHints, SimDuration, SimTime};

/// Index of a router within the builder.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RtIdx(pub usize);

/// Index of a trunk within the builder.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TrunkIdx(pub usize);

/// Convert Mb/s to bytes/s.
pub fn mbps_to_bps(mbps: f64) -> f64 {
    mbps * 1e6 / 8.0
}

struct TrunkSpec {
    a: usize,
    b: usize,
    capacity: f64, // bytes/s
    prop: SimDuration,
}

/// Which congestion-control algorithm a flow's sender runs.
#[derive(Clone, Copy, Debug)]
pub enum CcAlgorithm {
    /// TCP Reno (the paper's default end system).
    Reno,
    /// TCP Vegas with the given thresholds.
    Vegas(VegasConfig),
}

impl CcAlgorithm {
    fn boxed(&self, mss: u32, max_cwnd: f64) -> Box<dyn CongestionControl> {
        match *self {
            CcAlgorithm::Reno => Box::new(Reno::new(mss, max_cwnd)),
            CcAlgorithm::Vegas(cfg) => {
                let cfg = VegasConfig { max_cwnd, ..cfg };
                Box::new(Vegas::new(mss, cfg))
            }
        }
    }
}

struct FlowSpec {
    path: Vec<usize>,
    start: SimTime,
    access_prop: SimDuration,
    cc: CcAlgorithm,
}

/// Declarative TCP topology.
pub struct TcpNetworkBuilder {
    mss: u32,
    max_cwnd: f64,
    queue_cap_pkts: usize,
    measure_interval: SimDuration,
    cr_interval: SimDuration,
    goodput_interval: SimDuration,
    access_rate: f64,
    access_prop: SimDuration,
    delayed_ack: Option<SimDuration>,
    router_names: Vec<String>,
    trunks: Vec<TrunkSpec>,
    flows: Vec<FlowSpec>,
}

impl Default for TcpNetworkBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl TcpNetworkBuilder {
    /// Paper-flavored defaults: 512-byte packets, 100-packet router
    /// buffers, 10 ms measurement and CR intervals, 100 Mb/s access links
    /// with 0.1 ms propagation.
    pub fn new() -> Self {
        TcpNetworkBuilder {
            mss: 512,
            max_cwnd: 10_000.0,
            queue_cap_pkts: 100,
            measure_interval: SimDuration::from_millis(10),
            cr_interval: SimDuration::from_millis(10),
            goodput_interval: SimDuration::from_millis(20),
            access_rate: mbps_to_bps(100.0),
            access_prop: SimDuration::from_micros(100),
            delayed_ack: None,
            router_names: Vec::new(),
            trunks: Vec::new(),
            flows: Vec::new(),
        }
    }

    /// Override the segment size.
    pub fn mss(mut self, mss: u32) -> Self {
        assert!(mss > 0);
        self.mss = mss;
        self
    }

    /// Override the router buffer size (packets).
    pub fn queue_cap(mut self, pkts: usize) -> Self {
        self.queue_cap_pkts = pkts;
        self
    }

    /// Override the measurement interval (Δt of the router's MACR).
    pub fn measure_interval(mut self, dt: SimDuration) -> Self {
        assert!(!dt.is_zero());
        self.measure_interval = dt;
        self
    }

    /// Override the senders' CR sampling interval.
    pub fn cr_interval(mut self, dt: SimDuration) -> Self {
        assert!(!dt.is_zero());
        self.cr_interval = dt;
        self
    }

    /// Override the default access propagation delay.
    pub fn access_prop(mut self, prop: SimDuration) -> Self {
        self.access_prop = prop;
        self
    }

    /// Override the access-link rate (Mb/s).
    pub fn access_mbps(mut self, mbps: f64) -> Self {
        assert!(mbps > 0.0);
        self.access_rate = mbps_to_bps(mbps);
        self
    }

    /// Enable delayed ACKs at every receiver (ack every second segment,
    /// bounded by `delay`).
    pub fn delayed_ack(mut self, delay: SimDuration) -> Self {
        assert!(!delay.is_zero());
        self.delayed_ack = Some(delay);
        self
    }

    /// Cap the senders' congestion window (segments).
    pub fn max_cwnd(mut self, segs: f64) -> Self {
        assert!(segs >= 2.0);
        self.max_cwnd = segs;
        self
    }

    /// Declare a router.
    pub fn router(&mut self, name: &str) -> RtIdx {
        self.router_names.push(name.to_string());
        RtIdx(self.router_names.len() - 1)
    }

    /// Declare a bidirectional trunk (capacity in Mb/s).
    pub fn trunk(&mut self, a: RtIdx, b: RtIdx, mbps: f64, prop: SimDuration) -> TrunkIdx {
        assert!(a != b);
        assert!(a.0 < self.router_names.len() && b.0 < self.router_names.len());
        self.trunks.push(TrunkSpec {
            a: a.0,
            b: b.0,
            capacity: mbps_to_bps(mbps),
            prop,
        });
        TrunkIdx(self.trunks.len() - 1)
    }

    /// Declare a Reno flow along `path`, starting at `start`.
    pub fn flow(&mut self, path: &[RtIdx], start: SimTime) -> usize {
        self.flow_with_cc(path, start, CcAlgorithm::Reno)
    }

    /// Declare a flow with an explicit congestion-control algorithm.
    pub fn flow_with_cc(&mut self, path: &[RtIdx], start: SimTime, cc: CcAlgorithm) -> usize {
        assert!(!path.is_empty());
        for w in path.windows(2) {
            assert!(
                self.find_trunk(w[0].0, w[1].0).is_some(),
                "no trunk between {:?} and {:?}",
                w[0],
                w[1]
            );
        }
        self.flows.push(FlowSpec {
            path: path.iter().map(|r| r.0).collect(),
            start,
            access_prop: self.access_prop,
            cc,
        });
        self.flows.len() - 1
    }

    /// Override the access propagation delay of the most recently added
    /// flow (heterogeneous-RTT scenarios).
    pub fn last_flow_access_prop(&mut self, prop: SimDuration) {
        self.flows.last_mut().expect("no flow yet").access_prop = prop;
    }

    fn find_trunk(&self, a: usize, b: usize) -> Option<usize> {
        self.trunks
            .iter()
            .position(|t| (t.a == a && t.b == b) || (t.a == b && t.b == a))
    }

    /// Wire everything into `engine`. `qdisc` is called once per trunk
    /// direction.
    pub fn build(
        self,
        engine: &mut Engine<TcpMsg>,
        qdisc: &mut dyn FnMut() -> Box<dyn QueueDiscipline>,
    ) -> TcpNetwork {
        let router_ids: Vec<NodeId> = self
            .router_names
            .iter()
            .map(|n| engine.add_node(Router::new(n)))
            .collect();

        let mut flows = Vec::new();
        for (i, spec) in self.flows.iter().enumerate() {
            let flow = FlowId(i as u32);
            let first = router_ids[spec.path[0]];
            let last = router_ids[*spec.path.last().unwrap()];
            let source = engine.add_node(TcpSource::with_cc(
                flow,
                spec.cc.boxed(self.mss, self.max_cwnd),
                first,
                self.access_rate,
                spec.access_prop,
                spec.start,
                self.cr_interval,
            ));
            let mut sink_node = TcpSink::new(flow, last, spec.access_prop, self.goodput_interval);
            if let Some(d) = self.delayed_ack {
                sink_node = sink_node.with_delayed_ack(d);
            }
            let sink = engine.add_node(sink_node);
            flows.push(FlowHandle {
                flow,
                source,
                sink,
                path: spec.path.clone(),
            });
        }

        let mut trunk_handles = Vec::new();
        for t in &self.trunks {
            let a_port = engine
                .node_mut::<Router>(router_ids[t.a])
                .add_port(RPort::new(
                    router_ids[t.b],
                    t.capacity,
                    t.prop,
                    self.queue_cap_pkts,
                    qdisc(),
                    self.measure_interval,
                ));
            let b_port = engine
                .node_mut::<Router>(router_ids[t.b])
                .add_port(RPort::new(
                    router_ids[t.a],
                    t.capacity,
                    t.prop,
                    self.queue_cap_pkts,
                    qdisc(),
                    self.measure_interval,
                ));
            trunk_handles.push(TcpTrunkHandle {
                a_router: router_ids[t.a],
                a_port,
                b_router: router_ids[t.b],
                b_port,
                a_idx: t.a,
            });
        }

        for (i, spec) in self.flows.iter().enumerate() {
            let h = &flows[i];
            let src_access = engine
                .node_mut::<Router>(router_ids[spec.path[0]])
                .add_port(RPort::new(
                    h.source,
                    self.access_rate,
                    spec.access_prop,
                    self.queue_cap_pkts,
                    Box::new(DropTail),
                    self.measure_interval,
                ));
            let dst_access = engine
                .node_mut::<Router>(router_ids[*spec.path.last().unwrap()])
                .add_port(RPort::new(
                    h.sink,
                    self.access_rate,
                    spec.access_prop,
                    self.queue_cap_pkts,
                    Box::new(DropTail),
                    self.measure_interval,
                ));
            for (pos, &rt) in spec.path.iter().enumerate() {
                let fwd_port = if pos + 1 < spec.path.len() {
                    let tr = self.find_trunk(rt, spec.path[pos + 1]).unwrap();
                    let th = &trunk_handles[tr];
                    if th.a_idx == rt {
                        th.a_port
                    } else {
                        th.b_port
                    }
                } else {
                    dst_access
                };
                let bwd_port = if pos > 0 {
                    let tr = self.find_trunk(rt, spec.path[pos - 1]).unwrap();
                    let th = &trunk_handles[tr];
                    if th.a_idx == rt {
                        th.a_port
                    } else {
                        th.b_port
                    }
                } else {
                    src_access
                };
                engine
                    .node_mut::<Router>(router_ids[rt])
                    .add_route(h.flow, FlowRoute { fwd_port, bwd_port });
            }
        }

        // Kick off timers.
        for &rt in &router_ids {
            let nports = engine.node::<Router>(rt).port_count();
            for p in 0..nports {
                engine.schedule(
                    SimTime::ZERO + self.measure_interval,
                    rt,
                    TcpMsg::Timer(TcpTimer::Measure { port: p }),
                );
            }
        }
        for (i, spec) in self.flows.iter().enumerate() {
            engine.schedule(spec.start, flows[i].source, TcpMsg::Timer(TcpTimer::Tick));
            engine.schedule(
                spec.start + self.cr_interval,
                flows[i].source,
                TcpMsg::Timer(TcpTimer::CrSample),
            );
            engine.schedule(
                SimTime::ZERO + self.goodput_interval,
                flows[i].sink,
                TcpMsg::Timer(TcpTimer::Measure { port: 0 }),
            );
        }

        // Shard hints: the minimum declared propagation delay (trunks
        // and access links) bounds every inter-node message, so it is a
        // sound conservative lookahead for `--shards` runs. Both flow
        // endpoints anchor to the flow's first router, keeping each
        // access link and single-trunk data path shard-local.
        let lookahead = self
            .trunks
            .iter()
            .map(|t| t.prop)
            .chain(self.flows.iter().map(|f| f.access_prop))
            .min()
            .unwrap_or(SimDuration::ZERO);
        let mut affinity = Vec::with_capacity(flows.len() * 2);
        for h in &flows {
            let anchor = router_ids[h.path[0]];
            affinity.push((h.source, anchor));
            affinity.push((h.sink, anchor));
        }
        engine.set_shard_hints(ShardHints {
            lookahead,
            affinity,
        });

        TcpNetwork {
            routers: router_ids,
            trunks: trunk_handles,
            flows,
        }
    }
}

/// Handle to a built trunk.
pub struct TcpTrunkHandle {
    /// Router owning the a→b port.
    pub a_router: NodeId,
    /// Port index of the a→b direction.
    pub a_port: usize,
    /// Router owning the b→a port.
    pub b_router: NodeId,
    /// Port index of the b→a direction.
    pub b_port: usize,
    a_idx: usize,
}

/// Handle to a built flow.
pub struct FlowHandle {
    /// The flow id.
    pub flow: FlowId,
    /// Sender node.
    pub source: NodeId,
    /// Receiver node.
    pub sink: NodeId,
    /// Router indices along the forward path.
    pub path: Vec<usize>,
}

/// The built TCP network.
pub struct TcpNetwork {
    /// Router node ids, in declaration order.
    pub routers: Vec<NodeId>,
    /// Trunk handles, in declaration order.
    pub trunks: Vec<TcpTrunkHandle>,
    /// Flow handles, in declaration order.
    pub flows: Vec<FlowHandle>,
}

impl TcpNetwork {
    /// Register every trunk port and every router into `registry`:
    /// per-direction trunk metrics labelled `link="A->B"` (declared
    /// router names) and per-router routed-packets counters. Call once
    /// after [`TcpNetworkBuilder::build`], before running the engine.
    pub fn bind_metrics(&self, engine: &mut Engine<TcpMsg>, registry: &Registry) {
        for &rt in &self.routers {
            engine.node_mut::<Router>(rt).bind_metrics(registry);
        }
        for th in &self.trunks {
            let a = engine.node::<Router>(th.a_router).name().to_string();
            let b = engine.node::<Router>(th.b_router).name().to_string();
            engine
                .node_mut::<Router>(th.a_router)
                .port_mut(th.a_port)
                .bind_metrics(registry, &format!("{a}->{b}"));
            engine
                .node_mut::<Router>(th.b_router)
                .port_mut(th.b_port)
                .bind_metrics(registry, &format!("{b}->{a}"));
        }
    }

    /// The a→b port of trunk `t`.
    pub fn trunk_port<'e>(&self, engine: &'e Engine<TcpMsg>, t: TrunkIdx) -> &'e RPort {
        let th = &self.trunks[t.0];
        engine.node::<Router>(th.a_router).port(th.a_port)
    }

    /// Queue-length trace of trunk `t`'s a→b port.
    pub fn trunk_queue<'e>(&self, engine: &'e Engine<TcpMsg>, t: TrunkIdx) -> &'e TimeSeries {
        &self.trunk_port(engine, t).queue_series
    }

    /// MACR trace of trunk `t`'s a→b port (empty for non-Phantom qdiscs).
    pub fn trunk_macr<'e>(&self, engine: &'e Engine<TcpMsg>, t: TrunkIdx) -> &'e TimeSeries {
        &self.trunk_port(engine, t).macr_series
    }

    /// Goodput trace of flow `f`.
    pub fn flow_goodput<'e>(&self, engine: &'e Engine<TcpMsg>, f: usize) -> &'e TimeSeries {
        &engine.node::<TcpSink>(self.flows[f].sink).goodput_series
    }

    /// Congestion-window trace of flow `f`.
    pub fn flow_cwnd<'e>(&self, engine: &'e Engine<TcpMsg>, f: usize) -> &'e TimeSeries {
        &engine.node::<TcpSource>(self.flows[f].source).cwnd_series
    }

    /// Mean goodput of flow `f` over the run, bytes/s.
    pub fn flow_mean_goodput(&self, engine: &Engine<TcpMsg>, f: usize) -> f64 {
        engine
            .node::<TcpSink>(self.flows[f].sink)
            .mean_goodput(engine.now().as_secs_f64())
    }

    /// The sender of flow `f`.
    pub fn source<'e>(&self, engine: &'e Engine<TcpMsg>, f: usize) -> &'e TcpSource {
        engine.node::<TcpSource>(self.flows[f].source)
    }

    /// The receiver of flow `f`.
    pub fn sink<'e>(&self, engine: &'e Engine<TcpMsg>, f: usize) -> &'e TcpSink {
        engine.node::<TcpSink>(self.flows[f].sink)
    }

    /// Schedule a capacity trace on trunk `t`'s a→b port: at each `(time,
    /// bps)` point the port's rate changes. Models a trunk carried over an
    /// ABR virtual circuit whose bandwidth follows the ATM network's
    /// allocation (the paper's TCP-over-ATM motivation).
    pub fn schedule_capacity_trace(
        &self,
        engine: &mut Engine<TcpMsg>,
        t: TrunkIdx,
        points: &[(SimTime, f64)],
    ) {
        let th = &self.trunks[t.0];
        for &(at, bps) in points {
            assert!(bps > 0.0, "capacity must stay positive");
            engine.schedule(
                at,
                th.a_router,
                TcpMsg::Timer(TcpTimer::SetRate {
                    port: th.a_port,
                    bps,
                }),
            );
        }
    }
}
