//! Router queue disciplines.
//!
//! The seam between the generic router and the congestion-control
//! mechanisms Section 4 of the paper compares:
//!
//! * [`DropTail`] — the plain FIFO baseline whose unfairness the paper's
//!   Fig. 14/17 (left panels) demonstrate.
//! * [`Red`] — Random Early Detection \[FJ93\].
//! * [`SelectiveDiscard`] — the paper's Fig. 18 pseudo-code: drop any
//!   data packet whose `CR > u × MACR`.
//! * [`SelectiveQuench`] — Source Quench to over-limit senders.
//! * [`EfciMark`] — set the congestion bit on over-limit packets.
//! * [`SelectiveRed`] — RED restricted to over-limit packets.
//!
//! All Phantom-driven disciplines share [`PhantomMeter`], a thin wrapper
//! around the `phantom_core` MACR estimator operating in bytes/second.

mod drop_tail;
mod phantom_meter;
mod red;
mod selective;

pub use drop_tail::DropTail;
pub use phantom_meter::PhantomMeter;
pub use red::{Red, RedConfig, RedCore};
pub use selective::{EfciMark, SelectiveDiscard, SelectiveQuench, SelectiveRed};

use crate::packet::Packet;
use rand::rngs::SmallRng;
use std::any::Any;

/// Aggregate measurements of one router port over one interval.
#[derive(Clone, Copy, Debug)]
pub struct RouterMeasurement {
    /// Interval length, seconds.
    pub dt: f64,
    /// Bytes that arrived (queued or dropped) during the interval.
    pub arrival_bytes: u64,
    /// Bytes transmitted during the interval.
    pub departure_bytes: u64,
    /// Queue length in packets at the end of the interval.
    pub queue_pkts: usize,
    /// Queue length in bytes at the end of the interval.
    pub queue_bytes: u64,
    /// Link capacity, bytes/s.
    pub capacity: f64,
}

impl RouterMeasurement {
    /// Offered load over the interval, bytes/s.
    pub fn arrival_rate(&self) -> f64 {
        self.arrival_bytes as f64 / self.dt
    }

    /// Throughput over the interval, bytes/s.
    pub fn departure_rate(&self) -> f64 {
        self.departure_bytes as f64 / self.dt
    }
}

/// What to do with an arriving packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Queue it (tail-drop if the buffer is full).
    Enqueue,
    /// Discard it.
    Drop,
    /// Set its ECN/EFCI bit and queue it.
    Mark,
    /// Queue it *and* send a Source Quench back to its sender.
    Quench,
}

/// Instrumentation snapshot of a discipline's Phantom estimator: the
/// residual error fed to the last MACR update, the tracked mean absolute
/// deviation, and the gain actually applied. All NaN for disciplines
/// without an estimator (or before its first interval).
#[derive(Clone, Copy, Debug)]
pub struct QdiscTelemetry {
    /// Residual error (capacity − used) fed to the last update.
    pub delta: f64,
    /// Mean absolute deviation of the residual.
    pub dev: f64,
    /// Gain applied on the last update.
    pub gain: f64,
}

impl QdiscTelemetry {
    /// The "no estimator" snapshot.
    pub const UNTRACKED: Self = QdiscTelemetry {
        delta: f64::NAN,
        dev: f64::NAN,
        gain: f64::NAN,
    };
}

/// A router queue discipline (constant space, like the switch allocators).
pub trait QueueDiscipline: Any + Send {
    /// Decide the fate of an arriving packet given the current queue
    /// state. Non-data packets should normally be enqueued untouched.
    fn on_arrival(
        &mut self,
        pkt: &Packet,
        queue_pkts: usize,
        queue_bytes: u64,
        rng: &mut SmallRng,
    ) -> Verdict;

    /// Called at the end of every measurement interval (for MACR-driven
    /// disciplines; default no-op).
    fn on_interval(&mut self, _m: &RouterMeasurement) {}

    /// Fair-share estimate (bytes/s) for tracing; NaN if not applicable.
    fn fair_share(&self) -> f64 {
        f64::NAN
    }

    /// Estimator internals for probes. Instrumentation only — default is
    /// all-NaN for disciplines without a Phantom meter.
    fn telemetry(&self) -> QdiscTelemetry {
        QdiscTelemetry::UNTRACKED
    }

    /// Short name for reports.
    fn name(&self) -> &'static str;

    /// Serialize the dynamic state for engine checkpoints. Disciplines
    /// must override both hooks (together) to participate in
    /// `phantom resume`; the default refuses so a checkpoint never
    /// silently omits router state.
    fn save_state(&self, _w: &mut phantom_sim::KvWriter) -> Result<(), String> {
        Err(format!(
            "queue discipline {} does not support checkpointing",
            self.name()
        ))
    }

    /// Restore state written by [`QueueDiscipline::save_state`].
    fn restore_state(&mut self, _r: &mut phantom_sim::KvReader) -> Result<(), String> {
        Err(format!(
            "queue discipline {} does not support checkpointing",
            self.name()
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_rates() {
        let m = RouterMeasurement {
            dt: 0.01,
            arrival_bytes: 10_000,
            departure_bytes: 5_000,
            queue_pkts: 3,
            queue_bytes: 1_536,
            capacity: 1.25e6,
        };
        assert_eq!(m.arrival_rate(), 1e6);
        assert_eq!(m.departure_rate(), 5e5);
    }
}
