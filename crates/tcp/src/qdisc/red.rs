//! Random Early Detection \[FJ93\].
//!
//! The gateway mechanism of Floyd and Jacobson: an exponentially weighted
//! average of the queue length; below `min_th` nothing happens, above
//! `max_th` every eligible packet is dropped, in between packets are
//! dropped with a probability that rises linearly and is spread out by
//! the inter-drop count. Only data packets are eligible (dropping ACKs
//! would obscure the flow-control comparison; noted in DESIGN.md).

use super::{QueueDiscipline, Verdict};
use crate::packet::Packet;
use rand::rngs::SmallRng;
use rand::Rng;

/// RED parameters.
#[derive(Clone, Copy, Debug)]
pub struct RedConfig {
    /// EWMA gain of the average queue (0.002 in \[FJ93\]).
    pub wq: f64,
    /// No drops below this average queue length (packets).
    pub min_th: f64,
    /// All eligible packets dropped above this average (packets).
    pub max_th: f64,
    /// Drop probability at `max_th`.
    pub max_p: f64,
}

impl Default for RedConfig {
    fn default() -> Self {
        // [FJ93] uses wq = 0.002 on large routers; at this simulation's
        // scale (10 Mb/s ≈ 2 400 pkt/s) that filter is ~0.2 s slow and
        // lets slow-start bursts overflow the buffer before the average
        // reacts, so the recommended-shape parameters are scaled to the
        // link: faster filter, thresholds well below the buffer bound.
        RedConfig {
            wq: 0.01,
            min_th: 15.0,
            max_th: 60.0,
            max_p: 0.1,
        }
    }
}

/// The RED averaging-and-decision core, shared with Selective RED.
#[derive(Clone, Copy, Debug)]
pub struct RedCore {
    cfg: RedConfig,
    avg: f64,
    count: i64,
}

impl RedCore {
    /// A core with the given parameters.
    pub fn new(cfg: RedConfig) -> Self {
        assert!(cfg.wq > 0.0 && cfg.wq <= 1.0);
        assert!(cfg.min_th >= 0.0 && cfg.min_th < cfg.max_th);
        assert!(cfg.max_p > 0.0 && cfg.max_p <= 1.0);
        RedCore {
            cfg,
            avg: 0.0,
            count: -1,
        }
    }

    /// Current average queue estimate.
    pub fn avg(&self) -> f64 {
        self.avg
    }

    /// Update the average with the instantaneous queue length and decide
    /// whether this arrival should be early-dropped.
    pub fn decide(&mut self, queue_pkts: usize, rng: &mut SmallRng) -> bool {
        self.avg += self.cfg.wq * (queue_pkts as f64 - self.avg);
        if self.avg < self.cfg.min_th {
            self.count = -1;
            return false;
        }
        if self.avg >= self.cfg.max_th {
            self.count = 0;
            return true;
        }
        self.count += 1;
        let pb =
            self.cfg.max_p * (self.avg - self.cfg.min_th) / (self.cfg.max_th - self.cfg.min_th);
        let denom = 1.0 - self.count as f64 * pb;
        let pa = if denom <= 0.0 {
            1.0
        } else {
            (pb / denom).min(1.0)
        };
        if rng.gen::<f64>() < pa {
            self.count = 0;
            true
        } else {
            false
        }
    }

    /// Serialize the dynamic state for engine checkpoints.
    pub fn save_state(&self, w: &mut phantom_sim::KvWriter) {
        w.f64("avg", self.avg);
        w.i64("count", self.count);
    }

    /// Restore state written by [`RedCore::save_state`].
    pub fn restore_state(&mut self, r: &mut phantom_sim::KvReader) -> Result<(), String> {
        self.avg = r.f64("avg")?;
        self.count = r.i64("count")?;
        Ok(())
    }
}

/// The RED queue discipline.
#[derive(Clone, Copy, Debug)]
pub struct Red {
    core: RedCore,
}

impl Red {
    /// RED with the given parameters.
    pub fn new(cfg: RedConfig) -> Self {
        Red {
            core: RedCore::new(cfg),
        }
    }

    /// RED with the \[FJ93\]-style defaults.
    pub fn recommended() -> Self {
        Self::new(RedConfig::default())
    }
}

impl QueueDiscipline for Red {
    fn on_arrival(
        &mut self,
        pkt: &Packet,
        queue_pkts: usize,
        _queue_bytes: u64,
        rng: &mut SmallRng,
    ) -> Verdict {
        if !pkt.is_data() {
            return Verdict::Enqueue;
        }
        if self.core.decide(queue_pkts, rng) {
            Verdict::Drop
        } else {
            Verdict::Enqueue
        }
    }

    fn name(&self) -> &'static str {
        "red"
    }

    fn save_state(&self, w: &mut phantom_sim::KvWriter) -> Result<(), String> {
        w.scope("red", |w| self.core.save_state(w));
        Ok(())
    }

    fn restore_state(&mut self, r: &mut phantom_sim::KvReader) -> Result<(), String> {
        r.scope("red", |r| self.core.restore_state(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::FlowId;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    #[test]
    fn empty_queue_never_drops() {
        let mut red = Red::recommended();
        let mut r = rng();
        let pkt = Packet::data(FlowId(0), 0, 512, 0.0);
        for _ in 0..1000 {
            assert_eq!(red.on_arrival(&pkt, 0, 0, &mut r), Verdict::Enqueue);
        }
    }

    #[test]
    fn saturated_average_always_drops() {
        let mut core = RedCore::new(RedConfig::default());
        let mut r = rng();
        // Pump the average above max_th.
        for _ in 0..10_000 {
            core.decide(100, &mut r);
        }
        assert!(core.avg() > 60.0);
        assert!(core.decide(100, &mut r));
    }

    #[test]
    fn intermediate_average_drops_a_fraction() {
        let mut core = RedCore::new(RedConfig::default());
        let mut r = rng();
        for _ in 0..10_000 {
            core.decide(37, &mut r); // settle avg near the midpoint
        }
        let mut drops = 0;
        let trials = 10_000;
        for _ in 0..trials {
            if core.decide(37, &mut r) {
                drops += 1;
            }
        }
        let frac = drops as f64 / trials as f64;
        assert!(
            frac > 0.01 && frac < 0.30,
            "mid-range drop fraction {frac} out of plausible band"
        );
    }

    #[test]
    fn acks_are_never_early_dropped() {
        let mut red = Red::recommended();
        let mut r = rng();
        let ack = Packet::ack(FlowId(0), 0, false);
        for _ in 0..10_000 {
            assert_eq!(red.on_arrival(&ack, 1000, 0, &mut r), Verdict::Enqueue);
        }
    }

    #[test]
    fn average_moves_slowly() {
        let mut core = RedCore::new(RedConfig::default());
        let mut r = rng();
        core.decide(100, &mut r);
        assert!(core.avg() <= 1.0, "wq=0.01 still filters single samples");
    }

    #[test]
    #[should_panic]
    fn bad_thresholds_rejected() {
        let _ = RedCore::new(RedConfig {
            min_th: 50.0,
            max_th: 40.0,
            ..RedConfig::default()
        });
    }
}
