//! The paper's four Phantom router mechanisms (Section 4).
//!
//! All share one predicate — *is the packet's stamped rate above
//! `u × MACR`?* — and differ only in the action taken:
//!
//! | Mechanism            | Action on over-limit data packets        |
//! |----------------------|------------------------------------------|
//! | [`SelectiveDiscard`] | drop (the paper's Fig. 18 pseudo-code)   |
//! | [`SelectiveQuench`]  | deliver + ICMP Source Quench to sender   |
//! | [`EfciMark`]         | set the EFCI/ECN bit                     |
//! | [`SelectiveRed`]     | RED early-drop, but only if over-limit   |
//!
//! Under-limit packets are never touched — this is what removes the bias
//! of drop-tail/RED against long-RTT and many-hop sessions while leaving
//! TCP's own window dynamics alone.

use super::phantom_meter::PhantomMeter;
use super::red::{RedConfig, RedCore};
use super::{QdiscTelemetry, QueueDiscipline, RouterMeasurement, Verdict};
use crate::packet::Packet;
use phantom_core::PhantomConfig;
use rand::rngs::SmallRng;

/// Fig. 18: `if CR > utilization_factor × MACR { discard }`.
#[derive(Clone, Copy, Debug)]
pub struct SelectiveDiscard {
    meter: PhantomMeter,
    min_queue: usize,
}

impl SelectiveDiscard {
    /// With a given Phantom configuration.
    pub fn new(cfg: PhantomConfig) -> Self {
        SelectiveDiscard {
            meter: PhantomMeter::new(cfg),
            min_queue: 0,
        }
    }

    /// Paper defaults (u = 5).
    pub fn paper() -> Self {
        Self::new(PhantomConfig::paper())
    }

    /// Engineering variant (ablated in `repro table5`): only discard when
    /// at least `min_queue` packets are queued. The paper's Fig. 18
    /// pseudo-code is unconditional (`min_queue = 0`); gating recovers
    /// goodput when the link has headroom, at the cost of letting the
    /// queue sit at the gate.
    pub fn with_min_queue(mut self, min_queue: usize) -> Self {
        self.min_queue = min_queue;
        self
    }
}

impl QueueDiscipline for SelectiveDiscard {
    fn on_arrival(
        &mut self,
        pkt: &Packet,
        queue_pkts: usize,
        _queue_bytes: u64,
        _rng: &mut SmallRng,
    ) -> Verdict {
        if pkt.is_data() && queue_pkts >= self.min_queue && self.meter.over_limit(pkt.cr) {
            Verdict::Drop
        } else {
            Verdict::Enqueue
        }
    }

    fn on_interval(&mut self, m: &RouterMeasurement) {
        self.meter.on_interval(m);
    }

    fn fair_share(&self) -> f64 {
        self.meter.macr()
    }

    fn telemetry(&self) -> QdiscTelemetry {
        self.meter.telemetry()
    }

    fn name(&self) -> &'static str {
        "selective-discard"
    }

    fn save_state(&self, w: &mut phantom_sim::KvWriter) -> Result<(), String> {
        w.scope("meter", |w| self.meter.save_state(w));
        Ok(())
    }

    fn restore_state(&mut self, r: &mut phantom_sim::KvReader) -> Result<(), String> {
        r.scope("meter", |r| self.meter.restore_state(r))
    }
}

/// Source Quench variant: over-limit packets are still delivered, but
/// their sender is told to halve its window.
#[derive(Clone, Copy, Debug)]
pub struct SelectiveQuench {
    meter: PhantomMeter,
}

impl SelectiveQuench {
    /// With a given Phantom configuration.
    pub fn new(cfg: PhantomConfig) -> Self {
        SelectiveQuench {
            meter: PhantomMeter::new(cfg),
        }
    }

    /// Paper defaults.
    pub fn paper() -> Self {
        Self::new(PhantomConfig::paper())
    }
}

impl QueueDiscipline for SelectiveQuench {
    fn on_arrival(
        &mut self,
        pkt: &Packet,
        _queue_pkts: usize,
        _queue_bytes: u64,
        _rng: &mut SmallRng,
    ) -> Verdict {
        if pkt.is_data() && self.meter.over_limit(pkt.cr) {
            Verdict::Quench
        } else {
            Verdict::Enqueue
        }
    }

    fn on_interval(&mut self, m: &RouterMeasurement) {
        self.meter.on_interval(m);
    }

    fn fair_share(&self) -> f64 {
        self.meter.macr()
    }

    fn telemetry(&self) -> QdiscTelemetry {
        self.meter.telemetry()
    }

    fn name(&self) -> &'static str {
        "selective-quench"
    }

    fn save_state(&self, w: &mut phantom_sim::KvWriter) -> Result<(), String> {
        w.scope("meter", |w| self.meter.save_state(w));
        Ok(())
    }

    fn restore_state(&mut self, r: &mut phantom_sim::KvReader) -> Result<(), String> {
        r.scope("meter", |r| self.meter.restore_state(r))
    }
}

/// EFCI/ECN variant: over-limit packets get the congestion bit; the
/// receiver echoes it and the sender freezes its window growth.
#[derive(Clone, Copy, Debug)]
pub struct EfciMark {
    meter: PhantomMeter,
}

impl EfciMark {
    /// With a given Phantom configuration.
    pub fn new(cfg: PhantomConfig) -> Self {
        EfciMark {
            meter: PhantomMeter::new(cfg),
        }
    }

    /// Paper defaults.
    pub fn paper() -> Self {
        Self::new(PhantomConfig::paper())
    }
}

impl QueueDiscipline for EfciMark {
    fn on_arrival(
        &mut self,
        pkt: &Packet,
        _queue_pkts: usize,
        _queue_bytes: u64,
        _rng: &mut SmallRng,
    ) -> Verdict {
        if pkt.is_data() && self.meter.over_limit(pkt.cr) {
            Verdict::Mark
        } else {
            Verdict::Enqueue
        }
    }

    fn on_interval(&mut self, m: &RouterMeasurement) {
        self.meter.on_interval(m);
    }

    fn fair_share(&self) -> f64 {
        self.meter.macr()
    }

    fn telemetry(&self) -> QdiscTelemetry {
        self.meter.telemetry()
    }

    fn name(&self) -> &'static str {
        "efci-mark"
    }

    fn save_state(&self, w: &mut phantom_sim::KvWriter) -> Result<(), String> {
        w.scope("meter", |w| self.meter.save_state(w));
        Ok(())
    }

    fn restore_state(&mut self, r: &mut phantom_sim::KvReader) -> Result<(), String> {
        r.scope("meter", |r| self.meter.restore_state(r))
    }
}

/// Selective RED: the RED average and probability machinery runs as
/// usual, but only packets whose `CR > u × MACR` may be early-dropped.
#[derive(Clone, Copy, Debug)]
pub struct SelectiveRed {
    meter: PhantomMeter,
    red: RedCore,
}

impl SelectiveRed {
    /// With given Phantom and RED configurations.
    pub fn new(cfg: PhantomConfig, red: RedConfig) -> Self {
        SelectiveRed {
            meter: PhantomMeter::new(cfg),
            red: RedCore::new(red),
        }
    }

    /// Paper-shaped defaults. Unlike Selective Discard, Selective RED
    /// does not police offered load down below capacity — RED keeps the
    /// link *saturated* — so the instantaneous residual is ≈ 0 and a
    /// fast estimator would collapse MACR to its floor, making every
    /// flow "over-limit" (i.e. degenerate to plain RED). The eligibility
    /// meter therefore uses symmetric slow gains (it estimates the
    /// long-horizon average headroom of the TCP sawtooth) and a 10%
    /// capacity floor so the predicate keeps discriminating under full
    /// load.
    pub fn paper() -> Self {
        use phantom_core::MacrConfig;
        let macr = MacrConfig {
            alpha_inc: 1.0 / 16.0,
            alpha_dec: 1.0 / 16.0,
            min_frac: 0.1,
            ..MacrConfig::default()
        };
        Self::new(PhantomConfig::paper().with_macr(macr), RedConfig::default())
    }
}

impl QueueDiscipline for SelectiveRed {
    fn on_arrival(
        &mut self,
        pkt: &Packet,
        queue_pkts: usize,
        _queue_bytes: u64,
        rng: &mut SmallRng,
    ) -> Verdict {
        if !pkt.is_data() {
            return Verdict::Enqueue;
        }
        // The average must track every arrival, eligible or not.
        let red_wants_drop = self.red.decide(queue_pkts, rng);
        if red_wants_drop && self.meter.over_limit(pkt.cr) {
            Verdict::Drop
        } else {
            Verdict::Enqueue
        }
    }

    fn on_interval(&mut self, m: &RouterMeasurement) {
        self.meter.on_interval(m);
    }

    fn fair_share(&self) -> f64 {
        self.meter.macr()
    }

    fn telemetry(&self) -> QdiscTelemetry {
        self.meter.telemetry()
    }

    fn name(&self) -> &'static str {
        "selective-red"
    }

    fn save_state(&self, w: &mut phantom_sim::KvWriter) -> Result<(), String> {
        w.scope("meter", |w| self.meter.save_state(w));
        w.scope("red", |w| self.red.save_state(w));
        Ok(())
    }

    fn restore_state(&mut self, r: &mut phantom_sim::KvReader) -> Result<(), String> {
        r.scope("meter", |r| self.meter.restore_state(r))?;
        r.scope("red", |r| self.red.restore_state(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::FlowId;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    /// Settle a meter at capacity 1.25e6 B/s with 1.0e6 B/s offered:
    /// MACR ≈ 0.25e6, limit ≈ 1.25e6.
    fn settle<Q: QueueDiscipline>(q: &mut Q) {
        let dt = 0.01;
        for _ in 0..5000 {
            q.on_interval(&RouterMeasurement {
                dt,
                arrival_bytes: (1.0e6 * dt) as u64,
                departure_bytes: (1.0e6 * dt) as u64,
                queue_pkts: 0,
                queue_bytes: 0,
                capacity: 1.25e6,
            });
        }
    }

    fn over() -> Packet {
        Packet::data(FlowId(0), 0, 512, 2.0e6)
    }

    fn under() -> Packet {
        Packet::data(FlowId(1), 0, 512, 0.5e6)
    }

    #[test]
    fn discard_drops_only_over_limit_data() {
        let mut q = SelectiveDiscard::paper();
        settle(&mut q);
        let mut r = rng();
        assert_eq!(q.on_arrival(&over(), 5, 0, &mut r), Verdict::Drop);
        assert_eq!(q.on_arrival(&under(), 5, 0, &mut r), Verdict::Enqueue);
        let ack = Packet::ack(FlowId(0), 0, false);
        assert_eq!(q.on_arrival(&ack, 5, 0, &mut r), Verdict::Enqueue);
    }

    #[test]
    fn quench_delivers_and_signals() {
        let mut q = SelectiveQuench::paper();
        settle(&mut q);
        let mut r = rng();
        assert_eq!(q.on_arrival(&over(), 5, 0, &mut r), Verdict::Quench);
        assert_eq!(q.on_arrival(&under(), 5, 0, &mut r), Verdict::Enqueue);
    }

    #[test]
    fn mark_sets_bit_only_over_limit() {
        let mut q = EfciMark::paper();
        settle(&mut q);
        let mut r = rng();
        assert_eq!(q.on_arrival(&over(), 5, 0, &mut r), Verdict::Mark);
        assert_eq!(q.on_arrival(&under(), 5, 0, &mut r), Verdict::Enqueue);
    }

    #[test]
    fn nothing_punished_before_first_interval() {
        let mut r = rng();
        assert_eq!(
            SelectiveDiscard::paper().on_arrival(&over(), 0, 0, &mut r),
            Verdict::Enqueue
        );
        assert_eq!(
            SelectiveQuench::paper().on_arrival(&over(), 0, 0, &mut r),
            Verdict::Enqueue
        );
        assert_eq!(
            EfciMark::paper().on_arrival(&over(), 0, 0, &mut r),
            Verdict::Enqueue
        );
    }

    #[test]
    fn selective_red_spares_under_limit_even_when_red_fires() {
        let mut q = SelectiveRed::paper();
        settle(&mut q);
        let mut r = rng();
        // Saturate the RED average so it always wants to drop.
        for _ in 0..20_000 {
            q.on_arrival(&under(), 100, 0, &mut r);
        }
        // RED is firing, but under-limit packets survive…
        for _ in 0..100 {
            assert_eq!(q.on_arrival(&under(), 100, 0, &mut r), Verdict::Enqueue);
        }
    }

    #[test]
    fn selective_red_drops_over_limit_when_red_fires() {
        let mut q = SelectiveRed::paper();
        settle(&mut q);
        let mut r = rng();
        for _ in 0..20_000 {
            q.on_arrival(&under(), 100, 0, &mut r);
        }
        let mut drops = 0;
        for _ in 0..100 {
            if q.on_arrival(&over(), 100, 0, &mut r) == Verdict::Drop {
                drops += 1;
            }
        }
        assert!(
            drops > 50,
            "over-limit packets must be RED-dropped: {drops}"
        );
    }
}

#[cfg(test)]
mod gate_tests {
    use super::*;
    use crate::packet::{FlowId, Packet};
    use crate::qdisc::RouterMeasurement;
    use rand::SeedableRng;

    #[test]
    fn queue_gate_spares_over_limit_packets_below_the_gate() {
        let mut q = SelectiveDiscard::paper().with_min_queue(10);
        // settle: capacity 1.25e6, offered 1.0e6 -> limit ~1.25e6
        for _ in 0..5000 {
            q.on_interval(&RouterMeasurement {
                dt: 0.01,
                arrival_bytes: 10_000,
                departure_bytes: 10_000,
                queue_pkts: 0,
                queue_bytes: 0,
                capacity: 1.25e6,
            });
        }
        let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
        let over = Packet::data(FlowId(0), 0, 512, 2.0e6);
        assert_eq!(
            q.on_arrival(&over, 5, 0, &mut rng),
            Verdict::Enqueue,
            "below the gate nothing is dropped"
        );
        assert_eq!(
            q.on_arrival(&over, 10, 0, &mut rng),
            Verdict::Drop,
            "at the gate the Fig. 18 predicate applies"
        );
    }
}
