//! Plain FIFO: every packet is enqueued; the buffer bound tail-drops.
//!
//! The baseline whose RTT bias and beat-down behavior the paper's TCP
//! experiments demonstrate.

use super::{QueueDiscipline, Verdict};
use crate::packet::Packet;
use rand::rngs::SmallRng;

/// The drop-tail discipline.
#[derive(Clone, Copy, Debug, Default)]
pub struct DropTail;

impl QueueDiscipline for DropTail {
    fn on_arrival(
        &mut self,
        _pkt: &Packet,
        _queue_pkts: usize,
        _queue_bytes: u64,
        _rng: &mut SmallRng,
    ) -> Verdict {
        Verdict::Enqueue
    }

    fn name(&self) -> &'static str {
        "drop-tail"
    }

    fn save_state(&self, _w: &mut phantom_sim::KvWriter) -> Result<(), String> {
        Ok(()) // stateless
    }

    fn restore_state(&mut self, _r: &mut phantom_sim::KvReader) -> Result<(), String> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::FlowId;
    use rand::SeedableRng;

    #[test]
    fn always_enqueues() {
        let mut q = DropTail;
        let mut rng = SmallRng::seed_from_u64(0);
        let pkt = Packet::data(FlowId(0), 0, 512, 1e9);
        for n in [0usize, 10, 10_000] {
            assert_eq!(
                q.on_arrival(&pkt, n, n as u64 * 552, &mut rng),
                Verdict::Enqueue
            );
        }
        assert!(q.fair_share().is_nan());
    }
}
