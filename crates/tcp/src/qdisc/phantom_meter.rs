//! The Phantom estimator adapted to router ports (bytes/second).
//!
//! Identical mathematics to the ATM side — the estimator in
//! `phantom_core` is unit-agnostic — plus the router-side question it
//! must answer: *is this packet's stamped rate above the allowed rate
//! `u × MACR`?*

use super::{QdiscTelemetry, RouterMeasurement};
use phantom_core::{MacrEstimator, PhantomConfig, ResidualMode};

/// A per-port Phantom meter for TCP routers.
#[derive(Clone, Copy, Debug)]
pub struct PhantomMeter {
    cfg: PhantomConfig,
    est: Option<MacrEstimator>,
}

impl PhantomMeter {
    /// A meter with the given Phantom configuration.
    pub fn new(cfg: PhantomConfig) -> Self {
        cfg.validate().expect("invalid Phantom configuration");
        PhantomMeter { cfg, est: None }
    }

    /// Paper defaults (u = 5).
    pub fn paper() -> Self {
        Self::new(PhantomConfig::paper())
    }

    /// Feed one interval's measurement.
    pub fn on_interval(&mut self, m: &RouterMeasurement) {
        let est = self
            .est
            .get_or_insert_with(|| MacrEstimator::new(self.cfg.macr, m.capacity));
        let used = match self.cfg.macr.residual {
            ResidualMode::Arrivals => m.arrival_rate(),
            ResidualMode::Departures => m.departure_rate(),
        };
        est.update(m.capacity - used, m.capacity);
    }

    /// Current MACR in bytes/s (0 before the first interval).
    pub fn macr(&self) -> f64 {
        self.est.map(|e| e.macr()).unwrap_or(0.0)
    }

    /// The allowed per-flow rate, `u × MACR`; infinite before the first
    /// interval so nothing is punished at startup.
    pub fn allowed_rate(&self) -> f64 {
        match &self.est {
            Some(e) => self.cfg.utilization_factor * e.macr(),
            None => f64::INFINITY,
        }
    }

    /// Is a packet stamped with rate `cr` above the allowed rate?
    pub fn over_limit(&self, cr: f64) -> bool {
        cr > self.allowed_rate()
    }

    /// Serialize the dynamic state for engine checkpoints.
    pub fn save_state(&self, w: &mut phantom_sim::KvWriter) {
        w.bool("init", self.est.is_some());
        if let Some(e) = &self.est {
            w.scope("est", |w| e.save(w));
        }
    }

    /// Restore state written by [`PhantomMeter::save_state`]. The
    /// constructor capacity only seeds the initial estimate, which the
    /// restore immediately overwrites.
    pub fn restore_state(&mut self, r: &mut phantom_sim::KvReader) -> Result<(), String> {
        self.est = if r.bool("init")? {
            let mut e = MacrEstimator::new(self.cfg.macr, 1.0);
            r.scope("est", |r| e.restore(r))?;
            Some(e)
        } else {
            None
        };
        Ok(())
    }

    /// Estimator internals for probes (all NaN before the first interval).
    pub fn telemetry(&self) -> QdiscTelemetry {
        match &self.est {
            Some(e) => QdiscTelemetry {
                delta: e.last_err(),
                dev: e.dev(),
                gain: e.last_gain(),
            },
            None => QdiscTelemetry::UNTRACKED,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(arrival_rate: f64) -> RouterMeasurement {
        let dt = 0.01;
        RouterMeasurement {
            dt,
            arrival_bytes: (arrival_rate * dt) as u64,
            departure_bytes: 0,
            queue_pkts: 0,
            queue_bytes: 0,
            capacity: 1.25e6, // 10 Mb/s in bytes/s
        }
    }

    #[test]
    fn nothing_over_limit_before_first_interval() {
        let meter = PhantomMeter::paper();
        assert!(!meter.over_limit(f64::MAX));
        assert_eq!(meter.macr(), 0.0);
    }

    #[test]
    fn tracks_residual_in_bytes() {
        let mut meter = PhantomMeter::paper();
        for _ in 0..5000 {
            meter.on_interval(&m(1.0e6)); // residual 0.25e6
        }
        assert!((meter.macr() - 0.25e6).abs() < 0.02e6);
        assert!((meter.allowed_rate() - 1.25e6).abs() < 0.1e6);
    }

    #[test]
    fn over_limit_predicate() {
        let mut meter = PhantomMeter::paper();
        for _ in 0..5000 {
            meter.on_interval(&m(1.0e6));
        }
        assert!(meter.over_limit(2.0e6));
        assert!(!meter.over_limit(0.5e6));
    }
}
