//! Pluggable congestion control for the TCP sender.
//!
//! The paper's Section 4 discusses both of the era's source-side
//! algorithms: Reno \[Jac88\] and Vegas \[BP95\]. [`CongestionControl`]
//! abstracts what the sender host needs from either; [`crate::reno::Reno`]
//! and [`crate::vegas::Vegas`] implement it. The host (`TcpSource`)
//! drives the machine with ACKs, RTT samples, timeouts and quenches, and
//! asks it what may be sent.

use crate::reno::AckResult;
use std::any::Any;

/// Loss/recovery statistics every algorithm reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CcStats {
    /// Fast retransmits performed.
    pub fast_retransmits: u64,
    /// Retransmission timeouts taken.
    pub timeouts: u64,
    /// Source-quench window cuts taken.
    pub quench_cuts: u64,
}

/// A TCP congestion-control state machine (window arithmetic included).
pub trait CongestionControl: Any + Send {
    /// Process a cumulative ACK; `ecn_echo` = the receiver echoed a
    /// congestion mark (freeze growth).
    fn on_ack(&mut self, ack: u64, ecn_echo: bool) -> AckResult;

    /// One Karn-clean RTT measurement (seconds). Reno ignores it (the
    /// host keeps its own RTO estimator); Vegas bases its window
    /// adjustment on it.
    fn on_rtt_sample(&mut self, _rtt: f64) {}

    /// Retransmission timeout fired.
    fn on_timeout(&mut self);

    /// ICMP Source Quench received.
    fn on_quench(&mut self);

    /// May a new segment be sent under the window?
    fn can_send(&self) -> bool;

    /// Claim the next new segment; returns its first byte.
    fn take_segment(&mut self) -> u64;

    /// Oldest unacknowledged byte.
    fn snd_una(&self) -> u64;

    /// Next byte to be sent.
    fn snd_nxt(&self) -> u64;

    /// True while data is unacknowledged.
    fn outstanding(&self) -> bool;

    /// Congestion window, in segments.
    fn cwnd(&self) -> f64;

    /// Slow-start threshold, in segments; NaN for algorithms without one
    /// (instrumentation only).
    fn ssthresh(&self) -> f64 {
        f64::NAN
    }

    /// Segment size in bytes.
    fn mss(&self) -> u32;

    /// Loss/recovery statistics.
    fn stats(&self) -> CcStats;

    /// Algorithm name for reports.
    fn name(&self) -> &'static str;

    /// Serialize the dynamic state for engine checkpoints. Algorithms
    /// must override both hooks (together) to participate in
    /// `phantom resume`; the default refuses so a checkpoint never
    /// silently omits sender state.
    fn save_state(&self, _w: &mut phantom_sim::KvWriter) -> Result<(), String> {
        Err(format!(
            "congestion control {} does not support checkpointing",
            self.name()
        ))
    }

    /// Restore state written by [`CongestionControl::save_state`].
    fn restore_state(&mut self, _r: &mut phantom_sim::KvReader) -> Result<(), String> {
        Err(format!(
            "congestion control {} does not support checkpointing",
            self.name()
        ))
    }
}

impl CongestionControl for crate::reno::Reno {
    fn on_ack(&mut self, ack: u64, ecn_echo: bool) -> AckResult {
        crate::reno::Reno::on_ack(self, ack, ecn_echo)
    }

    fn on_timeout(&mut self) {
        crate::reno::Reno::on_timeout(self)
    }

    fn on_quench(&mut self) {
        crate::reno::Reno::on_quench(self)
    }

    fn can_send(&self) -> bool {
        crate::reno::Reno::can_send(self)
    }

    fn take_segment(&mut self) -> u64 {
        crate::reno::Reno::take_segment(self)
    }

    fn snd_una(&self) -> u64 {
        crate::reno::Reno::snd_una(self)
    }

    fn snd_nxt(&self) -> u64 {
        crate::reno::Reno::snd_nxt(self)
    }

    fn outstanding(&self) -> bool {
        crate::reno::Reno::outstanding(self)
    }

    fn cwnd(&self) -> f64 {
        crate::reno::Reno::cwnd(self)
    }

    fn ssthresh(&self) -> f64 {
        crate::reno::Reno::ssthresh(self)
    }

    fn mss(&self) -> u32 {
        crate::reno::Reno::mss(self)
    }

    fn stats(&self) -> CcStats {
        CcStats {
            fast_retransmits: self.fast_retransmits,
            timeouts: self.timeouts,
            quench_cuts: self.quench_cuts,
        }
    }

    fn name(&self) -> &'static str {
        "reno"
    }

    fn save_state(&self, w: &mut phantom_sim::KvWriter) -> Result<(), String> {
        crate::reno::Reno::save_state(self, w);
        Ok(())
    }

    fn restore_state(&mut self, r: &mut phantom_sim::KvReader) -> Result<(), String> {
        crate::reno::Reno::restore_state(self, r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reno::Reno;

    #[test]
    fn reno_implements_the_trait_faithfully() {
        let mut cc: Box<dyn CongestionControl> = Box::new(Reno::new(512, 100.0));
        assert_eq!(cc.name(), "reno");
        assert_eq!(cc.mss(), 512);
        assert!(cc.can_send());
        let seq = cc.take_segment();
        assert_eq!(seq, 0);
        assert!(cc.outstanding());
        let res = cc.on_ack(512, false);
        assert_eq!(res.newly_acked, 512);
        assert_eq!(cc.snd_una(), 512);
        cc.on_timeout();
        cc.on_quench();
        let s = cc.stats();
        assert_eq!(s.timeouts, 1);
        assert_eq!(s.quench_cuts, 1);
    }
}
