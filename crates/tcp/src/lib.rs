//! # phantom-tcp — TCP Reno substrate with Phantom router mechanisms
//!
//! Section 4 of the Phantom paper applies the same MACR estimator to
//! TCP/IP router networks: sources stamp their **current rate (CR)** into
//! the packet header, and a router running Phantom acts on packets whose
//! `CR > u × MACR`. This crate provides everything that evaluation needs,
//! built from scratch on [`phantom_sim`]:
//!
//! * [`packet`] — segments with the CR field and the EFCI/ECN bit.
//! * [`reno`] — a pure TCP Reno congestion-control state machine (slow
//!   start, congestion avoidance, 3-dupack fast retransmit, fast
//!   recovery), following the pseudocode of Stevens' *TCP/IP
//!   Illustrated* ch. 21 as the paper specifies.
//! * [`vegas`] — TCP Vegas \[BP95\], the delay-based sender whose
//!   unfairness modes the paper discusses; both plug into the sender via
//!   the [`cc::CongestionControl`] trait.
//! * [`rtt`] — Jacobson/Karn RTO estimation.
//! * [`source`] / [`sink`] — end hosts: a greedy Reno sender with a NIC
//!   pacing model, CR metering, RTO timer and Source-Quench reaction; a
//!   cumulative-ACK receiver that echoes congestion marks.
//! * [`qdisc`] — router queue disciplines: drop-tail, RED \[FJ93\], and
//!   the paper's four Phantom mechanisms — **Selective Discard** (the
//!   pseudo-code of the paper's Fig. 18), **Selective Source Quench**,
//!   **EFCI/ECN marking**, and **Selective RED**.
//! * [`router`] / [`network`] — output-queued routers and a topology
//!   builder mirroring the ATM one.
//!
//! Rates on the TCP side are bytes/second; packets are 512 bytes as in
//! the paper's simulations ("greedy sources where size of packets is 512
//! bytes").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cc;
pub mod network;
pub mod packet;
pub mod qdisc;
pub mod reno;
pub mod router;
pub mod rtt;
pub mod sink;
pub mod source;
pub mod vegas;

pub use cc::{CcStats, CongestionControl};
pub use network::{TcpNetwork, TcpNetworkBuilder};
pub use packet::{FlowId, Packet, PktKind, TcpMsg, TcpTimer};
pub use qdisc::{QueueDiscipline, RouterMeasurement, Verdict};
pub use reno::Reno;
pub use vegas::{Vegas, VegasConfig};
