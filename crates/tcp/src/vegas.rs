//! TCP Vegas \[BP95\] — the delay-based sender the paper's Section 4
//! discusses as the second source-side algorithm.
//!
//! Vegas compares the *expected* throughput `cwnd / baseRTT` against the
//! *actual* throughput `cwnd / RTT` once per round trip and steers the
//! window so that between `alpha` and `beta` segments worth of its own
//! data sit queued in the network:
//!
//! ```text
//! diff = (cwnd/baseRTT − cwnd/RTT) · baseRTT      # segments in queues
//! diff < alpha ⇒ cwnd += 1 (per RTT)
//! diff > beta  ⇒ cwnd -= 1 (per RTT)
//! ```
//!
//! Slow start doubles only every other RTT and ends as soon as
//! `diff > gamma`. Loss recovery (3-dupack fast retransmit, timeout) is
//! Reno-like.
//!
//! The paper's criticisms, which `scenarios::tcp::vegas` reproduces:
//! once two Vegas connections settle on different windows there is no
//! mechanism that would balance them (a late joiner measures an inflated
//! baseRTT and is content with less), and mismatched `alpha`/`beta`
//! thresholds between sessions cause persistent unfairness. The
//! Phantom-based Selective Discard removes both biases from the outside.

use crate::cc::{CcStats, CongestionControl};
use crate::reno::AckResult;

/// Vegas parameters (in segments), defaults per \[BP95\].
#[derive(Clone, Copy, Debug)]
pub struct VegasConfig {
    /// Lower threshold: fewer queued segments than this ⇒ grow.
    pub alpha: f64,
    /// Upper threshold: more queued segments than this ⇒ shrink.
    pub beta: f64,
    /// Slow-start exit threshold.
    pub gamma: f64,
    /// Window cap, segments.
    pub max_cwnd: f64,
}

impl Default for VegasConfig {
    fn default() -> Self {
        VegasConfig {
            alpha: 1.0,
            beta: 3.0,
            gamma: 1.0,
            max_cwnd: 10_000.0,
        }
    }
}

/// The Vegas sender state machine.
#[derive(Clone, Copy, Debug)]
pub struct Vegas {
    cfg: VegasConfig,
    mss: u32,
    snd_una: u64,
    snd_nxt: u64,
    cwnd: f64,
    dupacks: u32,
    in_recovery: bool,
    recovery_cwnd: f64,
    slow_start: bool,
    ss_toggle: bool,
    base_rtt: f64,
    stats: CcStats,
}

impl Vegas {
    /// A fresh Vegas connection with `mss`-byte segments.
    pub fn new(mss: u32, cfg: VegasConfig) -> Self {
        assert!(mss > 0);
        assert!(cfg.alpha > 0.0 && cfg.beta >= cfg.alpha);
        assert!(cfg.gamma > 0.0);
        assert!(cfg.max_cwnd >= 2.0);
        Vegas {
            cfg,
            mss,
            snd_una: 0,
            snd_nxt: 0,
            cwnd: 2.0,
            dupacks: 0,
            in_recovery: false,
            recovery_cwnd: 2.0,
            slow_start: true,
            ss_toggle: false,
            base_rtt: f64::INFINITY,
            stats: CcStats::default(),
        }
    }

    /// Defaults per \[BP95\]: alpha 1, beta 3.
    pub fn default_thresholds(mss: u32) -> Self {
        Self::new(mss, VegasConfig::default())
    }

    /// The minimum RTT observed so far (seconds); the connection's
    /// propagation estimate.
    pub fn base_rtt(&self) -> f64 {
        self.base_rtt
    }

    /// The configuration in force.
    pub fn config(&self) -> &VegasConfig {
        &self.cfg
    }
}

impl CongestionControl for Vegas {
    fn on_ack(&mut self, ack: u64, _ecn_echo: bool) -> AckResult {
        if ack > self.snd_una {
            let newly = ack - self.snd_una;
            self.snd_una = ack;
            if self.snd_nxt < self.snd_una {
                self.snd_nxt = self.snd_una;
            }
            self.dupacks = 0;
            if self.in_recovery {
                self.in_recovery = false;
                self.cwnd = self.recovery_cwnd;
            }
            // Window growth happens per RTT in on_rtt_sample; slow start
            // additionally grows per ACK on its "active" rounds.
            if self.slow_start && self.ss_toggle {
                self.cwnd = (self.cwnd + 1.0).min(self.cfg.max_cwnd);
            }
            AckResult {
                newly_acked: newly,
                retransmit: None,
            }
        } else if self.outstanding() {
            self.dupacks += 1;
            if self.dupacks == 3 && !self.in_recovery {
                self.recovery_cwnd = (self.cwnd * 0.75).max(2.0); // Vegas's gentler cut
                self.cwnd = self.recovery_cwnd + 3.0;
                self.in_recovery = true;
                self.slow_start = false;
                self.stats.fast_retransmits += 1;
                AckResult {
                    newly_acked: 0,
                    retransmit: Some(self.snd_una),
                }
            } else {
                if self.in_recovery {
                    self.cwnd = (self.cwnd + 1.0).min(self.cfg.max_cwnd);
                }
                AckResult::default()
            }
        } else {
            AckResult::default()
        }
    }

    fn on_rtt_sample(&mut self, rtt: f64) {
        if rtt <= 0.0 || !rtt.is_finite() {
            return;
        }
        if rtt < self.base_rtt {
            self.base_rtt = rtt;
        }
        let expected = self.cwnd / self.base_rtt;
        let actual = self.cwnd / rtt;
        let diff = (expected - actual) * self.base_rtt; // segments queued
        if self.slow_start {
            self.ss_toggle = !self.ss_toggle;
            if diff > self.cfg.gamma {
                self.slow_start = false;
                // shed the overshoot
                self.cwnd = (self.cwnd * 0.875).max(2.0);
            }
        } else if !self.in_recovery {
            if diff < self.cfg.alpha {
                self.cwnd = (self.cwnd + 1.0).min(self.cfg.max_cwnd);
            } else if diff > self.cfg.beta {
                self.cwnd = (self.cwnd - 1.0).max(2.0);
            }
        }
    }

    fn on_timeout(&mut self) {
        self.cwnd = 2.0;
        self.dupacks = 0;
        self.in_recovery = false;
        self.slow_start = true;
        self.ss_toggle = false;
        self.snd_nxt = self.snd_una;
        self.stats.timeouts += 1;
    }

    fn on_quench(&mut self) {
        self.cwnd = (self.cwnd / 2.0).max(2.0);
        self.slow_start = false;
        self.stats.quench_cuts += 1;
    }

    fn can_send(&self) -> bool {
        let wnd = (self.cwnd * self.mss as f64) as u64;
        self.snd_nxt + u64::from(self.mss) <= self.snd_una + wnd
    }

    fn take_segment(&mut self) -> u64 {
        debug_assert!(self.can_send());
        let seq = self.snd_nxt;
        self.snd_nxt += u64::from(self.mss);
        seq
    }

    fn snd_una(&self) -> u64 {
        self.snd_una
    }

    fn snd_nxt(&self) -> u64 {
        self.snd_nxt
    }

    fn outstanding(&self) -> bool {
        self.snd_nxt > self.snd_una
    }

    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn mss(&self) -> u32 {
        self.mss
    }

    fn stats(&self) -> CcStats {
        self.stats
    }

    fn name(&self) -> &'static str {
        "vegas"
    }

    fn save_state(&self, w: &mut phantom_sim::KvWriter) -> Result<(), String> {
        w.u64("snd_una", self.snd_una);
        w.u64("snd_nxt", self.snd_nxt);
        w.f64("cwnd", self.cwnd);
        w.u64("dupacks", u64::from(self.dupacks));
        w.bool("in_recovery", self.in_recovery);
        w.f64("recovery_cwnd", self.recovery_cwnd);
        w.bool("slow_start", self.slow_start);
        w.bool("ss_toggle", self.ss_toggle);
        // base_rtt may still be +inf (no sample yet); fmt_f64 encodes it.
        w.f64("base_rtt", self.base_rtt);
        w.u64("fast_retransmits", self.stats.fast_retransmits);
        w.u64("timeouts", self.stats.timeouts);
        w.u64("quench_cuts", self.stats.quench_cuts);
        Ok(())
    }

    fn restore_state(&mut self, r: &mut phantom_sim::KvReader) -> Result<(), String> {
        self.snd_una = r.u64("snd_una")?;
        self.snd_nxt = r.u64("snd_nxt")?;
        self.cwnd = r.f64("cwnd")?;
        self.dupacks = u32::try_from(r.u64("dupacks")?).map_err(|_| "dupacks out of range")?;
        self.in_recovery = r.bool("in_recovery")?;
        self.recovery_cwnd = r.f64("recovery_cwnd")?;
        self.slow_start = r.bool("slow_start")?;
        self.ss_toggle = r.bool("ss_toggle")?;
        self.base_rtt = r.f64("base_rtt")?;
        self.stats = CcStats {
            fast_retransmits: r.u64("fast_retransmits")?,
            timeouts: r.u64("timeouts")?,
            quench_cuts: r.u64("quench_cuts")?,
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: u32 = 512;

    fn drain(v: &mut Vegas) {
        while v.can_send() {
            v.take_segment();
        }
    }

    #[test]
    fn starts_in_slow_start_with_two_segments() {
        let v = Vegas::default_thresholds(MSS);
        assert_eq!(v.cwnd(), 2.0);
        assert!(v.base_rtt().is_infinite());
    }

    #[test]
    fn base_rtt_tracks_the_minimum() {
        let mut v = Vegas::default_thresholds(MSS);
        v.on_rtt_sample(0.10);
        v.on_rtt_sample(0.05);
        v.on_rtt_sample(0.20);
        assert_eq!(v.base_rtt(), 0.05);
    }

    #[test]
    fn steady_state_window_targets_alpha_beta_band() {
        // With baseRTT 50 ms, an RTT that keeps diff within [1, 3]
        // segments must leave the window alone.
        let mut v = Vegas::default_thresholds(MSS);
        v.on_rtt_sample(0.050); // sets base
        v.slow_start = false;
        v.cwnd = 10.0;
        // diff = cwnd * (1 - base/rtt): rtt such that diff = 2 ⇒
        // rtt = base / (1 - 2/10) = 62.5 ms
        v.on_rtt_sample(0.0625);
        assert_eq!(v.cwnd(), 10.0, "inside the band: hold");
        // diff < alpha ⇒ grow: rtt = base ⇒ diff = 0
        v.on_rtt_sample(0.050);
        assert_eq!(v.cwnd(), 11.0);
        // diff > beta ⇒ shrink: rtt large
        v.on_rtt_sample(0.10);
        assert_eq!(v.cwnd(), 10.0);
    }

    #[test]
    fn slow_start_exits_on_gamma_and_sheds() {
        let mut v = Vegas::default_thresholds(MSS);
        v.on_rtt_sample(0.050);
        v.cwnd = 16.0;
        // queueing builds: rtt >> base, diff = 16*(1-50/80) = 6 > gamma
        v.on_rtt_sample(0.080);
        // may take the toggle round; feed another sample
        v.on_rtt_sample(0.080);
        assert!(!v.slow_start, "slow start must end once diff exceeds gamma");
        assert!(v.cwnd() < 16.0, "overshoot is shed");
    }

    #[test]
    fn slow_start_grows_every_other_rtt() {
        let mut v = Vegas::default_thresholds(MSS);
        v.on_rtt_sample(0.050);
        drain(&mut v);
        // round 1: toggle=true -> acks grow the window
        let una0 = v.snd_una();
        v.on_ack(una0 + u64::from(MSS), false);
        let w_after_round1 = v.cwnd();
        // round 2 (toggle flips false on next sample): acks do not grow
        v.on_rtt_sample(0.050);
        let una1 = v.snd_una();
        v.on_ack(una1 + u64::from(MSS), false);
        // one of the two rounds grew, the other held
        let grew_then_held = (w_after_round1 > 2.0) ^ (v.cwnd() > w_after_round1);
        assert!(grew_then_held, "vegas slow start doubles every other RTT");
    }

    #[test]
    fn fast_retransmit_cuts_by_quarter_not_half() {
        let mut v = Vegas::default_thresholds(MSS);
        v.slow_start = false;
        v.cwnd = 16.0;
        drain(&mut v);
        for _ in 0..2 {
            assert_eq!(v.on_ack(0, false).retransmit, None);
        }
        let res = v.on_ack(0, false);
        assert_eq!(res.retransmit, Some(0));
        // recovery window = 0.75 * 16 = 12 (+3 inflation)
        assert_eq!(v.cwnd(), 15.0);
        // new ack deflates to the 0.75 cut
        let nxt = v.snd_nxt();
        v.on_ack(nxt, false);
        assert_eq!(v.cwnd(), 12.0);
        assert_eq!(v.stats().fast_retransmits, 1);
    }

    #[test]
    fn timeout_rewinds_and_restarts_slow_start() {
        let mut v = Vegas::default_thresholds(MSS);
        v.slow_start = false;
        v.cwnd = 20.0;
        drain(&mut v);
        v.on_timeout();
        assert_eq!(v.cwnd(), 2.0);
        assert!(v.slow_start);
        assert_eq!(v.snd_nxt(), v.snd_una());
    }

    #[test]
    fn window_floor_is_two_segments() {
        let mut v = Vegas::default_thresholds(MSS);
        v.on_rtt_sample(0.05);
        v.slow_start = false;
        v.cwnd = 2.0;
        for _ in 0..50 {
            v.on_rtt_sample(10.0); // massive queueing: shrink pressure
        }
        assert_eq!(v.cwnd(), 2.0);
        v.on_quench();
        assert_eq!(v.cwnd(), 2.0);
    }

    #[test]
    fn the_papers_unfairness_no_balancing_mechanism() {
        // Two Vegas connections in equilibrium at *different* windows on
        // the same (emulated) path: each sees diff inside [alpha, beta],
        // so neither moves — "the current mechanisms would either
        // increase both or decrease both".
        let mk = |cwnd: f64, rtt: f64| {
            let mut v = Vegas::default_thresholds(MSS);
            v.on_rtt_sample(0.050);
            v.slow_start = false;
            v.cwnd = cwnd;
            v.on_rtt_sample(rtt);
            v
        };
        // diff = cwnd*(1 - 0.05/rtt) in [1,3]
        let small = mk(5.0, 0.05 / (1.0 - 2.0 / 5.0)); // diff = 2
        let big = mk(20.0, 0.05 / (1.0 - 2.0 / 20.0)); // diff = 2
        assert_eq!(small.cwnd(), 5.0);
        assert_eq!(big.cwnd(), 20.0);
        // both are content despite a 4x rate difference
    }
}
