//! An output-queued IP router with pluggable queue disciplines.
//!
//! Mirrors the ATM switch: per-port FIFO, packet-by-packet serialization
//! at link rate, a measurement interval feeding the discipline, and
//! per-flow forward/backward routes. Data packets are subject to the
//! discipline's verdict; ACKs and quenches pass through the reverse-path
//! port untouched. A [`crate::qdisc::Verdict::Quench`] verdict makes the
//! router emit an ICMP Source Quench through the flow's backward port.

use crate::packet::{FlowId, Packet, TcpMsg, TcpTimer};
use crate::qdisc::{QueueDiscipline, RouterMeasurement, Verdict};
use phantom_metrics::registry::{CounterHandle, GaugeHandle, Registry};
use phantom_sim::fifo::EnqueueResult;
use phantom_sim::probe::{DropReason, ProbeEvent};
use phantom_sim::stats::{TimeSeries, TimeWeighted};
use phantom_sim::{BoundedFifo, Ctx, Node, NodeId, SimDuration};

/// Registry handles a router port updates when metrics are bound.
struct RPortMetrics {
    tx_pkts: CounterHandle,
    dropped_pkts: CounterHandle,
    queue_pkts: GaugeHandle,
    macr: GaugeHandle,
    throughput: GaugeHandle,
}

/// Per-flow routing state.
#[derive(Clone, Copy, Debug)]
pub struct FlowRoute {
    /// Output port toward the receiver (data direction).
    pub fwd_port: usize,
    /// Output port toward the sender (ACK/quench direction).
    pub bwd_port: usize,
}

/// One output port of a router.
pub struct RPort {
    queue: BoundedFifo<Packet>,
    queue_bytes: u64,
    link_to: NodeId,
    prop: SimDuration,
    capacity: f64, // bytes/s
    /// Memoized serialization time for the last wire size transmitted.
    /// TCP traffic is dominated by two packet sizes (full data segments
    /// and 40-byte ACKs), so this removes an f64 division from every
    /// packet push and TxDone reschedule. Invalidated by `set_capacity`.
    ser_wire: u32,
    ser_dur: SimDuration,
    busy: bool,
    qdisc: Box<dyn QueueDiscipline>,
    measure_interval: SimDuration,
    arrival_bytes: u64,
    departure_bytes: u64,
    /// Packets dropped by the discipline (not counting tail drops).
    pub policy_drops: u64,
    /// Source Quench messages emitted because of this port's verdicts.
    pub quenches_sent: u64,
    /// Packets marked (EFCI/ECN) by the discipline.
    pub marks: u64,
    /// Time-weighted queue occupancy in packets.
    pub queue_tw: TimeWeighted,
    /// Queue-length samples (packets), one per interval.
    pub queue_series: TimeSeries,
    /// Fair-share (MACR) samples, one per interval (NaN-free only for
    /// Phantom disciplines).
    pub macr_series: TimeSeries,
    /// Throughput samples (bytes/s), one per interval.
    pub throughput_series: TimeSeries,
    metrics: Option<RPortMetrics>,
}

impl RPort {
    /// A port transmitting to `link_to` at `capacity` bytes/s.
    pub fn new(
        link_to: NodeId,
        capacity: f64,
        prop: SimDuration,
        queue_cap_pkts: usize,
        qdisc: Box<dyn QueueDiscipline>,
        measure_interval: SimDuration,
    ) -> Self {
        assert!(capacity > 0.0);
        RPort {
            queue: BoundedFifo::new(queue_cap_pkts),
            queue_bytes: 0,
            link_to,
            prop,
            capacity,
            ser_wire: u32::MAX,
            ser_dur: SimDuration::ZERO,
            busy: false,
            qdisc,
            measure_interval,
            arrival_bytes: 0,
            departure_bytes: 0,
            policy_drops: 0,
            quenches_sent: 0,
            marks: 0,
            queue_tw: TimeWeighted::new(),
            queue_series: TimeSeries::new(),
            macr_series: TimeSeries::new(),
            throughput_series: TimeSeries::new(),
            metrics: None,
        }
    }

    /// Register this port's counters and gauges into `registry`, labelled
    /// `link=<label>`. Unbound ports skip all metric updates.
    pub fn bind_metrics(&mut self, registry: &Registry, label: &str) {
        let l: &[(&str, &str)] = &[("link", label)];
        self.metrics = Some(RPortMetrics {
            tx_pkts: registry.counter("tcp_tx_pkts_total", l),
            dropped_pkts: registry.counter("tcp_dropped_pkts_total", l),
            queue_pkts: registry.gauge("tcp_queue_pkts", l),
            macr: registry.gauge("tcp_macr_bytes_per_sec", l),
            throughput: registry.gauge("tcp_throughput_bytes_per_sec", l),
        });
    }

    /// Queue length in packets.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Tail drops (buffer overflow), excluding policy drops.
    pub fn tail_drops(&self) -> u64 {
        self.queue.drops() - self.policy_drops
    }

    /// All drops at this port.
    pub fn total_drops(&self) -> u64 {
        self.queue.drops()
    }

    /// Largest queue length observed.
    pub fn queue_high_water(&self) -> usize {
        self.queue.high_water()
    }

    /// The discipline's fair-share estimate.
    pub fn fair_share(&self) -> f64 {
        self.qdisc.fair_share()
    }

    /// The discipline itself.
    pub fn qdisc(&self) -> &dyn QueueDiscipline {
        self.qdisc.as_ref()
    }

    /// Link capacity, bytes/s.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Change the link capacity (takes effect from the next packet
    /// serialization; the packet currently on the wire is unaffected).
    /// Models ABR-carried trunks whose bandwidth follows the underlying
    /// network's allocation.
    pub fn set_capacity(&mut self, bps: f64) {
        assert!(bps > 0.0, "capacity must stay positive");
        self.capacity = bps;
        self.ser_wire = u32::MAX;
    }

    fn serialization(&mut self, wire: u32) -> SimDuration {
        if wire != self.ser_wire {
            self.ser_wire = wire;
            self.ser_dur = SimDuration::from_secs_f64(f64::from(wire) / self.capacity);
        }
        self.ser_dur
    }

    fn push(&mut self, ctx: &mut Ctx<'_, TcpMsg>, me: usize, pkt: Packet) {
        let wire = pkt.wire;
        match self.queue.push(pkt) {
            EnqueueResult::Accepted => {
                self.queue_bytes += u64::from(wire);
                self.queue_tw.set(ctx.now(), self.queue.len() as f64);
                ctx.emit(|| ProbeEvent::Enqueue {
                    port: me as u32,
                    qlen: self.queue.len() as u32,
                });
                if !self.busy {
                    self.busy = true;
                    ctx.send_self(
                        self.serialization(wire),
                        TcpMsg::Timer(TcpTimer::TxDone { port: me }),
                    );
                }
            }
            EnqueueResult::Dropped => {
                if let Some(m) = &self.metrics {
                    m.dropped_pkts.inc();
                }
                ctx.emit(|| ProbeEvent::Drop {
                    port: me as u32,
                    qlen: self.queue.len() as u32,
                    reason: DropReason::Overflow,
                });
            }
        }
    }

    /// Run the discipline on an arriving packet and act on the verdict.
    /// Returns `true` if a Source Quench must be sent to the flow's
    /// sender (the router handles the routing).
    pub fn arrive(&mut self, ctx: &mut Ctx<'_, TcpMsg>, me: usize, mut pkt: Packet) -> bool {
        self.arrival_bytes += u64::from(pkt.wire);
        let verdict = self
            .qdisc
            .on_arrival(&pkt, self.queue.len(), self.queue_bytes, ctx.rng());
        match verdict {
            Verdict::Enqueue => {
                self.push(ctx, me, pkt);
                false
            }
            Verdict::Drop => {
                self.queue.note_policy_drop();
                self.policy_drops += 1;
                if let Some(m) = &self.metrics {
                    m.dropped_pkts.inc();
                }
                ctx.emit(|| ProbeEvent::Drop {
                    port: me as u32,
                    qlen: self.queue.len() as u32,
                    reason: DropReason::Policy,
                });
                false
            }
            Verdict::Mark => {
                pkt.ecn = true;
                self.marks += 1;
                self.push(ctx, me, pkt);
                false
            }
            Verdict::Quench => {
                self.quenches_sent += 1;
                self.push(ctx, me, pkt);
                true
            }
        }
    }

    /// Head-of-line packet finished serializing.
    pub fn tx_done(&mut self, ctx: &mut Ctx<'_, TcpMsg>, me: usize) {
        let pkt = self.queue.pop().expect("TxDone with empty queue");
        self.queue_bytes -= u64::from(pkt.wire);
        self.departure_bytes += u64::from(pkt.wire);
        self.queue_tw.set(ctx.now(), self.queue.len() as f64);
        if let Some(m) = &self.metrics {
            m.tx_pkts.inc();
        }
        ctx.emit(|| ProbeEvent::Dequeue {
            port: me as u32,
            qlen: self.queue.len() as u32,
        });
        ctx.send(self.link_to, self.prop, TcpMsg::Pkt(pkt));
        let head_wire = self.queue.iter().next().map(|next| next.wire);
        match head_wire {
            Some(wire) => {
                let d = self.serialization(wire);
                ctx.send_self(d, TcpMsg::Timer(TcpTimer::TxDone { port: me }));
            }
            None => self.busy = false,
        }
    }

    /// End of a measurement interval.
    pub fn measure(&mut self, ctx: &mut Ctx<'_, TcpMsg>, me: usize) {
        let m = RouterMeasurement {
            dt: self.measure_interval.as_secs_f64(),
            arrival_bytes: self.arrival_bytes,
            departure_bytes: self.departure_bytes,
            queue_pkts: self.queue.len(),
            queue_bytes: self.queue_bytes,
            capacity: self.capacity,
        };
        self.qdisc.on_interval(&m);
        self.queue_series.push(ctx.now(), self.queue.len() as f64);
        let fs = self.qdisc.fair_share();
        if !fs.is_nan() {
            self.macr_series.push(ctx.now(), fs);
        }
        self.throughput_series.push(ctx.now(), m.departure_rate());
        if let Some(h) = &self.metrics {
            h.queue_pkts.set(ctx.now(), self.queue.len() as f64);
            h.throughput.set(ctx.now(), m.departure_rate());
            if fs.is_finite() {
                h.macr.set(ctx.now(), fs);
            }
        }
        if fs.is_finite() {
            ctx.emit(|| {
                let t = self.qdisc.telemetry();
                ProbeEvent::MacrUpdate {
                    port: me as u32,
                    macr: fs,
                    delta: t.delta,
                    dev: t.dev,
                    gain: t.gain,
                }
            });
        }
        self.arrival_bytes = 0;
        self.departure_bytes = 0;
        ctx.send_self(
            self.measure_interval,
            TcpMsg::Timer(TcpTimer::Measure { port: me }),
        );
    }

    /// Serialize the dynamic state for engine checkpoints (link target,
    /// propagation delay, buffer bound and metric bindings are
    /// construction-time configuration).
    pub fn save_state(&self, w: &mut phantom_sim::KvWriter) -> Result<(), String> {
        w.scope("q", |w| self.queue.save(w, Packet::encode_str));
        w.u64("queue_bytes", self.queue_bytes);
        w.f64("capacity", self.capacity);
        w.bool("busy", self.busy);
        w.u64("arrival_bytes", self.arrival_bytes);
        w.u64("departure_bytes", self.departure_bytes);
        w.u64("policy_drops", self.policy_drops);
        w.u64("quenches_sent", self.quenches_sent);
        w.u64("marks", self.marks);
        w.scope("tw", |w| self.queue_tw.save(w));
        w.scope("qs", |w| self.queue_series.save(w));
        w.scope("macr", |w| self.macr_series.save(w));
        w.scope("tp", |w| self.throughput_series.save(w));
        let mut qdisc = Ok(());
        w.scope("qdisc", |w| qdisc = self.qdisc.save_state(w));
        qdisc
    }

    /// Restore state written by [`RPort::save_state`].
    pub fn restore_state(&mut self, r: &mut phantom_sim::KvReader) -> Result<(), String> {
        r.scope("q", |r| self.queue.restore(r, Packet::decode_str))?;
        self.queue_bytes = r.u64("queue_bytes")?;
        // Routed through set_capacity so the serialization memo is
        // invalidated along with the rate it was computed from.
        self.set_capacity(r.f64("capacity")?);
        self.busy = r.bool("busy")?;
        self.arrival_bytes = r.u64("arrival_bytes")?;
        self.departure_bytes = r.u64("departure_bytes")?;
        self.policy_drops = r.u64("policy_drops")?;
        self.quenches_sent = r.u64("quenches_sent")?;
        self.marks = r.u64("marks")?;
        r.scope("tw", |r| self.queue_tw.restore(r))?;
        r.scope("qs", |r| self.queue_series.restore(r))?;
        r.scope("macr", |r| self.macr_series.restore(r))?;
        r.scope("tp", |r| self.throughput_series.restore(r))?;
        r.scope("qdisc", |r| self.qdisc.restore_state(r))
    }
}

/// A router node.
pub struct Router {
    name: String,
    ports: Vec<RPort>,
    /// Routing table indexed by flow id. Flow ids are dense small
    /// integers, so a flat vector turns the per-packet route lookup into
    /// one bounds-checked load instead of a hash.
    routes: Vec<Option<FlowRoute>>,
    routed_pkts: Option<CounterHandle>,
}

impl Router {
    /// An empty router; ports and routes are installed by the builder.
    pub fn new(name: &str) -> Self {
        Router {
            name: name.to_string(),
            ports: Vec::new(),
            routes: Vec::new(),
            routed_pkts: None,
        }
    }

    /// Router name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Register the router-level routed-packets counter into `registry`,
    /// labelled `router=<name>`. Unbound routers skip the update.
    pub fn bind_metrics(&mut self, registry: &Registry) {
        let counter = registry.counter("tcp_pkts_routed_total", &[("router", self.name.as_str())]);
        self.routed_pkts = Some(counter);
    }

    /// Add an output port; returns its index.
    pub fn add_port(&mut self, port: RPort) -> usize {
        self.ports.push(port);
        self.ports.len() - 1
    }

    /// Install a flow route.
    pub fn add_route(&mut self, flow: FlowId, route: FlowRoute) {
        assert!(route.fwd_port < self.ports.len());
        assert!(route.bwd_port < self.ports.len());
        let idx = flow.0 as usize;
        if idx >= self.routes.len() {
            self.routes.resize(idx + 1, None);
        }
        assert!(self.routes[idx].is_none(), "duplicate route for {flow:?}");
        self.routes[idx] = Some(route);
    }

    /// Port accessor.
    pub fn port(&self, idx: usize) -> &RPort {
        &self.ports[idx]
    }

    /// Mutable port accessor (metric binding, capacity changes).
    pub fn port_mut(&mut self, idx: usize) -> &mut RPort {
        &mut self.ports[idx]
    }

    /// Number of ports.
    pub fn port_count(&self) -> usize {
        self.ports.len()
    }

    fn handle_pkt(&mut self, ctx: &mut Ctx<'_, TcpMsg>, pkt: Packet) {
        if let Some(c) = &self.routed_pkts {
            c.inc();
        }
        let route = self
            .routes
            .get(pkt.flow.0 as usize)
            .copied()
            .flatten()
            .unwrap_or_else(|| panic!("router {}: no route for {:?}", self.name, pkt.flow));
        if pkt.is_reverse() {
            // ACKs and quenches ride the reverse path untouched.
            let p = route.bwd_port;
            let wire = pkt.wire;
            self.ports[p].arrival_bytes += u64::from(wire);
            self.ports[p].push(ctx, p, pkt);
        } else {
            let flow = pkt.flow;
            let p = route.fwd_port;
            let quench = self.ports[p].arrive(ctx, p, pkt);
            if quench {
                let q = route.bwd_port;
                let qpkt = Packet::quench(flow);
                self.ports[q].arrival_bytes += u64::from(qpkt.wire);
                self.ports[q].push(ctx, q, qpkt);
            }
        }
    }
}

impl Node<TcpMsg> for Router {
    fn on_event(&mut self, ctx: &mut Ctx<'_, TcpMsg>, msg: TcpMsg) {
        match msg {
            TcpMsg::Pkt(pkt) => self.handle_pkt(ctx, pkt),
            TcpMsg::Timer(TcpTimer::TxDone { port }) => self.ports[port].tx_done(ctx, port),
            TcpMsg::Timer(TcpTimer::Measure { port }) => self.ports[port].measure(ctx, port),
            TcpMsg::Timer(TcpTimer::SetRate { port, bps }) => self.ports[port].set_capacity(bps),
            TcpMsg::Timer(t) => unreachable!("router received {t:?}"),
        }
    }

    fn save_state(&self, w: &mut phantom_sim::KvWriter) -> Result<(), String> {
        w.u64("ports", self.ports.len() as u64);
        let mut res = Ok(());
        for (i, p) in self.ports.iter().enumerate() {
            if res.is_ok() {
                w.scope(&format!("p{i}"), |w| res = p.save_state(w));
            }
        }
        res
    }

    fn restore_state(&mut self, r: &mut phantom_sim::KvReader) -> Result<(), String> {
        let n = r.u64("ports")? as usize;
        if n != self.ports.len() {
            return Err(format!(
                "checkpoint has {n} ports but router {} was rebuilt with {}",
                self.name,
                self.ports.len()
            ));
        }
        for (i, p) in self.ports.iter_mut().enumerate() {
            r.scope(&format!("p{i}"), |r| p.restore_state(r))?;
        }
        Ok(())
    }
}
