//! The TCP Reno congestion-control state machine, pure and
//! simulator-independent.
//!
//! Implements the algorithms of Stevens' *TCP/IP Illustrated* ch. 21 that
//! the paper says its TCP end systems follow: slow start, congestion
//! avoidance, fast retransmit on 3 duplicate ACKs, and (Reno) fast
//! recovery with window inflation. The receiver window is unbounded
//! (greedy bulk transfer), so `cwnd` alone governs the send window.
//!
//! One extension from the paper's Section 4: an `ecn_echo` flag on
//! acknowledgements suppresses the window increase — the reaction to the
//! Phantom EFCI marking mechanism ("a source that observes this bit set
//! may not increase its rate") — and [`Reno::on_quench`] implements the
//! Source-Quench reaction ("the source reacts … as if a packet was
//! dropped, and hence reduces its window size").

/// Congestion-control phase.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Phase {
    /// Exponential window growth below `ssthresh`.
    SlowStart,
    /// Additive increase above `ssthresh`.
    CongestionAvoidance,
    /// Between a fast retransmit and the ACK that covers it.
    FastRecovery,
}

/// What the sender must do after processing an ACK.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct AckResult {
    /// Bytes newly acknowledged (0 for duplicates).
    pub newly_acked: u64,
    /// Segment to retransmit immediately (fast retransmit).
    pub retransmit: Option<u64>,
}

/// The Reno sender state machine.
///
/// ```
/// use phantom_tcp::Reno;
///
/// let mut reno = Reno::new(512, 100.0);
/// let seq = reno.take_segment();          // cwnd = 1 allows one segment
/// assert_eq!(seq, 0);
/// assert!(!reno.can_send());
/// reno.on_ack(512, false);                // slow start: cwnd grows to 2
/// assert_eq!(reno.cwnd(), 2.0);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Reno {
    mss: u32,
    snd_una: u64,
    snd_nxt: u64,
    cwnd: f64,
    ssthresh: f64,
    dupacks: u32,
    phase: Phase,
    max_cwnd: f64,
    /// Fast retransmits performed (statistic).
    pub fast_retransmits: u64,
    /// Retransmission timeouts taken (statistic).
    pub timeouts: u64,
    /// Source-quench window cuts taken (statistic).
    pub quench_cuts: u64,
}

impl Reno {
    /// A fresh connection with `mss`-byte segments: `cwnd = 1` segment,
    /// `ssthresh` effectively unbounded (half the first overload will set
    /// it), window capped at `max_cwnd` segments.
    pub fn new(mss: u32, max_cwnd: f64) -> Self {
        assert!(mss > 0);
        assert!(max_cwnd >= 2.0);
        Reno {
            mss,
            snd_una: 0,
            snd_nxt: 0,
            cwnd: 1.0,
            ssthresh: max_cwnd,
            dupacks: 0,
            phase: Phase::SlowStart,
            max_cwnd,
            fast_retransmits: 0,
            timeouts: 0,
            quench_cuts: 0,
        }
    }

    /// Segment size in bytes.
    pub fn mss(&self) -> u32 {
        self.mss
    }

    /// Congestion window in segments.
    pub fn cwnd(&self) -> f64 {
        self.cwnd
    }

    /// Slow-start threshold in segments.
    pub fn ssthresh(&self) -> f64 {
        self.ssthresh
    }

    /// Oldest unacknowledged byte.
    pub fn snd_una(&self) -> u64 {
        self.snd_una
    }

    /// Next byte to be sent.
    pub fn snd_nxt(&self) -> u64 {
        self.snd_nxt
    }

    /// Current phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Bytes in flight.
    pub fn flight(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    /// True while any data is unacknowledged.
    pub fn outstanding(&self) -> bool {
        self.snd_nxt > self.snd_una
    }

    /// May a new segment be sent under the congestion window?
    pub fn can_send(&self) -> bool {
        let wnd = (self.cwnd * self.mss as f64) as u64;
        self.snd_nxt + self.mss as u64 <= self.snd_una + wnd
    }

    /// Claim the next new segment for transmission; returns its first
    /// byte. Call only when [`Reno::can_send`] is true (greedy source —
    /// data is always available).
    pub fn take_segment(&mut self) -> u64 {
        debug_assert!(self.can_send());
        let seq = self.snd_nxt;
        self.snd_nxt += self.mss as u64;
        seq
    }

    /// Process a cumulative ACK. `ecn_echo` suppresses window growth
    /// (the Phantom marking mechanism).
    pub fn on_ack(&mut self, ack: u64, ecn_echo: bool) -> AckResult {
        if ack > self.snd_una {
            let newly = ack - self.snd_una;
            self.snd_una = ack;
            if self.snd_nxt < self.snd_una {
                self.snd_nxt = self.snd_una;
            }
            self.dupacks = 0;
            match self.phase {
                Phase::FastRecovery => {
                    // Plain Reno: the first new ACK deflates the window
                    // and resumes congestion avoidance.
                    self.cwnd = self.ssthresh;
                    self.phase = Phase::CongestionAvoidance;
                }
                Phase::SlowStart if !ecn_echo => {
                    self.cwnd = (self.cwnd + 1.0).min(self.max_cwnd);
                    if self.cwnd >= self.ssthresh {
                        self.phase = Phase::CongestionAvoidance;
                    }
                }
                Phase::CongestionAvoidance if !ecn_echo => {
                    self.cwnd = (self.cwnd + 1.0 / self.cwnd).min(self.max_cwnd);
                }
                _ => {} // ecn_echo: hold the window
            }
            AckResult {
                newly_acked: newly,
                retransmit: None,
            }
        } else if self.outstanding() {
            // Genuine duplicate ACK.
            self.dupacks += 1;
            if self.dupacks == 3 && self.phase != Phase::FastRecovery {
                self.ssthresh = (self.cwnd / 2.0).max(2.0);
                self.cwnd = self.ssthresh + 3.0;
                self.phase = Phase::FastRecovery;
                self.fast_retransmits += 1;
                AckResult {
                    newly_acked: 0,
                    retransmit: Some(self.snd_una),
                }
            } else {
                if self.phase == Phase::FastRecovery {
                    // Window inflation: each dup ACK signals a departure.
                    self.cwnd = (self.cwnd + 1.0).min(self.max_cwnd);
                }
                AckResult::default()
            }
        } else {
            AckResult::default()
        }
    }

    /// Retransmission timeout: collapse to slow start and resend from
    /// `snd_una` (go-back-N; the receiver discards duplicates).
    pub fn on_timeout(&mut self) {
        self.ssthresh = (self.cwnd / 2.0).max(2.0);
        self.cwnd = 1.0;
        self.dupacks = 0;
        self.phase = Phase::SlowStart;
        self.snd_nxt = self.snd_una;
        self.timeouts += 1;
    }

    /// ICMP Source Quench: halve the window as if a loss had been
    /// detected, without retransmitting anything.
    pub fn on_quench(&mut self) {
        self.ssthresh = (self.cwnd / 2.0).max(2.0);
        self.cwnd = self.ssthresh;
        if self.phase == Phase::SlowStart {
            self.phase = Phase::CongestionAvoidance;
        }
        self.quench_cuts += 1;
    }

    /// Serialize the dynamic state for engine checkpoints (`mss` and
    /// `max_cwnd` are construction-time configuration).
    pub fn save_state(&self, w: &mut phantom_sim::KvWriter) {
        w.u64("snd_una", self.snd_una);
        w.u64("snd_nxt", self.snd_nxt);
        w.f64("cwnd", self.cwnd);
        w.f64("ssthresh", self.ssthresh);
        w.u64("dupacks", u64::from(self.dupacks));
        w.str(
            "phase",
            match self.phase {
                Phase::SlowStart => "ss",
                Phase::CongestionAvoidance => "ca",
                Phase::FastRecovery => "fr",
            },
        );
        w.u64("fast_retransmits", self.fast_retransmits);
        w.u64("timeouts", self.timeouts);
        w.u64("quench_cuts", self.quench_cuts);
    }

    /// Restore state written by [`Reno::save_state`].
    pub fn restore_state(&mut self, r: &mut phantom_sim::KvReader) -> Result<(), String> {
        self.snd_una = r.u64("snd_una")?;
        self.snd_nxt = r.u64("snd_nxt")?;
        self.cwnd = r.f64("cwnd")?;
        self.ssthresh = r.f64("ssthresh")?;
        self.dupacks = u32::try_from(r.u64("dupacks")?).map_err(|_| "dupacks out of range")?;
        self.phase = match r.str("phase")?.as_str() {
            "ss" => Phase::SlowStart,
            "ca" => Phase::CongestionAvoidance,
            "fr" => Phase::FastRecovery,
            other => return Err(format!("unknown reno phase {other:?}")),
        };
        self.fast_retransmits = r.u64("fast_retransmits")?;
        self.timeouts = r.u64("timeouts")?;
        self.quench_cuts = r.u64("quench_cuts")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: u32 = 512;

    fn fresh() -> Reno {
        Reno::new(MSS, 10_000.0)
    }

    /// Send everything the window allows; returns the seqs sent.
    fn drain(r: &mut Reno) -> Vec<u64> {
        let mut v = Vec::new();
        while r.can_send() {
            v.push(r.take_segment());
        }
        v
    }

    #[test]
    fn starts_with_one_segment_window() {
        let mut r = fresh();
        assert_eq!(r.cwnd(), 1.0);
        assert_eq!(drain(&mut r), vec![0]);
        assert!(!r.can_send());
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut r = fresh();
        let mut sent = drain(&mut r);
        for _round in 0..4 {
            let mut next = Vec::new();
            for seq in &sent {
                r.on_ack(seq + u64::from(MSS), false);
                next.extend(drain(&mut r));
            }
            // each ACK grows cwnd by 1 -> window doubles per round
            sent = next;
        }
        assert_eq!(r.cwnd(), 16.0);
        assert_eq!(r.phase(), Phase::SlowStart);
    }

    #[test]
    fn congestion_avoidance_grows_one_mss_per_rtt() {
        let mut r = fresh();
        r.ssthresh = 4.0;
        // grow past ssthresh
        for i in 0..4u64 {
            drain(&mut r);
            r.on_ack((i + 1) * u64::from(MSS), false);
        }
        assert_eq!(r.phase(), Phase::CongestionAvoidance);
        let w0 = r.cwnd();
        // one full window of ACKs ≈ +1 segment
        let acks = w0 as u64;
        let base = r.snd_una();
        drain(&mut r);
        for i in 0..acks {
            r.on_ack(base + (i + 1) * u64::from(MSS), false);
            drain(&mut r);
        }
        assert!((r.cwnd() - (w0 + 1.0)).abs() < 0.3, "got {}", r.cwnd());
    }

    #[test]
    fn three_dupacks_trigger_fast_retransmit_once() {
        let mut r = fresh();
        r.cwnd = 8.0;
        r.ssthresh = 64.0;
        r.phase = Phase::CongestionAvoidance;
        drain(&mut r);
        assert_eq!(r.on_ack(0, false).retransmit, None);
        assert_eq!(r.on_ack(0, false).retransmit, None);
        let res = r.on_ack(0, false);
        assert_eq!(res.retransmit, Some(0), "3rd dupack retransmits snd_una");
        assert_eq!(r.phase(), Phase::FastRecovery);
        assert_eq!(r.ssthresh(), 4.0);
        assert_eq!(r.cwnd(), 7.0); // ssthresh + 3
        assert_eq!(r.fast_retransmits, 1);
        // further dupacks only inflate
        assert_eq!(r.on_ack(0, false).retransmit, None);
        assert_eq!(r.cwnd(), 8.0);
    }

    #[test]
    fn recovery_exits_on_new_ack_with_deflated_window() {
        let mut r = fresh();
        r.cwnd = 8.0;
        r.phase = Phase::CongestionAvoidance;
        drain(&mut r);
        for _ in 0..3 {
            r.on_ack(0, false);
        }
        assert_eq!(r.phase(), Phase::FastRecovery);
        let res = r.on_ack(u64::from(MSS) * 8, false);
        assert_eq!(res.newly_acked, u64::from(MSS) * 8);
        assert_eq!(r.phase(), Phase::CongestionAvoidance);
        assert_eq!(r.cwnd(), 4.0, "window deflates to ssthresh");
    }

    #[test]
    fn timeout_collapses_to_one_segment_and_rewinds() {
        let mut r = fresh();
        r.cwnd = 16.0;
        r.phase = Phase::CongestionAvoidance;
        drain(&mut r);
        let nxt_before = r.snd_nxt();
        assert!(nxt_before > 0);
        r.on_timeout();
        assert_eq!(r.cwnd(), 1.0);
        assert_eq!(r.ssthresh(), 8.0);
        assert_eq!(r.phase(), Phase::SlowStart);
        assert_eq!(r.snd_nxt(), r.snd_una(), "go-back-N rewind");
        assert_eq!(r.timeouts, 1);
    }

    #[test]
    fn quench_halves_without_retransmit() {
        let mut r = fresh();
        r.cwnd = 10.0;
        r.phase = Phase::CongestionAvoidance;
        r.on_quench();
        assert_eq!(r.cwnd(), 5.0);
        assert_eq!(r.ssthresh(), 5.0);
        assert_eq!(r.quench_cuts, 1);
        // quench in slow start also moves to congestion avoidance
        let mut r2 = fresh();
        r2.cwnd = 8.0;
        r2.on_quench();
        assert_eq!(r2.phase(), Phase::CongestionAvoidance);
    }

    #[test]
    fn ecn_echo_freezes_growth_but_acks_data() {
        let mut r = fresh();
        r.cwnd = 4.0;
        r.ssthresh = 2.0;
        r.phase = Phase::CongestionAvoidance;
        drain(&mut r);
        let res = r.on_ack(u64::from(MSS), true);
        assert_eq!(res.newly_acked, u64::from(MSS));
        assert_eq!(r.cwnd(), 4.0, "no growth on marked ack");
        r.on_ack(2 * u64::from(MSS), false);
        assert!(r.cwnd() > 4.0, "unmarked ack grows again");
    }

    #[test]
    fn dupacks_before_any_send_are_ignored() {
        let mut r = fresh();
        for _ in 0..10 {
            assert_eq!(r.on_ack(0, false), AckResult::default());
        }
        assert_eq!(r.phase(), Phase::SlowStart);
    }

    #[test]
    fn window_never_exceeds_cap() {
        let mut r = Reno::new(MSS, 8.0);
        r.ssthresh = 8.0;
        for i in 0..100u64 {
            drain(&mut r);
            r.on_ack((i + 1) * u64::from(MSS), false);
        }
        assert!(r.cwnd() <= 8.0);
    }

    #[test]
    fn flight_accounting() {
        let mut r = fresh();
        r.cwnd = 4.0;
        let sent = drain(&mut r);
        assert_eq!(sent.len(), 4);
        assert_eq!(r.flight(), 4 * u64::from(MSS));
        r.on_ack(2 * u64::from(MSS), false);
        assert_eq!(r.flight(), 2 * u64::from(MSS));
        assert!(r.outstanding());
    }

    #[test]
    fn ssthresh_floor_is_two_segments() {
        let mut r = fresh();
        r.cwnd = 1.0;
        r.on_timeout();
        assert_eq!(r.ssthresh(), 2.0);
        let mut r2 = fresh();
        r2.cwnd = 2.5;
        r2.on_quench();
        assert_eq!(r2.ssthresh(), 2.0, "cwnd/2 = 1.25 floors at 2");
    }
}
