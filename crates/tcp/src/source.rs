//! The TCP sender end host.
//!
//! Wraps the pure [`crate::reno::Reno`] machine with everything a host
//! needs in the event loop: a NIC pacing model (one packet per
//! serialization time on the access link), the RTO timer, Karn-compliant
//! RTT sampling, the paper's CR meter ("the ratio between the size of
//! payload transmitted and acknowledged by the destination in a time
//! interval, and the length of the time interval"), and the reactions to
//! ECN echoes and Source Quench messages.

use crate::cc::{CcStats, CongestionControl};
use crate::packet::{FlowId, Packet, PktKind, TcpMsg, TcpTimer};
use crate::reno::Reno;
use crate::rtt::RttEstimator;
use phantom_sim::probe::ProbeEvent;
use phantom_sim::stats::TimeSeries;
use phantom_sim::{telemetry, Ctx, Node, NodeId, SimDuration, SimTime};

/// A greedy TCP Reno sender.
pub struct TcpSource {
    flow: FlowId,
    cc: Box<dyn CongestionControl>,
    rtt: RttEstimator,
    next_hop: NodeId,
    prop: SimDuration,
    access_rate: f64, // bytes/s
    /// Memoized serialization time for the last wire size sent — data
    /// segments are a single fixed size per flow, so this removes an f64
    /// division from every transmission.
    ser_wire: u32,
    ser_dur: SimDuration,
    start: SimTime,
    tx_busy: bool,
    pending_retx: Option<u64>,
    rto_gen: u64,
    timed: Option<(u64, SimTime)>, // (seq end, send time) for RTT sampling
    // CR metering
    cr: f64,
    acked_in_window: u64,
    cr_interval: SimDuration,
    cr_window_start: SimTime,
    last_quench_cut: Option<SimTime>,
    /// Congestion-window trace (segments).
    pub cwnd_series: TimeSeries,
    /// CR trace (bytes/s) — what gets stamped into headers.
    pub cr_series: TimeSeries,
    /// Data segments transmitted (including retransmissions).
    pub segments_sent: u64,
    /// Retransmitted segments.
    pub retransmissions: u64,
}

impl TcpSource {
    /// A sender for `flow` attached to `next_hop` over an access link of
    /// `access_rate` bytes/s and propagation delay `prop`, starting to
    /// send at `start`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        flow: FlowId,
        mss: u32,
        max_cwnd: f64,
        next_hop: NodeId,
        access_rate: f64,
        prop: SimDuration,
        start: SimTime,
        cr_interval: SimDuration,
    ) -> Self {
        Self::with_cc(
            flow,
            Box::new(Reno::new(mss, max_cwnd)),
            next_hop,
            access_rate,
            prop,
            start,
            cr_interval,
        )
    }

    /// A sender with an explicit congestion-control algorithm (Reno,
    /// Vegas, or a custom [`CongestionControl`]).
    pub fn with_cc(
        flow: FlowId,
        cc: Box<dyn CongestionControl>,
        next_hop: NodeId,
        access_rate: f64,
        prop: SimDuration,
        start: SimTime,
        cr_interval: SimDuration,
    ) -> Self {
        assert!(access_rate > 0.0);
        assert!(!cr_interval.is_zero());
        TcpSource {
            flow,
            cc,
            rtt: RttEstimator::default_paper(),
            next_hop,
            prop,
            access_rate,
            ser_wire: u32::MAX,
            ser_dur: SimDuration::ZERO,
            start,
            tx_busy: false,
            pending_retx: None,
            rto_gen: 0,
            timed: None,
            cr: 0.0,
            acked_in_window: 0,
            cr_interval,
            cr_window_start: start,
            last_quench_cut: None,
            cwnd_series: TimeSeries::new(),
            cr_series: TimeSeries::new(),
            segments_sent: 0,
            retransmissions: 0,
        }
    }

    /// The flow id.
    pub fn flow(&self) -> FlowId {
        self.flow
    }

    /// The congestion-control state (for assertions and traces).
    pub fn cc(&self) -> &dyn CongestionControl {
        self.cc.as_ref()
    }

    /// Loss/recovery statistics of the congestion controller.
    pub fn cc_stats(&self) -> CcStats {
        self.cc.stats()
    }

    /// Smoothed RTT estimate, seconds.
    pub fn srtt(&self) -> f64 {
        self.rtt.srtt()
    }

    /// The current CR stamp, bytes/s.
    pub fn current_rate(&self) -> f64 {
        self.cr
    }

    fn serialization(&mut self, wire: u32) -> SimDuration {
        if wire != self.ser_wire {
            self.ser_wire = wire;
            self.ser_dur = SimDuration::from_secs_f64(f64::from(wire) / self.access_rate);
        }
        self.ser_dur
    }

    fn arm_rto(&mut self, ctx: &mut Ctx<'_, TcpMsg>) {
        self.rto_gen += 1;
        let gen = self.rto_gen;
        ctx.send_self(self.rtt.rto(), TcpMsg::Timer(TcpTimer::Rto { gen }));
    }

    fn cancel_rto(&mut self) {
        self.rto_gen += 1; // any scheduled timer is now stale
    }

    fn send_segment(&mut self, ctx: &mut Ctx<'_, TcpMsg>, seq: u64, is_retx: bool) {
        let mss = self.cc.mss();
        let pkt = Packet::data(self.flow, seq, mss, self.cr);
        self.segments_sent += 1;
        if is_retx {
            self.retransmissions += 1;
            telemetry::note_retransmit();
            // Karn: a retransmitted segment must never be timed.
            if let Some((end, _)) = self.timed {
                if seq < end {
                    self.timed = None;
                }
            }
        } else if self.timed.is_none() {
            self.timed = Some((seq + u64::from(mss), ctx.now()));
        }
        let ser = self.serialization(pkt.wire);
        ctx.send(self.next_hop, ser + self.prop, TcpMsg::Pkt(pkt));
        self.tx_busy = true;
        ctx.send_self(ser, TcpMsg::Timer(TcpTimer::Tick));
    }

    /// NIC tick: transmit the most urgent eligible segment, if any.
    fn on_tick(&mut self, ctx: &mut Ctx<'_, TcpMsg>) {
        self.tx_busy = false;
        if ctx.now() < self.start {
            return;
        }
        if let Some(seq) = self.pending_retx.take() {
            self.send_segment(ctx, seq, true);
            return;
        }
        if self.cc.can_send() {
            let first_in_flight = !self.cc.outstanding();
            let seq = self.cc.take_segment();
            self.send_segment(ctx, seq, false);
            if first_in_flight {
                self.arm_rto(ctx);
            }
        }
    }

    /// Sample the congestion window into the trace and the probe stream.
    fn record_cwnd(&mut self, ctx: &mut Ctx<'_, TcpMsg>) {
        self.cwnd_series.push(ctx.now(), self.cc.cwnd());
        ctx.emit(|| ProbeEvent::CwndChange {
            flow: self.flow.0,
            cwnd: self.cc.cwnd(),
            ssthresh: self.cc.ssthresh(),
        });
    }

    fn kick_nic(&mut self, ctx: &mut Ctx<'_, TcpMsg>) {
        if !self.tx_busy {
            ctx.send_self(SimDuration::ZERO, TcpMsg::Timer(TcpTimer::Tick));
            self.tx_busy = true;
        }
    }

    fn on_ack(&mut self, ctx: &mut Ctx<'_, TcpMsg>, ack: u64, ecn_echo: bool) {
        let res = self.cc.on_ack(ack, ecn_echo);
        if res.newly_acked > 0 {
            self.acked_in_window += res.newly_acked;
            // RTT sample (Karn-safe: `timed` is cleared on retransmit).
            if let Some((end, at)) = self.timed {
                if ack >= end {
                    let sample = (ctx.now() - at).as_secs_f64();
                    self.rtt.sample(sample);
                    self.cc.on_rtt_sample(sample);
                    self.timed = None;
                }
            }
            if self.cc.outstanding() {
                self.arm_rto(ctx);
            } else {
                self.cancel_rto();
            }
        }
        if let Some(seq) = res.retransmit {
            self.pending_retx = Some(seq);
        }
        self.record_cwnd(ctx);
        self.kick_nic(ctx);
    }

    fn on_rto(&mut self, ctx: &mut Ctx<'_, TcpMsg>, gen: u64) {
        if gen != self.rto_gen || !self.cc.outstanding() {
            return; // stale timer
        }
        self.cc.on_timeout();
        self.rtt.back_off();
        self.timed = None;
        self.pending_retx = None; // snd_nxt was rewound; normal send resumes
        self.record_cwnd(ctx);
        self.arm_rto(ctx);
        self.kick_nic(ctx);
    }

    fn on_quench(&mut self, ctx: &mut Ctx<'_, TcpMsg>) {
        // Hold off repeated cuts for one RTT (or 10 ms before the first
        // estimate) so a burst of quenches counts once.
        let holdoff = SimDuration::from_secs_f64(self.srtt().max(0.01));
        if let Some(last) = self.last_quench_cut {
            if ctx.now() < last + holdoff {
                return;
            }
        }
        self.last_quench_cut = Some(ctx.now());
        self.cc.on_quench();
        self.record_cwnd(ctx);
    }

    /// CR metering. The paper: "each source computes its rate as the
    /// ratio between the size of payload transmitted and acknowledged by
    /// the destination in a time interval, and the length of the time
    /// interval." A fixed interval shorter than the connection's RTT
    /// over-estimates the rate of long-RTT flows (their ACKs arrive in
    /// window bursts), so the measurement window stretches to at least
    /// one smoothed RTT.
    fn on_cr_sample(&mut self, ctx: &mut Ctx<'_, TcpMsg>) {
        let elapsed = (ctx.now() - self.cr_window_start).as_secs_f64();
        let target = self.cr_interval.as_secs_f64().max(self.srtt());
        if elapsed >= target {
            self.cr = self.acked_in_window as f64 / elapsed;
            self.acked_in_window = 0;
            self.cr_window_start = ctx.now();
            self.cr_series.push(ctx.now(), self.cr);
        }
        ctx.send_self(self.cr_interval, TcpMsg::Timer(TcpTimer::CrSample));
    }
}

impl Node<TcpMsg> for TcpSource {
    fn on_event(&mut self, ctx: &mut Ctx<'_, TcpMsg>, msg: TcpMsg) {
        match msg {
            TcpMsg::Pkt(pkt) => match pkt.kind {
                PktKind::Ack { ack, ecn_echo } => self.on_ack(ctx, ack, ecn_echo),
                PktKind::Quench => self.on_quench(ctx),
                PktKind::Data { .. } => unreachable!("sender received data"),
            },
            TcpMsg::Timer(TcpTimer::Tick) => self.on_tick(ctx),
            TcpMsg::Timer(TcpTimer::Rto { gen }) => self.on_rto(ctx, gen),
            TcpMsg::Timer(TcpTimer::CrSample) => self.on_cr_sample(ctx),
            TcpMsg::Timer(t) => unreachable!("source received {t:?}"),
        }
    }

    fn save_state(&self, w: &mut phantom_sim::KvWriter) -> Result<(), String> {
        let mut cc = Ok(());
        w.scope("cc", |w| cc = self.cc.save_state(w));
        cc?;
        w.scope("rtt", |w| self.rtt.save_state(w));
        w.bool("tx_busy", self.tx_busy);
        w.bool("has_retx", self.pending_retx.is_some());
        if let Some(seq) = self.pending_retx {
            w.u64("retx", seq);
        }
        w.u64("rto_gen", self.rto_gen);
        w.bool("has_timed", self.timed.is_some());
        if let Some((end, at)) = self.timed {
            w.u64("timed_end", end);
            w.u64("timed_at", at.0);
        }
        w.f64("cr", self.cr);
        w.u64("acked_in_window", self.acked_in_window);
        w.u64("cr_window_start", self.cr_window_start.0);
        w.bool("has_quench_cut", self.last_quench_cut.is_some());
        if let Some(t) = self.last_quench_cut {
            w.u64("quench_cut", t.0);
        }
        w.scope("cw", |w| self.cwnd_series.save(w));
        w.scope("crs", |w| self.cr_series.save(w));
        w.u64("segments_sent", self.segments_sent);
        w.u64("retransmissions", self.retransmissions);
        Ok(())
    }

    fn restore_state(&mut self, r: &mut phantom_sim::KvReader) -> Result<(), String> {
        r.scope("cc", |r| self.cc.restore_state(r))?;
        r.scope("rtt", |r| self.rtt.restore_state(r))?;
        self.tx_busy = r.bool("tx_busy")?;
        self.pending_retx = if r.bool("has_retx")? {
            Some(r.u64("retx")?)
        } else {
            None
        };
        self.rto_gen = r.u64("rto_gen")?;
        self.timed = if r.bool("has_timed")? {
            Some((r.u64("timed_end")?, SimTime(r.u64("timed_at")?)))
        } else {
            None
        };
        self.cr = r.f64("cr")?;
        self.acked_in_window = r.u64("acked_in_window")?;
        self.cr_window_start = SimTime(r.u64("cr_window_start")?);
        self.last_quench_cut = if r.bool("has_quench_cut")? {
            Some(SimTime(r.u64("quench_cut")?))
        } else {
            None
        };
        r.scope("cw", |r| self.cwnd_series.restore(r))?;
        r.scope("crs", |r| self.cr_series.restore(r))?;
        self.segments_sent = r.u64("segments_sent")?;
        self.retransmissions = r.u64("retransmissions")?;
        // The serialization memo is a pure cache; recompute on demand.
        self.ser_wire = u32::MAX;
        self.ser_dur = SimDuration::ZERO;
        Ok(())
    }
}
