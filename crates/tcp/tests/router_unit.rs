//! Direct tests of the router machinery: verdict handling (drop, mark,
//! quench emission), reverse-path routing, pacing, and live capacity
//! changes.

use phantom_sim::{Ctx, Engine, Node, NodeId, SimDuration, SimTime};
use phantom_tcp::packet::{FlowId, Packet, PktKind, TcpMsg, TcpTimer};
use phantom_tcp::qdisc::{DropTail, QueueDiscipline, RouterMeasurement, Verdict};
use phantom_tcp::router::{FlowRoute, RPort, Router};
use rand::rngs::SmallRng;

#[derive(Default)]
struct Collector {
    pkts: Vec<(SimTime, Packet)>,
}

impl Node<TcpMsg> for Collector {
    fn on_event(&mut self, ctx: &mut Ctx<'_, TcpMsg>, msg: TcpMsg) {
        if let TcpMsg::Pkt(p) = msg {
            self.pkts.push((ctx.now(), p));
        }
    }
}

/// A discipline with a scripted verdict for data packets.
struct Scripted(Verdict);

impl QueueDiscipline for Scripted {
    fn on_arrival(&mut self, pkt: &Packet, _q: usize, _qb: u64, _rng: &mut SmallRng) -> Verdict {
        if pkt.is_data() {
            self.0
        } else {
            Verdict::Enqueue
        }
    }
    fn name(&self) -> &'static str {
        "scripted"
    }
}

fn build(
    verdict: Verdict,
) -> (
    Engine<TcpMsg>,
    NodeId,
    NodeId, /*fwd sink*/
    NodeId, /*bwd sink*/
) {
    let mut engine = Engine::new(5);
    let fwd_sink = engine.add_node(Collector::default());
    let bwd_sink = engine.add_node(Collector::default());
    let mut router = Router::new("r");
    let fwd_port = router.add_port(RPort::new(
        fwd_sink,
        55_200.0, // bytes/s: a 552-byte packet takes 10 ms
        SimDuration::from_millis(1),
        32,
        Box::new(Scripted(verdict)),
        SimDuration::from_millis(10),
    ));
    let bwd_port = router.add_port(RPort::new(
        bwd_sink,
        55_200.0,
        SimDuration::from_millis(1),
        32,
        Box::new(DropTail),
        SimDuration::from_millis(10),
    ));
    router.add_route(FlowId(1), FlowRoute { fwd_port, bwd_port });
    let r = engine.add_node(router);
    (engine, r, fwd_sink, bwd_sink)
}

fn data() -> Packet {
    Packet::data(FlowId(1), 0, 512, 1e6)
}

#[test]
fn enqueue_verdict_forwards_data() {
    let (mut engine, r, fwd, bwd) = build(Verdict::Enqueue);
    engine.schedule(SimTime::ZERO, r, TcpMsg::Pkt(data()));
    engine.run_until(SimTime::from_millis(100));
    assert_eq!(engine.node::<Collector>(fwd).pkts.len(), 1);
    assert!(engine.node::<Collector>(bwd).pkts.is_empty());
}

#[test]
fn drop_verdict_discards_and_counts() {
    let (mut engine, r, fwd, _) = build(Verdict::Drop);
    engine.schedule(SimTime::ZERO, r, TcpMsg::Pkt(data()));
    engine.run_until(SimTime::from_millis(100));
    assert!(engine.node::<Collector>(fwd).pkts.is_empty());
    let port = engine.node::<Router>(r).port(0);
    assert_eq!(port.policy_drops, 1);
    assert_eq!(port.total_drops(), 1);
}

#[test]
fn mark_verdict_sets_ecn_and_forwards() {
    let (mut engine, r, fwd, _) = build(Verdict::Mark);
    engine.schedule(SimTime::ZERO, r, TcpMsg::Pkt(data()));
    engine.run_until(SimTime::from_millis(100));
    let got = &engine.node::<Collector>(fwd).pkts;
    assert_eq!(got.len(), 1);
    assert!(got[0].1.ecn);
    assert_eq!(engine.node::<Router>(r).port(0).marks, 1);
}

#[test]
fn quench_verdict_delivers_and_emits_quench_backwards() {
    let (mut engine, r, fwd, bwd) = build(Verdict::Quench);
    engine.schedule(SimTime::ZERO, r, TcpMsg::Pkt(data()));
    engine.run_until(SimTime::from_millis(100));
    assert_eq!(
        engine.node::<Collector>(fwd).pkts.len(),
        1,
        "the packet itself is still delivered"
    );
    let back = &engine.node::<Collector>(bwd).pkts;
    assert_eq!(back.len(), 1, "one quench goes toward the source");
    assert!(matches!(back[0].1.kind, PktKind::Quench));
    assert_eq!(engine.node::<Router>(r).port(0).quenches_sent, 1);
}

#[test]
fn acks_ride_the_reverse_path_untouched() {
    // Even with a Drop-everything forward discipline, ACKs pass.
    let (mut engine, r, fwd, bwd) = build(Verdict::Drop);
    engine.schedule(
        SimTime::ZERO,
        r,
        TcpMsg::Pkt(Packet::ack(FlowId(1), 512, true)),
    );
    engine.run_until(SimTime::from_millis(100));
    assert!(engine.node::<Collector>(fwd).pkts.is_empty());
    let back = &engine.node::<Collector>(bwd).pkts;
    assert_eq!(back.len(), 1);
    assert!(matches!(
        back[0].1.kind,
        PktKind::Ack {
            ack: 512,
            ecn_echo: true
        }
    ));
}

#[test]
fn set_rate_changes_serialization_spacing() {
    let (mut engine, r, fwd, _) = build(Verdict::Enqueue);
    // Two packets at the initial rate: 552 bytes / 55 200 B/s = 10 ms.
    engine.schedule(SimTime::ZERO, r, TcpMsg::Pkt(data()));
    engine.schedule(SimTime::ZERO, r, TcpMsg::Pkt(data()));
    // Double the capacity at t = 50 ms, then two more packets.
    engine.schedule(
        SimTime::from_millis(50),
        r,
        TcpMsg::Timer(TcpTimer::SetRate {
            port: 0,
            bps: 110_400.0,
        }),
    );
    engine.schedule(SimTime::from_millis(60), r, TcpMsg::Pkt(data()));
    engine.schedule(SimTime::from_millis(60), r, TcpMsg::Pkt(data()));
    engine.run_until(SimTime::from_millis(200));
    let t: Vec<u64> = engine
        .node::<Collector>(fwd)
        .pkts
        .iter()
        .map(|(t, _)| t.as_nanos())
        .collect();
    assert_eq!(t.len(), 4);
    assert_eq!(t[1] - t[0], 10_000_000, "old rate: 10 ms apart");
    assert_eq!(t[3] - t[2], 5_000_000, "doubled rate: 5 ms apart");
}

#[test]
fn measurement_counts_arrival_bytes_including_drops() {
    let (mut engine, r, _, _) = build(Verdict::Drop);
    for i in 0..5 {
        engine.schedule(SimTime::from_millis(i), r, TcpMsg::Pkt(data()));
    }
    engine.run_until(SimTime::from_millis(9));
    // trigger the measurement by hand through the timer path
    engine.schedule(
        SimTime::from_millis(10),
        r,
        TcpMsg::Timer(TcpTimer::Measure { port: 0 }),
    );
    engine.run_until(SimTime::from_millis(11));
    let port = engine.node::<Router>(r).port(0);
    // 5 dropped packets of 552 bytes still count as offered load; the
    // throughput trace has one sample with zero departures.
    assert_eq!(port.policy_drops, 5);
    assert_eq!(port.throughput_series.len(), 1);
    assert_eq!(port.throughput_series.values()[0], 0.0);
}

/// RouterMeasurement plumbing sanity (direct, no engine).
#[test]
fn scripted_discipline_sees_only_data() {
    let mut s = Scripted(Verdict::Drop);
    let mut rng = <SmallRng as rand::SeedableRng>::seed_from_u64(0);
    assert_eq!(s.on_arrival(&data(), 0, 0, &mut rng), Verdict::Drop);
    assert_eq!(
        s.on_arrival(&Packet::ack(FlowId(1), 0, false), 0, 0, &mut rng),
        Verdict::Enqueue
    );
    let _ = RouterMeasurement {
        dt: 1.0,
        arrival_bytes: 0,
        departure_bytes: 0,
        queue_pkts: 0,
        queue_bytes: 0,
        capacity: 1.0,
    };
}
