//! End-to-end TCP tests: Reno over real routers. These pin substrate
//! correctness (reliable delivery, sane throughput) and the qualitative
//! behaviors the paper's Section 4 builds on.

use phantom_sim::{Engine, SimDuration, SimTime};
use phantom_tcp::network::{mbps_to_bps, TrunkIdx};
use phantom_tcp::qdisc::{DropTail, QueueDiscipline, Red, SelectiveDiscard};
use phantom_tcp::{TcpMsg, TcpNetwork, TcpNetworkBuilder};

/// Two routers, one 10 Mb/s / 1 ms trunk, `n` flows.
fn dumbbell(
    n: usize,
    qdisc: &mut dyn FnMut() -> Box<dyn QueueDiscipline>,
    seed: u64,
    secs: f64,
) -> (Engine<TcpMsg>, TcpNetwork) {
    let mut b = TcpNetworkBuilder::new();
    let r1 = b.router("r1");
    let r2 = b.router("r2");
    b.trunk(r1, r2, 10.0, SimDuration::from_millis(1));
    for _ in 0..n {
        b.flow(&[r1, r2], SimTime::ZERO);
    }
    let mut engine = Engine::new(seed);
    let net = b.build(&mut engine, qdisc);
    engine.run_until(SimTime::from_secs_f64(secs));
    (engine, net)
}

#[test]
fn single_flow_fills_the_bottleneck() {
    let (engine, net) = dumbbell(1, &mut || Box::new(DropTail), 1, 5.0);
    let goodput = net.flow_mean_goodput(&engine, 0);
    let capacity = mbps_to_bps(10.0);
    // payload efficiency is 512/552, so ~9.27 Mb/s of goodput max
    assert!(
        goodput > 0.80 * capacity,
        "goodput {:.2} Mb/s too low",
        goodput * 8.0 / 1e6
    );
    assert!(goodput <= capacity);
}

#[test]
fn delivery_is_reliable_and_in_order() {
    let (engine, net) = dumbbell(2, &mut || Box::new(DropTail), 2, 5.0);
    for f in 0..2 {
        let sink = net.sink(&engine, f);
        let src = net.source(&engine, f);
        // Everything acked was delivered in order; the sender made progress.
        assert!(sink.bytes_delivered > 1_000_000, "flow {f} barely moved");
        assert_eq!(sink.bytes_delivered % 512, 0);
        assert!(src.cc().snd_una() <= sink.bytes_delivered);
        // Drop-tail on an overloaded trunk must have caused losses and
        // recoveries (otherwise the test isn't exercising recovery).
        assert!(
            src.cc_stats().fast_retransmits + src.cc_stats().timeouts > 0,
            "flow {f} never saw a loss — trunk not saturated?"
        );
    }
}

#[test]
fn two_equal_flows_share_drop_tail_roughly() {
    let (engine, net) = dumbbell(2, &mut || Box::new(DropTail), 3, 10.0);
    let g0 = net.flow_mean_goodput(&engine, 0);
    let g1 = net.flow_mean_goodput(&engine, 1);
    let total = (g0 + g1) * 8.0 / 1e6;
    assert!(total > 8.0, "aggregate goodput {total:.1} Mb/s too low");
    let jain = phantom_metrics::jain_index(&[g0, g1]);
    assert!(
        jain > 0.85,
        "equal-RTT flows wildly unfair: {g0:.0} vs {g1:.0}"
    );
}

#[test]
fn rtt_bias_under_drop_tail_and_its_removal_by_selective_discard() {
    // One short-RTT flow (0.1 ms access) vs one long-RTT flow (25 ms
    // access) through the same 10 Mb/s trunk. Drop-tail favors the short
    // flow; Selective Discard should pull the allocation toward equality.
    let build = |qdisc: &mut dyn FnMut() -> Box<dyn QueueDiscipline>, seed| {
        let mut b = TcpNetworkBuilder::new();
        let r1 = b.router("r1");
        let r2 = b.router("r2");
        b.trunk(r1, r2, 10.0, SimDuration::from_millis(1));
        b.flow(&[r1, r2], SimTime::ZERO);
        b.flow(&[r1, r2], SimTime::ZERO);
        b.last_flow_access_prop(SimDuration::from_millis(25));
        let mut engine = Engine::new(seed);
        let net = b.build(&mut engine, qdisc);
        engine.run_until(SimTime::from_secs(20));
        // steady-state goodput (skip the first half: slow-start transient
        // of the long-RTT flow)
        let g0 = net.flow_goodput(&engine, 0).mean_after(10.0);
        let g1 = net.flow_goodput(&engine, 1).mean_after(10.0);
        (g0, g1)
    };
    let (dt_short, dt_long) = build(&mut || Box::new(DropTail), 4);
    let (sd_short, sd_long) = build(&mut || Box::new(SelectiveDiscard::paper()), 4);
    let dt_ratio = dt_short / dt_long.max(1.0);
    let sd_ratio = sd_short / sd_long.max(1.0);
    assert!(
        dt_ratio > 3.0,
        "drop-tail should favor the short-RTT flow, ratio {dt_ratio:.2}"
    );
    assert!(
        sd_ratio < 3.0 && sd_ratio < dt_ratio * 0.6,
        "selective discard should shrink the bias: {sd_ratio:.2} vs {dt_ratio:.2}"
    );
}

#[test]
fn red_bounds_the_queue_below_drop_tail() {
    let (e1, n1) = dumbbell(4, &mut || Box::new(DropTail), 5, 10.0);
    let (e2, n2) = dumbbell(4, &mut || Box::new(Red::recommended()), 5, 10.0);
    let q_dt = n1.trunk_queue(&e1, TrunkIdx(0)).mean_after(2.0);
    let q_red = n2.trunk_queue(&e2, TrunkIdx(0)).mean_after(2.0);
    assert!(
        q_red < q_dt,
        "RED mean queue {q_red:.1} should undercut drop-tail {q_dt:.1}"
    );
}

#[test]
fn selective_discard_keeps_high_utilization() {
    let (engine, net) = dumbbell(2, &mut || Box::new(SelectiveDiscard::paper()), 6, 10.0);
    let total: f64 = (0..2).map(|f| net.flow_mean_goodput(&engine, f)).sum();
    let util = total / mbps_to_bps(10.0);
    // u=5 with n=2 predicts ~91% raw utilization at the rate cap, but TCP
    // rides a sawtooth *below* the cap (each discard halves the window),
    // and goodput also pays header overhead (512/552 ≈ 0.93). Expect the
    // sawtooth average to stay above 55%.
    assert!(util > 0.55, "utilization {util:.2} too low");
}

#[test]
fn quench_mechanism_cuts_windows_without_heavy_loss() {
    use phantom_tcp::qdisc::SelectiveQuench;
    let (engine, net) = dumbbell(2, &mut || Box::new(SelectiveQuench::paper()), 7, 10.0);
    let mut cuts = 0;
    for f in 0..2 {
        cuts += net.source(&engine, f).cc_stats().quench_cuts;
    }
    assert!(cuts > 0, "no quench ever took effect");
    let port = net.trunk_port(&engine, TrunkIdx(0));
    assert_eq!(port.policy_drops, 0, "quench mode must not policy-drop");
    assert!(port.quenches_sent > 0);
}

#[test]
fn ecn_marking_freezes_growth_and_avoids_drops() {
    use phantom_tcp::qdisc::EfciMark;
    let (engine, net) = dumbbell(2, &mut || Box::new(EfciMark::paper()), 8, 10.0);
    let port = net.trunk_port(&engine, TrunkIdx(0));
    assert!(port.marks > 0, "nothing was ever marked");
    assert_eq!(port.policy_drops, 0);
    let total: f64 = (0..2).map(|f| net.flow_mean_goodput(&engine, f)).sum();
    assert!(total * 8.0 / 1e6 > 5.0, "marking collapsed throughput");
}

#[test]
fn deterministic_tcp_runs() {
    let run = |seed| {
        let (engine, net) = dumbbell(3, &mut || Box::new(Red::recommended()), seed, 3.0);
        let g: Vec<f64> = (0..3).map(|f| net.flow_mean_goodput(&engine, f)).collect();
        (g, engine.events_processed())
    };
    let (g1, e1) = run(9);
    let (g2, e2) = run(9);
    assert_eq!(g1, g2);
    assert_eq!(e1, e2);
    let (g3, _) = run(10);
    assert_ne!(g1, g3, "different seeds should differ (RED randomness)");
}

#[test]
fn delayed_acks_halve_the_ack_stream_without_hurting_goodput() {
    let run = |delayed: bool| {
        let mut b = TcpNetworkBuilder::new();
        if delayed {
            b = b.delayed_ack(SimDuration::from_millis(100));
        }
        let r1 = b.router("r1");
        let r2 = b.router("r2");
        b.trunk(r1, r2, 10.0, SimDuration::from_millis(1));
        b.flow(&[r1, r2], SimTime::ZERO);
        let mut engine = Engine::new(30);
        let net = b.build(&mut engine, &mut || Box::new(DropTail));
        engine.run_until(SimTime::from_secs(5));
        let segments = net.sink(&engine, 0).segments_received;
        // ACKs traverse the reverse trunk port: count its departures via
        // the source's received feedback instead — use cwnd samples as a
        // proxy for acks processed (one sample per ack).
        let acks = net.source(&engine, 0).cwnd_series.len() as u64;
        let goodput = net.flow_mean_goodput(&engine, 0) * 8.0 / 1e6;
        (segments, acks, goodput)
    };
    let (seg_p, acks_p, good_p) = run(false);
    let (seg_d, acks_d, good_d) = run(true);
    // Per-packet mode: one ack per segment (roughly).
    assert!(
        acks_p as f64 > 0.9 * seg_p as f64,
        "per-packet: {acks_p} acks for {seg_p} segments"
    );
    // Delayed mode: about half the acks.
    assert!(
        (acks_d as f64) < 0.65 * seg_d as f64,
        "delayed: {acks_d} acks for {seg_d} segments"
    );
    // Goodput stays within 20% (slower slow start is expected).
    assert!(
        good_d > 0.8 * good_p,
        "delayed acks hurt goodput too much: {good_d:.2} vs {good_p:.2} Mb/s"
    );
}

#[test]
fn delayed_acks_preserve_fast_retransmit() {
    // Overload with delayed ACKs: losses must still be recovered by fast
    // retransmit (out-of-order arrivals are ACKed immediately), not only
    // by timeouts.
    let mut b = TcpNetworkBuilder::new().delayed_ack(SimDuration::from_millis(100));
    let r1 = b.router("r1");
    let r2 = b.router("r2");
    b.trunk(r1, r2, 10.0, SimDuration::from_millis(1));
    for _ in 0..2 {
        b.flow(&[r1, r2], SimTime::ZERO);
    }
    let mut engine = Engine::new(31);
    let net = b.build(&mut engine, &mut || Box::new(DropTail));
    engine.run_until(SimTime::from_secs(10));
    let mut fast = 0;
    for f in 0..2 {
        fast += net.source(&engine, f).cc_stats().fast_retransmits;
        let sink = net.sink(&engine, f);
        assert!(sink.bytes_delivered > 1_000_000, "flow {f} stalled");
    }
    assert!(fast > 0, "fast retransmit must survive delayed ACKs");
}
