//! Property-based tests of the TCP substrate's pure state machines.

use phantom_sim::SimDuration;
use phantom_tcp::qdisc::{RedConfig, RedCore};
use phantom_tcp::reno::Reno;
use phantom_tcp::rtt::RttEstimator;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Arbitrary event stream for the Reno machine.
#[derive(Clone, Debug)]
enum Ev {
    /// Send as much as the window allows.
    Send,
    /// ACK up to a fraction of what is outstanding (may be duplicate).
    Ack { frac: f64, ecn: bool },
    /// Retransmission timeout.
    Timeout,
    /// Source quench.
    Quench,
}

fn arb_ev() -> impl Strategy<Value = Ev> {
    prop_oneof![
        3 => Just(Ev::Send),
        4 => (0.0f64..1.2, any::<bool>()).prop_map(|(frac, ecn)| Ev::Ack { frac, ecn }),
        1 => Just(Ev::Timeout),
        1 => Just(Ev::Quench),
    ]
}

proptest! {
    /// Core Reno invariants hold under arbitrary event interleavings:
    /// windows bounded below, sequence numbers ordered and monotone.
    #[test]
    fn reno_invariants(evs in proptest::collection::vec(arb_ev(), 1..400)) {
        let mss = 512u32;
        let mut r = Reno::new(mss, 1000.0);
        let mut last_una = 0u64;
        for ev in evs {
            match ev {
                Ev::Send => {
                    while r.can_send() {
                        let seq = r.take_segment();
                        prop_assert_eq!(seq % u64::from(mss), 0);
                    }
                }
                Ev::Ack { frac, ecn } => {
                    let flight = r.flight();
                    let acked = ((flight as f64 * frac) as u64) / u64::from(mss) * u64::from(mss);
                    let ack = r.snd_una() + acked;
                    let res = r.on_ack(ack, ecn);
                    if let Some(seq) = res.retransmit {
                        prop_assert_eq!(seq, r.snd_una());
                    }
                }
                Ev::Timeout => r.on_timeout(),
                Ev::Quench => r.on_quench(),
            }
            prop_assert!(r.cwnd() >= 1.0, "cwnd collapsed below 1");
            prop_assert!(r.ssthresh() >= 2.0, "ssthresh below 2");
            prop_assert!(r.snd_una() <= r.snd_nxt(), "una passed nxt");
            prop_assert!(r.snd_una() >= last_una, "snd_una went backwards");
            prop_assert!(r.cwnd() <= 1000.0 + 1e-9, "cwnd cap violated");
            last_una = r.snd_una();
        }
    }

    /// An ACK beyond snd_nxt (misbehaving receiver) still cannot break
    /// ordering invariants.
    #[test]
    fn reno_tolerates_wild_acks(acks in proptest::collection::vec(0u64..1_000_000, 1..100)) {
        let mut r = Reno::new(512, 100.0);
        while r.can_send() {
            r.take_segment();
        }
        for ack in acks {
            r.on_ack(ack, false);
            prop_assert!(r.snd_una() <= r.snd_nxt());
        }
    }

    /// RTO stays within configured bounds for arbitrary samples and
    /// backoffs, and srtt stays within the range of observed samples.
    #[test]
    fn rtt_estimator_bounded(
        samples in proptest::collection::vec((0.0f64..10.0, 0u8..4), 1..200),
    ) {
        let mut e = RttEstimator::new(
            SimDuration::from_millis(50),
            SimDuration::from_secs(4),
        );
        let mut lo = f64::INFINITY;
        let mut hi = 0.0f64;
        for (s, backoffs) in samples {
            e.sample(s);
            lo = lo.min(s);
            hi = hi.max(s);
            prop_assert!(e.srtt() >= lo - 1e-9 && e.srtt() <= hi + 1e-9);
            for _ in 0..backoffs {
                e.back_off();
            }
            let rto = e.rto();
            prop_assert!(rto >= SimDuration::from_millis(50));
            prop_assert!(rto <= SimDuration::from_secs(4));
        }
    }

    /// The RED average is a convex combination of observed queue lengths:
    /// it never leaves [0, max_observed].
    #[test]
    fn red_average_bounded(queues in proptest::collection::vec(0usize..5000, 1..500)) {
        let mut core = RedCore::new(RedConfig::default());
        let mut rng = SmallRng::seed_from_u64(9);
        let mut hi = 0usize;
        for q in queues {
            hi = hi.max(q);
            core.decide(q, &mut rng);
            prop_assert!(core.avg() >= 0.0);
            prop_assert!(core.avg() <= hi as f64 + 1e-9);
        }
    }

    /// Below min_th RED never drops; above max_th (long enough to drive
    /// the average there) it always drops.
    #[test]
    fn red_threshold_regions(seed in any::<u64>()) {
        let cfg = RedConfig::default();
        let mut core = RedCore::new(cfg);
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..1000 {
            prop_assert!(!core.decide(5, &mut rng), "dropped below min_th");
        }
        for _ in 0..5000 {
            core.decide(200, &mut rng);
        }
        prop_assert!(core.decide(200, &mut rng), "must drop above max_th");
    }
}

mod vegas_props {
    use super::*;
    use phantom_tcp::cc::CongestionControl;
    use phantom_tcp::vegas::{Vegas, VegasConfig};

    #[derive(Clone, Debug)]
    enum VEv {
        Send,
        Ack(f64),
        Rtt(f64),
        Timeout,
        Quench,
    }

    fn arb_vev() -> impl Strategy<Value = VEv> {
        prop_oneof![
            3 => Just(VEv::Send),
            4 => (0.0f64..1.2).prop_map(VEv::Ack),
            3 => (0.001f64..2.0).prop_map(VEv::Rtt),
            1 => Just(VEv::Timeout),
            1 => Just(VEv::Quench),
        ]
    }

    proptest! {
        /// Vegas invariants under arbitrary interleavings: window floors
        /// at 2 segments, sequence numbers stay ordered and monotone,
        /// baseRTT is the minimum of the samples fed.
        #[test]
        fn vegas_invariants(evs in proptest::collection::vec(arb_vev(), 1..400)) {
            let mss = 512u32;
            let mut v = Vegas::new(mss, VegasConfig::default());
            let mut last_una = 0u64;
            let mut min_rtt = f64::INFINITY;
            for ev in evs {
                match ev {
                    VEv::Send => {
                        while v.can_send() {
                            v.take_segment();
                        }
                    }
                    VEv::Ack(frac) => {
                        let flight = v.snd_nxt() - v.snd_una();
                        let acked =
                            ((flight as f64 * frac) as u64) / u64::from(mss) * u64::from(mss);
                        v.on_ack(v.snd_una() + acked, false);
                    }
                    VEv::Rtt(r) => {
                        v.on_rtt_sample(r);
                        min_rtt = min_rtt.min(r);
                        prop_assert!((v.base_rtt() - min_rtt).abs() < 1e-12);
                    }
                    VEv::Timeout => v.on_timeout(),
                    VEv::Quench => v.on_quench(),
                }
                prop_assert!(v.cwnd() >= 2.0 - 1e-9, "vegas floor is 2 segments");
                prop_assert!(v.cwnd() <= VegasConfig::default().max_cwnd + 1e-9);
                prop_assert!(v.snd_una() <= v.snd_nxt());
                prop_assert!(v.snd_una() >= last_una);
                last_una = v.snd_una();
            }
        }

        /// Once out of slow start, one RTT sample moves the window by at
        /// most one segment in either direction (Vegas's defining
        /// gentleness), for any RTT sequence.
        #[test]
        fn vegas_moves_at_most_one_segment_per_rtt(
            rtts in proptest::collection::vec(0.005f64..2.0, 1..100),
        ) {
            let mut v = Vegas::new(512, VegasConfig::default());
            v.on_rtt_sample(0.01); // base
            v.on_rtt_sample(10.0); // diff >> gamma: exits slow start
            v.on_rtt_sample(10.0);
            for rtt in rtts {
                let before = v.cwnd();
                v.on_rtt_sample(rtt);
                prop_assert!(
                    (v.cwnd() - before).abs() <= 1.0 + 1e-9,
                    "window jumped {} -> {}",
                    before,
                    v.cwnd()
                );
            }
        }
    }
}
