//! Embed the git revision so run artifacts can carry provenance. The
//! build must keep working from a source tarball, so failure to run git
//! degrades to "unknown" rather than breaking the build.

use std::process::Command;

fn main() {
    let rev = Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string());
    println!("cargo:rustc-env=PHANTOM_GIT_REV={rev}");
    println!("cargo:rerun-if-changed=../../.git/HEAD");
}
