//! Property-based tests of the fairness mathematics: the max-min
//! water-filler must produce feasible, cap-respecting, bottlenecked
//! allocations on arbitrary topologies — the reference every experiment
//! is judged against.

use phantom_metrics::fairness::Session;
use phantom_metrics::{jain_index, phantom_prediction, weighted_max_min};
use proptest::prelude::*;

/// Random topology: up to 5 links, up to 8 sessions with random paths,
/// weights and caps.
fn arb_topology() -> impl Strategy<Value = (Vec<f64>, Vec<Session>)> {
    let caps = proptest::collection::vec(1.0f64..100.0, 1..5);
    caps.prop_flat_map(|caps| {
        let nlinks = caps.len();
        let session = (
            proptest::collection::btree_set(0..nlinks, 1..=nlinks),
            0.5f64..4.0,
            prop_oneof![Just(f64::INFINITY), 0.5f64..50.0],
        )
            .prop_map(|(path, w, cap)| Session::on(path.into_iter().collect()).weight(w).cap(cap));
        (Just(caps), proptest::collection::vec(session, 1..8))
    })
}

proptest! {
    /// Feasibility: no link carries more than its capacity; no session
    /// exceeds its cap; all rates are non-negative.
    #[test]
    fn max_min_is_feasible((caps, sessions) in arb_topology()) {
        let rates = weighted_max_min(&caps, &sessions);
        prop_assert_eq!(rates.len(), sessions.len());
        let mut load = vec![0.0; caps.len()];
        for (r, s) in rates.iter().zip(&sessions) {
            prop_assert!(*r >= -1e-9);
            prop_assert!(*r <= s.cap + 1e-6 * s.cap.min(1e12));
            for &l in &s.path {
                load[l] += r;
            }
        }
        for (l, (&used, &cap)) in load.iter().zip(&caps).enumerate() {
            prop_assert!(used <= cap + 1e-6 * cap.max(1.0), "link {l} overloaded: {used} > {cap}");
        }
    }

    /// Bottleneck property: every session is either at its cap or
    /// crosses at least one (approximately) saturated link.
    #[test]
    fn every_session_is_bottlenecked((caps, sessions) in arb_topology()) {
        let rates = weighted_max_min(&caps, &sessions);
        let mut load = vec![0.0; caps.len()];
        for (r, s) in rates.iter().zip(&sessions) {
            for &l in &s.path {
                load[l] += r;
            }
        }
        for (i, s) in sessions.iter().enumerate() {
            let at_cap = s.cap.is_finite() && rates[i] >= s.cap - 1e-6 * s.cap;
            let at_link = s
                .path
                .iter()
                .any(|&l| load[l] >= caps[l] - 1e-6 * caps[l].max(1.0));
            prop_assert!(
                at_cap || at_link,
                "session {i} (rate {}) has slack everywhere",
                rates[i]
            );
        }
    }

    /// Scale invariance: multiplying all capacities and caps by k scales
    /// every rate by k.
    #[test]
    fn max_min_scales_linearly((caps, sessions) in arb_topology(), k in 0.1f64..10.0) {
        let base = weighted_max_min(&caps, &sessions);
        let caps2: Vec<f64> = caps.iter().map(|c| c * k).collect();
        let sessions2: Vec<Session> = sessions
            .iter()
            .map(|s| {
                Session::on(s.path.clone())
                    .weight(s.weight)
                    .cap(s.cap * k)
            })
            .collect();
        let scaled = weighted_max_min(&caps2, &sessions2);
        for (a, b) in base.iter().zip(&scaled) {
            prop_assert!((a * k - b).abs() < 1e-6 * (a * k).max(1.0));
        }
    }

    /// The phantom prediction is itself feasible and never allocates the
    /// real sessions more than the plain (uncapped) max-min total.
    #[test]
    fn phantom_prediction_feasible((caps, sessions) in arb_topology(), u in 1.0f64..20.0) {
        let (rates, macrs) = phantom_prediction(&caps, &sessions, u);
        prop_assert_eq!(rates.len(), sessions.len());
        prop_assert_eq!(macrs.len(), caps.len());
        let mut load = vec![0.0; caps.len()];
        for (r, s) in rates.iter().zip(&sessions) {
            for &l in &s.path {
                load[l] += r;
            }
        }
        for (l, &m) in macrs.iter().enumerate() {
            prop_assert!(m >= -1e-9);
            // real load + this link's phantom never exceeds capacity
            prop_assert!(load[l] + m <= caps[l] + 1e-6 * caps[l].max(1.0));
        }
    }

    /// Jain's index is always in [0, 1] and exactly 1 for equal rates.
    #[test]
    fn jain_in_unit_interval(rates in proptest::collection::vec(0.0f64..1e6, 1..50)) {
        let j = jain_index(&rates);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&j));
    }

    #[test]
    fn jain_of_equal_rates_is_one(n in 1usize..50, v in 0.1f64..1e6) {
        let rates = vec![v; n];
        prop_assert!((jain_index(&rates) - 1.0).abs() < 1e-9);
    }
}
