//! # phantom-metrics — fairness, convergence and reporting
//!
//! Everything the paper's evaluation measures, reusable across the ATM and
//! TCP experiments:
//!
//! * [`fairness`] — Jain's fairness index and a (weighted) max-min
//!   water-filling reference allocator, including the *phantom prediction*:
//!   the fixed point the Phantom algorithm should converge to, obtained by
//!   adding one imaginary session of weight `1/u` to every link.
//! * [`convergence`] — convergence-time detection on rate traces and
//!   steady-state oscillation measurement.
//! * [`series`] — resampling and smoothing helpers for recorded traces.
//! * [`report`] — structured experiment results and their ASCII/CSV
//!   rendering, used by the `repro` binary to "print" each figure.
//! * [`bench_record`] — the machine-readable `BENCH_phantom.json` schema
//!   (runs/sec, events/sec, per-run wall time) the `repro` harness emits.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench_record;
pub mod convergence;
pub mod fairness;
pub mod report;
pub mod series;

pub use bench_record::{BenchRecord, RunRecord};
pub use convergence::{convergence_time, oscillation_amplitude};
pub use fairness::{
    jain_index, max_min_fair, normalized_jain_index, phantom_prediction, weighted_max_min,
};
pub use report::{aggregate_runs, ExperimentResult, Table};
