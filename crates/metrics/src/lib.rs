//! # phantom-metrics — fairness, convergence and reporting
//!
//! Everything the paper's evaluation measures, reusable across the ATM and
//! TCP experiments:
//!
//! * [`fairness`] — Jain's fairness index and a (weighted) max-min
//!   water-filling reference allocator, including the *phantom prediction*:
//!   the fixed point the Phantom algorithm should converge to, obtained by
//!   adding one imaginary session of weight `1/u` to every link.
//! * [`convergence`] — convergence-time detection on rate traces and
//!   steady-state oscillation measurement.
//! * [`series`] — resampling and smoothing helpers for recorded traces.
//! * [`report`] — structured experiment results and their ASCII/CSV
//!   rendering, used by the `repro` binary to "print" each figure.
//! * [`bench_record`] — the machine-readable `BENCH_phantom.json` schema
//!   (runs/sec, events/sec, per-run wall time and health telemetry) the
//!   `repro` harness emits.
//! * [`loghist`] — HDR-style log-bucketed integer histogram for queue
//!   occupancies (bounded relative error, constant memory).
//! * [`registry`] — named counters/gauges/histograms that nodes register
//!   into, exported per run as a Prometheus-style text snapshot and a
//!   JSON summary.
//! * [`manifest`] — the provenance manifest (scenario, seed, config
//!   hash, git rev, schema version) embedded in every artifact.
//! * [`profile_record`] — the `phantom-profile/1` artifact wrapping the
//!   engine's in-run profiler report (`phantom run --profile`).
//! * [`status`] — live run-status files (`phantom-status/1`), rewritten
//!   atomically every heartbeat for `phantom status` to poll.
//! * [`json`] — the hand-rolled JSON emission helpers all of the above
//!   share (the workspace builds without serde).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench_record;
pub mod convergence;
pub mod fairness;
pub mod json;
pub mod loghist;
pub mod manifest;
pub mod profile_record;
pub mod registry;
pub mod report;
pub mod series;
pub mod status;

pub use bench_record::{BenchRecord, RunRecord, ScaleRecord, ShardScalePoint};
pub use convergence::{convergence_time, oscillation_amplitude};
pub use fairness::{
    jain_index, max_min_fair, normalized_jain_index, phantom_prediction, weighted_max_min,
};
pub use loghist::LogHistogram;
pub use manifest::{fnv1a_64, Manifest};
pub use profile_record::ProfileRecord;
pub use registry::{
    CounterHandle, GaugeHandle, HistogramHandle, Registry, PROMETHEUS_CONTENT_TYPE,
};
pub use report::{aggregate_runs, ExperimentResult, Table};
pub use status::{write_atomic, RunStatus};
