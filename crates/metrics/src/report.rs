//! Structured experiment results and their textual rendering.
//!
//! Every scenario runner returns an [`ExperimentResult`]: named traces
//! (the lines of the paper's figure) plus scalar summary metrics. The
//! `repro` binary renders results as ASCII — a metric block, a downsampled
//! series table, and a coarse line chart — and can dump the raw traces to
//! CSV for real plotting.

use phantom_sim::stats::TimeSeries;
use phantom_sim::trace::{downsample, write_long_csv_with_manifest};
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// The outcome of one experiment (one paper figure).
#[derive(Debug, Default)]
pub struct ExperimentResult {
    /// Experiment id, e.g. "fig9".
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Named traces: the lines of the figure.
    pub series: Vec<(String, TimeSeries)>,
    /// Scalar summary metrics, e.g. ("convergence_time_ms", 23.0).
    pub metrics: Vec<(String, f64)>,
    /// Free-form notes (assumptions, expected shape).
    pub notes: Vec<String>,
}

impl ExperimentResult {
    /// A new, empty result.
    pub fn new(id: &str, title: &str) -> Self {
        ExperimentResult {
            id: id.to_string(),
            title: title.to_string(),
            ..Default::default()
        }
    }

    /// Attach a trace.
    pub fn add_series(&mut self, name: &str, ts: TimeSeries) {
        self.series.push((name.to_string(), ts));
    }

    /// Attach a scalar metric.
    pub fn add_metric(&mut self, name: &str, v: f64) {
        self.metrics.push((name.to_string(), v));
    }

    /// Attach a note.
    pub fn add_note(&mut self, s: &str) {
        self.notes.push(s.to_string());
    }

    /// Look up a metric by name.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Look up a series by name.
    pub fn get_series(&self, name: &str) -> Option<&TimeSeries> {
        self.series
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, ts)| ts)
    }

    /// Render the result as a terminal-friendly report. `steps` controls
    /// the downsampling of each trace (0 to omit the series table).
    pub fn render(&self, steps: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        for n in &self.notes {
            let _ = writeln!(out, "   note: {n}");
        }
        let width = self.metrics.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        for (n, v) in &self.metrics {
            let _ = writeln!(out, "   {n:width$} = {v:.4}");
        }
        if steps > 0 {
            for (name, ts) in &self.series {
                let _ = writeln!(out, "   -- {name} ({} samples) --", ts.len());
                let _ = writeln!(out, "{}", ascii_chart(ts, steps, 12));
            }
        }
        out
    }

    /// Dump all traces to `dir/<id>.csv` in long format.
    pub fn write_csv(&self, dir: &Path) -> io::Result<()> {
        self.write_csv_with_manifest(dir, None)
    }

    /// [`Self::write_csv`], embedding a `# manifest: {json}` provenance
    /// comment as the first line when given.
    pub fn write_csv_with_manifest(
        &self,
        dir: &Path,
        manifest_json: Option<&str>,
    ) -> io::Result<()> {
        let refs: Vec<(&str, &TimeSeries)> =
            self.series.iter().map(|(n, ts)| (n.as_str(), ts)).collect();
        write_long_csv_with_manifest(&dir.join(format!("{}.csv", self.id)), &refs, manifest_json)
    }
}

/// Render a trace as a coarse ASCII line chart: `cols` time steps wide,
/// `rows` value levels tall, with axis annotations.
pub fn ascii_chart(ts: &TimeSeries, cols: usize, rows: usize) -> String {
    let pts = downsample(ts, cols);
    if pts.is_empty() || rows == 0 {
        return String::from("      (no data)");
    }
    let vmin = pts.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
    let vmax = pts.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
    let span = (vmax - vmin).max(f64::MIN_POSITIVE);
    let mut grid = vec![vec![b' '; pts.len()]; rows];
    for (x, &(_, v)) in pts.iter().enumerate() {
        let y = ((v - vmin) / span * (rows - 1) as f64).round() as usize;
        grid[rows - 1 - y][x] = b'*';
    }
    let mut out = String::new();
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{vmax:10.2}")
        } else if i == rows - 1 {
            format!("{vmin:10.2}")
        } else {
            " ".repeat(10)
        };
        let _ = writeln!(out, "   {label} |{}", String::from_utf8_lossy(row));
    }
    let _ = writeln!(out, "   {:10} +{}", "", "-".repeat(pts.len()));
    let _ = writeln!(
        out,
        "   {:10}  t: {:.4}s .. {:.4}s",
        "",
        pts[0].0,
        pts.last().unwrap().0
    );
    out
}

/// A comparison table (for the paper-style algorithm comparisons).
#[derive(Debug, Default)]
pub struct Table {
    /// Table id, e.g. "table1".
    pub id: String,
    /// Title line.
    pub title: String,
    /// Column headers (first column is the row label).
    pub headers: Vec<String>,
    /// Rows: label + one value per remaining header.
    pub rows: Vec<(String, Vec<f64>)>,
}

impl Table {
    /// A new table with the given headers.
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Self {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn add_row(&mut self, label: &str, values: Vec<f64>) {
        assert_eq!(
            values.len() + 1,
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push((label.to_string(), values));
    }

    /// Fetch a cell by row label and column header.
    pub fn cell(&self, row: &str, col: &str) -> Option<f64> {
        let ci = self.headers.iter().position(|h| h == col)?;
        let (_, vals) = self.rows.iter().find(|(l, _)| l == row)?;
        vals.get(ci - 1).copied()
    }

    /// Render as aligned ASCII.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        let label_w = self
            .rows
            .iter()
            .map(|(l, _)| l.len())
            .chain(std::iter::once(self.headers[0].len()))
            .max()
            .unwrap_or(8);
        let col_w = 14usize;
        let _ = write!(out, "   {:label_w$}", self.headers[0]);
        for h in &self.headers[1..] {
            let _ = write!(out, " {h:>col_w$}");
        }
        let _ = writeln!(out);
        for (label, vals) in &self.rows {
            let _ = write!(out, "   {label:label_w$}");
            for v in vals {
                let _ = write!(out, " {v:>col_w$.4}");
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Write the table as CSV to `dir/<id>.csv`.
    pub fn write_csv(&self, dir: &Path) -> io::Result<()> {
        self.write_csv_with_manifest(dir, None)
    }

    /// [`Self::write_csv`], embedding a `# manifest: {json}` provenance
    /// comment as the first line when given.
    pub fn write_csv_with_manifest(
        &self,
        dir: &Path,
        manifest_json: Option<&str>,
    ) -> io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let mut body = String::new();
        if let Some(m) = manifest_json {
            let _ = writeln!(body, "# manifest: {m}");
        }
        body.push_str(&self.headers.join(","));
        body.push('\n');
        for (label, vals) in &self.rows {
            body.push_str(label);
            for v in vals {
                let _ = write!(body, ",{v}");
            }
            body.push('\n');
        }
        std::fs::write(dir.join(format!("{}.csv", self.id)), body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phantom_sim::SimTime;

    fn trace() -> TimeSeries {
        let mut ts = TimeSeries::new();
        for i in 0..50u64 {
            ts.push(
                SimTime::from_millis(i),
                (i as f64 / 5.0).sin() * 10.0 + 20.0,
            );
        }
        ts
    }

    #[test]
    fn result_metrics_and_lookup() {
        let mut r = ExperimentResult::new("fig9", "canonical");
        r.add_metric("jain", 0.99);
        r.add_series("macr", trace());
        assert_eq!(r.metric("jain"), Some(0.99));
        assert_eq!(r.metric("nope"), None);
        assert!(r.get_series("macr").is_some());
        assert!(r.get_series("nope").is_none());
    }

    #[test]
    fn render_contains_all_parts() {
        let mut r = ExperimentResult::new("figX", "title here");
        r.add_note("a note");
        r.add_metric("m1", 1.5);
        r.add_series("s1", trace());
        let text = r.render(20);
        assert!(text.contains("figX"));
        assert!(text.contains("title here"));
        assert!(text.contains("a note"));
        assert!(text.contains("m1"));
        assert!(text.contains("s1"));
        assert!(text.contains("*"));
    }

    #[test]
    fn render_without_series_table() {
        let mut r = ExperimentResult::new("figX", "t");
        r.add_series("s1", trace());
        let text = r.render(0);
        assert!(!text.contains("-- s1"));
    }

    #[test]
    fn ascii_chart_handles_flat_and_empty() {
        let empty = ascii_chart(&TimeSeries::new(), 10, 5);
        assert!(empty.contains("no data"));
        let mut flat = TimeSeries::new();
        flat.push(SimTime::from_millis(0), 5.0);
        flat.push(SimTime::from_millis(1), 5.0);
        let c = ascii_chart(&flat, 10, 5);
        assert!(c.contains('*'));
    }

    #[test]
    fn table_render_and_cell() {
        let mut t = Table::new("t1", "cmp", &["alg", "conv_ms", "jain"]);
        t.add_row("phantom", vec![12.0, 0.99]);
        t.add_row("eprca", vec![55.0, 0.91]);
        assert_eq!(t.cell("phantom", "jain"), Some(0.99));
        assert_eq!(t.cell("eprca", "conv_ms"), Some(55.0));
        assert_eq!(t.cell("nope", "jain"), None);
        let s = t.render();
        assert!(s.contains("phantom"));
        assert!(s.contains("0.9900"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_rejects_mismatched_rows() {
        let mut t = Table::new("t", "t", &["a", "b"]);
        t.add_row("x", vec![1.0, 2.0]);
    }

    #[test]
    fn csv_outputs() {
        let dir = std::env::temp_dir().join("phantom_metrics_report_test");
        let mut r = ExperimentResult::new("figZ", "t");
        r.add_series("s", trace());
        r.write_csv(&dir).unwrap();
        assert!(dir.join("figZ.csv").exists());
        let mut t = Table::new("tZ", "t", &["alg", "v"]);
        t.add_row("p", vec![1.0]);
        t.write_csv(&dir).unwrap();
        let body = std::fs::read_to_string(dir.join("tZ.csv")).unwrap();
        assert!(body.starts_with("alg,v"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn csv_manifest_comment_rides_first() {
        let dir = std::env::temp_dir().join("phantom_metrics_csv_manifest");
        let mut r = ExperimentResult::new("figM", "t");
        r.add_series("s", trace());
        r.write_csv_with_manifest(&dir, Some("{\"seed\":7}"))
            .unwrap();
        let body = std::fs::read_to_string(dir.join("figM.csv")).unwrap();
        assert!(body.starts_with("# manifest: {\"seed\":7}\n"));
        let mut t = Table::new("tM", "t", &["alg", "v"]);
        t.add_row("p", vec![1.0]);
        t.write_csv_with_manifest(&dir, Some("{\"seed\":7}"))
            .unwrap();
        let body = std::fs::read_to_string(dir.join("tM.csv")).unwrap();
        assert!(body.starts_with("# manifest: {\"seed\":7}\nalg,v"));
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Aggregate the scalar metrics of several runs of the *same* experiment
/// (different seeds) into a mean/min/max table — the robustness check the
/// `repro --seeds N` flag prints.
///
/// Metrics are matched by name; a metric missing from some runs is
/// aggregated over the runs that have it.
pub fn aggregate_runs(id: &str, title: &str, runs: &[ExperimentResult]) -> Table {
    let mut names: Vec<String> = Vec::new();
    for r in runs {
        for (n, _) in &r.metrics {
            if !names.contains(n) {
                names.push(n.clone());
            }
        }
    }
    let mut t = Table::new(id, title, &["metric", "mean", "min", "max", "spread_pct"]);
    for name in &names {
        let vals: Vec<f64> = runs
            .iter()
            .filter_map(|r| r.metric(name))
            .filter(|v| v.is_finite())
            .collect();
        if vals.is_empty() {
            continue;
        }
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let min = vals.iter().copied().fold(f64::INFINITY, f64::min);
        let max = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let spread = if mean.abs() > 1e-12 {
            100.0 * (max - min) / mean.abs()
        } else {
            0.0
        };
        t.add_row(name, vec![mean, min, max, spread]);
    }
    t
}

#[cfg(test)]
mod aggregate_tests {
    use super::*;

    fn run_with(jain: f64, conv: f64) -> ExperimentResult {
        let mut r = ExperimentResult::new("figX", "t");
        r.add_metric("jain", jain);
        r.add_metric("conv_ms", conv);
        r
    }

    #[test]
    fn aggregates_mean_min_max_spread() {
        let runs = vec![
            run_with(0.98, 20.0),
            run_with(1.0, 30.0),
            run_with(0.99, 25.0),
        ];
        let t = aggregate_runs("figX-seeds", "robustness", &runs);
        assert!((t.cell("jain", "mean").unwrap() - 0.99).abs() < 1e-9);
        assert_eq!(t.cell("conv_ms", "min").unwrap(), 20.0);
        assert_eq!(t.cell("conv_ms", "max").unwrap(), 30.0);
        assert!((t.cell("conv_ms", "spread_pct").unwrap() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn missing_and_nan_metrics_are_skipped() {
        let mut a = run_with(1.0, 10.0);
        a.add_metric("weird", f64::NAN);
        let b = run_with(1.0, 12.0);
        let t = aggregate_runs("x", "t", &[a, b]);
        assert!(t.cell("weird", "mean").is_none(), "all-NaN metric dropped");
        assert!(t.cell("conv_ms", "mean").is_some());
    }
}

impl ExperimentResult {
    /// Emit a gnuplot script next to the CSV (`dir/<id>.gp`): one line
    /// per series, read from the long-format CSV this result writes.
    /// `gnuplot <id>.gp` produces `<id>.png`.
    pub fn write_gnuplot(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let mut s = String::new();
        let _ = writeln!(s, "# generated by the phantom reproduction harness");
        let _ = writeln!(s, "set datafile separator ','");
        let _ = writeln!(s, "set terminal pngcairo size 1000,600");
        let _ = writeln!(s, "set output '{}.png'", self.id);
        let _ = writeln!(
            s,
            "set title \"{} — {}\"",
            self.id,
            self.title.replace('"', "'")
        );
        let _ = writeln!(s, "set xlabel 'time (s)'");
        let _ = writeln!(s, "set key outside right");
        let _ = writeln!(s, "set grid");
        let lines: Vec<String> = self
            .series
            .iter()
            .map(|(name, _)| {
                format!(
                    "'< grep \"^{name},\" {id}.csv' using 2:3 with lines title '{name}'",
                    id = self.id
                )
            })
            .collect();
        if !lines.is_empty() {
            let _ = writeln!(s, "plot {}", lines.join(", \\\n     "));
        }
        std::fs::write(dir.join(format!("{}.gp", self.id)), s)
    }
}

#[cfg(test)]
mod gnuplot_tests {
    use super::*;
    use phantom_sim::SimTime;

    #[test]
    fn gnuplot_script_references_every_series() {
        let dir = std::env::temp_dir().join("phantom_gnuplot_test");
        let mut r = ExperimentResult::new("figG", "gnuplot check");
        let mut ts = TimeSeries::new();
        ts.push(SimTime::from_millis(1), 1.0);
        r.add_series("alpha", ts.clone());
        r.add_series("beta", ts);
        r.write_gnuplot(&dir).unwrap();
        let body = std::fs::read_to_string(dir.join("figG.gp")).unwrap();
        assert!(body.contains("figG.csv"));
        assert!(body.contains("'alpha'"));
        assert!(body.contains("'beta'"));
        assert!(body.contains("set output 'figG.png'"));
        assert!(!body.trim_end().ends_with('\\'), "no dangling continuation");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gnuplot_with_no_series_still_writes_a_header() {
        let dir = std::env::temp_dir().join("phantom_gnuplot_empty");
        let r = ExperimentResult::new("figE", "empty");
        r.write_gnuplot(&dir).unwrap();
        assert!(dir.join("figE.gp").exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
