//! Provenance manifests embedded in every run artifact.
//!
//! A figure CSV, a JSONL trace or a metrics snapshot is only evidence if
//! it says where it came from. A [`Manifest`] pins the scenario id, the
//! master seed, a hash of the effective configuration, the git revision
//! of the build, and the schema version of the artifact it is embedded
//! in. Deliberately absent: wall-clock timestamps — artifacts from the
//! same source state must be byte-identical so the determinism tests can
//! compare them.

use crate::json::json_str;

/// Schema tag for JSONL probe traces.
pub const TRACE_SCHEMA: &str = "phantom-trace/1";
/// Schema tag for metrics snapshots (Prometheus text + JSON summary).
pub const METRICS_SCHEMA: &str = "phantom-metrics/1";
/// Schema tag for `BENCH_phantom.json`.
///
/// `/4` adds the optional `scale` object (a memory-and-throughput probe
/// of one large generated scene: sessions-per-GB and events/s at scale);
/// `/5` adds the optional `shard_scaling` array (events/s at `--shards`
/// 1/2/4 on the scale scene). Every earlier field is unchanged, so `/3`
/// and `/4` baselines still parse.
pub const BENCH_SCHEMA: &str = "phantom-bench/5";
/// Schema tag for long-format figure CSVs.
pub const CSV_SCHEMA: &str = "phantom-csv/1";
/// Schema tag for `phantom analyze` reports.
pub const ANALYSIS_SCHEMA: &str = "phantom-analysis/1";
/// Schema tag for in-run profiler reports (`phantom run --profile`,
/// `repro --profile-dir`).
pub const PROFILE_SCHEMA: &str = "phantom-profile/1";
/// Schema tag for live run-status files (`--status-file`), one flat
/// JSON object rewritten atomically while a run is in flight.
pub const STATUS_SCHEMA: &str = "phantom-status/1";
/// Schema tag for panic flight-recorder dumps (post-mortem JSONL).
pub const POSTMORTEM_SCHEMA: &str = "phantom-postmortem/1";
/// Schema tag for engine checkpoints (`phantom run --checkpoint-every`),
/// a JSONL rendering of a complete mid-run engine snapshot plus the
/// provenance needed to rebuild the topology and resume byte-identically.
pub const CHECKPOINT_SCHEMA: &str = "phantom-checkpoint/1";
/// Schema tag for trace-divergence reports (`phantom diverge`): the
/// first divergent event between two traces, its context window, and —
/// when checkpoints are available — an engine-state diff localizing it.
pub const DIVERGE_SCHEMA: &str = "phantom-diverge/1";

/// The git revision this binary was built from ("unknown" outside a
/// checkout); embedded at compile time by the crate's build script.
pub fn git_rev() -> &'static str {
    option_env!("PHANTOM_GIT_REV").unwrap_or("unknown")
}

/// 64-bit FNV-1a — a small, dependency-free stable hash for fingerprinting
/// run configurations. Not cryptographic; collisions merely weaken the
/// provenance fingerprint, they can't corrupt results.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Provenance carried by every artifact a run writes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Manifest {
    /// Artifact schema tag, e.g. [`TRACE_SCHEMA`].
    pub schema: String,
    /// Scenario/experiment id, e.g. `"fig4"` or a topology file stem.
    pub scenario: String,
    /// Master seed of the run.
    pub seed: u64,
    /// FNV-1a hash of the effective configuration, as 16 hex digits.
    pub config_hash: String,
    /// Git revision of the build.
    pub git_rev: String,
}

impl Manifest {
    /// A manifest for `scenario` run under `seed`, fingerprinting
    /// `config` (any stable rendering of the effective configuration).
    pub fn new(schema: &str, scenario: &str, seed: u64, config: &str) -> Self {
        Manifest {
            schema: schema.to_string(),
            scenario: scenario.to_string(),
            seed,
            config_hash: format!("{:016x}", fnv1a_64(config.as_bytes())),
            git_rev: git_rev().to_string(),
        }
    }

    /// The same provenance restamped for a different artifact schema
    /// (one run emits CSVs, traces and metrics snapshots).
    pub fn for_schema(&self, schema: &str) -> Self {
        let mut m = self.clone();
        m.schema = schema.to_string();
        m
    }

    /// Render as a single-line JSON object — the form embedded in JSONL
    /// headers, `# manifest:` CSV comments and metrics snapshots.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"schema\":{},\"scenario\":{},\"seed\":{},\"config_hash\":{},\"git_rev\":{}}}",
            json_str(&self.schema),
            json_str(&self.scenario),
            self.seed,
            json_str(&self.config_hash),
            json_str(&self.git_rev)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn manifest_json_is_single_line_and_stable() {
        let m = Manifest::new(TRACE_SCHEMA, "fig4", 1996, "u=5,n=4");
        let j = m.to_json();
        assert!(!j.contains('\n'));
        assert!(j.starts_with("{\"schema\":\"phantom-trace/1\""));
        assert!(j.contains("\"scenario\":\"fig4\""));
        assert!(j.contains("\"seed\":1996"));
        // same config -> same hash; different config -> different hash
        let m2 = Manifest::new(TRACE_SCHEMA, "fig4", 1996, "u=5,n=4");
        assert_eq!(m.config_hash, m2.config_hash);
        let m3 = Manifest::new(TRACE_SCHEMA, "fig4", 1996, "u=6,n=4");
        assert_ne!(m.config_hash, m3.config_hash);
    }

    #[test]
    fn for_schema_restamps_only_the_schema() {
        let m = Manifest::new(TRACE_SCHEMA, "fig2", 1, "cfg");
        let r = m.for_schema(METRICS_SCHEMA);
        assert_eq!(r.schema, METRICS_SCHEMA);
        assert_eq!(r.scenario, m.scenario);
        assert_eq!(r.config_hash, m.config_hash);
    }
}
