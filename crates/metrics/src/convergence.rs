//! Convergence-time detection and steady-state oscillation measurement.
//!
//! The paper's headline comparison ("Phantom converges fast … CAPC has
//! longer convergence time") needs a precise, algorithm-neutral definition.
//! We use: the earliest time `t*` such that the trace stays within a
//! relative tolerance band around the target for *all* later samples.

use phantom_sim::stats::TimeSeries;

/// Earliest time (seconds) after which the trace stays within
/// `tol × target` of `target` forever. `None` if the trace never settles
/// (or is empty / target is zero and trace is not).
pub fn convergence_time(ts: &TimeSeries, target: f64, tol: f64) -> Option<f64> {
    assert!(tol > 0.0, "tolerance must be positive");
    if ts.is_empty() {
        return None;
    }
    let band = tol * target.abs().max(f64::MIN_POSITIVE);
    // Scan backwards for the last out-of-band sample.
    let mut last_bad: Option<usize> = None;
    for i in (0..ts.len()).rev() {
        if (ts.values()[i] - target).abs() > band {
            last_bad = Some(i);
            break;
        }
    }
    match last_bad {
        None => Some(ts.times()[0]), // inside the band from the start
        Some(i) if i + 1 < ts.len() => Some(ts.times()[i + 1]),
        Some(_) => None, // the final sample is still out of band
    }
}

/// Convergence time of a *set* of traces toward per-trace targets: the
/// latest individual convergence time, or `None` if any trace fails.
pub fn joint_convergence_time(traces: &[(&TimeSeries, f64)], tol: f64) -> Option<f64> {
    let mut worst = 0.0f64;
    for (ts, target) in traces {
        worst = worst.max(convergence_time(ts, *target, tol)?);
    }
    Some(worst)
}

/// Peak-to-peak amplitude of the trace after time `from` (seconds) —
/// the steady-state oscillation the paper's MACR plots show.
pub fn oscillation_amplitude(ts: &TimeSeries, from: f64) -> f64 {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for (t, v) in ts.iter() {
        if t >= from {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    if hi < lo {
        0.0
    } else {
        hi - lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phantom_sim::SimTime;

    fn ramp_then_flat() -> TimeSeries {
        // climbs 0..100 over 10 samples, then flat at 100
        let mut ts = TimeSeries::new();
        for i in 0..10 {
            ts.push(SimTime::from_millis(i), i as f64 * 10.0);
        }
        for i in 10..20 {
            ts.push(SimTime::from_millis(i), 100.0);
        }
        ts
    }

    #[test]
    fn detects_settling_point() {
        let ts = ramp_then_flat();
        // within 5% of 100 from the 96-sample on; first in-band sample is
        // v=100 at t=10ms (v=90 at 9ms is exactly on the 10% edge).
        let t = convergence_time(&ts, 100.0, 0.05).unwrap();
        assert!((t - 0.010).abs() < 1e-9, "got {t}");
    }

    #[test]
    fn tolerance_widens_the_band() {
        let ts = ramp_then_flat();
        let tight = convergence_time(&ts, 100.0, 0.01).unwrap();
        let loose = convergence_time(&ts, 100.0, 0.25).unwrap();
        assert!(loose < tight);
    }

    #[test]
    fn never_converges_when_tail_out_of_band() {
        let mut ts = ramp_then_flat();
        ts.push(SimTime::from_millis(30), 0.0); // final excursion
        assert_eq!(convergence_time(&ts, 100.0, 0.05), None);
    }

    #[test]
    fn immediate_convergence_reports_first_sample_time() {
        let mut ts = TimeSeries::new();
        ts.push(SimTime::from_millis(5), 100.0);
        ts.push(SimTime::from_millis(6), 101.0);
        let t = convergence_time(&ts, 100.0, 0.05).unwrap();
        assert!((t - 0.005).abs() < 1e-9);
    }

    #[test]
    fn empty_trace_has_no_convergence() {
        assert_eq!(convergence_time(&TimeSeries::new(), 1.0, 0.1), None);
    }

    #[test]
    fn joint_convergence_takes_the_worst() {
        let fast = {
            let mut ts = TimeSeries::new();
            ts.push(SimTime::from_millis(1), 10.0);
            ts.push(SimTime::from_millis(2), 10.0);
            ts
        };
        let slow = ramp_then_flat();
        let t = joint_convergence_time(&[(&fast, 10.0), (&slow, 100.0)], 0.05).unwrap();
        assert!((t - 0.010).abs() < 1e-9);
        // one diverging trace poisons the joint result
        let mut bad = TimeSeries::new();
        bad.push(SimTime::from_millis(1), 0.0);
        assert_eq!(
            joint_convergence_time(&[(&fast, 10.0), (&bad, 100.0)], 0.05),
            None
        );
    }

    #[test]
    fn oscillation_peak_to_peak() {
        let mut ts = TimeSeries::new();
        for i in 0..100u64 {
            let v = 50.0 + if i % 2 == 0 { 5.0 } else { -5.0 };
            ts.push(SimTime::from_millis(i), v);
        }
        assert_eq!(oscillation_amplitude(&ts, 0.0), 10.0);
        assert_eq!(oscillation_amplitude(&ts, 1.0), 0.0); // nothing after 1s
    }
}
