//! The `phantom-profile/1` artifact: a serialized engine profile.
//!
//! [`ProfileRecord`] wraps a [`phantom_sim::ProfileReport`] with a
//! provenance [`Manifest`] and renders it as the JSON document written
//! by `phantom run --profile` and `repro --profile-dir`. Like every
//! artifact in this workspace the writer is hand-rolled (no serde), and
//! the layout is deliberately line-oriented: each attribution row —
//! node type, event kind, calendar phase — is one flat JSON object on
//! its own line, so `phantom profile` can re-read the document with the
//! same line-wise scanner the analyzer uses for JSONL traces.

use crate::json::{json_f64, json_str};
use crate::manifest::Manifest;
use phantom_sim::{ProfileEntry, ProfileReport};
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// One profiled run (or batch of runs) plus its provenance.
#[derive(Clone, Debug)]
pub struct ProfileRecord {
    /// Provenance of the profiled run (scenario, seed, config hash, rev).
    pub manifest: Manifest,
    /// Harness wall-clock seconds for the whole run, including scenario
    /// build and artifact writing — everything *around* the engine loop.
    pub wall_secs: f64,
    /// The engine's own attribution, harvested from the profile bracket.
    pub report: ProfileReport,
}

impl ProfileRecord {
    /// Wall time spent inside profiled engine run loops, seconds — the
    /// denominator every `share` field is computed against.
    pub fn loop_wall_secs(&self) -> f64 {
        self.report.wall_ns as f64 / 1e9
    }

    /// Fraction of the loop wall time attributed to a named bucket
    /// (nodes + phases partition the loop by construction).
    pub fn attributed_share(&self) -> f64 {
        if self.report.wall_ns == 0 {
            0.0
        } else {
            self.report.attributed_ns() as f64 / self.report.wall_ns as f64
        }
    }

    /// Logical events per second of loop wall time.
    pub fn events_per_sec(&self) -> f64 {
        let secs = self.loop_wall_secs();
        if secs > 0.0 {
            self.report.events as f64 / secs
        } else {
            0.0
        }
    }

    fn entry_line(&self, e: &ProfileEntry) -> String {
        let share = if self.report.wall_ns == 0 {
            0.0
        } else {
            e.self_ns as f64 / self.report.wall_ns as f64
        };
        format!(
            "{{\"name\": {}, \"events\": {}, \"self_secs\": {}, \"share\": {}}}",
            json_str(&e.name),
            e.events,
            json_f64(e.self_ns as f64 / 1e9),
            json_f64(share)
        )
    }

    fn entry_array(&self, s: &mut String, key: &str, entries: &[ProfileEntry], last: bool) {
        let _ = writeln!(s, "  {}: [", json_str(key));
        for (i, e) in entries.iter().enumerate() {
            s.push_str("    ");
            s.push_str(&self.entry_line(e));
            s.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
        }
        s.push_str(if last { "  ]\n" } else { "  ],\n" });
    }

    /// Serialize as the `phantom-profile/1` JSON document.
    pub fn to_json(&self) -> String {
        let r = &self.report;
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema\": {},", json_str(&self.manifest.schema));
        let _ = writeln!(s, "  \"manifest\": {},", self.manifest.to_json());
        let _ = writeln!(s, "  \"wall_secs\": {},", json_f64(self.wall_secs));
        let _ = writeln!(
            s,
            "  \"loop_wall_secs\": {},",
            json_f64(self.loop_wall_secs())
        );
        let _ = writeln!(s, "  \"dispatches\": {},", r.dispatches);
        let _ = writeln!(s, "  \"events\": {},", r.events);
        let _ = writeln!(
            s,
            "  \"events_per_sec\": {},",
            json_f64(self.events_per_sec())
        );
        let _ = writeln!(s, "  \"batching\": {},", json_f64(r.batching()));
        let _ = writeln!(
            s,
            "  \"attributed_share\": {},",
            json_f64(self.attributed_share())
        );
        self.entry_array(&mut s, "nodes", &r.nodes, false);
        self.entry_array(&mut s, "kinds", &r.kinds, false);
        self.entry_array(&mut s, "phases", &r.phases, false);
        let c = &r.calendar;
        let _ = writeln!(
            s,
            "  \"calendar\": {{\"active_inserts\": {}, \"wheel_pushes\": {}, \"far_pushes\": {}, \"advances\": {}, \"promoted\": {}, \"sorted_entries\": {}, \"occupied_mean\": {}, \"occupied_max\": {}}}",
            c.active_inserts,
            c.wheel_pushes,
            c.far_pushes,
            c.advances,
            c.promoted,
            c.sorted_entries,
            json_f64(r.occupied_mean()),
            c.occupied_slices_max
        );
        s.push_str("}\n");
        s
    }

    /// Write the JSON document to `path`, creating parent directories.
    pub fn write(&self, path: &Path) -> io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(path, self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::PROFILE_SCHEMA;
    use phantom_sim::CalendarStats;

    fn sample() -> ProfileRecord {
        let entry = |name: &str, events: u64, self_ns: u64| ProfileEntry {
            name: name.to_string(),
            events,
            self_ns,
        };
        ProfileRecord {
            manifest: Manifest::new(PROFILE_SCHEMA, "fig2", 1996, "u=5"),
            wall_secs: 1.5,
            report: ProfileReport {
                wall_ns: 1_000_000_000,
                dispatches: 400,
                events: 500,
                nodes: vec![
                    entry("atm::AtmSwitch", 300, 600_000_000),
                    entry("atm::Source", 200, 150_000_000),
                ],
                kinds: vec![
                    entry("cell", 450, 700_000_000),
                    entry("timer.measure", 50, 50_000_000),
                ],
                phases: vec![
                    entry("calendar.pop", 400, 200_000_000),
                    entry("calendar.advance.scan", 10, 20_000_000),
                    entry("calendar.advance.promote", 5, 10_000_000),
                    entry("calendar.advance.sort", 40, 20_000_000),
                ],
                calendar: CalendarStats {
                    active_inserts: 100,
                    wheel_pushes: 280,
                    far_pushes: 20,
                    advances: 10,
                    promoted: 5,
                    sorted_entries: 40,
                    occupied_slices_sum: 30,
                    occupied_slices_max: 7,
                    advance_ns: 50_000_000,
                    scan_ns: 20_000_000,
                    promote_ns: 10_000_000,
                    sort_ns: 20_000_000,
                },
            },
        }
    }

    #[test]
    fn derived_rates_use_the_loop_wall() {
        let r = sample();
        assert_eq!(r.loop_wall_secs(), 1.0);
        assert_eq!(r.events_per_sec(), 500.0);
        // 600+150 node ms + 200+20+10+20 phase ms = 1000 ms = the loop.
        assert_eq!(r.attributed_share(), 1.0);
        assert!((r.report.batching() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn json_rows_are_single_lines_and_braces_balance() {
        let j = sample().to_json();
        assert!(j.starts_with("{\n  \"schema\": \"phantom-profile/1\""));
        assert!(j.contains("\"manifest\": {\"schema\":\"phantom-profile/1\""));
        // every attribution row is one flat object on its own line
        assert!(j.contains("\n    {\"name\": \"atm::AtmSwitch\", \"events\": 300, \"self_secs\": 0.6, \"share\": 0.6}"));
        assert!(j.contains("\n    {\"name\": \"cell\", \"events\": 450"));
        assert!(j.contains("\n    {\"name\": \"calendar.pop\", \"events\": 400"));
        assert!(j.contains("\"attributed_share\": 1"));
        assert!(j.contains(
            "\"calendar\": {\"active_inserts\": 100, \"wheel_pushes\": 280, \"far_pushes\": 20"
        ));
        assert!(j.contains("\"occupied_mean\": 3, \"occupied_max\": 7"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn empty_report_serializes_without_nan() {
        let rec = ProfileRecord {
            manifest: Manifest::new(PROFILE_SCHEMA, "idle", 1, "cfg"),
            wall_secs: 0.0,
            report: ProfileReport::default(),
        };
        let j = rec.to_json();
        assert!(!j.contains("NaN") && !j.contains("inf"));
        assert!(j.contains("\"events_per_sec\": 0"));
        assert_eq!(rec.attributed_share(), 0.0);
    }

    #[test]
    fn write_creates_parent_directories() {
        let dir = std::env::temp_dir().join("phantom-profile-record-test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested").join("profile.json");
        sample().write(&path).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), sample().to_json());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
