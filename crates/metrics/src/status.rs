//! Live run-status files (`phantom-status/1`).
//!
//! A long run (a metro-scale scene, a 31-run sweep) is a black box from
//! the outside: is it at 10% or 90%? [`RunStatus`] is the answer — a
//! single flat JSON object the harness rewrites every heartbeat, which
//! `phantom status FILE [--watch]` pretty-prints. Because a reader polls
//! the file *while* the writer rewrites it, every update goes through
//! [`write_atomic`]: write a unique temp file in the same directory,
//! then `rename(2)` over the target. A poller therefore always sees
//! either the previous complete document or the next one — never a
//! torn write — which the status-file tests pin down by hammering the
//! reader from another thread.

use crate::json::{json_f64, json_str};
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// A point-in-time snapshot of a running (or just-finished) invocation.
///
/// `Option` fields render as JSON `null` when unknown: ETA before the
/// rate settles, RSS on platforms without `/proc`, simulated time for
/// batch sweeps where it has no single value.
#[derive(Clone, Debug, PartialEq)]
pub struct RunStatus {
    /// Scenario or batch id, e.g. `"fig2"` or `"sweep"`.
    pub scenario: String,
    /// Master seed of the run.
    pub seed: u64,
    /// `"running"` while in flight, `"done"` on the final write.
    pub state: String,
    /// Wall-clock seconds since the run started.
    pub wall_secs: f64,
    /// Simulator events dispatched so far.
    pub events: u64,
    /// Events per wall-clock second so far.
    pub events_per_sec: f64,
    /// Progress units finished (heartbeat slices, or sweep runs).
    pub done: u64,
    /// Total progress units.
    pub total: u64,
    /// What `done`/`total` count: `"slices"` or `"runs"`.
    pub unit: String,
    /// Estimated seconds to completion, when the rate has settled.
    pub eta_secs: Option<f64>,
    /// Resident set size in bytes, when `/proc` is readable.
    pub rss_bytes: Option<u64>,
    /// Simulated seconds reached, for single runs.
    pub sim_secs: Option<f64>,
    /// Simulated seconds at which the run ends, for single runs.
    pub sim_end_secs: Option<f64>,
}

impl RunStatus {
    /// A fresh `"running"` status with all progress fields at zero.
    pub fn starting(scenario: &str, seed: u64, total: u64, unit: &str) -> Self {
        RunStatus {
            scenario: scenario.to_string(),
            seed,
            state: "running".to_string(),
            wall_secs: 0.0,
            events: 0,
            events_per_sec: 0.0,
            done: 0,
            total,
            unit: unit.to_string(),
            eta_secs: None,
            rss_bytes: None,
            sim_secs: None,
            sim_end_secs: None,
        }
    }

    /// Fraction complete in `[0, 1]`.
    pub fn progress(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.done as f64 / self.total as f64
        }
    }

    /// Render as one flat single-line JSON object (plus trailing
    /// newline), parseable by the analyzer's flat-object scanner.
    pub fn to_json_line(&self) -> String {
        let opt_f64 = |v: &Option<f64>| match v {
            Some(v) => json_f64(*v),
            None => "null".to_string(),
        };
        let opt_u64 = |v: &Option<u64>| match v {
            Some(v) => v.to_string(),
            None => "null".to_string(),
        };
        format!(
            "{{\"schema\": {}, \"scenario\": {}, \"seed\": {}, \"state\": {}, \"wall_secs\": {}, \"events\": {}, \"events_per_sec\": {}, \"done\": {}, \"total\": {}, \"unit\": {}, \"progress\": {}, \"eta_secs\": {}, \"rss_bytes\": {}, \"sim_secs\": {}, \"sim_end_secs\": {}}}\n",
            json_str(crate::manifest::STATUS_SCHEMA),
            json_str(&self.scenario),
            self.seed,
            json_str(&self.state),
            json_f64(self.wall_secs),
            self.events,
            json_f64(self.events_per_sec),
            self.done,
            self.total,
            json_str(&self.unit),
            json_f64(self.progress()),
            opt_f64(&self.eta_secs),
            opt_u64(&self.rss_bytes),
            opt_f64(&self.sim_secs),
            opt_f64(&self.sim_end_secs)
        )
    }

    /// Atomically (re)write this status to `path`; see [`write_atomic`].
    pub fn write(&self, path: &Path) -> io::Result<()> {
        write_atomic(path, &self.to_json_line())
    }
}

/// Per-process counter making concurrent temp names unique even when
/// two threads update different status files in the same directory.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Write `contents` to `path` atomically: the bytes land in a unique
/// sibling temp file first and are moved into place with `rename(2)`,
/// so a concurrent reader sees either the old document or the new one,
/// never a prefix. The temp file stays on the same filesystem as the
/// target (same directory), which is what makes the rename atomic.
pub fn write_atomic(path: &Path, contents: &str) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp.{}.{}", std::process::id(), seq));
    let tmp = std::path::PathBuf::from(tmp);
    std::fs::write(&tmp, contents)?;
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunStatus {
        RunStatus {
            scenario: "fig2".into(),
            seed: 1996,
            state: "running".into(),
            wall_secs: 2.5,
            events: 5_000_000,
            events_per_sec: 2_000_000.0,
            done: 3,
            total: 10,
            unit: "slices".into(),
            eta_secs: Some(5.8),
            rss_bytes: Some(123_456_789),
            sim_secs: Some(1.5),
            sim_end_secs: Some(5.0),
        }
    }

    #[test]
    fn json_line_is_flat_and_complete() {
        let line = sample().to_json_line();
        assert!(line.ends_with("}\n"));
        assert_eq!(line.matches('\n').count(), 1, "single line");
        assert!(line.starts_with("{\"schema\": \"phantom-status/1\""));
        assert!(line.contains("\"scenario\": \"fig2\""));
        assert!(line.contains("\"state\": \"running\""));
        assert!(line.contains("\"progress\": 0.3"));
        assert!(line.contains("\"eta_secs\": 5.8"));
        assert!(line.contains("\"rss_bytes\": 123456789"));
        assert_eq!(line.matches('{').count(), line.matches('}').count());
    }

    #[test]
    fn unknown_fields_render_as_null() {
        let mut s = sample();
        s.eta_secs = None;
        s.rss_bytes = None;
        s.sim_secs = None;
        s.sim_end_secs = None;
        let line = s.to_json_line();
        assert!(line.contains("\"eta_secs\": null"));
        assert!(line.contains("\"rss_bytes\": null"));
        assert!(line.contains("\"sim_secs\": null"));
        assert!(line.contains("\"sim_end_secs\": null"));
    }

    #[test]
    fn starting_status_is_zeroed_and_running() {
        let s = RunStatus::starting("sweep", 7, 31, "runs");
        assert_eq!(s.state, "running");
        assert_eq!(s.progress(), 0.0);
        assert_eq!(s.total, 31);
        assert!(s.to_json_line().contains("\"unit\": \"runs\""));
    }

    #[test]
    fn atomic_write_replaces_and_cleans_up_temp_files() {
        let dir = std::env::temp_dir().join("phantom-status-test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("run.status.json");
        let mut s = sample();
        s.write(&path).unwrap();
        s.done = 9;
        s.write(&path).unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        assert!(back.contains("\"done\": 9"));
        // no .tmp stragglers next to the target
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .filter(|n| n.contains(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "leftover temp files: {leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The load-bearing property: a reader polling mid-rewrite never
    /// observes a torn document. A writer thread rewrites the file as
    /// fast as it can while the main thread reads it in a tight loop;
    /// every observed snapshot must be one complete JSON line.
    #[test]
    fn concurrent_reader_never_sees_a_partial_document() {
        let dir = std::env::temp_dir().join("phantom-status-race-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.status.json");
        sample().write(&path).unwrap();

        let writer_path = path.clone();
        let writer = std::thread::spawn(move || {
            let mut s = sample();
            for i in 0..500u64 {
                s.done = i % 11;
                s.events = i * 1_000;
                s.write(&writer_path).unwrap();
            }
        });

        let mut reads = 0u32;
        while !writer.is_finished() {
            let back = std::fs::read_to_string(&path).unwrap();
            assert!(
                back.starts_with("{\"schema\": \"phantom-status/1\"") && back.ends_with("}\n"),
                "torn status read: {back:?}"
            );
            reads += 1;
        }
        writer.join().unwrap();
        assert!(reads > 0, "reader should have raced at least once");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
