//! Fairness measures and reference allocations.
//!
//! The paper's fairness yardstick is max-min fairness \[BG87\]: an allocation
//! is max-min fair if no session's rate can be increased without decreasing
//! the rate of a session with an equal or smaller rate. We implement the
//! classic water-filling algorithm (and a weighted generalization) to
//! compute the reference allocation for any topology, plus Jain's fairness
//! index to score measured allocations, and the *phantom prediction* — the
//! fixed point the Phantom algorithm converges to, where every link carries
//! one extra imaginary session.

/// Jain's fairness index: `(Σx)² / (n·Σx²)`, in `(0, 1]`; 1 is perfectly
/// fair. Empty or all-zero inputs score 0.
///
/// ```
/// assert_eq!(phantom_metrics::jain_index(&[5.0, 5.0]), 1.0);
/// assert_eq!(phantom_metrics::jain_index(&[1.0, 0.0]), 0.5);
/// ```
pub fn jain_index(rates: &[f64]) -> f64 {
    if rates.is_empty() {
        return 0.0;
    }
    let sum: f64 = rates.iter().sum();
    let sq: f64 = rates.iter().map(|x| x * x).sum();
    if sq == 0.0 {
        return 0.0;
    }
    sum * sum / (rates.len() as f64 * sq)
}

/// Jain's index of the ratios `measured[i] / reference[i]` — fairness with
/// respect to a (possibly unequal) reference such as weighted max-min.
/// Reference entries of 0 are skipped.
pub fn normalized_jain_index(measured: &[f64], reference: &[f64]) -> f64 {
    assert_eq!(measured.len(), reference.len());
    let ratios: Vec<f64> = measured
        .iter()
        .zip(reference)
        .filter(|&(_, &r)| r > 0.0)
        .map(|(&m, &r)| m / r)
        .collect();
    jain_index(&ratios)
}

/// One session in a max-min computation: the links it crosses and its
/// weight (1.0 for plain max-min).
#[derive(Clone, Debug)]
pub struct Session {
    /// Indices into the capacity vector of every link the session crosses.
    pub path: Vec<usize>,
    /// Relative weight; at a shared bottleneck rates are proportional to
    /// weights.
    pub weight: f64,
    /// Optional externally imposed rate cap (e.g. the session's PCR or an
    /// upstream restriction). `f64::INFINITY` when uncapped.
    pub cap: f64,
    /// Guaranteed minimum rate (TM 4.0 MCR); allocated before the fair
    /// sharing starts. 0 when unguaranteed. The caller must ensure the
    /// floors are feasible (per-link floor sums within capacity).
    pub floor: f64,
}

impl Session {
    /// An unweighted, uncapped session over `path`.
    pub fn on(path: Vec<usize>) -> Self {
        Session {
            path,
            weight: 1.0,
            cap: f64::INFINITY,
            floor: 0.0,
        }
    }

    /// Set the weight.
    pub fn weight(mut self, w: f64) -> Self {
        self.weight = w;
        self
    }

    /// Set the rate cap.
    pub fn cap(mut self, c: f64) -> Self {
        self.cap = c;
        self
    }

    /// Set the guaranteed minimum rate.
    pub fn floor(mut self, f: f64) -> Self {
        assert!(f >= 0.0);
        self.floor = f;
        self
    }
}

/// Weighted max-min fair allocation by progressive filling.
///
/// Returns one rate per session. Repeatedly finds the link (or session cap)
/// that saturates first when all unfrozen sessions grow in proportion to
/// their weights, freezes the affected sessions, and continues until every
/// session is frozen.
///
/// # Panics
/// Panics if a session references a link index out of range, a capacity is
/// negative, or a weight is non-positive.
pub fn weighted_max_min(capacities: &[f64], sessions: &[Session]) -> Vec<f64> {
    for c in capacities {
        assert!(*c >= 0.0, "negative link capacity");
    }
    for s in sessions {
        assert!(s.weight > 0.0, "session weight must be positive");
        for &l in &s.path {
            assert!(l < capacities.len(), "session path references unknown link");
        }
    }

    let n = sessions.len();
    // Floors (MCR guarantees) are allocated up front; fair sharing then
    // grows every session from its floor.
    let mut rate: Vec<f64> = sessions.iter().map(|s| s.floor).collect();
    let mut frozen = vec![false; n];
    let mut remaining: Vec<f64> = capacities.to_vec();
    for (s, &r) in sessions.iter().zip(&rate) {
        assert!(s.cap >= s.floor, "session cap below its guaranteed floor");
        for &l in &s.path {
            remaining[l] -= r;
            assert!(
                remaining[l] >= -1e-9 * capacities[l].max(1.0),
                "infeasible floors: link {l} over-committed"
            );
        }
    }

    loop {
        // Weight of unfrozen sessions per link.
        let mut link_weight = vec![0.0f64; capacities.len()];
        for (i, s) in sessions.iter().enumerate() {
            if !frozen[i] {
                for &l in &s.path {
                    link_weight[l] += s.weight;
                }
            }
        }

        // The per-weight-unit increment at which the first constraint binds.
        // Constraints: each link with unfrozen sessions (remaining / weight),
        // each unfrozen session's cap ((cap - rate) / weight).
        let mut min_share = f64::INFINITY;
        for (l, &w) in link_weight.iter().enumerate() {
            if w > 0.0 {
                min_share = min_share.min(remaining[l].max(0.0) / w);
            }
        }
        for (i, s) in sessions.iter().enumerate() {
            if !frozen[i] && s.cap.is_finite() {
                min_share = min_share.min((s.cap - rate[i]).max(0.0) / s.weight);
            }
        }
        if !min_share.is_finite() {
            break; // no unfrozen sessions left
        }

        // Grow all unfrozen sessions by weight * min_share.
        for (i, s) in sessions.iter().enumerate() {
            if !frozen[i] {
                let inc = s.weight * min_share;
                rate[i] += inc;
                for &l in &s.path {
                    remaining[l] -= inc;
                }
            }
        }

        // Freeze sessions on saturated links or at their caps.
        let eps = 1e-9;
        let mut any_frozen = false;
        for (i, s) in sessions.iter().enumerate() {
            if frozen[i] {
                continue;
            }
            let at_cap = s.cap.is_finite() && rate[i] >= s.cap - eps;
            let at_link = s
                .path
                .iter()
                .any(|&l| remaining[l] <= eps * capacities[l].max(1.0));
            if at_cap || at_link {
                frozen[i] = true;
                any_frozen = true;
            }
        }
        if !any_frozen {
            // min_share == 0 with nothing newly frozen can only happen when
            // every remaining session sits on a zero-capacity link; freeze
            // them all to terminate.
            for (i, f) in frozen.iter_mut().enumerate() {
                if !*f && rate[i] == 0.0 {
                    *f = true;
                }
            }
            if frozen.iter().all(|&f| f) {
                break;
            }
        }
        if frozen.iter().all(|&f| f) {
            break;
        }
    }
    rate
}

/// Plain (unweighted, uncapped) max-min fair allocation.
pub fn max_min_fair(capacities: &[f64], paths: &[Vec<usize>]) -> Vec<f64> {
    let sessions: Vec<Session> = paths.iter().cloned().map(Session::on).collect();
    weighted_max_min(capacities, &sessions)
}

/// The Phantom fixed point for a topology.
///
/// Phantom behaves as if every link carried one extra imaginary session of
/// weight `1/u` relative to real sessions (`u` = utilization factor).
/// Equivalently: give every real session weight `u`, add a single-link
/// phantom session of weight 1 per link, and compute weighted max-min.
///
/// Returns `(session_rates, link_macr)` where `link_macr[l]` is the rate of
/// link `l`'s phantom session — the value the link's MACR variable should
/// converge to. For a single link of capacity `C` with `n` greedy sessions
/// this gives `MACR = C/(1+n·u)` and `rate = u·C/(1+n·u)`.
///
/// ```
/// use phantom_metrics::fairness::{phantom_prediction, Session};
///
/// let sessions = vec![Session::on(vec![0]), Session::on(vec![0])];
/// let (rates, macr) = phantom_prediction(&[150.0], &sessions, 5.0);
/// assert!((macr[0] - 150.0 / 11.0).abs() < 1e-9);
/// assert!((rates[0] - 5.0 * 150.0 / 11.0).abs() < 1e-9);
/// ```
pub fn phantom_prediction(
    capacities: &[f64],
    sessions: &[Session],
    utilization_factor: f64,
) -> (Vec<f64>, Vec<f64>) {
    assert!(utilization_factor > 0.0);
    let n = sessions.len();
    let mut all: Vec<Session> = sessions
        .iter()
        .map(|s| Session {
            path: s.path.clone(),
            weight: s.weight * utilization_factor,
            cap: s.cap,
            floor: s.floor,
        })
        .collect();
    for l in 0..capacities.len() {
        all.push(Session::on(vec![l])); // phantom session, weight 1, uncapped
    }
    let rates = weighted_max_min(capacities, &all);
    let (real, phantom) = rates.split_at(n);
    (real.to_vec(), phantom.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6 * b.abs().max(1.0)
    }

    #[test]
    fn jain_index_extremes() {
        assert_eq!(jain_index(&[]), 0.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 0.0);
        assert!(close(jain_index(&[5.0, 5.0, 5.0]), 1.0));
        // one session hogging everything among n -> 1/n
        assert!(close(jain_index(&[1.0, 0.0, 0.0, 0.0]), 0.25));
    }

    #[test]
    fn jain_index_is_scale_invariant() {
        let a = jain_index(&[1.0, 2.0, 3.0]);
        let b = jain_index(&[10.0, 20.0, 30.0]);
        assert!(close(a, b));
    }

    #[test]
    fn normalized_jain_uses_reference() {
        // measured exactly proportional to an unequal reference -> 1.0
        let m = [2.0, 4.0];
        let r = [1.0, 2.0];
        assert!(close(normalized_jain_index(&m, &r), 1.0));
    }

    #[test]
    fn single_link_equal_split() {
        let rates = max_min_fair(&[150.0], &[vec![0], vec![0], vec![0]]);
        for r in rates {
            assert!(close(r, 50.0));
        }
    }

    #[test]
    fn parking_lot_classic() {
        // Links: 0 and 1, both capacity 1. Session A crosses both; B on 0;
        // C on 1. Max-min: everyone gets 1/2.
        let rates = max_min_fair(&[1.0, 1.0], &[vec![0, 1], vec![0], vec![1]]);
        assert!(close(rates[0], 0.5));
        assert!(close(rates[1], 0.5));
        assert!(close(rates[2], 0.5));
    }

    #[test]
    fn bottleneck_leftover_goes_to_others() {
        // Link 0 cap 1 shared by A and B; B also crosses link 1 of cap 0.2.
        // B is limited to 0.2; A picks up the remaining 0.8.
        let rates = max_min_fair(&[1.0, 0.2], &[vec![0], vec![0, 1]]);
        assert!(close(rates[0], 0.8));
        assert!(close(rates[1], 0.2));
    }

    #[test]
    fn caps_behave_like_private_bottlenecks() {
        let sessions = vec![Session::on(vec![0]), Session::on(vec![0]).cap(0.1)];
        let rates = weighted_max_min(&[1.0], &sessions);
        assert!(close(rates[1], 0.1));
        assert!(close(rates[0], 0.9));
    }

    #[test]
    fn weights_split_proportionally() {
        let sessions = vec![
            Session::on(vec![0]).weight(3.0),
            Session::on(vec![0]).weight(1.0),
        ];
        let rates = weighted_max_min(&[8.0], &sessions);
        assert!(close(rates[0], 6.0));
        assert!(close(rates[1], 2.0));
    }

    #[test]
    fn phantom_fixed_point_single_link() {
        // n=2 sessions, u=5, C=150: MACR = 150/11, session = 5*150/11.
        let sessions = vec![Session::on(vec![0]), Session::on(vec![0])];
        let (rates, macr) = phantom_prediction(&[150.0], &sessions, 5.0);
        assert!(close(macr[0], 150.0 / 11.0));
        assert!(close(rates[0], 5.0 * 150.0 / 11.0));
        assert!(close(rates[1], 5.0 * 150.0 / 11.0));
        // utilization = sum(real)/C = 10/11
        let util: f64 = rates.iter().sum::<f64>() / 150.0;
        assert!(close(util, 10.0 / 11.0));
    }

    #[test]
    fn phantom_fixed_point_respects_upstream_restriction() {
        // Session B capped at C/30 upstream; A absorbs the leftover:
        // link: A*u*m + B + m = C with A's share = u*MACR.
        let sessions = vec![Session::on(vec![0]), Session::on(vec![0]).cap(5.0)];
        let (rates, macr) = phantom_prediction(&[150.0], &sessions, 5.0);
        assert!(close(rates[1], 5.0));
        // remaining 145 split 5:1 between A and phantom
        assert!(close(rates[0], 145.0 * 5.0 / 6.0));
        assert!(close(macr[0], 145.0 / 6.0));
    }

    #[test]
    fn floors_are_guaranteed_then_shared() {
        // A guaranteed 0.6 on a unit link with one best-effort peer:
        // the leftover 0.4 splits equally (0.2 each), so the guaranteed
        // session ends at 0.8.
        let sessions = vec![Session::on(vec![0]).floor(0.6), Session::on(vec![0])];
        let rates = weighted_max_min(&[1.0], &sessions);
        assert!(close(rates[0], 0.8));
        assert!(close(rates[1], 0.2));
    }

    #[test]
    #[should_panic(expected = "infeasible floors")]
    fn over_committed_floors_panic() {
        let sessions = vec![
            Session::on(vec![0]).floor(0.7),
            Session::on(vec![0]).floor(0.7),
        ];
        let _ = weighted_max_min(&[1.0], &sessions);
    }

    #[test]
    fn empty_inputs() {
        assert!(max_min_fair(&[1.0], &[]).is_empty());
        let (r, m) = phantom_prediction(&[10.0], &[], 5.0);
        assert!(r.is_empty());
        // with no real sessions the phantom eats the whole link
        assert!(close(m[0], 10.0));
    }

    #[test]
    fn zero_capacity_link_gives_zero_rates() {
        let rates = max_min_fair(&[0.0], &[vec![0], vec![0]]);
        assert_eq!(rates, vec![0.0, 0.0]);
    }

    #[test]
    fn three_link_chain_with_cross_traffic() {
        // Chain of 3 links cap 1; long session over all; one cross session
        // per link. Max-min: 0.5 everywhere.
        let caps = [1.0, 1.0, 1.0];
        let paths = vec![vec![0, 1, 2], vec![0], vec![1], vec![2]];
        let rates = max_min_fair(&caps, &paths);
        for r in &rates {
            assert!(close(*r, 0.5));
        }
    }

    #[test]
    fn heterogeneous_chain_water_fills() {
        // Link caps 1.0 and 0.4; long session over both, cross on each.
        // Bottleneck link 1: long and cross1 get 0.2 each; cross0 then gets
        // 0.8 on link 0.
        let rates = max_min_fair(&[1.0, 0.4], &[vec![0, 1], vec![0], vec![1]]);
        assert!(close(rates[0], 0.2));
        assert!(close(rates[1], 0.8));
        assert!(close(rates[2], 0.2));
    }
}
