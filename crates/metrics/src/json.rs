//! Minimal JSON emission helpers.
//!
//! The workspace builds without serde, so every JSON artifact (bench
//! records, manifests, metrics snapshots) is emitted by hand through
//! these two functions, keeping escaping rules in one place.

use std::fmt::Write as _;

/// Format an `f64` as a JSON value. JSON has no NaN/Infinity literals;
/// they map to `null`.
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Quote and escape a string as a JSON string literal.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_non_finite_floats_are_escaped() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(0.25), "0.25");
    }
}
