//! A registry of named counters, gauges and histograms.
//!
//! Nodes (`atm::Port`, `atm::Switch`, `tcp::RPort`, …) register metrics
//! at build time and hold cheap [`CounterHandle`]/[`GaugeHandle`] clones;
//! the registry keeps the authoritative list and renders it after the
//! run as a Prometheus-style text snapshot and a JSON summary, both
//! stamped with the run's [`Manifest`].
//!
//! Gauges are *sampled series*: nodes set them on their own sim-time
//! cadence (the measurement interval), so a snapshot also carries each
//! gauge's mean/max over the run, not just the final value. Handles are
//! `Arc`-based (counters are atomics, series sit behind uncontended
//! mutexes) so nodes holding them can run on intra-run shard worker
//! threads; the registry itself stays with the run's driving thread,
//! and parallel sweeps still give each worker its own registry.

use crate::json::{json_f64, json_str};
use crate::manifest::Manifest;
use phantom_sim::stats::{Histogram, TimeSeries};
use phantom_sim::SimTime;
use std::cell::RefCell;
use std::fmt::Write as _;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Handle to a registered monotonic counter.
#[derive(Clone, Debug)]
pub struct CounterHandle(Arc<AtomicU64>);

impl CounterHandle {
    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Handle to a registered gauge (a sampled time series).
#[derive(Clone, Debug)]
pub struct GaugeHandle(Arc<Mutex<TimeSeries>>);

impl GaugeHandle {
    /// Record the gauge's value at sim time `t` (non-decreasing).
    pub fn set(&self, t: SimTime, v: f64) {
        self.0.lock().expect("gauge poisoned").push(t, v);
    }

    /// The most recent sample, if any.
    pub fn last(&self) -> Option<f64> {
        self.0.lock().expect("gauge poisoned").last()
    }
}

/// Handle to a registered histogram.
#[derive(Clone, Debug)]
pub struct HistogramHandle(Arc<Mutex<Histogram>>);

impl HistogramHandle {
    /// Record one observation `v >= 0`.
    pub fn record(&self, v: f64) {
        self.0.lock().expect("histogram poisoned").record(v);
    }
}

enum Slot {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<Mutex<TimeSeries>>),
    Histogram(Arc<Mutex<Histogram>>),
}

struct Metric {
    name: String,
    labels: Vec<(String, String)>,
    slot: Slot,
}

/// The content-type a Prometheus scraper expects for the text
/// exposition format rendered by [`Registry::to_prometheus`].
pub const PROMETHEUS_CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// Fallback `# HELP` text for families registered without
/// [`Registry::set_help`].
const NO_HELP: &str = "phantom metric (no help registered)";

/// The metric registry for one run. Cloning shares the underlying list.
#[derive(Clone, Default)]
pub struct Registry {
    metrics: Rc<RefCell<Vec<Metric>>>,
    help: Rc<RefCell<Vec<(String, String)>>>,
}

fn check_name(name: &str) {
    assert!(
        !name.is_empty()
            && name
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
            && !name.starts_with(|c: char| c.is_ascii_digit()),
        "metric name `{name}` must be snake_case ASCII"
    );
}

fn own_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    labels
        .iter()
        .map(|(k, v)| {
            check_name(k);
            (k.to_string(), v.to_string())
        })
        .collect()
}

fn label_suffix(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}={}", prom_label_value(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

fn prom_label_value(v: &str) -> String {
    let escaped = v
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n");
    format!("\"{escaped}\"")
}

fn labels_json(labels: &[(String, String)]) -> String {
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}:{}", json_str(k), json_str(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a counter named `name` with `labels`; returns its handle.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> CounterHandle {
        check_name(name);
        let cell = Arc::new(AtomicU64::new(0));
        self.metrics.borrow_mut().push(Metric {
            name: name.to_string(),
            labels: own_labels(labels),
            slot: Slot::Counter(Arc::clone(&cell)),
        });
        CounterHandle(cell)
    }

    /// Register a gauge named `name` with `labels`; returns its handle.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> GaugeHandle {
        check_name(name);
        let series = Arc::new(Mutex::new(TimeSeries::new()));
        self.metrics.borrow_mut().push(Metric {
            name: name.to_string(),
            labels: own_labels(labels),
            slot: Slot::Gauge(Arc::clone(&series)),
        });
        GaugeHandle(series)
    }

    /// Register a histogram of `nbins` bins of width `bin_width`.
    pub fn histogram(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        bin_width: f64,
        nbins: usize,
    ) -> HistogramHandle {
        check_name(name);
        let hist = Arc::new(Mutex::new(Histogram::new(bin_width, nbins)));
        self.metrics.borrow_mut().push(Metric {
            name: name.to_string(),
            labels: own_labels(labels),
            slot: Slot::Histogram(Arc::clone(&hist)),
        });
        HistogramHandle(hist)
    }

    /// Attach `# HELP` text to the metric family `name` (all samples of
    /// the family share it, per the exposition format). Last call wins;
    /// families without help render the explicit fallback text, so a
    /// scraper always sees exactly one `# HELP` line per family.
    pub fn set_help(&self, name: &str, help: &str) {
        check_name(name);
        let mut table = self.help.borrow_mut();
        match table.iter_mut().find(|(n, _)| n == name) {
            Some(slot) => slot.1 = help.to_string(),
            None => table.push((name.to_string(), help.to_string())),
        }
    }

    /// The help text for family `name` — registered or fallback —
    /// escaped for the exposition format (`\\` and `\n`).
    fn help_for(&self, name: &str) -> String {
        let table = self.help.borrow();
        let text = table
            .iter()
            .find(|(n, _)| n == name)
            .map_or(NO_HELP, |(_, h)| h.as_str());
        text.replace('\\', "\\\\").replace('\n', "\\n")
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.borrow().len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.metrics.borrow().is_empty()
    }

    /// Render a Prometheus-style text snapshot (`phantom-metrics/1`).
    /// The manifest rides along as a leading comment. Histograms are
    /// rendered in the native exposition format: *cumulative*
    /// `_bucket{le="…"}` counts (the underlying bins are coalesced to at
    /// most ten boundaries so the snapshot stays readable), a `+Inf`
    /// bucket that is always present and equals `_count` (it absorbs
    /// the overflow bin), then `_sum` and `_count`.
    ///
    /// Samples are grouped by metric family (in first-registration
    /// order) — the text format requires every sample of a family to sit
    /// consecutively under a single `# HELP`/`# TYPE` pair, even when
    /// nodes registered the families interleaved. Serve the result with
    /// [`PROMETHEUS_CONTENT_TYPE`].
    pub fn to_prometheus(&self, manifest: &Manifest) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# manifest: {}", manifest.to_json());
        let metrics = self.metrics.borrow();
        let mut names: Vec<&str> = Vec::new();
        for m in metrics.iter() {
            if !names.contains(&m.name.as_str()) {
                names.push(&m.name);
            }
        }
        for name in names {
            let mut typed = false;
            for m in metrics.iter().filter(|m| m.name == name) {
                let suffix = label_suffix(&m.labels);
                match &m.slot {
                    Slot::Counter(c) => {
                        if !typed {
                            let _ = writeln!(out, "# HELP {name} {}", self.help_for(name));
                            let _ = writeln!(out, "# TYPE {name} counter");
                            typed = true;
                        }
                        let _ = writeln!(out, "{name}{suffix} {}", c.load(Ordering::Relaxed));
                    }
                    Slot::Gauge(g) => {
                        if !typed {
                            let _ = writeln!(out, "# HELP {name} {}", self.help_for(name));
                            let _ = writeln!(out, "# TYPE {name} gauge");
                            typed = true;
                        }
                        let g = g.lock().expect("gauge poisoned");
                        let _ =
                            writeln!(out, "{name}{suffix} {}", json_f64(g.last().unwrap_or(0.0)));
                    }
                    Slot::Histogram(h) => {
                        if !typed {
                            let _ = writeln!(out, "# HELP {name} {}", self.help_for(name));
                            let _ = writeln!(out, "# TYPE {name} histogram");
                            typed = true;
                        }
                        let h = h.lock().expect("histogram poisoned");
                        let bins = h.bins();
                        // Coalesce fine bins to at most ten exported
                        // boundaries; counts are cumulative per the
                        // exposition format. Boundaries derive from the
                        // *logical* bin count — `bins()` stores only the
                        // materialized prefix and trailing bins read 0.
                        let step = h.nbins().div_ceil(10).max(1);
                        let mut acc = 0u64;
                        let mut lo = 0usize;
                        while lo < h.nbins() {
                            let hi = (lo + step).min(h.nbins());
                            acc += (lo..hi.min(bins.len())).map(|i| bins[i]).sum::<u64>();
                            let edge = (hi as f64) * h.bin_width();
                            let mut labels = m.labels.clone();
                            labels.push(("le".to_string(), json_f64(edge).to_string()));
                            let _ = writeln!(out, "{name}_bucket{} {acc}", label_suffix(&labels));
                            lo = hi;
                        }
                        // +Inf is mandatory and equals the total count
                        // (it absorbs the overflow bin).
                        let mut labels = m.labels.clone();
                        labels.push(("le".to_string(), "+Inf".to_string()));
                        let _ =
                            writeln!(out, "{name}_bucket{} {}", label_suffix(&labels), h.count());
                        let _ = writeln!(out, "{name}_sum{suffix} {}", json_f64(h.sum()));
                        let _ = writeln!(out, "{name}_count{suffix} {}", h.count());
                    }
                }
            }
        }
        out
    }

    /// Render a JSON summary snapshot (`phantom-metrics/1`) with the
    /// manifest embedded. Gauges carry last/mean/max over the sampled
    /// series; histograms carry count/mean/quantiles/max.
    pub fn to_json(&self, manifest: &Manifest) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": {},", json_str(&manifest.schema));
        let _ = writeln!(out, "  \"manifest\": {},", manifest.to_json());
        out.push_str("  \"metrics\": [\n");
        let metrics = self.metrics.borrow();
        for (i, m) in metrics.iter().enumerate() {
            let head = format!(
                "    {{\"name\": {}, \"labels\": {}",
                json_str(&m.name),
                labels_json(&m.labels)
            );
            let body = match &m.slot {
                Slot::Counter(c) => {
                    format!(
                        "{head}, \"type\": \"counter\", \"value\": {}}}",
                        c.load(Ordering::Relaxed)
                    )
                }
                Slot::Gauge(g) => {
                    let g = g.lock().expect("gauge poisoned");
                    format!(
                        "{head}, \"type\": \"gauge\", \"last\": {}, \"mean\": {}, \"max\": {}, \"samples\": {}}}",
                        json_f64(g.last().unwrap_or(0.0)),
                        json_f64(g.mean()),
                        json_f64(g.max()),
                        g.len()
                    )
                }
                Slot::Histogram(h) => {
                    let h = h.lock().expect("histogram poisoned");
                    format!(
                        "{head}, \"type\": \"histogram\", \"count\": {}, \"mean\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}}}",
                        h.count(),
                        json_f64(h.mean()),
                        json_f64(h.quantile(0.5)),
                        json_f64(h.quantile(0.9)),
                        json_f64(h.quantile(0.99)),
                        json_f64(h.max())
                    )
                }
            };
            out.push_str(&body);
            out.push_str(if i + 1 < metrics.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::METRICS_SCHEMA;

    fn manifest() -> Manifest {
        Manifest::new(METRICS_SCHEMA, "fig2", 1996, "cfg")
    }

    #[test]
    fn counters_and_gauges_round_trip() {
        let reg = Registry::new();
        let c = reg.counter("cells_dropped_total", &[("trunk", "s1->s2")]);
        let g = reg.gauge("trunk_queue_cells", &[("trunk", "s1->s2")]);
        c.inc();
        c.add(2);
        g.set(SimTime::from_millis(1), 5.0);
        g.set(SimTime::from_millis(2), 9.0);
        assert_eq!(c.get(), 3);
        assert_eq!(g.last(), Some(9.0));
        assert_eq!(reg.len(), 2);

        let prom = reg.to_prometheus(&manifest());
        assert!(prom.starts_with("# manifest: {\"schema\":\"phantom-metrics/1\""));
        assert!(prom.contains("# TYPE cells_dropped_total counter"));
        assert!(prom.contains("cells_dropped_total{trunk=\"s1->s2\"} 3"));
        assert!(prom.contains("trunk_queue_cells{trunk=\"s1->s2\"} 9"));

        let json = reg.to_json(&manifest());
        assert!(json.contains("\"schema\": \"phantom-metrics/1\""));
        assert!(json.contains("\"manifest\": {\"schema\":"));
        assert!(json.contains("\"value\": 3"));
        assert!(json.contains("\"last\": 9, \"mean\": 7, \"max\": 9, \"samples\": 2"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn histograms_export_cumulative_buckets() {
        let reg = Registry::new();
        let h = reg.histogram("rm_delay_seconds", &[], 0.001, 100);
        for v in [0.0005, 0.0015, 0.0015, 0.0105] {
            h.record(v);
        }
        let prom = reg.to_prometheus(&manifest());
        assert!(prom.contains("# TYPE rm_delay_seconds histogram"));
        // Counts are cumulative: 3 observations below 0.01, all 4 below 0.02.
        assert!(prom.contains("rm_delay_seconds_bucket{le=\"0.01\"} 3"));
        assert!(prom.contains("rm_delay_seconds_bucket{le=\"0.02\"} 4"));
        assert!(prom.contains("rm_delay_seconds_bucket{le=\"+Inf\"} 4"));
        assert!(prom.contains("rm_delay_seconds_count 4"));
        let json = reg.to_json(&manifest());
        assert!(json.contains("\"type\": \"histogram\", \"count\": 4"));
    }

    #[test]
    fn histogram_inf_bucket_absorbs_overflow() {
        let reg = Registry::new();
        let h = reg.histogram("q_cells", &[], 1.0, 4);
        h.record(100.0); // beyond the last bin
        let prom = reg.to_prometheus(&manifest());
        assert!(prom.contains("q_cells_bucket{le=\"4\"} 0"));
        assert!(prom.contains("q_cells_bucket{le=\"+Inf\"} 1"));
        assert!(prom.contains("q_cells_count 1"));
    }

    #[test]
    fn snapshot_interleaved_histograms_and_counters() {
        // Two ports register (histogram, counter) pairs interleaved;
        // pin the exact rendered snapshot (sans manifest line) so the
        // family grouping, cumulative buckets and +Inf stay fixed.
        let reg = Registry::new();
        let h0 = reg.histogram("q_cells", &[("port", "0")], 1.0, 4);
        reg.counter("tx_total", &[("port", "0")]).inc();
        let h1 = reg.histogram("q_cells", &[("port", "1")], 1.0, 4);
        reg.counter("tx_total", &[("port", "1")]).add(2);
        for v in [0.5, 1.5, 2.5] {
            h0.record(v);
        }
        h1.record(9.0); // overflow: visible only in +Inf
        let prom = reg.to_prometheus(&manifest());
        let body: String = prom.lines().skip(1).map(|l| format!("{l}\n")).collect();
        assert_eq!(
            body,
            "\
# HELP q_cells phantom metric (no help registered)
# TYPE q_cells histogram
q_cells_bucket{port=\"0\",le=\"1\"} 1
q_cells_bucket{port=\"0\",le=\"2\"} 2
q_cells_bucket{port=\"0\",le=\"3\"} 3
q_cells_bucket{port=\"0\",le=\"4\"} 3
q_cells_bucket{port=\"0\",le=\"+Inf\"} 3
q_cells_sum{port=\"0\"} 4.5
q_cells_count{port=\"0\"} 3
q_cells_bucket{port=\"1\",le=\"1\"} 0
q_cells_bucket{port=\"1\",le=\"2\"} 0
q_cells_bucket{port=\"1\",le=\"3\"} 0
q_cells_bucket{port=\"1\",le=\"4\"} 0
q_cells_bucket{port=\"1\",le=\"+Inf\"} 1
q_cells_sum{port=\"1\"} 9
q_cells_count{port=\"1\"} 1
# HELP tx_total phantom metric (no help registered)
# TYPE tx_total counter
tx_total{port=\"0\"} 1
tx_total{port=\"1\"} 2
"
        );
    }

    #[test]
    fn type_line_emitted_once_per_name() {
        let reg = Registry::new();
        reg.counter("drops_total", &[("port", "0")]).inc();
        reg.counter("drops_total", &[("port", "1")]).add(2);
        let prom = reg.to_prometheus(&manifest());
        assert_eq!(prom.matches("# TYPE drops_total counter").count(), 1);
        assert!(prom.contains("drops_total{port=\"0\"} 1"));
        assert!(prom.contains("drops_total{port=\"1\"} 2"));
    }

    #[test]
    fn interleaved_registrations_still_group_families() {
        // Two ports each register (tx, q) pairs, so the registration
        // order interleaves the families; the snapshot must regroup them.
        let reg = Registry::new();
        reg.counter("tx_total", &[("port", "0")]).inc();
        reg.gauge("q_cells", &[("port", "0")])
            .set(SimTime::ZERO, 1.0);
        reg.counter("tx_total", &[("port", "1")]).add(5);
        reg.gauge("q_cells", &[("port", "1")])
            .set(SimTime::ZERO, 2.0);
        let prom = reg.to_prometheus(&manifest());
        let tx0 = prom.find("tx_total{port=\"0\"}").unwrap();
        let tx1 = prom.find("tx_total{port=\"1\"}").unwrap();
        let q0 = prom.find("q_cells{port=\"0\"}").unwrap();
        assert!(tx0 < tx1 && tx1 < q0, "families must be consecutive");
        assert_eq!(prom.matches("# TYPE").count(), 2);
    }

    #[test]
    fn every_family_renders_help_and_type_exactly_once() {
        // One registry carrying all three metric kinds, two of them
        // multi-sample families, one with registered help and a
        // newline to escape: each family must render `# HELP` and
        // `# TYPE` exactly once, HELP immediately before TYPE.
        let reg = Registry::new();
        reg.counter("jobs_total", &[("state", "done")]).inc();
        reg.counter("jobs_total", &[("state", "failed")]).inc();
        reg.gauge("queue_depth", &[]).set(SimTime::ZERO, 3.0);
        reg.histogram("run_seconds", &[("worker", "0")], 0.5, 4)
            .record(0.7);
        reg.histogram("run_seconds", &[("worker", "1")], 0.5, 4)
            .record(1.2);
        reg.set_help("jobs_total", "jobs admitted, by terminal state");
        reg.set_help("queue_depth", "first\nsecond \\ line");
        let prom = reg.to_prometheus(&manifest());
        for name in ["jobs_total", "queue_depth", "run_seconds"] {
            assert_eq!(
                prom.matches(&format!("# HELP {name} ")).count(),
                1,
                "{name}: HELP must appear exactly once"
            );
            assert_eq!(
                prom.matches(&format!("# TYPE {name} ")).count(),
                1,
                "{name}: TYPE must appear exactly once"
            );
            let help = prom.find(&format!("# HELP {name} ")).unwrap();
            let ty = prom.find(&format!("# TYPE {name} ")).unwrap();
            assert!(help < ty, "{name}: HELP must precede TYPE");
        }
        assert!(prom.contains("# HELP jobs_total jobs admitted, by terminal state\n"));
        assert!(prom.contains("# HELP queue_depth first\\nsecond \\\\ line\n"));
        assert!(prom.contains("# HELP run_seconds phantom metric (no help registered)\n"));
        assert_eq!(PROMETHEUS_CONTENT_TYPE, "text/plain; version=0.0.4");
    }

    #[test]
    #[should_panic(expected = "snake_case")]
    fn bad_metric_name_rejected() {
        Registry::new().counter("Bad-Name", &[]);
    }

    #[test]
    fn label_values_are_escaped() {
        let reg = Registry::new();
        reg.counter("c_total", &[("path", "a\"b\\c")]).inc();
        let prom = reg.to_prometheus(&manifest());
        assert!(prom.contains("c_total{path=\"a\\\"b\\\\c\"} 1"));
    }
}
