//! Machine-readable benchmark records.
//!
//! The `repro` harness emits one [`BenchRecord`] per invocation as JSON
//! (`BENCH_phantom.json`), so performance can be tracked run-over-run by
//! scripts rather than by eyeballing terminal output. The writer is
//! hand-rolled — the workspace builds without serde — and emits a stable,
//! minimal schema (`phantom-bench/3`): overall runs/sec and events/sec,
//! a provenance manifest, the event-calendar tag, and per-run wall time,
//! event counts and health telemetry (drops, retransmits, queue peak).

use crate::json::{json_f64, json_str};
use crate::manifest::Manifest;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Measurements for one experiment run.
#[derive(Clone, Debug)]
pub struct RunRecord {
    /// Experiment id, e.g. `"fig9"`.
    pub id: String,
    /// Master seed of the run.
    pub seed: u64,
    /// Wall-clock seconds on the worker thread.
    pub wall_secs: f64,
    /// Simulator events dispatched.
    pub events: u64,
    /// Cells/packets dropped during the run (tail + policy + wire).
    pub drops: u64,
    /// TCP segments retransmitted during the run.
    pub retransmits: u64,
    /// Deepest queue observed during the run, in items.
    pub queue_peak: u64,
}

impl RunRecord {
    /// Events per wall-clock second for this run.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.events as f64 / self.wall_secs
        } else {
            0.0
        }
    }
}

/// One `repro` invocation's worth of measurements.
#[derive(Clone, Debug)]
pub struct BenchRecord {
    /// Provenance of the batch (scenario set, seed, config hash, rev).
    pub manifest: Manifest,
    /// Worker threads the batch ran on.
    pub jobs: usize,
    /// Event-calendar implementation tag (e.g.
    /// `"timer-wheel/4096x8192ns"`, from `phantom_sim::CALENDAR`), so a
    /// recorded number is never compared against one from a different
    /// calendar without noticing.
    pub calendar: String,
    /// Wall-clock seconds for the whole batch.
    pub total_wall_secs: f64,
    /// Per-run measurements, in invocation order.
    pub runs: Vec<RunRecord>,
}

impl BenchRecord {
    /// Completed runs per wall-clock second across the batch.
    pub fn runs_per_sec(&self) -> f64 {
        if self.total_wall_secs > 0.0 {
            self.runs.len() as f64 / self.total_wall_secs
        } else {
            0.0
        }
    }

    /// Aggregate events per wall-clock second across the batch.
    pub fn events_per_sec(&self) -> f64 {
        if self.total_wall_secs > 0.0 {
            self.runs.iter().map(|r| r.events).sum::<u64>() as f64 / self.total_wall_secs
        } else {
            0.0
        }
    }

    /// Serialize as a JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema\": {},", json_str(&self.manifest.schema));
        let _ = writeln!(s, "  \"manifest\": {},", self.manifest.to_json());
        let _ = writeln!(s, "  \"jobs\": {},", self.jobs);
        let _ = writeln!(s, "  \"calendar\": {},", json_str(&self.calendar));
        let _ = writeln!(
            s,
            "  \"total_wall_secs\": {},",
            json_f64(self.total_wall_secs)
        );
        let _ = writeln!(s, "  \"runs_per_sec\": {},", json_f64(self.runs_per_sec()));
        let _ = writeln!(
            s,
            "  \"events_total\": {},",
            self.runs.iter().map(|r| r.events).sum::<u64>()
        );
        let _ = writeln!(
            s,
            "  \"events_per_sec\": {},",
            json_f64(self.events_per_sec())
        );
        s.push_str("  \"runs\": [\n");
        for (i, r) in self.runs.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"id\": {}, \"seed\": {}, \"wall_secs\": {}, \"events\": {}, \"events_per_sec\": {}, \"drops\": {}, \"retransmits\": {}, \"queue_peak\": {}}}",
                json_str(&r.id),
                r.seed,
                json_f64(r.wall_secs),
                r.events,
                json_f64(r.events_per_sec()),
                r.drops,
                r.retransmits,
                r.queue_peak
            );
            s.push_str(if i + 1 < self.runs.len() { ",\n" } else { "\n" });
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Write the JSON document to `path`.
    pub fn write(&self, path: &Path) -> io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(path, self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::BENCH_SCHEMA;

    fn sample() -> BenchRecord {
        BenchRecord {
            manifest: Manifest::new(BENCH_SCHEMA, "repro", 1996, "fig2,table1"),
            jobs: 4,
            calendar: "timer-wheel/test".into(),
            total_wall_secs: 2.0,
            runs: vec![
                RunRecord {
                    id: "fig2".into(),
                    seed: 1996,
                    wall_secs: 0.5,
                    events: 1_000_000,
                    drops: 12,
                    retransmits: 0,
                    queue_peak: 88,
                },
                RunRecord {
                    id: "table1".into(),
                    seed: 1996,
                    wall_secs: 1.5,
                    events: 3_000_000,
                    drops: 0,
                    retransmits: 7,
                    queue_peak: 40,
                },
            ],
        }
    }

    #[test]
    fn rates_are_derived_from_totals() {
        let r = sample();
        assert_eq!(r.runs_per_sec(), 1.0);
        assert_eq!(r.events_per_sec(), 2_000_000.0);
        assert_eq!(r.runs[0].events_per_sec(), 2_000_000.0);
    }

    #[test]
    fn json_is_well_formed_and_complete() {
        let j = sample().to_json();
        assert!(j.starts_with('{') && j.ends_with("}\n"));
        assert!(j.contains("\"schema\": \"phantom-bench/3\""));
        assert!(j.contains("\"manifest\": {\"schema\":\"phantom-bench/3\""));
        assert!(j.contains("\"jobs\": 4"));
        assert!(j.contains("\"calendar\": \"timer-wheel/test\""));
        assert!(j.contains("\"events_total\": 4000000"));
        assert!(j.contains("{\"id\": \"fig2\", \"seed\": 1996"));
        assert!(j.contains("\"drops\": 12"));
        assert!(j.contains("\"retransmits\": 7"));
        assert!(j.contains("\"queue_peak\": 88"));
        // crude balance check, good enough for a fixed schema
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn write_creates_parent_directories() {
        let dir = std::env::temp_dir().join("phantom-bench-record-test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested").join("BENCH_phantom.json");
        sample().write(&path).unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        assert_eq!(back, sample().to_json());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
