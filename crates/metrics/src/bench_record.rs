//! Machine-readable benchmark records.
//!
//! The `repro` harness emits one [`BenchRecord`] per invocation as JSON
//! (`BENCH_phantom.json`), so performance can be tracked run-over-run by
//! scripts rather than by eyeballing terminal output. The writer is
//! hand-rolled — the workspace builds without serde — and emits a stable,
//! minimal schema (`phantom-bench/5`): overall runs/sec and events/sec,
//! a provenance manifest, the event-calendar tag, per-run wall time,
//! event counts and health telemetry (drops, retransmits, queue peak),
//! plus an optional [`ScaleRecord`] — a memory-and-throughput probe of
//! one large generated scene (sessions-per-GB, events/s at scale) — and
//! an optional `shard_scaling` array of [`ShardScalePoint`]s: the scale
//! scene's events/s re-measured at several `--shards` counts.

use crate::json::{json_f64, json_str};
use crate::manifest::Manifest;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Measurements for one experiment run.
#[derive(Clone, Debug)]
pub struct RunRecord {
    /// Experiment id, e.g. `"fig9"`.
    pub id: String,
    /// Master seed of the run.
    pub seed: u64,
    /// Wall-clock seconds on the worker thread.
    pub wall_secs: f64,
    /// Simulator events dispatched.
    pub events: u64,
    /// Cells/packets dropped during the run (tail + policy + wire).
    pub drops: u64,
    /// TCP segments retransmitted during the run.
    pub retransmits: u64,
    /// Deepest queue observed during the run, in items.
    pub queue_peak: u64,
}

impl RunRecord {
    /// Events per wall-clock second for this run.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.events as f64 / self.wall_secs
        } else {
            0.0
        }
    }
}

/// Memory-and-throughput measurements for one large generated scene,
/// the `scale` object of `phantom-bench/4`.
///
/// Collected by building and running the scene once on a quiet thread:
/// resident-set growth over the whole build+run (`None` when `/proc`
/// is unreadable on this platform) alongside the engine's own
/// accounting of node state, so the two can be compared — RSS includes
/// the event calendar, port queues and allocator slack that
/// `arena_bytes` deliberately excludes.
#[derive(Clone, Debug)]
pub struct ScaleRecord {
    /// Scene id, e.g. `"metro-100k"`.
    pub scene: String,
    /// Master seed of the probe run.
    pub seed: u64,
    /// Sessions in the compiled scene.
    pub sessions: u64,
    /// Engine nodes in the compiled scene.
    pub nodes: u64,
    /// Simulator events dispatched by the probe run.
    pub events: u64,
    /// Wall-clock seconds for the probe run (build excluded).
    pub wall_secs: f64,
    /// Resident-set growth across build + run, in bytes; `None` when
    /// RSS is unreadable on this platform (renders as JSON `null`).
    pub rss_delta_bytes: Option<u64>,
    /// The engine's own accounting of per-node state
    /// (`Engine::nodes_footprint_bytes`) after the run.
    pub arena_bytes: u64,
    /// Cells/packets dropped during the probe run.
    pub drops: u64,
    /// Deepest queue observed during the probe run, in items.
    pub queue_peak: u64,
}

impl ScaleRecord {
    /// Memory charged to one session: RSS growth when measured, the
    /// arena accounting otherwise.
    pub fn bytes_per_session(&self) -> f64 {
        let bytes = match self.rss_delta_bytes {
            Some(rss) if rss > 0 => rss,
            _ => self.arena_bytes,
        };
        if self.sessions > 0 {
            bytes as f64 / self.sessions as f64
        } else {
            0.0
        }
    }

    /// Sessions that fit in a gigabyte at the measured per-session cost —
    /// the headline capacity number of the scale gate.
    pub fn sessions_per_gb(&self) -> f64 {
        let per = self.bytes_per_session();
        if per > 0.0 {
            1e9 / per
        } else {
            0.0
        }
    }

    /// Events per wall-clock second for the probe run.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.events as f64 / self.wall_secs
        } else {
            0.0
        }
    }

    /// Render as a single-line JSON object (the `scale` value).
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"scene\": {}, \"seed\": {}, \"sessions\": {}, \"nodes\": {}, \"events\": {}, \"wall_secs\": {}, \"events_per_sec\": {}, \"rss_delta_bytes\": {}, \"arena_bytes\": {}, \"bytes_per_session\": {}, \"sessions_per_gb\": {}, \"drops\": {}, \"queue_peak\": {}}}",
            json_str(&self.scene),
            self.seed,
            self.sessions,
            self.nodes,
            self.events,
            json_f64(self.wall_secs),
            json_f64(self.events_per_sec()),
            match self.rss_delta_bytes {
                Some(b) => b.to_string(),
                None => "null".to_string(),
            },
            self.arena_bytes,
            json_f64(self.bytes_per_session()),
            json_f64(self.sessions_per_gb()),
            self.drops,
            self.queue_peak
        )
    }
}

/// One point of the intra-run shard-scaling probe: the scale scene run
/// once at a fixed `--shards` count. An element of the `shard_scaling`
/// array introduced by `phantom-bench/5`.
#[derive(Clone, Debug)]
pub struct ShardScalePoint {
    /// Shard count of this run (1 = sharded engine, one worker).
    pub shards: usize,
    /// Scene id, e.g. `"metro-100k"`.
    pub scene: String,
    /// Master seed of the probe run.
    pub seed: u64,
    /// Simulator events dispatched (identical at every shard count —
    /// anything else is a determinism bug).
    pub events: u64,
    /// Wall-clock seconds for the run (build excluded).
    pub wall_secs: f64,
}

impl ShardScalePoint {
    /// Events per wall-clock second at this shard count.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.events as f64 / self.wall_secs
        } else {
            0.0
        }
    }

    /// Render as a single-line JSON object (one `shard_scaling` element).
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"shards\": {}, \"scene\": {}, \"seed\": {}, \"events\": {}, \"wall_secs\": {}, \"events_per_sec\": {}}}",
            self.shards,
            json_str(&self.scene),
            self.seed,
            self.events,
            json_f64(self.wall_secs),
            json_f64(self.events_per_sec())
        )
    }
}

/// One `repro` invocation's worth of measurements.
#[derive(Clone, Debug)]
pub struct BenchRecord {
    /// Provenance of the batch (scenario set, seed, config hash, rev).
    pub manifest: Manifest,
    /// Worker threads the batch ran on.
    pub jobs: usize,
    /// Event-calendar implementation tag (e.g.
    /// `"timer-wheel/4096x8192ns"`, from `phantom_sim::CALENDAR`), so a
    /// recorded number is never compared against one from a different
    /// calendar without noticing.
    pub calendar: String,
    /// Wall-clock seconds for the whole batch.
    pub total_wall_secs: f64,
    /// Per-run measurements, in invocation order.
    pub runs: Vec<RunRecord>,
    /// Scale probe of one large generated scene, when `--scale` ran.
    pub scale: Option<ScaleRecord>,
    /// Intra-run shard-scaling points (`--shard-scaling`): the scale
    /// scene re-run at each shard count. Empty when the probe didn't run.
    pub shard_scaling: Vec<ShardScalePoint>,
}

impl BenchRecord {
    /// Completed runs per wall-clock second across the batch.
    pub fn runs_per_sec(&self) -> f64 {
        if self.total_wall_secs > 0.0 {
            self.runs.len() as f64 / self.total_wall_secs
        } else {
            0.0
        }
    }

    /// Aggregate events per wall-clock second across the batch.
    pub fn events_per_sec(&self) -> f64 {
        if self.total_wall_secs > 0.0 {
            self.runs.iter().map(|r| r.events).sum::<u64>() as f64 / self.total_wall_secs
        } else {
            0.0
        }
    }

    /// Serialize as a JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema\": {},", json_str(&self.manifest.schema));
        let _ = writeln!(s, "  \"manifest\": {},", self.manifest.to_json());
        let _ = writeln!(s, "  \"jobs\": {},", self.jobs);
        let _ = writeln!(s, "  \"calendar\": {},", json_str(&self.calendar));
        let _ = writeln!(
            s,
            "  \"total_wall_secs\": {},",
            json_f64(self.total_wall_secs)
        );
        let _ = writeln!(s, "  \"runs_per_sec\": {},", json_f64(self.runs_per_sec()));
        let _ = writeln!(
            s,
            "  \"events_total\": {},",
            self.runs.iter().map(|r| r.events).sum::<u64>()
        );
        let _ = writeln!(
            s,
            "  \"events_per_sec\": {},",
            json_f64(self.events_per_sec())
        );
        s.push_str("  \"runs\": [\n");
        for (i, r) in self.runs.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"id\": {}, \"seed\": {}, \"wall_secs\": {}, \"events\": {}, \"events_per_sec\": {}, \"drops\": {}, \"retransmits\": {}, \"queue_peak\": {}}}",
                json_str(&r.id),
                r.seed,
                json_f64(r.wall_secs),
                r.events,
                json_f64(r.events_per_sec()),
                r.drops,
                r.retransmits,
                r.queue_peak
            );
            s.push_str(if i + 1 < self.runs.len() { ",\n" } else { "\n" });
        }
        // Close the runs array, then append the optional trailing
        // blocks in a fixed order: `scale`, then `shard_scaling`.
        let mut tail: Vec<String> = Vec::new();
        if let Some(scale) = &self.scale {
            tail.push(format!("  \"scale\": {}", scale.to_json_line()));
        }
        if !self.shard_scaling.is_empty() {
            let mut block = String::from("  \"shard_scaling\": [\n");
            for (i, p) in self.shard_scaling.iter().enumerate() {
                block.push_str("    ");
                block.push_str(&p.to_json_line());
                block.push_str(if i + 1 < self.shard_scaling.len() {
                    ",\n"
                } else {
                    "\n"
                });
            }
            block.push_str("  ]");
            tail.push(block);
        }
        if tail.is_empty() {
            s.push_str("  ]\n}\n");
        } else {
            s.push_str("  ],\n");
            s.push_str(&tail.join(",\n"));
            s.push_str("\n}\n");
        }
        s
    }

    /// Write the JSON document to `path`.
    pub fn write(&self, path: &Path) -> io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(path, self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::BENCH_SCHEMA;

    fn sample() -> BenchRecord {
        BenchRecord {
            manifest: Manifest::new(BENCH_SCHEMA, "repro", 1996, "fig2,table1"),
            jobs: 4,
            calendar: "timer-wheel/test".into(),
            total_wall_secs: 2.0,
            runs: vec![
                RunRecord {
                    id: "fig2".into(),
                    seed: 1996,
                    wall_secs: 0.5,
                    events: 1_000_000,
                    drops: 12,
                    retransmits: 0,
                    queue_peak: 88,
                },
                RunRecord {
                    id: "table1".into(),
                    seed: 1996,
                    wall_secs: 1.5,
                    events: 3_000_000,
                    drops: 0,
                    retransmits: 7,
                    queue_peak: 40,
                },
            ],
            scale: None,
            shard_scaling: Vec::new(),
        }
    }

    fn sample_scale() -> ScaleRecord {
        ScaleRecord {
            scene: "metro-100k".into(),
            seed: 1996,
            sessions: 100_000,
            nodes: 300_052,
            events: 10_000_000,
            wall_secs: 4.0,
            rss_delta_bytes: Some(2_000_000_000),
            arena_bytes: 50_000_000,
            drops: 123,
            queue_peak: 16_384,
        }
    }

    #[test]
    fn rates_are_derived_from_totals() {
        let r = sample();
        assert_eq!(r.runs_per_sec(), 1.0);
        assert_eq!(r.events_per_sec(), 2_000_000.0);
        assert_eq!(r.runs[0].events_per_sec(), 2_000_000.0);
    }

    #[test]
    fn json_is_well_formed_and_complete() {
        let j = sample().to_json();
        assert!(j.starts_with('{') && j.ends_with("}\n"));
        assert!(j.contains("\"schema\": \"phantom-bench/5\""));
        assert!(j.contains("\"manifest\": {\"schema\":\"phantom-bench/5\""));
        assert!(j.contains("\"jobs\": 4"));
        assert!(j.contains("\"calendar\": \"timer-wheel/test\""));
        assert!(j.contains("\"events_total\": 4000000"));
        assert!(j.contains("{\"id\": \"fig2\", \"seed\": 1996"));
        assert!(j.contains("\"drops\": 12"));
        assert!(j.contains("\"retransmits\": 7"));
        assert!(j.contains("\"queue_peak\": 88"));
        // crude balance check, good enough for a fixed schema
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        // no scale probe -> no scale key; no shard probe -> no array
        assert!(!j.contains("\"scale\""));
        assert!(!j.contains("\"shard_scaling\""));
    }

    #[test]
    fn scale_derives_capacity_from_rss_with_arena_fallback() {
        let mut s = sample_scale();
        // 2 GB across 100k sessions: 20 kB each, 50k sessions/GB.
        assert_eq!(s.bytes_per_session(), 20_000.0);
        assert_eq!(s.sessions_per_gb(), 50_000.0);
        assert_eq!(s.events_per_sec(), 2_500_000.0);
        // RSS unreadable -> fall back to the engine's own accounting,
        // whether the probe failed (None) or measured no growth (0).
        s.rss_delta_bytes = None;
        assert_eq!(s.bytes_per_session(), 500.0);
        assert_eq!(s.sessions_per_gb(), 2_000_000.0);
        s.rss_delta_bytes = Some(0);
        assert_eq!(s.bytes_per_session(), 500.0);
    }

    #[test]
    fn unreadable_rss_renders_as_null() {
        let mut s = sample_scale();
        s.rss_delta_bytes = None;
        let line = s.to_json_line();
        assert!(line.contains("\"rss_delta_bytes\": null"));
        assert!(line.contains("\"bytes_per_session\": 500"));
    }

    #[test]
    fn scale_json_is_a_single_line_with_derived_fields() {
        let line = sample_scale().to_json_line();
        assert!(!line.contains('\n'));
        assert!(line.starts_with("{\"scene\": \"metro-100k\""));
        assert!(line.contains("\"sessions\": 100000"));
        assert!(line.contains("\"events_per_sec\": 2500000"));
        assert!(line.contains("\"bytes_per_session\": 20000"));
        assert!(line.contains("\"sessions_per_gb\": 50000"));
        assert!(line.contains("\"queue_peak\": 16384"));

        let mut rec = sample();
        rec.scale = Some(sample_scale());
        let j = rec.to_json();
        assert!(j.contains("\n  \"scale\": {\"scene\": \"metro-100k\""));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn shard_scaling_renders_one_point_per_line_after_scale() {
        let p1 = ShardScalePoint {
            shards: 1,
            scene: "metro-100k".into(),
            seed: 1996,
            events: 10_000_000,
            wall_secs: 5.0,
        };
        assert_eq!(p1.events_per_sec(), 2_000_000.0);
        let line = p1.to_json_line();
        assert!(!line.contains('\n'));
        assert!(line.starts_with("{\"shards\": 1, \"scene\": \"metro-100k\""));
        assert!(line.contains("\"events_per_sec\": 2000000"));

        let mut rec = sample();
        rec.scale = Some(sample_scale());
        rec.shard_scaling = vec![
            p1,
            ShardScalePoint {
                shards: 4,
                scene: "metro-100k".into(),
                seed: 1996,
                events: 10_000_000,
                wall_secs: 2.0,
            },
        ];
        let j = rec.to_json();
        assert!(j.contains("\n  \"scale\": {\"scene\": \"metro-100k\""));
        assert!(j.contains("\n  \"shard_scaling\": [\n"));
        assert!(j.contains("\n    {\"shards\": 1, "));
        assert!(j.contains("\n    {\"shards\": 4, "));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());

        // shard_scaling without a scale probe still closes cleanly
        let mut rec2 = sample();
        rec2.shard_scaling = vec![ShardScalePoint {
            shards: 2,
            scene: "metro-100k".into(),
            seed: 1,
            events: 100,
            wall_secs: 1.0,
        }];
        let j2 = rec2.to_json();
        assert!(!j2.contains("\"scale\""));
        assert!(j2.contains("  ],\n  \"shard_scaling\": [\n"));
        assert_eq!(j2.matches('{').count(), j2.matches('}').count());
        assert_eq!(j2.matches('[').count(), j2.matches(']').count());
    }

    #[test]
    fn write_creates_parent_directories() {
        let dir = std::env::temp_dir().join("phantom-bench-record-test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested").join("BENCH_phantom.json");
        sample().write(&path).unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        assert_eq!(back, sample().to_json());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
