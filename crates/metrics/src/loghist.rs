//! Log-bucketed integer histogram (HDR-style) for queue occupancies.
//!
//! Queue lengths span 0..~10⁵ cells and their tail matters more than
//! their mode, so a fixed-width [`phantom_sim::stats::Histogram`] either
//! wastes bins on the tail or loses the head. [`LogHistogram`] instead
//! uses HdrHistogram-style buckets: values below 16 are exact, larger
//! values share 16 sub-buckets per power of two, bounding the relative
//! quantile error at `1/16` (~6%) with a few KiB of state regardless of
//! range. Recording is constant-time and allocation-free after the
//! first sample in a magnitude, which is what the streaming analyzer
//! needs for its constant-memory guarantee.

/// Log-bucketed histogram over `u64` observations.
///
/// Quantiles are reported as the *upper edge* of the bucket holding the
/// requested rank (clamped to the exact observed maximum), so reported
/// percentiles never understate the data.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LogHistogram {
    /// Bucket counts, indexed by [`bucket_index`]. Grown on demand.
    buckets: Vec<u64>,
    count: u64,
    max: u64,
}

/// Bucket index for value `v`: exact below 16, then 16 sub-buckets per
/// power of two (`msb` is the position of the leading one-bit).
pub fn bucket_index(v: u64) -> usize {
    if v < 16 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as usize;
    let sub = ((v >> (msb - 4)) & 0xF) as usize;
    (msb - 3) * 16 + sub
}

/// Largest value mapping to bucket `idx` (the bucket's upper edge).
pub fn bucket_upper_edge(idx: usize) -> u64 {
    if idx < 16 {
        return idx as u64;
    }
    let msb = idx / 16 + 3;
    let sub = (idx % 16) as u64;
    let unit = 1u64 << (msb - 4);
    (16 + sub) * unit + (unit - 1)
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation.
    pub fn record(&mut self, v: u64) {
        let idx = bucket_index(v);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.count += 1;
        self.max = self.max.max(v);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact largest observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The `q`-quantile (`0 ≤ q ≤ 1`) as the upper edge of the bucket
    /// containing that rank, clamped to the exact maximum. 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q));
        if self.count == 0 {
            return 0;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut acc = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            acc += c;
            if acc >= target {
                return bucket_upper_edge(idx).min(self.max);
            }
        }
        self.max
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (b, &o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..16u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_upper_edge(v as usize), v);
        }
        let mut h = LogHistogram::new();
        for v in [0, 3, 3, 7] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.5), 3);
        assert_eq!(h.quantile(1.0), 7);
        assert_eq!(h.max(), 7);
    }

    #[test]
    fn bucket_edges_tile_the_integers() {
        // Every value maps to a bucket whose upper edge is >= it and
        // whose successor bucket starts right after the edge.
        for v in [16u64, 17, 31, 32, 100, 1000, 65_535, 1 << 40, u64::MAX] {
            let idx = bucket_index(v);
            assert!(bucket_upper_edge(idx) >= v, "v={v}");
            if idx > 0 {
                assert!(bucket_upper_edge(idx - 1) < v, "v={v}");
            }
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        // Upper-edge representative overstates by < 1/16 of the value.
        for v in [20u64, 100, 999, 12_345, 1_000_000] {
            let edge = bucket_upper_edge(bucket_index(v));
            assert!(edge >= v);
            assert!(
                (edge - v) as f64 <= v as f64 / 16.0 + 1.0,
                "v={v} edge={edge}"
            );
        }
    }

    #[test]
    fn quantiles_clamp_to_observed_max() {
        let mut h = LogHistogram::new();
        h.record(1000);
        assert_eq!(h.quantile(0.99), 1000);
        assert_eq!(h.max(), 1000);
    }

    #[test]
    fn empty_is_zeroes() {
        let h = LogHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.9), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        for v in 0..50 {
            a.record(v);
        }
        for v in 50..100 {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 100);
        assert_eq!(a.max(), 99);
        let p50 = a.quantile(0.5);
        assert!((45..=55).contains(&p50), "p50={p50}");
    }
}
