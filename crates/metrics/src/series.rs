//! Trace post-processing: resampling, smoothing, tail statistics.

use phantom_sim::stats::TimeSeries;
use phantom_sim::SimTime;

/// Resample a trace onto a fixed grid `t0, t0+dt, …` up to its last sample,
/// using sample-and-hold interpolation. Grid points before the first sample
/// are skipped.
pub fn resample(ts: &TimeSeries, dt: f64) -> TimeSeries {
    assert!(dt > 0.0);
    let mut out = TimeSeries::new();
    if ts.is_empty() {
        return out;
    }
    let t_end = *ts.times().last().unwrap();
    let mut t = 0.0;
    while t <= t_end + 1e-12 {
        if let Some(v) = ts.value_at(t) {
            out.push(SimTime::from_secs_f64(t), v);
        }
        t += dt;
    }
    out
}

/// Centered moving average over `window` samples (clamped at the edges).
/// `window` is forced odd so the filter is symmetric.
pub fn smooth(ts: &TimeSeries, window: usize) -> TimeSeries {
    let w = window.max(1) | 1; // force odd
    let half = w / 2;
    let n = ts.len();
    let mut out = TimeSeries::new();
    for i in 0..n {
        let lo = i.saturating_sub(half);
        let hi = (i + half + 1).min(n);
        let mean = ts.values()[lo..hi].iter().sum::<f64>() / (hi - lo) as f64;
        out.push(SimTime::from_secs_f64(ts.times()[i]), mean);
    }
    out
}

/// Mean and peak-to-peak of the trace restricted to `t >= from` seconds.
pub fn tail_stats(ts: &TimeSeries, from: f64) -> (f64, f64) {
    let mut sum = 0.0;
    let mut n = 0usize;
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for (t, v) in ts.iter() {
        if t >= from {
            sum += v;
            n += 1;
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    if n == 0 {
        (0.0, 0.0)
    } else {
        (sum / n as f64, hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(pts: &[(u64, f64)]) -> TimeSeries {
        let mut ts = TimeSeries::new();
        for &(ms, v) in pts {
            ts.push(SimTime::from_millis(ms), v);
        }
        ts
    }

    #[test]
    fn resample_holds_last_value() {
        let ts = mk(&[(0, 1.0), (10, 2.0)]);
        let r = resample(&ts, 0.005);
        assert_eq!(r.values(), &[1.0, 1.0, 2.0]);
    }

    #[test]
    fn resample_skips_before_first_sample() {
        let ts = mk(&[(7, 3.0), (10, 4.0)]);
        let r = resample(&ts, 0.005);
        // grid 0, 5ms skipped; 10ms -> 4.0
        assert_eq!(r.values(), &[4.0]);
    }

    #[test]
    fn resample_empty() {
        assert!(resample(&TimeSeries::new(), 0.1).is_empty());
    }

    #[test]
    fn smooth_flattens_alternation() {
        let ts = mk(&[(0, 0.0), (1, 10.0), (2, 0.0), (3, 10.0), (4, 0.0)]);
        let s = smooth(&ts, 3);
        // interior samples average to ~[3.33, 6.67, 3.33...]
        assert!((s.values()[2] - 20.0 / 3.0).abs() < 1e-9);
        assert_eq!(s.len(), ts.len());
    }

    #[test]
    fn smooth_window_one_is_identity() {
        let ts = mk(&[(0, 1.0), (1, 2.0)]);
        let s = smooth(&ts, 1);
        assert_eq!(s.values(), ts.values());
    }

    #[test]
    fn tail_stats_window() {
        let ts = mk(&[(0, 100.0), (10, 4.0), (20, 6.0)]);
        let (mean, p2p) = tail_stats(&ts, 0.005);
        assert_eq!(mean, 5.0);
        assert_eq!(p2p, 2.0);
        assert_eq!(tail_stats(&ts, 1.0), (0.0, 0.0));
    }
}
