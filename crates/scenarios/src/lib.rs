//! # phantom-scenarios — the paper's evaluation, experiment by experiment
//!
//! One module per figure/table of *Phantom: A Simple and Effective Flow
//! Control Scheme* (see DESIGN.md for the experiment index and the
//! provenance of each reconstruction). Every runner builds its topology,
//! runs the deterministic simulation, and returns a structured
//! [`phantom_metrics::ExperimentResult`] (figures) or
//! [`phantom_metrics::Table`] (tables) that the `repro` binary renders.
//!
//! * [`atm`] — Sections 2–3 and 5: convergence, staggered joins, on/off
//!   sources, heterogeneous RTT, parking lot, upstream restrictions,
//!   the canonical u=5 scenario, the NI-bit variant, the adaptive-α
//!   ablation, and the EPRCA/APRC/CAPC baseline figures.
//! * [`tcp`] — Section 4: RTT unfairness under drop-tail and its
//!   reduction by Selective Discard, Selective Source Quench, Selective
//!   RED, ECN marking, and the beat-down (parking-lot) experiment.
//! * [`compare`] — the cross-algorithm summary tables.
//! * [`ablation`] — design-choice sweeps (Δt, α, u, residual mode).
//! * [`registry`] — string-keyed access to every experiment for the CLI.
//! * [`sweep`] — parallel fan-out of independent `(experiment, seed)`
//!   runs across OS threads, with results identical to a serial run.
//! * [`shape`] — per-figure expected-shape tables (fixed points,
//!   capacities, measurement tails) feeding the `phantom-analyze` gate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod atm;
pub mod common;
pub mod compare;
pub mod registry;
pub mod shape;
pub mod sweep;
pub mod tcp;
pub mod tcp_ablation;
pub mod wan;

pub use registry::{all_experiments, run_experiment, suggest_from, suggest_id, ExperimentOutput};
pub use sweep::{run_sweep, SweepJob, SweepRun};
