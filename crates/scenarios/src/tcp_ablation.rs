//! T5 — ablations of the TCP-side Phantom mechanisms.
//!
//! Three axes on the heterogeneous-RTT dumbbell (the F14 topology):
//!
//! * **Utilization factor u** for Selective Discard: higher u leaves a
//!   smaller phantom share, admitting more load before the predicate
//!   bites — goodput up, enforcement (fairness) down.
//! * **Queue gate** (`SelectiveDiscard::with_min_queue`): the paper's
//!   Fig. 18 drops unconditionally; gating on a minimum queue recovers
//!   the goodput lost to drops taken while the link still had headroom.
//! * **CR measurement interval**: the sender's rate stamp must average
//!   at least one RTT (the source stretches the window to `max(interval,
//!   srtt)`); very long windows make the stamp stale and enforcement
//!   sloppy.

use crate::common::TcpMechanism;
use phantom_core::PhantomConfig;
use phantom_metrics::{jain_index, Table};
use phantom_sim::{Engine, SimDuration, SimTime};
use phantom_tcp::network::TrunkIdx;
use phantom_tcp::qdisc::{QueueDiscipline, SelectiveDiscard};
use phantom_tcp::TcpNetworkBuilder;

const RUN_SECS: u64 = 20;
const TAIL: f64 = 10.0;

fn run_dumbbell(
    qdisc: &mut dyn FnMut() -> Box<dyn QueueDiscipline>,
    cr_interval: SimDuration,
    seed: u64,
) -> Vec<f64> {
    let mut b = TcpNetworkBuilder::new().cr_interval(cr_interval);
    let r1 = b.router("r1");
    let r2 = b.router("r2");
    b.trunk(r1, r2, 10.0, SimDuration::from_millis(1));
    b.flow(&[r1, r2], SimTime::ZERO);
    b.flow(&[r1, r2], SimTime::ZERO);
    b.last_flow_access_prop(SimDuration::from_millis(25));
    let mut engine = Engine::new(seed);
    let net = b.build(&mut engine, qdisc);
    engine.run_until(SimTime::from_secs(RUN_SECS));
    let mut out: Vec<f64> = (0..2)
        .map(|f| net.flow_goodput(&engine, f).mean_after(TAIL) * 8.0 / 1e6)
        .collect();
    out.push(net.trunk_queue(&engine, TrunkIdx(0)).mean_after(TAIL));
    out
}

fn row_from(stats: Vec<f64>) -> Vec<f64> {
    let (short, long, q) = (stats[0], stats[1], stats[2]);
    vec![jain_index(&[short, long]), short, long, short + long, q]
}

/// Run T5.
pub fn table_tcp_ablation(seed: u64) -> Table {
    let mut t = Table::new(
        "table5",
        "TCP Selective Discard ablations (RTT dumbbell, 10 Mb/s)",
        &[
            "variant",
            "jain",
            "short_mbps",
            "long_mbps",
            "aggregate",
            "mean_q",
        ],
    );
    let dt10 = SimDuration::from_millis(10);

    // u sweep.
    for u in [2.0, 5.0, 10.0] {
        let cfg = PhantomConfig::paper().with_utilization_factor(u);
        let stats = run_dumbbell(&mut || Box::new(SelectiveDiscard::new(cfg)), dt10, seed);
        t.add_row(&format!("sd-u{u}"), row_from(stats));
    }

    // Queue gate sweep (u = 5).
    for gate in [0usize, 5, 20] {
        let stats = run_dumbbell(
            &mut || Box::new(SelectiveDiscard::paper().with_min_queue(gate)),
            dt10,
            seed,
        );
        t.add_row(&format!("sd-gate{gate}"), row_from(stats));
    }

    // CR interval sweep (u = 5, ungated). The source stretches the window
    // to at least one smoothed RTT regardless.
    for (label, ms) in [("cr5ms", 5u64), ("cr50ms", 50), ("cr200ms", 200)] {
        let stats = run_dumbbell(
            &mut || Box::new(SelectiveDiscard::paper()),
            SimDuration::from_millis(ms),
            seed,
        );
        t.add_row(&format!("sd-{label}"), row_from(stats));
    }

    // Reference rows.
    let stats = run_dumbbell(&mut || TcpMechanism::DropTail.boxed(), dt10, seed);
    t.add_row("drop-tail", row_from(stats));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_ablation_shapes() {
        let t = table_tcp_ablation(105);
        // u sweep: more headroom (smaller u) = stricter policing = lower
        // aggregate, and every u beats drop-tail on fairness.
        let dt_jain = t.cell("drop-tail", "jain").unwrap();
        for u in ["sd-u2", "sd-u5", "sd-u10"] {
            assert!(
                t.cell(u, "jain").unwrap() > dt_jain,
                "{u} should beat drop-tail fairness"
            );
        }
        let agg2 = t.cell("sd-u2", "aggregate").unwrap();
        let agg10 = t.cell("sd-u10", "aggregate").unwrap();
        assert!(
            agg10 > agg2,
            "higher u admits more load: {agg10:.2} vs {agg2:.2}"
        );
        // Queue gate recovers goodput relative to the unconditional drop.
        let agg_gate0 = t.cell("sd-gate0", "aggregate").unwrap();
        let agg_gate20 = t.cell("sd-gate20", "aggregate").unwrap();
        assert!(
            agg_gate20 > agg_gate0,
            "gating should recover goodput: {agg_gate20:.2} vs {agg_gate0:.2}"
        );
        // All selective variants keep the queue below drop-tail's.
        let dt_q = t.cell("drop-tail", "mean_q").unwrap();
        for row in ["sd-u5", "sd-gate0", "sd-cr5ms"] {
            assert!(t.cell(row, "mean_q").unwrap() < dt_q, "{row} queue");
        }
    }
}
