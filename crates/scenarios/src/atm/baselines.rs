//! F19–F22 — the baseline-algorithm figures (paper Section 5).
//!
//! * F19: EPRCA on the two-greedy-session scenario (as F2). Expected
//!   shape: converges to near-equal rates, but the MACR is a CCR average
//!   and the binary queue feedback makes it oscillate around the
//!   congestion threshold.
//! * F20: EPRCA under on/off load — queue excursions past its thresholds.
//! * F21 `[explicit]`: APRC under on/off load; "the queue length might
//!   often exceed the very congested threshold" (300 cells).
//! * F22 `[explicit]`: CAPC on the F4 configuration; "CAPC has longer
//!   convergence time while its queue is relatively smaller … the larger
//!   value of the queue length in Phantom stems from the faster reaction
//!   of Phantom."

use super::onoff::run_with as onoff_with;
use super::run_standard;
use crate::common::{greedy_bottleneck, AtmAlgorithm};
use phantom_atm::network::SessionId;
use phantom_atm::network::TrunkIdx;
use phantom_metrics::{convergence_time, ExperimentResult};
use phantom_sim::SimTime;

/// F19: EPRCA convergence on the basic scenario.
pub fn run_eprca_basic(seed: u64) -> ExperimentResult {
    let (engine, net) = greedy_bottleneck(2, AtmAlgorithm::Eprca, seed);
    let (engine, net, mut r) = run_standard(
        engine,
        net,
        SimTime::from_millis(800),
        "fig19",
        "EPRCA: two greedy sessions, 150 Mb/s",
        "reconstructed §5.1: EPRCA on the F2 configuration",
        TrunkIdx(0),
        &[SessionId(0), SessionId(1)],
        0.5,
    );
    // EPRCA has no analytic fixed point; report rate balance instead.
    let r0 = net.session_rate(&engine, SessionId(0)).mean_after(0.5);
    let r1 = net.session_rate(&engine, SessionId(1)).mean_after(0.5);
    r.add_metric("rate_ratio", r0 / r1.max(1.0));
    // Oscillation of the queue around the congestion threshold.
    let q = net.trunk_queue(&engine, TrunkIdx(0));
    r.add_metric(
        "queue_oscillation_cells",
        phantom_metrics::oscillation_amplitude(q, 0.5),
    );
    r
}

/// F20: EPRCA under on/off load.
pub fn run_eprca_onoff(seed: u64) -> ExperimentResult {
    let mut r = onoff_with(AtmAlgorithm::Eprca, "fig20", seed);
    r.add_note("reconstructed §5.1: binary thresholds under bursty load");
    r
}

/// F21: APRC under on/off load (very-congested threshold 300 cells).
pub fn run_aprc_onoff(seed: u64) -> ExperimentResult {
    let mut r = onoff_with(AtmAlgorithm::Aprc, "fig21", seed);
    r.add_note("explicit: APRC with the 300-cell very-congested threshold");
    r
}

/// F22: CAPC on the F4 configuration, with the Phantom comparison the
/// paper draws (longer convergence, smaller queue).
pub fn run_capc_onoff(seed: u64) -> ExperimentResult {
    let mut r = onoff_with(AtmAlgorithm::Capc, "fig22", seed);
    r.add_note(
        "explicit: 'CAPC has longer convergence time while its queue is relatively smaller'",
    );

    // Convergence comparison on the greedy phase: run both algorithms on
    // the basic scenario and report convergence-to-steady-state times.
    let conv_of = |alg: AtmAlgorithm| -> f64 {
        let (mut engine, net) = greedy_bottleneck(2, alg, seed);
        engine.run_until(SimTime::from_millis(800));
        // target = the algorithm's own steady state (tail mean of the
        // aggregate throughput), tolerance 10%
        let tp = net.trunk_throughput(&engine, TrunkIdx(0));
        let target = tp.mean_after(0.6);
        convergence_time(tp, target, 0.10).unwrap_or(f64::NAN) * 1e3
    };
    r.add_metric("capc_convergence_ms", conv_of(AtmAlgorithm::Capc));
    r.add_metric("phantom_convergence_ms", conv_of(AtmAlgorithm::Phantom));

    // "its queue is relatively smaller during that time [convergence]":
    // compare the transient (peak) queue on the greedy ramp-up.
    let queue_of = |alg: AtmAlgorithm| -> f64 {
        let (mut engine, net) = greedy_bottleneck(2, alg, seed);
        engine.run_until(SimTime::from_millis(800));
        net.trunk_port(&engine, TrunkIdx(0)).queue_high_water() as f64
    };
    r.add_metric("capc_peak_queue_cells", queue_of(AtmAlgorithm::Capc));
    r.add_metric("phantom_peak_queue_cells", queue_of(AtmAlgorithm::Phantom));
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig19_eprca_controls_but_oscillates() {
        let r = run_eprca_basic(19);
        assert!(r.metric("utilization").unwrap() > 0.8);
        let ratio = r.metric("rate_ratio").unwrap();
        assert!((0.6..1.7).contains(&ratio), "ratio {ratio}");
        // binary queue-threshold feedback parks a standing queue at the
        // congestion threshold (Phantom's drains to ~zero, cf. fig2)
        assert!(
            r.metric("mean_queue_cells").unwrap() > 50.0,
            "EPRCA should hold a standing queue"
        );
    }

    #[test]
    fn fig21_aprc_queue_exceeds_very_congested_threshold_under_bursts() {
        let r = run_aprc_onoff(21);
        assert!(
            r.metric("max_queue_cells").unwrap() > 300.0,
            "the paper's observed APRC weakness should reproduce"
        );
    }

    #[test]
    fn fig22_capc_slower_but_smaller_queue_than_phantom() {
        let r = run_capc_onoff(22);
        assert!(
            r.metric("capc_convergence_ms").unwrap() > r.metric("phantom_convergence_ms").unwrap(),
            "CAPC should converge slower: {:?} vs {:?}",
            r.metric("capc_convergence_ms"),
            r.metric("phantom_convergence_ms")
        );
        assert!(
            r.metric("capc_peak_queue_cells").unwrap()
                < r.metric("phantom_peak_queue_cells").unwrap(),
            "CAPC transient queue should be smaller: {:?} vs {:?}",
            r.metric("capc_peak_queue_cells"),
            r.metric("phantom_peak_queue_cells")
        );
    }
}
