//! EXT6 — statistical multiplexing of stochastic on/off sessions.
//!
//! Twenty ABR sessions with exponentially distributed on/off phases
//! (mean 20 ms on / 60 ms off, 25% duty) share the 150 Mb/s link: the
//! active-set size fluctuates around Binomial(20, ¼) and the fair share
//! with it — a continuously moving target instead of the paper's
//! deterministic step changes. Phantom's MACR must chase it without
//! losing cells; EPRCA's CCR-average rides the same churn with its usual
//! standing queue. Randomness comes from each source node's seeded RNG
//! stream, so the run is reproducible per seed and genuinely different
//! across seeds (`repro ext6 --seeds 5` shows the spread).

use crate::common::{single_bottleneck, AtmAlgorithm};
use phantom_atm::network::SessionId;
use phantom_atm::network::TrunkIdx;
use phantom_atm::Traffic;
use phantom_metrics::ExperimentResult;
use phantom_sim::{SimDuration, SimTime};

const N: usize = 20;

/// Run EXT6.
pub fn run(seed: u64) -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "ext6",
        "twenty stochastic on/off sessions (exp. 20 ms on / 60 ms off), 150 Mb/s",
    );
    r.add_note("statistical multiplexing: the fair share is a moving target");

    let traffic =
        vec![Traffic::random(SimDuration::from_millis(20), SimDuration::from_millis(60),); N];
    for alg in [AtmAlgorithm::Phantom, AtmAlgorithm::Eprca] {
        let (mut engine, net) = single_bottleneck(&traffic, alg, seed);
        engine.run_until(SimTime::from_millis(1500));
        let name = alg.name();
        let port = net.trunk_port(&engine, TrunkIdx(0));
        r.add_metric(
            &format!("{name}_utilization"),
            crate::common::trunk_utilization(&engine, &net, TrunkIdx(0), 0.3),
        );
        r.add_metric(
            &format!("{name}_mean_queue_cells"),
            net.trunk_queue(&engine, TrunkIdx(0)).mean_after(0.3),
        );
        r.add_metric(
            &format!("{name}_max_queue_cells"),
            port.queue_high_water() as f64,
        );
        r.add_metric(&format!("{name}_drops"), port.drops() as f64);
        // Long-run fairness across statistically identical sessions.
        let rates: Vec<f64> = (0..N)
            .map(|s| net.session_rate(&engine, SessionId(s)).mean_after(0.3))
            .collect();
        r.add_metric(&format!("{name}_jain"), phantom_metrics::jain_index(&rates));
        if alg == AtmAlgorithm::Phantom {
            let mut mbps = phantom_sim::stats::TimeSeries::new();
            for (t, v) in net.trunk_macr(&engine, TrunkIdx(0)).iter() {
                mbps.push(
                    SimTime::from_secs_f64(t),
                    phantom_atm::units::cps_to_mbps(v),
                );
            }
            r.add_series("macr_mbps_phantom", mbps);
            r.add_series(
                "queue_cells_phantom",
                net.trunk_queue(&engine, TrunkIdx(0)).clone(),
            );
        }
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ext6_phantom_rides_stochastic_churn() {
        let r = run(66);
        // No losses despite the moving target, queue stays bounded.
        assert_eq!(r.metric("phantom_drops").unwrap(), 0.0);
        assert!(r.metric("phantom_max_queue_cells").unwrap() < 4000.0);
        // The link is well used: ~5 sessions active on average, so the
        // design utilization is around 5u/(1+5u) ≈ 0.96, eroded by the
        // re-convergence transients after every phase change.
        let util = r.metric("phantom_utilization").unwrap();
        assert!(util > 0.55, "utilization {util:.3} collapsed");
        // Statistically identical sessions end up roughly fair; over a
        // 1.5 s window the variance of each session's realized duty
        // cycle dominates the index, so this measures "no systematic
        // starvation", not perfect equality.
        assert!(r.metric("phantom_jain").unwrap() > 0.8);
        // EPRCA handles the churn too but with its standing queue.
        assert!(
            r.metric("eprca_mean_queue_cells").unwrap()
                > 3.0 * r.metric("phantom_mean_queue_cells").unwrap()
        );
    }

    #[test]
    fn ext6_seeds_actually_differ() {
        let a = run(1).metric("phantom_utilization").unwrap();
        let b = run(2).metric("phantom_utilization").unwrap();
        assert_ne!(a, b, "stochastic workload must vary across seeds");
    }
}
