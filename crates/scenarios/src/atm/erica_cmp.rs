//! EXT2 — constant space vs unbounded space: Phantom vs ERICA.
//!
//! The paper's taxonomy partitions flow-control proposals into constant-
//! space algorithms (Phantom, EPRCA, APRC, CAPC) and algorithms whose
//! state grows with the number of connections ("ERICA/ERICA+ maintain a
//! counter per session"). This experiment quantifies what the per-VC
//! state buys and what it costs: both algorithms run the basic and the
//! staggered-join scenarios; the report carries convergence, fairness,
//! utilization, queueing — and the bytes of per-port state.

use crate::common::{greedy_bottleneck, AtmAlgorithm};
use phantom_atm::network::SessionId;
use phantom_atm::network::TrunkIdx;
use phantom_atm::units::cps_to_mbps;
use phantom_baselines::Erica;
use phantom_core::PhantomAllocator;
use phantom_metrics::{convergence_time, jain_index, ExperimentResult};
use phantom_sim::SimTime;

/// Run EXT2.
pub fn run(seed: u64) -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "ext2",
        "constant space (Phantom) vs per-VC state (ERICA), 5 greedy sessions",
    );
    r.add_note("the paper's space taxonomy, quantified");

    for alg in [AtmAlgorithm::Phantom, AtmAlgorithm::Erica] {
        let (mut engine, net) = greedy_bottleneck(5, alg, seed);
        engine.run_until(SimTime::from_millis(800));
        let name = alg.name();

        let tp = net.trunk_throughput(&engine, TrunkIdx(0));
        let target = tp.mean_after(0.6);
        let conv = convergence_time(tp, target, 0.10).unwrap_or(f64::NAN) * 1e3;
        let rates: Vec<f64> = (0..5)
            .map(|s| net.session_rate(&engine, SessionId(s)).mean_after(0.5))
            .collect();
        let port = net.trunk_port(&engine, TrunkIdx(0));

        r.add_metric(&format!("{name}_convergence_ms"), conv);
        r.add_metric(&format!("{name}_jain"), jain_index(&rates));
        r.add_metric(
            &format!("{name}_utilization"),
            crate::common::trunk_utilization(&engine, &net, TrunkIdx(0), 0.5),
        );
        r.add_metric(
            &format!("{name}_mean_queue_cells"),
            net.trunk_queue(&engine, TrunkIdx(0)).mean_after(0.5),
        );
        r.add_metric(
            &format!("{name}_macr_mbps"),
            cps_to_mbps(net.trunk_macr(&engine, TrunkIdx(0)).mean_after(0.5)),
        );
        let _ = port;

        let mut series = phantom_sim::stats::TimeSeries::new();
        for (t, v) in net.trunk_macr(&engine, TrunkIdx(0)).iter() {
            series.push(phantom_sim::SimTime::from_secs_f64(t), cps_to_mbps(v));
        }
        r.add_series(&format!("fair_share_mbps_{name}"), series);
    }

    // The taxonomy metric: how per-port state scales with the session
    // count. Run both allocators at n = 5 and n = 50 and report bytes.
    for n in [5usize, 50] {
        for alg in [AtmAlgorithm::Phantom, AtmAlgorithm::Erica] {
            let (mut engine, net) = greedy_bottleneck(n, alg, seed);
            engine.run_until(SimTime::from_millis(100));
            let port = net.trunk_port(&engine, TrunkIdx(0));
            let bytes = if let Some(a) = port.allocator().as_phantom() {
                std::mem::size_of_val(a)
            } else if let Some(a) = port.allocator().as_erica() {
                a.state_bytes()
            } else {
                unreachable!()
            };
            r.add_metric(&format!("{}_state_bytes_n{n}", alg.name()), bytes as f64);
        }
    }
    r
}

/// Downcast helpers so the experiment can read algorithm internals
/// through the trait object.
trait AllocatorDowncast {
    fn as_phantom(&self) -> Option<&PhantomAllocator>;
    fn as_erica(&self) -> Option<&Erica>;
}

impl AllocatorDowncast for dyn phantom_atm::RateAllocator {
    fn as_phantom(&self) -> Option<&PhantomAllocator> {
        let any: &dyn std::any::Any = self;
        any.downcast_ref()
    }

    fn as_erica(&self) -> Option<&Erica> {
        let any: &dyn std::any::Any = self;
        any.downcast_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ext2_erica_buys_utilization_with_per_vc_state() {
        let r = run(42);
        // ERICA targets 90% with no phantom headroom; Phantom targets
        // nu/(1+nu) = 96.2% for n=5 — both deliver their design points.
        let pu = r.metric("phantom_utilization").unwrap();
        let eu = r.metric("erica_utilization").unwrap();
        assert!((pu - 0.962).abs() < 0.05, "phantom util {pu}");
        assert!((eu - 0.90).abs() < 0.06, "erica util {eu}");
        // Both are fair between equals.
        assert!(r.metric("phantom_jain").unwrap() > 0.99);
        assert!(r.metric("erica_jain").unwrap() > 0.99);
        // The taxonomy: Phantom's state is O(1) — identical at n=5 and
        // n=50 — while ERICA's grows with the session count.
        let p5 = r.metric("phantom_state_bytes_n5").unwrap();
        let p50 = r.metric("phantom_state_bytes_n50").unwrap();
        let e5 = r.metric("erica_state_bytes_n5").unwrap();
        let e50 = r.metric("erica_state_bytes_n50").unwrap();
        assert_eq!(p5, p50, "phantom state must not depend on n");
        assert!(p5 <= 256.0, "phantom state {p5} bytes");
        assert!(
            e50 > e5 && e50 > p50,
            "erica state must grow with sessions: n5={e5}, n50={e50}, phantom={p50}"
        );
        // Neither runs away on queueing.
        assert!(r.metric("phantom_mean_queue_cells").unwrap() < 100.0);
        assert!(r.metric("erica_mean_queue_cells").unwrap() < 1000.0);
    }
}
