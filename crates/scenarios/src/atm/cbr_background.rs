//! EXT4 — ABR under unresponsive CBR/VBR background traffic.
//!
//! Real ATM links carry reserved-bandwidth circuits that ignore ABR
//! feedback. Phantom needs no special case: the residual-bandwidth
//! measurement simply sees a smaller effective capacity, so the fixed
//! point becomes `MACR = (C − r_cbr) / (1 + n·u)` with each ABR session
//! at `u × MACR` of what the background leaves. When the background is
//! bursty (a square-wave VBR), MACR must track both edges.

use crate::common::AtmAlgorithm;
use phantom_atm::network::SessionId;
use phantom_atm::network::{NetworkBuilder, TrunkIdx};
use phantom_atm::units::{cps_to_mbps, mbps_to_cps};
use phantom_atm::Traffic;
use phantom_metrics::ExperimentResult;
use phantom_sim::{Engine, SimDuration, SimTime};

/// Run EXT4.
pub fn run(seed: u64) -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "ext4",
        "two ABR sessions sharing 150 Mb/s with unresponsive CBR/VBR background",
    );
    r.add_note("Phantom vs reserved traffic: the residual measurement adapts for free");

    // Phase A: constant 60 Mb/s CBR.
    let build = |vbr: bool, seed: u64| {
        let mut b = NetworkBuilder::new();
        let s1 = b.switch("s1");
        let s2 = b.switch("s2");
        b.trunk(s1, s2, 150.0, SimDuration::from_micros(10));
        b.session(&[s1, s2], Traffic::greedy());
        b.session(&[s1, s2], Traffic::greedy());
        let traffic = if vbr {
            Traffic::on_off(
                SimTime::from_millis(300),
                SimDuration::from_millis(100),
                SimDuration::from_millis(100),
            )
        } else {
            Traffic::greedy()
        };
        b.cbr_session(&[s1, s2], 60.0, traffic);
        let mut engine = Engine::new(seed);
        let net = b.build(&mut engine, &mut || AtmAlgorithm::Phantom.boxed());
        engine.run_until(SimTime::from_millis(1000));
        (engine, net)
    };

    // Constant background: fixed point on the leftover 90 Mb/s.
    let (engine, net) = build(false, seed);
    let c = mbps_to_cps(150.0);
    let cbr = mbps_to_cps(60.0);
    let macr_pred = (c - cbr) / (1.0 + 2.0 * 5.0);
    let macr = net.trunk_macr(&engine, TrunkIdx(0)).mean_after(0.6);
    r.add_metric("cbr_macr_measured_mbps", cps_to_mbps(macr));
    r.add_metric("cbr_macr_predicted_mbps", cps_to_mbps(macr_pred));
    for s in 0..2 {
        r.add_metric(
            &format!("cbr_abr{s}_measured_mbps"),
            cps_to_mbps(net.session_rate(&engine, SessionId(s)).mean_after(0.6)),
        );
    }
    r.add_metric("cbr_abr_predicted_mbps", cps_to_mbps(5.0 * macr_pred));
    r.add_metric(
        "cbr_utilization",
        crate::common::trunk_utilization(&engine, &net, TrunkIdx(0), 0.6),
    );
    r.add_metric(
        "cbr_drops",
        net.trunk_port(&engine, TrunkIdx(0)).drops() as f64,
    );

    // Bursty background: the ABR pair must swing between the two fixed
    // points (background on: 90/11, background off: 150/11 per MACR).
    let (engine, net) = build(true, seed);
    let macr_series = net.trunk_macr(&engine, TrunkIdx(0));
    let mut mbps = phantom_sim::stats::TimeSeries::new();
    for (t, v) in macr_series.iter() {
        mbps.push(SimTime::from_secs_f64(t), cps_to_mbps(v));
    }
    r.add_series("macr_mbps_vbr", mbps);
    r.add_series(
        "queue_cells_vbr",
        net.trunk_queue(&engine, TrunkIdx(0)).clone(),
    );
    // MACR range over the steady alternation.
    let hi = macr_series.max_after(0.5);
    let lo = {
        let mut lo = f64::INFINITY;
        for (t, v) in macr_series.iter() {
            if t >= 0.5 {
                lo = lo.min(v);
            }
        }
        lo
    };
    r.add_metric("vbr_macr_low_mbps", cps_to_mbps(lo));
    r.add_metric("vbr_macr_high_mbps", cps_to_mbps(hi));
    r.add_metric("vbr_macr_low_predicted_mbps", cps_to_mbps((c - cbr) / 11.0));
    r.add_metric("vbr_macr_high_predicted_mbps", cps_to_mbps(c / 11.0));
    r.add_metric(
        "vbr_max_queue_cells",
        net.trunk_port(&engine, TrunkIdx(0)).queue_high_water() as f64,
    );
    r.add_metric(
        "vbr_drops",
        net.trunk_port(&engine, TrunkIdx(0)).drops() as f64,
    );
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ext4_phantom_adapts_to_reserved_traffic() {
        let r = run(44);
        // Constant background: fixed point on the leftover bandwidth.
        let m = r.metric("cbr_macr_measured_mbps").unwrap();
        let p = r.metric("cbr_macr_predicted_mbps").unwrap();
        assert!((m - p).abs() < 0.15 * p, "MACR {m:.2} vs {p:.2}");
        let a0 = r.metric("cbr_abr0_measured_mbps").unwrap();
        let ap = r.metric("cbr_abr_predicted_mbps").unwrap();
        assert!((a0 - ap).abs() < 0.15 * ap, "ABR rate {a0:.1} vs {ap:.1}");
        assert_eq!(r.metric("cbr_drops").unwrap(), 0.0);
        // Bursty background: MACR swings between (roughly) the two fixed
        // points.
        let lo = r.metric("vbr_macr_low_mbps").unwrap();
        let hi = r.metric("vbr_macr_high_mbps").unwrap();
        let lo_p = r.metric("vbr_macr_low_predicted_mbps").unwrap();
        let hi_p = r.metric("vbr_macr_high_predicted_mbps").unwrap();
        assert!(lo < lo_p * 1.4, "MACR low {lo:.2} never reaches {lo_p:.2}");
        assert!(
            hi > hi_p * 0.75,
            "MACR high {hi:.2} never reaches {hi_p:.2}"
        );
        // The 60 Mb/s step is absorbed without loss.
        assert_eq!(r.metric("vbr_drops").unwrap(), 0.0);
        assert!(r.metric("vbr_max_queue_cells").unwrap() < 4000.0);
    }
}
