//! EXT7 — Phantom under injected link loss.
//!
//! The control loop lives on RM cells; when the wire corrupts cells
//! (data *and* RM alike), feedback goes missing. The TM 4.0 end system
//! degrades gracefully — the CRM rule decreases when too many forward RM
//! cells go unanswered, and the additive increase probes back — while
//! Phantom's port measurement is loss-agnostic (it counts arrivals it
//! actually sees). This sweep measures throughput, fairness and queueing
//! at 0% / 0.1% / 1% / 5% per-cell loss on the bottleneck.

use crate::common::AtmAlgorithm;
use phantom_atm::network::SessionId;
use phantom_atm::network::{NetworkBuilder, TrunkIdx};
use phantom_atm::units::cps_to_mbps;
use phantom_atm::Traffic;
use phantom_metrics::ExperimentResult;
use phantom_sim::{Engine, SimDuration, SimTime};

/// Run EXT7.
pub fn run(seed: u64) -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "ext7",
        "Phantom under injected link loss (two greedy sessions, 150 Mb/s)",
    );
    r.add_note("failure injection: per-cell wire loss on the bottleneck, both directions");

    for (label, p) in [("p0", 0.0), ("p0.1", 0.001), ("p1", 0.01), ("p5", 0.05)] {
        let mut b = NetworkBuilder::new();
        let s1 = b.switch("s1");
        let s2 = b.switch("s2");
        b.trunk(s1, s2, 150.0, SimDuration::from_micros(10));
        if p > 0.0 {
            b.last_trunk_loss(p);
        }
        for _ in 0..2 {
            b.session(&[s1, s2], Traffic::greedy());
        }
        let mut engine = Engine::new(seed);
        let net = b.build(&mut engine, &mut || AtmAlgorithm::Phantom.boxed());
        engine.run_until(SimTime::from_millis(800));

        let rates: Vec<f64> = (0..2)
            .map(|s| net.session_rate(&engine, SessionId(s)).mean_after(0.4))
            .collect();
        r.add_metric(
            &format!("{label}_goodput_mbps"),
            cps_to_mbps(rates.iter().sum()),
        );
        r.add_metric(
            &format!("{label}_jain"),
            phantom_metrics::jain_index(&rates),
        );
        r.add_metric(
            &format!("{label}_wire_losses"),
            net.trunk_port(&engine, TrunkIdx(0)).wire_losses as f64,
        );
        r.add_metric(
            &format!("{label}_mean_queue"),
            net.trunk_queue(&engine, TrunkIdx(0)).mean_after(0.4),
        );
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ext7_graceful_degradation_under_loss() {
        let r = run(70);
        let g0 = r.metric("p0_goodput_mbps").unwrap();
        let g01 = r.metric("p0.1_goodput_mbps").unwrap();
        let g1 = r.metric("p1_goodput_mbps").unwrap();
        let g5 = r.metric("p5_goodput_mbps").unwrap();
        // Lossless baseline near the fixed point.
        assert!((g0 - 132.0).abs() < 8.0, "baseline {g0:.1}");
        // 0.1% loss barely dents goodput; higher loss degrades
        // monotonically but never collapses the loop.
        assert!(g01 > 0.95 * g0);
        assert!(g1 < g01 + 1.0 && g1 > 0.5 * g0, "1% loss: {g1:.1}");
        assert!(g5 < g1 + 1.0 && g5 > 0.2 * g0, "5% loss: {g5:.1}");
        // Fairness survives loss (losses hit both sessions alike).
        for label in ["p0", "p0.1", "p1", "p5"] {
            assert!(
                r.metric(&format!("{label}_jain")).unwrap() > 0.9,
                "{label} unfair"
            );
        }
        assert!(r.metric("p1_wire_losses").unwrap() > 100.0);
    }
}
