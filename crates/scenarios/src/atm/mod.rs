//! ATM experiments (paper Sections 2–3 and 5).

pub mod adaptive_alpha;
pub mod baselines;
pub mod basic;
pub mod canonical;
pub mod cbr_background;
pub mod efci;
pub mod erica_cmp;
pub mod lossy;
pub mod many;
pub mod mcr;
pub mod onoff;
pub mod parking_lot;
pub mod restricted;
pub mod rtt;
pub mod staggered;
pub mod statmux;

use phantom_atm::network::{Network, SessionId, TrunkIdx};
use phantom_atm::units::cps_to_mbps;
use phantom_atm::AtmMsg;
use phantom_metrics::ExperimentResult;
use phantom_sim::{Engine, SimTime};

/// The shared entry path of the standard ATM figure runners — and of
/// scene-compiled experiments, which lower to exactly this call: run
/// the built network until `until`, create the result (id, description,
/// provenance note) and attach the standard panels. The engine and
/// network are handed back so callers can append figure-specific
/// metrics.
#[allow(clippy::too_many_arguments)]
pub fn run_standard(
    mut engine: Engine<AtmMsg>,
    net: Network,
    until: SimTime,
    id: &str,
    describe: &str,
    note: &str,
    trunk: TrunkIdx,
    traced_sessions: &[SessionId],
    tail_from: f64,
) -> (Engine<AtmMsg>, Network, ExperimentResult) {
    engine.run_until(until);
    let mut r = ExperimentResult::new(id, describe);
    if !note.is_empty() {
        r.add_note(note);
    }
    collect_standard(&engine, &net, &mut r, trunk, traced_sessions, tail_from);
    (engine, net, r)
}

/// Attach the standard figure panels — queue length, MACR, sessions'
/// allowed rates (all rates converted to Mb/s) — plus the standard
/// metrics, mirroring the triple panels of the paper's ATM figures.
pub(crate) fn collect_standard(
    engine: &Engine<AtmMsg>,
    net: &Network,
    result: &mut ExperimentResult,
    trunk: TrunkIdx,
    traced_sessions: &[SessionId],
    tail_from: f64,
) {
    let mut macr = phantom_sim::stats::TimeSeries::new();
    for (t, v) in net.trunk_macr(engine, trunk).iter() {
        macr.push(phantom_sim::SimTime::from_secs_f64(t), cps_to_mbps(v));
    }
    result.add_series("macr_mbps", macr);
    result.add_series("queue_cells", net.trunk_queue(engine, trunk).clone());
    for &s in traced_sessions {
        let mut acr = phantom_sim::stats::TimeSeries::new();
        for (t, v) in net.session_acr(engine, s).iter() {
            acr.push(phantom_sim::SimTime::from_secs_f64(t), cps_to_mbps(v));
        }
        result.add_series(&format!("acr_mbps_s{}", s.0), acr);
    }

    let port = net.trunk_port(engine, trunk);
    result.add_metric(
        "utilization",
        crate::common::trunk_utilization(engine, net, trunk, tail_from),
    );
    result.add_metric(
        "mean_queue_cells",
        net.trunk_queue(engine, trunk).mean_after(tail_from),
    );
    result.add_metric("max_queue_cells", port.queue_high_water() as f64);
    result.add_metric("cell_drops", port.drops() as f64);

    let rates: Vec<f64> = (0..net.sessions.len())
        .map(|s| net.session_rate(engine, SessionId(s)).mean_after(tail_from))
        .collect();
    result.add_metric("jain_index", phantom_metrics::jain_index(&rates));

    // Cell-delay statistics of the first traced session (propagation +
    // queueing along the path).
    if let Some(&s) = traced_sessions.first() {
        let dest = engine.node::<phantom_atm::dest::AbrDest>(net.sessions[s.0].dest);
        if dest.delay_hist.count() > 0 {
            result.add_metric("cell_delay_mean_ms", dest.delay_hist.mean());
            result.add_metric("cell_delay_p99_ms", dest.delay_hist.quantile(0.99));
        }
    }
}
