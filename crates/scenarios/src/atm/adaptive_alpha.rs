//! F12 — deviation-adaptive gains vs fixed gains `[explicit]`.
//!
//! "To eliminate this phenomena we first approximate the standard
//! deviation in Δ, and then take it into consideration in the calculation
//! of α_inc and α_dec." Same two-session scenario run twice: once with
//! the adaptive (deviation-gated) gains and once with fixed gains; the
//! figure compares the steady-state MACR oscillation.

use crate::common::{greedy_bottleneck, AtmAlgorithm};
use phantom_atm::network::TrunkIdx;
use phantom_atm::units::cps_to_mbps;
use phantom_metrics::{oscillation_amplitude, ExperimentResult};
use phantom_sim::{SimTime, TimeSeries};

/// Run F12.
pub fn run(seed: u64) -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "fig12",
        "MACR oscillation: deviation-adaptive gains vs fixed gains",
    );
    r.add_note("explicit: the paper's mean-deviation damping of alpha_inc/alpha_dec");

    let mut run_one = |alg: AtmAlgorithm, label: &str| -> f64 {
        let (mut engine, net) = greedy_bottleneck(2, alg, seed);
        engine.run_until(SimTime::from_millis(600));
        let macr = net.trunk_macr(&engine, TrunkIdx(0));
        let mut mbps = TimeSeries::new();
        for (t, v) in macr.iter() {
            mbps.push(SimTime::from_secs_f64(t), cps_to_mbps(v));
        }
        let osc = oscillation_amplitude(&mbps, 0.4);
        r.add_series(&format!("macr_mbps_{label}"), mbps);
        osc
    };

    let osc_adaptive = run_one(AtmAlgorithm::Phantom, "adaptive");
    let osc_fixed = run_one(AtmAlgorithm::PhantomFixedAlpha, "fixed");
    r.add_metric("oscillation_adaptive_mbps", osc_adaptive);
    r.add_metric("oscillation_fixed_mbps", osc_fixed);
    r.add_metric(
        "oscillation_reduction",
        if osc_fixed > 0.0 {
            1.0 - osc_adaptive / osc_fixed
        } else {
            0.0
        },
    );
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig12_adaptation_damps_oscillation() {
        let r = run(12);
        let a = r.metric("oscillation_adaptive_mbps").unwrap();
        let f = r.metric("oscillation_fixed_mbps").unwrap();
        assert!(
            a <= f,
            "adaptive oscillation {a:.3} should not exceed fixed {f:.3}"
        );
        assert!(r.get_series("macr_mbps_adaptive").is_some());
        assert!(r.get_series("macr_mbps_fixed").is_some());
    }
}
