//! F9 — the canonical utilization-factor-5 figure `[explicit]`.
//!
//! The paper's contexts show the triple panel "Queue length / MACR and
//! rate of an arbitrary session" with "utilization factor = 5". Five
//! greedy sessions on the 150 Mb/s link; the panels are queue, MACR and
//! session 0's allowed rate. F11 repeats it with the NI bit.

use super::run_standard;
use crate::common::{greedy_bottleneck, AtmAlgorithm};
use phantom_atm::network::SessionId;
use phantom_atm::network::TrunkIdx;
use phantom_atm::units::{cps_to_mbps, mbps_to_cps};
use phantom_core::fixed_point::{single_link_macr, single_link_rate, single_link_utilization};
use phantom_metrics::{convergence_time, ExperimentResult};
use phantom_sim::SimTime;

/// Number of sessions in the canonical scenario.
pub const N_SESSIONS: usize = 5;

/// Run the canonical scenario with a chosen algorithm (F11 reuses it).
pub fn run_with(alg: AtmAlgorithm, id: &str, seed: u64) -> ExperimentResult {
    let (engine, net) = greedy_bottleneck(N_SESSIONS, alg, seed);
    let (engine, net, mut r) = run_standard(
        engine,
        net,
        SimTime::from_millis(600),
        id,
        &format!(
            "canonical u=5 scenario: five greedy sessions, 150 Mb/s, {}",
            alg.name()
        ),
        "explicit: 'utilization factor = 5' figure",
        TrunkIdx(0),
        &[SessionId(0)],
        0.4,
    );

    let c = mbps_to_cps(150.0);
    let macr_pred = single_link_macr(c, N_SESSIONS, 5.0);
    r.add_metric("macr_predicted_mbps", cps_to_mbps(macr_pred));
    r.add_metric(
        "macr_measured_mbps",
        cps_to_mbps(net.trunk_macr(&engine, TrunkIdx(0)).mean_after(0.4)),
    );
    r.add_metric(
        "rate_predicted_mbps",
        cps_to_mbps(single_link_rate(c, N_SESSIONS, 5.0)),
    );
    r.add_metric(
        "utilization_predicted",
        single_link_utilization(N_SESSIONS, 5.0),
    );
    let conv =
        convergence_time(net.trunk_macr(&engine, TrunkIdx(0)), macr_pred, 0.15).unwrap_or(f64::NAN);
    r.add_metric("convergence_time_ms", conv * 1e3);
    r
}

/// Run F9 (Phantom, explicit rate).
pub fn run(seed: u64) -> ExperimentResult {
    run_with(AtmAlgorithm::Phantom, "fig9", seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9_canonical_panels_match_theory() {
        let r = run(9);
        let m = r.metric("macr_measured_mbps").unwrap();
        let p = r.metric("macr_predicted_mbps").unwrap();
        assert!((m - p).abs() < 0.12 * p, "MACR {m:.2} vs {p:.2}");
        let util = r.metric("utilization").unwrap();
        let up = r.metric("utilization_predicted").unwrap();
        assert!((util - up).abs() < 0.05);
        assert!(r.metric("convergence_time_ms").unwrap() < 200.0);
        assert!(r.metric("jain_index").unwrap() > 0.99);
    }
}
