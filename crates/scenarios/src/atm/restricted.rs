//! F7 — a session restricted elsewhere `[explicit]`.
//!
//! The paper's contexts show a figure where "the ratio between MACR and
//! the link restriction is 5": one session is capped by a *different*
//! bottleneck, and the Phantom link's MACR rises so that the unrestricted
//! sessions absorb the leftover — the behavior that distinguishes a
//! measurement-based fair share from a CCR-averaging one.
//!
//! Topology: trunk s1→s2 at 150 Mb/s (the Phantom link under study);
//! session B additionally crosses a 30 Mb/s trunk s2→s3, which caps it
//! near `u/(1+u) × 30 = 25 Mb/s`. Session A (s1→s2 only) should absorb
//! the rest: the s1→s2 link settles at `A + B + MACR = C` with
//! `A = 5·MACR`.

use crate::common::AtmAlgorithm;
use phantom_atm::network::SessionId;
use phantom_atm::network::{NetworkBuilder, TrunkIdx};
use phantom_atm::units::{cps_to_mbps, mbps_to_cps};
use phantom_atm::Traffic;
use phantom_metrics::fairness::Session;
use phantom_metrics::{phantom_prediction, ExperimentResult};
use phantom_sim::{Engine, SimDuration, SimTime};

/// Run F7.
pub fn run(seed: u64) -> ExperimentResult {
    let mut b = NetworkBuilder::new();
    let s1 = b.switch("s1");
    let s2 = b.switch("s2");
    let s3 = b.switch("s3");
    b.trunk(s1, s2, 150.0, SimDuration::from_micros(10));
    b.trunk(s2, s3, 30.0, SimDuration::from_micros(10));
    b.session(&[s1, s2], Traffic::greedy()); // A: unrestricted
    b.session(&[s1, s2, s3], Traffic::greedy()); // B: restricted at trunk 2
    let mut engine = Engine::new(seed);
    let net = b.build(&mut engine, &mut || AtmAlgorithm::Phantom.boxed());
    engine.run_until(SimTime::from_millis(1000));

    let mut r = ExperimentResult::new(
        "fig7",
        "one session restricted by a 30 Mb/s downstream bottleneck (Phantom)",
    );
    r.add_note("explicit: 'the ratio between MACR and the link restriction is 5'");
    super::collect_standard(
        &engine,
        &net,
        &mut r,
        TrunkIdx(0),
        &[SessionId(0), SessionId(1)],
        0.5,
    );

    // Reference: weighted max-min with one phantom per link.
    let caps = vec![mbps_to_cps(150.0), mbps_to_cps(30.0)];
    let sessions = vec![Session::on(vec![0]), Session::on(vec![0, 1])];
    let (pred, macrs) = phantom_prediction(&caps, &sessions, 5.0);

    let a = net.session_rate(&engine, SessionId(0)).mean_after(0.5);
    let bm = net.session_rate(&engine, SessionId(1)).mean_after(0.5);
    r.add_metric("a_measured_mbps", cps_to_mbps(a));
    r.add_metric("a_predicted_mbps", cps_to_mbps(pred[0]));
    r.add_metric("b_measured_mbps", cps_to_mbps(bm));
    r.add_metric("b_predicted_mbps", cps_to_mbps(pred[1]));
    r.add_metric("macr0_predicted_mbps", cps_to_mbps(macrs[0]));
    r.add_metric(
        "macr0_measured_mbps",
        cps_to_mbps(net.trunk_macr(&engine, TrunkIdx(0)).mean_after(0.5)),
    );
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_leftover_goes_to_the_unrestricted_session() {
        let r = run(7);
        let a = r.metric("a_measured_mbps").unwrap();
        let b = r.metric("b_measured_mbps").unwrap();
        let ap = r.metric("a_predicted_mbps").unwrap();
        let bp = r.metric("b_predicted_mbps").unwrap();
        assert!((a - ap).abs() < 0.15 * ap, "A: {a:.1} vs {ap:.1}");
        assert!((b - bp).abs() < 0.15 * bp, "B: {b:.1} vs {bp:.1}");
        // A must clearly exceed the equal split (68) by absorbing B's
        // unused share.
        assert!(a > 85.0, "A should absorb leftover, got {a:.1} Mb/s");
        // MACR of the big link tracks its prediction.
        let m = r.metric("macr0_measured_mbps").unwrap();
        let mp = r.metric("macr0_predicted_mbps").unwrap();
        assert!((m - mp).abs() < 0.15 * mp, "MACR {m:.1} vs {mp:.1}");
    }
}
