//! F8 — scale: fifty sessions `[reconstructed]`.
//!
//! Fifty greedy sessions on one 150 Mb/s link. Constant-space algorithms
//! must stay stable as `n` grows; Phantom's normalized gain keeps the
//! loop stable at any session count (MacrConfig::norm_gain), and
//! utilization approaches `n·u/(1+n·u) → 99.6%`.

use super::run_standard;
use crate::common::{greedy_bottleneck, AtmAlgorithm};
use phantom_atm::network::SessionId;
use phantom_atm::network::TrunkIdx;
use phantom_atm::units::{cps_to_mbps, mbps_to_cps};
use phantom_core::fixed_point::{single_link_macr, single_link_utilization};
use phantom_metrics::ExperimentResult;
use phantom_sim::SimTime;

/// Run F8.
pub fn run(seed: u64) -> ExperimentResult {
    let n = 50;
    let (engine, net) = greedy_bottleneck(n, AtmAlgorithm::Phantom, seed);
    let (engine, net, mut r) = run_standard(
        engine,
        net,
        SimTime::from_millis(800),
        "fig8",
        "fifty greedy sessions on one 150 Mb/s link (Phantom)",
        "reconstructed: scalability of the constant-space estimator",
        TrunkIdx(0),
        &[SessionId(0), SessionId(25), SessionId(49)],
        0.5,
    );

    let c = mbps_to_cps(150.0);
    r.add_metric(
        "macr_predicted_mbps",
        cps_to_mbps(single_link_macr(c, n, 5.0)),
    );
    r.add_metric(
        "macr_measured_mbps",
        cps_to_mbps(net.trunk_macr(&engine, TrunkIdx(0)).mean_after(0.5)),
    );
    r.add_metric("utilization_predicted", single_link_utilization(n, 5.0));
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_fifty_sessions_stay_stable_and_fair() {
        let r = run(8);
        assert!(r.metric("jain_index").unwrap() > 0.97);
        let util = r.metric("utilization").unwrap();
        let pred = r.metric("utilization_predicted").unwrap();
        assert!(
            (util - pred).abs() < 0.05,
            "utilization {util:.3} vs predicted {pred:.3}"
        );
        // the queue must not run away at scale
        assert!(r.metric("mean_queue_cells").unwrap() < 2000.0);
        assert_eq!(r.metric("cell_drops").unwrap(), 0.0);
    }
}
