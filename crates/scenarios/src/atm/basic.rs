//! F2 — basic convergence `[reconstructed §2]`.
//!
//! Two greedy ABR sessions with negligible RTT (0.01 ms links) share one
//! 150 Mb/s bottleneck under Phantom. The paper's introductory figure:
//! MACR climbs to `C/(1+2u) = 150/11 ≈ 13.6 Mb/s`, both sessions settle
//! at `5 × MACR ≈ 68 Mb/s`, the queue stays moderate and drains.

use super::run_standard;
use crate::common::{greedy_bottleneck, AtmAlgorithm};
use phantom_atm::network::SessionId;
use phantom_atm::network::TrunkIdx;
use phantom_atm::units::{cps_to_mbps, mbps_to_cps};
use phantom_core::fixed_point::{single_link_macr, single_link_rate};
use phantom_metrics::{convergence_time, ExperimentResult};
use phantom_sim::SimTime;

/// Run F2.
pub fn run(seed: u64) -> ExperimentResult {
    let (engine, net) = greedy_bottleneck(2, AtmAlgorithm::Phantom, seed);
    let (engine, net, mut r) = run_standard(
        engine,
        net,
        SimTime::from_millis(500),
        "fig2",
        "two greedy sessions, negligible RTT, one 150 Mb/s link (Phantom)",
        "reconstructed from Section 2's introductory configuration",
        TrunkIdx(0),
        &[SessionId(0), SessionId(1)],
        0.3,
    );

    let c = mbps_to_cps(150.0);
    let macr_pred = single_link_macr(c, 2, 5.0);
    r.add_metric("macr_predicted_mbps", cps_to_mbps(macr_pred));
    r.add_metric(
        "macr_measured_mbps",
        cps_to_mbps(net.trunk_macr(&engine, TrunkIdx(0)).mean_after(0.3)),
    );
    r.add_metric(
        "session_rate_predicted_mbps",
        cps_to_mbps(single_link_rate(c, 2, 5.0)),
    );
    let conv =
        convergence_time(net.trunk_macr(&engine, TrunkIdx(0)), macr_pred, 0.15).unwrap_or(f64::NAN);
    r.add_metric("convergence_time_ms", conv * 1e3);
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_reproduces_the_fixed_point() {
        let r = run(2);
        let pred = r.metric("macr_predicted_mbps").unwrap();
        let meas = r.metric("macr_measured_mbps").unwrap();
        assert!((meas - pred).abs() < 0.1 * pred, "{meas} vs {pred}");
        assert!(r.metric("jain_index").unwrap() > 0.99);
        assert!(r.metric("convergence_time_ms").unwrap() < 150.0);
        assert_eq!(r.metric("cell_drops").unwrap(), 0.0);
        assert!(r.get_series("macr_mbps").is_some());
        assert!(r.get_series("acr_mbps_s1").is_some());
    }
}
