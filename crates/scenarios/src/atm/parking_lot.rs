//! F6 — parking lot / max-min fairness `[reconstructed]`.
//!
//! Three switches in a chain, one long session crossing both trunks and
//! one cross session per trunk. Max-min fairness gives everyone C/2; a
//! scheme with beat-down bias would starve the long session. The phantom
//! prediction (one imaginary session per link) is computed with the
//! weighted water-filler from `phantom_metrics`.

use crate::common::{parking_lot, parking_lot_paths, AtmAlgorithm};
use phantom_atm::network::SessionId;
use phantom_atm::network::TrunkIdx;
use phantom_atm::units::cps_to_mbps;
use phantom_metrics::fairness::Session;
use phantom_metrics::{normalized_jain_index, phantom_prediction, ExperimentResult};
use phantom_sim::SimTime;

/// Run F6.
pub fn run(seed: u64) -> ExperimentResult {
    let (engine, net) = parking_lot(AtmAlgorithm::Phantom, seed);
    let (engine, net, mut r) = super::run_standard(
        engine,
        net,
        SimTime::from_millis(800),
        "fig6",
        "parking lot: long session vs per-trunk cross sessions (Phantom)",
        "reconstructed: max-min fairness and beat-down resistance",
        TrunkIdx(0),
        &[SessionId(0), SessionId(1), SessionId(2)],
        0.5,
    );

    // Phantom's own fixed point for this topology.
    let (caps, paths) = parking_lot_paths();
    let sessions: Vec<Session> = paths.iter().cloned().map(Session::on).collect();
    let (pred_rates, pred_macr) = phantom_prediction(&caps, &sessions, 5.0);

    let measured: Vec<f64> = (0..3)
        .map(|s| net.session_rate(&engine, SessionId(s)).mean_after(0.5))
        .collect();
    for (i, (&m, &p)) in measured.iter().zip(&pred_rates).enumerate() {
        r.add_metric(&format!("rate_s{i}_measured_mbps"), cps_to_mbps(m));
        r.add_metric(&format!("rate_s{i}_predicted_mbps"), cps_to_mbps(p));
    }
    r.add_metric("macr_trunk0_predicted_mbps", cps_to_mbps(pred_macr[0]));
    r.add_metric(
        "normalized_jain",
        normalized_jain_index(&measured, &pred_rates),
    );
    r.add_metric("long_over_cross_ratio", measured[0] / measured[1].max(1.0));
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_no_beat_down() {
        let r = run(6);
        // every session within 15% of its phantom-predicted rate
        for i in 0..3 {
            let m = r.metric(&format!("rate_s{i}_measured_mbps")).unwrap();
            let p = r.metric(&format!("rate_s{i}_predicted_mbps")).unwrap();
            assert!((m - p).abs() < 0.15 * p, "s{i}: {m:.1} vs {p:.1}");
        }
        assert!(r.metric("normalized_jain").unwrap() > 0.98);
        // the long session is NOT beaten down below the cross sessions
        let ratio = r.metric("long_over_cross_ratio").unwrap();
        assert!(ratio > 0.8, "beat-down: long/cross = {ratio:.2}");
    }
}
