//! EXT5 — MCR guarantees under Phantom.
//!
//! TM 4.0 sessions may carry a guaranteed Minimum Cell Rate; switches
//! never stamp ER below it (`RmCell::limit_er` clamps at the cell's MCR
//! field). With `n` sessions on capacity `C` where one session holds a
//! guarantee `m` that exceeds the unconstrained fair share `u·MACR`,
//! the fixed point becomes
//!
//! ```text
//! arrivals = m + (n−1)·u·MACR
//! MACR     = C − arrivals  ⇒  MACR = (C − m) / (1 + (n−1)·u)
//! ```
//!
//! — the guaranteed session is pinned at exactly `m` (the ER *floor*,
//! not floor-plus-share), and everyone else fair-shares what remains.

use crate::common::AtmAlgorithm;
use phantom_atm::network::SessionId;
use phantom_atm::network::{NetworkBuilder, TrunkIdx};
use phantom_atm::units::{cps_to_mbps, mbps_to_cps};
use phantom_atm::{AtmParams, Traffic};
use phantom_metrics::ExperimentResult;
use phantom_sim::{Engine, SimDuration, SimTime};

const N: usize = 10;
const MCR_MBPS: f64 = 40.0;

/// Run EXT5.
pub fn run(seed: u64) -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "ext5",
        "ten sessions, one with a 40 Mb/s MCR guarantee (Phantom, 150 Mb/s)",
    );
    r.add_note("TM 4.0 MCR: ER is never stamped below the session's guarantee");

    let mut b = NetworkBuilder::new();
    let s1 = b.switch("s1");
    let s2 = b.switch("s2");
    b.trunk(s1, s2, 150.0, SimDuration::from_micros(10));
    // Session 0 carries the guarantee (ICR must be at least MCR).
    let mut guaranteed = AtmParams::paper().with_icr_mbps(MCR_MBPS);
    guaranteed.mcr = mbps_to_cps(MCR_MBPS);
    b.session_with(&[s1, s2], Traffic::greedy(), guaranteed);
    for _ in 1..N {
        b.session(&[s1, s2], Traffic::greedy());
    }
    let mut engine = Engine::new(seed);
    let net = b.build(&mut engine, &mut || AtmAlgorithm::Phantom.boxed());
    engine.run_until(SimTime::from_millis(800));

    // Closed-form fixed point with the guarantee binding
    // (u·MACR < MCR requires enough competing sessions).
    let c = mbps_to_cps(150.0);
    let m = mbps_to_cps(MCR_MBPS);
    let u = 5.0;
    let macr_pred = (c - m) / (1.0 + (N as f64 - 1.0) * u);
    assert!(
        u * macr_pred < m,
        "scenario must make the guarantee binding"
    );

    let macr = net.trunk_macr(&engine, TrunkIdx(0)).mean_after(0.5);
    r.add_metric("macr_measured_mbps", cps_to_mbps(macr));
    r.add_metric("macr_predicted_mbps", cps_to_mbps(macr_pred));
    r.add_metric(
        "guaranteed_measured_mbps",
        cps_to_mbps(net.session_rate(&engine, SessionId(0)).mean_after(0.5)),
    );
    r.add_metric("guaranteed_predicted_mbps", MCR_MBPS);
    let others: Vec<f64> = (1..N)
        .map(|s| net.session_rate(&engine, SessionId(s)).mean_after(0.5))
        .collect();
    r.add_metric(
        "besteffort_mean_mbps",
        cps_to_mbps(others.iter().sum::<f64>() / others.len() as f64),
    );
    r.add_metric("besteffort_predicted_mbps", cps_to_mbps(u * macr_pred));
    r.add_metric("besteffort_jain", phantom_metrics::jain_index(&others));
    r.add_metric(
        "utilization",
        crate::common::trunk_utilization(&engine, &net, TrunkIdx(0), 0.5),
    );
    r.add_metric(
        "cell_drops",
        net.trunk_port(&engine, TrunkIdx(0)).drops() as f64,
    );
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ext5_guarantee_is_pinned_and_the_rest_fair_share() {
        let r = run(55);
        let g = r.metric("guaranteed_measured_mbps").unwrap();
        assert!(
            (g - MCR_MBPS).abs() < 0.1 * MCR_MBPS,
            "guaranteed session should hold ≈{MCR_MBPS} Mb/s, got {g:.1}"
        );
        let be = r.metric("besteffort_mean_mbps").unwrap();
        let bep = r.metric("besteffort_predicted_mbps").unwrap();
        assert!(
            (be - bep).abs() < 0.15 * bep,
            "best-effort share {be:.2} vs predicted {bep:.2}"
        );
        // The guarantee clearly exceeds the best-effort share…
        assert!(g > 2.0 * be);
        // …without breaking fairness among the unguaranteed.
        assert!(r.metric("besteffort_jain").unwrap() > 0.99);
        let m = r.metric("macr_measured_mbps").unwrap();
        let mp = r.metric("macr_predicted_mbps").unwrap();
        assert!((m - mp).abs() < 0.15 * mp, "MACR {m:.2} vs {mp:.2}");
        assert_eq!(r.metric("cell_drops").unwrap(), 0.0);
    }
}
