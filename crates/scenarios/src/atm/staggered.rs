//! F3 — staggered joins and leaves `[reconstructed]`.
//!
//! Ten greedy sessions join one at a time every 50 ms; at 700 ms the five
//! newest leave. MACR must step down along `C/(1+n·u)` as `n` grows and
//! recover when sessions depart — the "traffic frequently changes"
//! adaptivity the paper contrasts against Jaffe's static scheme.

use crate::common::{single_bottleneck, AtmAlgorithm};
use phantom_atm::network::SessionId;
use phantom_atm::network::TrunkIdx;
use phantom_atm::units::{cps_to_mbps, mbps_to_cps};
use phantom_atm::Traffic;
use phantom_core::fixed_point::single_link_macr;
use phantom_metrics::ExperimentResult;
use phantom_sim::{SimTime, TimeSeries};

/// Run F3.
pub fn run(seed: u64) -> ExperimentResult {
    let mut traffics = Vec::new();
    for i in 0..10u64 {
        let start = SimTime::from_millis(50 * i);
        let stop = if i >= 5 {
            SimTime::from_millis(700)
        } else {
            SimTime::MAX
        };
        traffics.push(Traffic::window(start, stop));
    }
    let (mut engine, net) = single_bottleneck(&traffics, AtmAlgorithm::Phantom, seed);
    engine.run_until(SimTime::from_millis(1200));

    let mut r = ExperimentResult::new(
        "fig3",
        "ten sessions joining every 50 ms, five leaving at 700 ms",
    );
    r.add_note("reconstructed: adaptivity to joins/leaves");
    super::collect_standard(
        &engine,
        &net,
        &mut r,
        TrunkIdx(0),
        &[SessionId(0), SessionId(5), SessionId(9)],
        0.9,
    );

    let c = mbps_to_cps(150.0);
    // Windows where the active-session count is stable long enough to read
    // the MACR plateau.
    let macr = net.trunk_macr(&engine, TrunkIdx(0));
    let plateau = |from: f64, to: f64| -> f64 {
        let mut sum = 0.0;
        let mut n = 0;
        for (t, v) in macr.iter() {
            if t >= from && t < to {
                sum += v;
                n += 1;
            }
        }
        if n == 0 {
            f64::NAN
        } else {
            sum / n as f64
        }
    };
    // 10 active sessions during [500, 700) ms; 5 active after 900 ms.
    r.add_metric("macr_n10_measured_mbps", cps_to_mbps(plateau(0.60, 0.70)));
    r.add_metric(
        "macr_n10_predicted_mbps",
        cps_to_mbps(single_link_macr(c, 10, 5.0)),
    );
    r.add_metric("macr_n5_measured_mbps", cps_to_mbps(plateau(0.95, 1.20)));
    r.add_metric(
        "macr_n5_predicted_mbps",
        cps_to_mbps(single_link_macr(c, 5, 5.0)),
    );
    // Make the step trace legible in the rendered figure.
    let mut steps = TimeSeries::new();
    for (t, v) in macr.iter() {
        steps.push(SimTime::from_secs_f64(t), cps_to_mbps(v));
    }
    let _ = steps; // already included as macr_mbps by collect_standard
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_macr_steps_track_session_count() {
        let r = run(3);
        for n in ["n10", "n5"] {
            let meas = r.metric(&format!("macr_{n}_measured_mbps")).unwrap();
            let pred = r.metric(&format!("macr_{n}_predicted_mbps")).unwrap();
            assert!(
                (meas - pred).abs() < 0.2 * pred,
                "{n}: measured {meas:.2} vs predicted {pred:.2}"
            );
        }
        // MACR with 5 sessions must sit clearly above MACR with 10.
        assert!(
            r.metric("macr_n5_measured_mbps").unwrap()
                > 1.5 * r.metric("macr_n10_measured_mbps").unwrap()
        );
    }
}
