//! F11 — the NI/EFCI-bit variant of the canonical scenario `[explicit]`.
//!
//! "Any source that observes this bit set may not increase its rate …
//! Fig. 11 illustrates the effect of this method on the same scenario as
//! in Fig. 9." Binary feedback replaces the explicit rate: Phantom sets
//! NI (and CI under queue pressure) on sessions above `u × MACR`. The
//! expected shape: the link is still controlled and roughly fair, but
//! the rate traces are coarser and utilization a bit lower or the queue
//! larger than the ER mode of F9.

use super::canonical::{run_with, N_SESSIONS};
use crate::common::AtmAlgorithm;
use phantom_metrics::ExperimentResult;

/// Run F11.
pub fn run(seed: u64) -> ExperimentResult {
    let mut r = run_with(AtmAlgorithm::PhantomNi, "fig11", seed);
    r.add_note("binary NI/CI feedback instead of explicit rate (same scenario as fig9)");
    let _ = N_SESSIONS;
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atm::canonical;

    #[test]
    fn fig11_binary_mode_controls_but_coarser_than_fig9() {
        let er = canonical::run(11);
        let ni = run(11);
        // Both control the link…
        assert_eq!(ni.metric("cell_drops").unwrap(), 0.0);
        assert!(ni.metric("utilization").unwrap() > 0.55);
        assert!(ni.metric("jain_index").unwrap() > 0.95);
        // …but the binary mode is coarser: its queue excursions are at
        // least as large as ER mode's, or its utilization lower.
        let coarser = ni.metric("max_queue_cells").unwrap()
            >= er.metric("max_queue_cells").unwrap()
            || ni.metric("utilization").unwrap() < er.metric("utilization").unwrap();
        assert!(coarser, "NI mode unexpectedly dominated ER mode");
    }
}
