//! F4 — on/off (bursty) sessions `[explicit]`.
//!
//! "Fig. 22 illustrates the behavior of CAPC in an environment with
//! on/off sessions … The configuration is analogous to that in Fig. 4,
//! Section 2." One greedy background session shares the bottleneck with
//! two bursty sessions (30 ms on / 30 ms off, half-period offset).
//! Phantom must re-converge within each burst phase; its fast reaction
//! buys a larger transient queue than CAPC (checked in F22).

use super::run_standard;
use crate::common::{onoff_bottleneck, AtmAlgorithm};
use phantom_atm::network::SessionId;
use phantom_atm::network::TrunkIdx;
use phantom_metrics::ExperimentResult;
use phantom_sim::SimTime;

/// Run F4 with a choice of algorithm (reused by F20–F22).
pub fn run_with(alg: AtmAlgorithm, id: &str, seed: u64) -> ExperimentResult {
    let (engine, net) = onoff_bottleneck(alg, seed);
    let (engine, net, mut r) = run_standard(
        engine,
        net,
        SimTime::from_millis(800),
        id,
        &format!(
            "greedy + two on/off sessions (30 ms on / 30 ms off) under {}",
            alg.name()
        ),
        "configuration 'analogous to Fig. 4' per the paper's Section 5 contexts",
        TrunkIdx(0),
        &[SessionId(0), SessionId(1)],
        0.2,
    );

    // How hard does the transient hit the queue, and does the background
    // session absorb the idle bandwidth during off phases?
    let q = net.trunk_queue(&engine, TrunkIdx(0));
    r.add_metric("queue_p99_proxy_cells", q.max_after(0.2));
    let greedy_rate = net.session_rate(&engine, SessionId(0)).mean_after(0.2);
    let bursty_rate = net.session_rate(&engine, SessionId(1)).mean_after(0.2);
    r.add_metric(
        "greedy_mean_mbps",
        phantom_atm::units::cps_to_mbps(greedy_rate),
    );
    r.add_metric(
        "bursty_mean_mbps",
        phantom_atm::units::cps_to_mbps(bursty_rate),
    );
    r
}

/// Run F4 (Phantom).
pub fn run(seed: u64) -> ExperimentResult {
    run_with(AtmAlgorithm::Phantom, "fig4", seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_phantom_absorbs_bursts() {
        let r = run(4);
        // the link must stay well used despite the on/off churn
        assert!(r.metric("utilization").unwrap() > 0.75);
        assert_eq!(r.metric("cell_drops").unwrap(), 0.0);
        // the greedy session gets more than the half-duty bursty ones
        assert!(r.metric("greedy_mean_mbps").unwrap() > r.metric("bursty_mean_mbps").unwrap());
        // bursty sessions still make real progress
        assert!(r.metric("bursty_mean_mbps").unwrap() > 5.0);
    }
}
