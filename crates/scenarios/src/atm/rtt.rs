//! F5 — heterogeneous round-trip times `[reconstructed]`.
//!
//! One session with a 0.01 ms access link and one with a 5 ms access link
//! (a ~1000 km WAN hop) share the bottleneck. The paper criticizes
//! EPRCA-style schemes for RTT-dependent unfairness ([CGBS94, JKVG94,
//! CRBdJ94]); Phantom's measurement-based MACR offers the same ER to
//! both, so the allocation should stay fair despite the 500× RTT spread.

use crate::common::AtmAlgorithm;
use phantom_atm::network::SessionId;
use phantom_atm::network::{NetworkBuilder, TrunkIdx};
use phantom_atm::units::cps_to_mbps;
use phantom_atm::Traffic;
use phantom_metrics::ExperimentResult;
use phantom_sim::{Engine, SimDuration, SimTime};

/// Run F5 with a choice of algorithm (the comparison table reuses it).
pub fn run_with(alg: AtmAlgorithm, id: &str, seed: u64) -> ExperimentResult {
    let mut b = NetworkBuilder::new();
    let s1 = b.switch("s1");
    let s2 = b.switch("s2");
    b.trunk(s1, s2, 150.0, SimDuration::from_micros(10));
    b.session(&[s1, s2], Traffic::greedy());
    b.session(&[s1, s2], Traffic::greedy());
    b.last_session_access_prop(SimDuration::from_millis(5));
    let mut engine = Engine::new(seed);
    let net = b.build(&mut engine, &mut || alg.boxed());
    let (engine, net, mut r) = super::run_standard(
        engine,
        net,
        SimTime::from_millis(1000),
        id,
        &format!("two sessions, RTT 0.02 ms vs 10 ms, under {}", alg.name()),
        "reconstructed: RTT-fairness scenario",
        TrunkIdx(0),
        &[SessionId(0), SessionId(1)],
        0.5,
    );

    let short = net.session_rate(&engine, SessionId(0)).mean_after(0.5);
    let long = net.session_rate(&engine, SessionId(1)).mean_after(0.5);
    r.add_metric("short_rtt_mbps", cps_to_mbps(short));
    r.add_metric("long_rtt_mbps", cps_to_mbps(long));
    r.add_metric("rate_ratio", short / long.max(1.0));
    r
}

/// Run F5 (Phantom).
pub fn run(seed: u64) -> ExperimentResult {
    run_with(AtmAlgorithm::Phantom, "fig5", seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_phantom_is_rtt_fair() {
        let r = run(5);
        let ratio = r.metric("rate_ratio").unwrap();
        assert!(
            (0.9..=1.1).contains(&ratio),
            "rates should match within 10%, ratio {ratio:.3}"
        );
        assert!(r.metric("jain_index").unwrap() > 0.99);
    }
}
