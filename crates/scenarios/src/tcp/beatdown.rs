//! F17 — beat-down of many-hop sessions `[explicit]`.
//!
//! "Another source for unfairness … is the bias against sessions that
//! pass through many routers (analogous to the 'beat down' phenomena in
//! ATM \[BdJ94\]). An unfair behavior of Reno … is depicted in the left
//! hand side of Fig. 14 and Fig. 17." Parking lot of five routers: a
//! long flow crosses four 10 Mb/s trunks (with 50-packet buffers, so
//! losses are frequent), one cross flow per trunk. Under drop-tail the
//! long flow sees the loss product of four queues and is beaten down;
//! Selective Discard punishes only over-limit packets, so the long flow
//! recovers a much larger share.

use super::collect_tcp;
use crate::common::{tcp_parking_lot, TcpMechanism};
use phantom_metrics::ExperimentResult;
use phantom_sim::SimTime;
use phantom_tcp::network::TrunkIdx;

const RUN_SECS: f64 = 25.0;
const TAIL: f64 = 12.0;

/// Run F17.
pub fn run(seed: u64) -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "fig17",
        "beat-down parking lot: drop-tail (left) vs Selective Discard (right)",
    );
    r.add_note("explicit: many-router bias, Fig. 17 panels");

    let mut side = |mech: TcpMechanism, label: &str| -> Vec<f64> {
        let (mut engine, net) = tcp_parking_lot(mech, seed);
        engine.run_until(SimTime::from_secs_f64(RUN_SECS));
        collect_tcp(&engine, &net, &mut r, TrunkIdx(0), TAIL, label);
        (0..net.flows.len())
            .map(|f| net.flow_goodput(&engine, f).mean_after(TAIL))
            .collect()
    };
    let dt = side(TcpMechanism::DropTail, "droptail");
    let sd = side(TcpMechanism::SelectiveDiscard, "seldiscard");

    let cross_mean = |v: &[f64]| v[1..].iter().sum::<f64>() / (v.len() - 1) as f64;
    r.add_metric("droptail_long_mbps", dt[0] * 8.0 / 1e6);
    r.add_metric("droptail_cross_mbps", cross_mean(&dt) * 8.0 / 1e6);
    r.add_metric("droptail_long_share", dt[0] / cross_mean(&dt).max(1.0));
    r.add_metric("seldiscard_long_mbps", sd[0] * 8.0 / 1e6);
    r.add_metric("seldiscard_cross_mbps", cross_mean(&sd) * 8.0 / 1e6);
    r.add_metric("seldiscard_long_share", sd[0] / cross_mean(&sd).max(1.0));
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig17_selective_discard_rescues_the_long_flow() {
        let r = run(17);
        let dt_share = r.metric("droptail_long_share").unwrap();
        let sd_share = r.metric("seldiscard_long_share").unwrap();
        assert!(
            dt_share < 0.7,
            "drop-tail should beat the long flow down, share {dt_share:.2}"
        );
        assert!(
            sd_share > dt_share * 1.3,
            "selective discard should lift the long flow: {sd_share:.2} vs {dt_share:.2}"
        );
    }
}
