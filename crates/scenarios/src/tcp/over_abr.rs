//! EXT3 — TCP over an ABR-carried trunk (the paper's interconnection
//! motivation).
//!
//! "An additional motivation to implement the newly suggested flow
//! control mechanism in TCP is that TCP traffic might traverse ATM
//! networks. The use of a consistent flow control mechanism in both TCP
//! and ABR over ATM may improve the network utilization."
//!
//! Two coupled simulations:
//!
//! 1. **ATM stage** — a Phantom-controlled 30 Mb/s ATM link carries one
//!    greedy ABR virtual circuit (the *carrier VC* of an IP trunk) plus
//!    two slow on/off competitors. The carrier VC's allowed rate (its
//!    ACR trace) is the bandwidth the ATM network grants the IP trunk
//!    over time.
//! 2. **TCP stage** — a dumbbell whose bottleneck trunk *replays that
//!    bandwidth trace* (cells/s × 48 payload bytes). Two Reno flows
//!    cross it, once with drop-tail and once with Selective Discard.
//!
//! The consistency claim to check: the Phantom-driven router tracks the
//! varying allocation (its MACR measures residual against the *current*
//! capacity each interval), so it rides the ABR swings with a small
//! queue and few losses, where drop-tail oscillates between buffer
//! overflow at every down-step and slow recovery at every up-step.

use super::collect_tcp;
use crate::common::{AtmAlgorithm, TcpMechanism};
use phantom_atm::network::SessionId;
use phantom_atm::units::cps_to_mbps;
use phantom_atm::{NetworkBuilder, Traffic};
use phantom_metrics::ExperimentResult;
use phantom_sim::{Engine, SimDuration, SimTime};
use phantom_tcp::network::TrunkIdx;
use phantom_tcp::TcpNetworkBuilder;

/// Payload bytes per ATM cell (AAL5 carries 48 of the 53).
const PAYLOAD_PER_CELL: f64 = 48.0;
const ATM_SECS: f64 = 6.0;
const CYCLES: usize = 3;
const TAIL: f64 = 6.0;

/// Stage 1: generate the carrier VC's bandwidth trace, `(time, bytes/s)`
/// sampled every 20 ms.
fn abr_bandwidth_trace(seed: u64) -> Vec<(SimTime, f64)> {
    let mut b = NetworkBuilder::new().rate_sample_interval(SimDuration::from_millis(20));
    let s1 = b.switch("atm1");
    let s2 = b.switch("atm2");
    b.trunk(s1, s2, 30.0, SimDuration::from_micros(10));
    b.session(&[s1, s2], Traffic::greedy()); // the carrier VC
    let on = SimDuration::from_millis(200);
    let off = SimDuration::from_millis(200);
    b.session(
        &[s1, s2],
        Traffic::on_off(SimTime::from_millis(500), on, off),
    );
    b.session(
        &[s1, s2],
        Traffic::on_off(SimTime::from_millis(600), on, off),
    );
    let mut engine = Engine::new(seed);
    let net = b.build(&mut engine, &mut || AtmAlgorithm::Phantom.boxed());
    engine.run_until(SimTime::from_secs_f64(ATM_SECS));

    // The allowed rate of the carrier VC is its ACR trace; resample onto
    // a 20 ms grid for the capacity schedule.
    let acr = net.session_acr(&engine, SessionId(0));
    let mut points = Vec::new();
    let mut t = 0.1; // let the ATM loop initialize first
    while t < ATM_SECS {
        if let Some(cells_per_sec) = acr.value_at(t) {
            let bps = (cells_per_sec * PAYLOAD_PER_CELL).max(10_000.0);
            points.push((SimTime::from_secs_f64(t), bps));
        }
        t += 0.02;
    }
    points
}

fn run_tcp_over_trace(
    trace: &[(SimTime, f64)],
    mech: TcpMechanism,
    seed: u64,
) -> (Engine<phantom_tcp::TcpMsg>, phantom_tcp::TcpNetwork) {
    let mut b = TcpNetworkBuilder::new();
    let r1 = b.router("r1");
    let r2 = b.router("r2");
    // Initial capacity = the trace's first point (replayed thereafter).
    let init_mbps = trace
        .first()
        .map(|&(_, bps)| bps * 8.0 / 1e6)
        .unwrap_or(10.0);
    b.trunk(r1, r2, init_mbps, SimDuration::from_millis(1));
    b.flow(&[r1, r2], SimTime::ZERO);
    b.flow(&[r1, r2], SimTime::ZERO);
    let mut engine = Engine::new(seed ^ 0xABCD);
    let net = b.build(&mut engine, &mut || mech.boxed());
    // Replay the ABR trace cyclically.
    let cycle = SimDuration::from_secs_f64(ATM_SECS);
    let mut points = Vec::new();
    for rep in 0..CYCLES {
        for &(t, bps) in trace {
            points.push((t + cycle * rep as u64, bps));
        }
    }
    net.schedule_capacity_trace(&mut engine, TrunkIdx(0), &points);
    engine.run_until(SimTime::from_secs_f64(ATM_SECS * CYCLES as f64));
    (engine, net)
}

/// Mean available bandwidth over the trace, bytes/s.
fn trace_mean(trace: &[(SimTime, f64)]) -> f64 {
    trace.iter().map(|&(_, b)| b).sum::<f64>() / trace.len().max(1) as f64
}

/// Run EXT3.
pub fn run(seed: u64) -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "ext3",
        "TCP over an ABR-carried trunk: drop-tail vs Selective Discard",
    );
    r.add_note("the paper's TCP-over-ATM interconnection motivation, two-stage simulation");

    let trace = abr_bandwidth_trace(seed);
    let avail = trace_mean(&trace);
    r.add_metric("abr_mean_bandwidth_mbps", avail * 8.0 / 1e6);
    r.add_metric(
        "abr_min_bandwidth_mbps",
        trace.iter().map(|&(_, b)| b).fold(f64::INFINITY, f64::min) * 8.0 / 1e6,
    );
    r.add_metric(
        "abr_max_bandwidth_mbps",
        trace.iter().map(|&(_, b)| b).fold(0.0, f64::max) * 8.0 / 1e6,
    );
    {
        let mut ts = phantom_sim::stats::TimeSeries::new();
        for &(t, bps) in &trace {
            ts.push(t, cps_to_mbps(bps / PAYLOAD_PER_CELL));
        }
        r.add_series("abr_bandwidth_mbps", ts);
    }

    for mech in [TcpMechanism::DropTail, TcpMechanism::SelectiveDiscard] {
        let label = match mech {
            TcpMechanism::DropTail => "droptail",
            _ => "seldiscard",
        };
        let (engine, net) = run_tcp_over_trace(&trace, mech, seed);
        collect_tcp(&engine, &net, &mut r, TrunkIdx(0), TAIL, label);
        let delivered: f64 = (0..2)
            .map(|f| net.flow_goodput(&engine, f).mean_after(TAIL))
            .sum();
        r.add_metric(
            &format!("{label}_goodput_over_available"),
            delivered / avail,
        );
        let port = net.trunk_port(&engine, TrunkIdx(0));
        r.add_metric(&format!("{label}_total_drops"), port.total_drops() as f64);
        r.add_metric(
            &format!("{label}_queue_high_water"),
            port.queue_high_water() as f64,
        );
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ext3_consistent_control_rides_the_abr_swings() {
        let r = run(33);
        // The ABR stage must actually swing (on/off competitors bite).
        let lo = r.metric("abr_min_bandwidth_mbps").unwrap();
        let hi = r.metric("abr_max_bandwidth_mbps").unwrap();
        assert!(hi > 1.5 * lo, "trace barely varies: {lo:.1}..{hi:.1} Mb/s");
        // Both mechanisms move real data over the varying pipe.
        for label in ["droptail", "seldiscard"] {
            let frac = r
                .metric(&format!("{label}_goodput_over_available"))
                .unwrap();
            assert!(frac > 0.4, "{label} wasted the pipe: {frac:.2}");
            assert!(frac <= 1.0);
        }
        // The consistency payoff: Selective Discard needs a far smaller
        // buffer excursion to ride the down-steps.
        let q_dt = r.metric("droptail_queue_high_water").unwrap();
        let q_sd = r.metric("seldiscard_queue_high_water").unwrap();
        assert!(
            q_sd < q_dt,
            "selective discard should ride the swings with less queue: {q_sd} vs {q_dt}"
        );
    }
}
