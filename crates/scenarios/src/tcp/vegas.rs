//! EXT1 — the paper's Vegas-unfairness discussion, reproduced.
//!
//! Section 4 argues that source-side mechanisms alone cannot guarantee
//! fairness and names TCP Vegas \[BP95\] twice:
//!
//! 1. "when two sources that use Vegas get different window sizes, and
//!    both have the same delay thresholds (α, β), then there is no
//!    mechanism that would balance them. The current mechanisms would
//!    either increase both or decrease both."
//! 2. "distinct parameters for different sessions may cause severe
//!    unfairness. E.g., two sessions using Vegas … the lower threshold
//!    (α) of the one is larger than the upper threshold (β) of the
//!    other."
//!
//! Three panels on a 10 Mb/s dumbbell:
//! * `staggered`: two same-threshold Vegas flows, the second joining at
//!   5 s into a queue the first already built — the late flow measures an
//!   inflated baseRTT and settles for less; nothing rebalances them.
//! * `mismatched`: flow 0 with (α,β) = (4,6), flow 1 with (1,3) — the
//!   greedy-threshold flow parks more packets in the queue and holds a
//!   larger share forever.
//! * `mismatched + Selective Discard`: the Phantom router mechanism
//!   polices the over-limit flow from the outside and restores most of
//!   the balance, exactly the paper's argument for router support.

use super::collect_tcp;
use crate::common::TcpMechanism;
use phantom_metrics::ExperimentResult;
use phantom_sim::{Engine, SimDuration, SimTime};
use phantom_tcp::network::{CcAlgorithm, TrunkIdx};
use phantom_tcp::{TcpNetworkBuilder, VegasConfig};

const RUN_SECS: f64 = 30.0;
const TAIL: f64 = 20.0;

fn vegas(alpha: f64, beta: f64) -> CcAlgorithm {
    CcAlgorithm::Vegas(VegasConfig {
        alpha,
        beta,
        ..VegasConfig::default()
    })
}

fn run_pair(
    cc0: CcAlgorithm,
    cc1: CcAlgorithm,
    start1: SimTime,
    mech: TcpMechanism,
    seed: u64,
) -> (Engine<phantom_tcp::TcpMsg>, phantom_tcp::TcpNetwork) {
    let mut b = TcpNetworkBuilder::new();
    let r1 = b.router("r1");
    let r2 = b.router("r2");
    b.trunk(r1, r2, 10.0, SimDuration::from_millis(1));
    b.flow_with_cc(&[r1, r2], SimTime::ZERO, cc0);
    b.flow_with_cc(&[r1, r2], start1, cc1);
    let mut engine = Engine::new(seed);
    let net = b.build(&mut engine, &mut || mech.boxed());
    engine.run_until(SimTime::from_secs_f64(RUN_SECS));
    (engine, net)
}

/// Run EXT1.
pub fn run(seed: u64) -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "ext1",
        "TCP Vegas unfairness (paper §4 discussion) and the Phantom remedy",
    );
    r.add_note("explicit discussion, no figure number: Vegas [BP95] imbalance modes");

    // Panel 1: same thresholds, staggered start, drop-tail.
    let (e, n) = run_pair(
        vegas(1.0, 3.0),
        vegas(1.0, 3.0),
        SimTime::from_secs(5),
        TcpMechanism::DropTail,
        seed,
    );
    collect_tcp(&e, &n, &mut r, TrunkIdx(0), TAIL, "staggered");
    let early = n.flow_goodput(&e, 0).mean_after(TAIL) * 8.0 / 1e6;
    let late = n.flow_goodput(&e, 1).mean_after(TAIL) * 8.0 / 1e6;
    r.add_metric("staggered_early_mbps", early);
    r.add_metric("staggered_late_mbps", late);
    r.add_metric("staggered_ratio", early / late.max(0.01));

    // Panel 2: mismatched thresholds (α0 > β1), drop-tail.
    let (e, n) = run_pair(
        vegas(4.0, 6.0),
        vegas(1.0, 3.0),
        SimTime::ZERO,
        TcpMechanism::DropTail,
        seed,
    );
    collect_tcp(&e, &n, &mut r, TrunkIdx(0), TAIL, "mismatched");
    let greedy = n.flow_goodput(&e, 0).mean_after(TAIL) * 8.0 / 1e6;
    let modest = n.flow_goodput(&e, 1).mean_after(TAIL) * 8.0 / 1e6;
    r.add_metric("mismatched_greedy_mbps", greedy);
    r.add_metric("mismatched_modest_mbps", modest);
    r.add_metric("mismatched_ratio", greedy / modest.max(0.01));

    // Panel 3: same mismatch, Selective Discard router.
    let (e, n) = run_pair(
        vegas(4.0, 6.0),
        vegas(1.0, 3.0),
        SimTime::ZERO,
        TcpMechanism::SelectiveDiscard,
        seed,
    );
    collect_tcp(&e, &n, &mut r, TrunkIdx(0), TAIL, "mismatched_sd");
    let greedy_sd = n.flow_goodput(&e, 0).mean_after(TAIL) * 8.0 / 1e6;
    let modest_sd = n.flow_goodput(&e, 1).mean_after(TAIL) * 8.0 / 1e6;
    r.add_metric("mismatched_sd_greedy_mbps", greedy_sd);
    r.add_metric("mismatched_sd_modest_mbps", modest_sd);
    r.add_metric("mismatched_sd_ratio", greedy_sd / modest_sd.max(0.01));
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ext1_vegas_unfairness_modes_and_remedy() {
        let r = run(41);
        // Mismatched thresholds: the greedy-threshold flow wins big.
        let mm = r.metric("mismatched_ratio").unwrap();
        assert!(mm > 1.5, "threshold mismatch should be visible: {mm:.2}");
        // Selective Discard shrinks the mismatch bias.
        let sd = r.metric("mismatched_sd_ratio").unwrap();
        assert!(
            sd < mm * 0.75,
            "selective discard should rebalance: {sd:.2} vs {mm:.2}"
        );
        // Staggered same-threshold flows do not equalize: the late joiner
        // measures a baseRTT inflated by the first flow's standing queue,
        // under-estimates its own queue occupancy and persistently
        // over-claims ("there is no mechanism that would balance them" —
        // the imbalance survives the whole run, in whichever direction).
        let st = r.metric("staggered_ratio").unwrap();
        assert!(
            (st - 1.0).abs() > 0.05,
            "staggered Vegas flows should stay imbalanced: {st:.2}"
        );
        // Everything still moves data.
        assert!(r.metric("aggregate_mbps_staggered").unwrap() > 5.0);
        assert!(r.metric("aggregate_mbps_mismatched").unwrap() > 5.0);
    }
}
