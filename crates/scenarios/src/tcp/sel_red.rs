//! F16 — Selective RED vs plain RED `[reconstructed §4]`.
//!
//! "Here the router applies the RED mechanism. However, only packets
//! whose rate is larger than utilization_factor × MACR may be dropped."
//! RED "overcomes some of the bias … yet the resulting mechanism still
//! does not always guarantee fairness"; restricting eligibility to
//! over-limit packets should improve the rate balance on the
//! heterogeneous-RTT dumbbell.

use super::collect_tcp;
use crate::common::{tcp_rtt_dumbbell_cap, TcpMechanism};
use phantom_metrics::ExperimentResult;
use phantom_sim::{SimDuration, SimTime};
use phantom_tcp::network::TrunkIdx;

/// Run F16.
pub fn run(seed: u64) -> ExperimentResult {
    let mut r = ExperimentResult::new("fig16", "plain RED vs Selective RED on the RTT dumbbell");
    r.add_note("reconstructed §4: RED with Phantom eligibility predicate");

    let mut side = |mech: TcpMechanism, label: &str| -> (f64, f64) {
        let (mut engine, net) = tcp_rtt_dumbbell_cap(SimDuration::from_millis(25), mech, seed, 200);
        engine.run_until(SimTime::from_secs(20));
        collect_tcp(&engine, &net, &mut r, TrunkIdx(0), 10.0, label);
        (
            net.flow_goodput(&engine, 0).mean_after(10.0),
            net.flow_goodput(&engine, 1).mean_after(10.0),
        )
    };
    let (red_s, red_l) = side(TcpMechanism::Red, "red");
    let (sel_s, sel_l) = side(TcpMechanism::SelectiveRed, "selred");

    r.add_metric("red_ratio", red_s / red_l.max(1.0));
    r.add_metric("selred_ratio", sel_s / sel_l.max(1.0));
    r.add_metric("red_short_mbps", red_s * 8.0 / 1e6);
    r.add_metric("red_long_mbps", red_l * 8.0 / 1e6);
    r.add_metric("selred_short_mbps", sel_s * 8.0 / 1e6);
    r.add_metric("selred_long_mbps", sel_l * 8.0 / 1e6);
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig16_selective_red_beats_plain_red_on_fairness() {
        let r = run(16);
        let red = r.metric("red_ratio").unwrap();
        let sel = r.metric("selred_ratio").unwrap();
        assert!(
            sel < red,
            "selective RED should be fairer: {sel:.2} vs plain {red:.2}"
        );
        assert!(r.metric("jain_selred").unwrap() >= r.metric("jain_red").unwrap());
        // both keep the link busy
        assert!(r.metric("aggregate_mbps_red").unwrap() > 5.0);
        assert!(r.metric("aggregate_mbps_selred").unwrap() > 5.0);
    }
}
