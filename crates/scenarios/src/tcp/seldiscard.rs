//! F18 — the Selective Discard pseudo-code, exercised `[explicit]`.
//!
//! Fig. 18 of the paper is the pseudo-code of Selective Discard; the
//! implementation is `phantom_tcp::qdisc::SelectiveDiscard` (one
//! predicate: `CR > u × MACR ⇒ discard`). This "experiment" demonstrates
//! the code path on a three-flow dumbbell and reports the mechanism's
//! internal counters, so the figure's content — the algorithm itself —
//! is visible in execution.

use super::collect_tcp;
use crate::common::{tcp_dumbbell, TcpMechanism};
use phantom_metrics::ExperimentResult;
use phantom_sim::SimTime;
use phantom_tcp::network::TrunkIdx;

/// Run F18.
pub fn run(seed: u64) -> ExperimentResult {
    let (mut engine, net) = tcp_dumbbell(3, TcpMechanism::SelectiveDiscard, seed);
    engine.run_until(SimTime::from_secs(15));

    let mut r = ExperimentResult::new(
        "fig18",
        "Selective Discard (the paper's pseudo-code) in execution, 3 flows",
    );
    r.add_note("Fig. 18 is pseudo-code; this runs it and reports its decisions");
    collect_tcp(&engine, &net, &mut r, TrunkIdx(0), 7.0, "seldiscard");

    let port = net.trunk_port(&engine, TrunkIdx(0));
    r.add_metric("policy_drops", port.policy_drops as f64);
    r.add_metric("tail_drops", port.tail_drops() as f64);
    r.add_metric("macr_final_mbps", port.fair_share() * 8.0 / 1e6);
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig18_the_predicate_does_all_the_dropping() {
        let r = run(18);
        assert!(
            r.metric("policy_drops").unwrap() > 0.0,
            "predicate never fired"
        );
        assert_eq!(
            r.metric("tail_drops").unwrap(),
            0.0,
            "selective discard should preempt buffer overflow"
        );
        assert!(r.metric("jain_seldiscard").unwrap() > 0.9);
    }
}
