//! F14 — Reno RTT unfairness and Selective Discard `[explicit]`.
//!
//! "An unfair behavior of Reno in an environment of drop tail routers is
//! depicted in the left hand side of Fig. 14 … The right hand sides of
//! Fig. 14 and Fig. 17 illustrate the behavior of this mechanism
//! [Selective Discard]." Two greedy Reno flows with a 500× RTT spread
//! share a 10 Mb/s trunk: left panel drop-tail (short flow dominates),
//! right panel Selective Discard (bias largely removed).

use super::collect_tcp;
use crate::common::{tcp_rtt_dumbbell, TcpMechanism};
use phantom_metrics::ExperimentResult;
use phantom_sim::{SimDuration, SimTime};
use phantom_tcp::network::TrunkIdx;

const RUN_SECS: f64 = 20.0;
const TAIL: f64 = 10.0;

fn run_side(mech: TcpMechanism, seed: u64) -> (f64, f64, ExperimentSide) {
    let (mut engine, net) = tcp_rtt_dumbbell(SimDuration::from_millis(25), mech, seed);
    engine.run_until(SimTime::from_secs_f64(RUN_SECS));
    let short = net.flow_goodput(&engine, 0).mean_after(TAIL);
    let long = net.flow_goodput(&engine, 1).mean_after(TAIL);
    (short, long, ExperimentSide { engine, net })
}

struct ExperimentSide {
    engine: phantom_sim::Engine<phantom_tcp::TcpMsg>,
    net: phantom_tcp::TcpNetwork,
}

/// Run F14.
pub fn run(seed: u64) -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "fig14",
        "TCP Reno RTT bias: drop-tail (left) vs Selective Discard (right)",
    );
    r.add_note("explicit: left/right panels of the paper's Fig. 14");

    let (dt_s, dt_l, dt_side) = run_side(TcpMechanism::DropTail, seed);
    collect_tcp(
        &dt_side.engine,
        &dt_side.net,
        &mut r,
        TrunkIdx(0),
        TAIL,
        "droptail",
    );
    let (sd_s, sd_l, sd_side) = run_side(TcpMechanism::SelectiveDiscard, seed);
    collect_tcp(
        &sd_side.engine,
        &sd_side.net,
        &mut r,
        TrunkIdx(0),
        TAIL,
        "seldiscard",
    );

    r.add_metric("droptail_short_mbps", dt_s * 8.0 / 1e6);
    r.add_metric("droptail_long_mbps", dt_l * 8.0 / 1e6);
    r.add_metric("droptail_ratio", dt_s / dt_l.max(1.0));
    r.add_metric("seldiscard_short_mbps", sd_s * 8.0 / 1e6);
    r.add_metric("seldiscard_long_mbps", sd_l * 8.0 / 1e6);
    r.add_metric("seldiscard_ratio", sd_s / sd_l.max(1.0));
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig14_selective_discard_reduces_rtt_bias() {
        let r = run(14);
        let dt = r.metric("droptail_ratio").unwrap();
        let sd = r.metric("seldiscard_ratio").unwrap();
        assert!(dt > 3.0, "drop-tail bias missing: {dt:.2}");
        assert!(
            sd < 3.0 && sd < 0.6 * dt,
            "selective discard should shrink the bias: {sd:.2} vs {dt:.2}"
        );
        assert!(r.metric("jain_seldiscard").unwrap() > r.metric("jain_droptail").unwrap());
    }
}
