//! TCP experiments (paper Section 4).

pub mod beatdown;
pub mod over_abr;
pub mod quench;
pub mod sel_red;
pub mod seldiscard;
pub mod unfair_rtt;
pub mod vegas;

use phantom_metrics::ExperimentResult;
use phantom_sim::Engine;
use phantom_tcp::network::TrunkIdx;
use phantom_tcp::{TcpMsg, TcpNetwork};

/// Attach the standard TCP panels: per-flow goodput (Mb/s), bottleneck
/// queue (packets) and MACR (Mb/s, when the discipline has one), plus the
/// standard metrics.
pub(crate) fn collect_tcp(
    engine: &Engine<TcpMsg>,
    net: &TcpNetwork,
    result: &mut ExperimentResult,
    trunk: TrunkIdx,
    tail_from: f64,
    label: &str,
) {
    use phantom_sim::stats::TimeSeries;
    use phantom_sim::SimTime;

    for f in 0..net.flows.len() {
        let mut mbps = TimeSeries::new();
        for (t, v) in net.flow_goodput(engine, f).iter() {
            mbps.push(SimTime::from_secs_f64(t), v * 8.0 / 1e6);
        }
        result.add_series(&format!("goodput_mbps_f{f}_{label}"), mbps);
    }
    result.add_series(
        &format!("queue_pkts_{label}"),
        net.trunk_queue(engine, trunk).clone(),
    );
    let macr = net.trunk_macr(engine, trunk);
    if !macr.is_empty() {
        let mut mbps = TimeSeries::new();
        for (t, v) in macr.iter() {
            mbps.push(SimTime::from_secs_f64(t), v * 8.0 / 1e6);
        }
        result.add_series(&format!("macr_mbps_{label}"), mbps);
    }

    let port = net.trunk_port(engine, trunk);
    let rates: Vec<f64> = (0..net.flows.len())
        .map(|f| net.flow_goodput(engine, f).mean_after(tail_from))
        .collect();
    result.add_metric(
        &format!("jain_{label}"),
        phantom_metrics::jain_index(&rates),
    );
    result.add_metric(
        &format!("aggregate_mbps_{label}"),
        rates.iter().sum::<f64>() * 8.0 / 1e6,
    );
    result.add_metric(
        &format!("mean_queue_pkts_{label}"),
        net.trunk_queue(engine, trunk).mean_after(tail_from),
    );
    result.add_metric(&format!("drops_{label}"), port.total_drops() as f64);
}
