//! F15 — Selective Source Quench `[reconstructed §4]`.
//!
//! Same heterogeneous-RTT topology as F14, with the router sending ICMP
//! Source Quench to over-limit senders instead of dropping. The paper
//! notes these messages "might consume scarce network bandwidth at time
//! of congestion" — the quench-per-goodput metric quantifies that cost —
//! while the fairness benefit should resemble Selective Discard without
//! forcing retransmissions.

use super::collect_tcp;
use crate::common::{tcp_rtt_dumbbell, TcpMechanism};
use phantom_metrics::ExperimentResult;
use phantom_sim::{SimDuration, SimTime};
use phantom_tcp::network::TrunkIdx;

/// Run F15.
pub fn run(seed: u64) -> ExperimentResult {
    let (mut engine, net) = tcp_rtt_dumbbell(
        SimDuration::from_millis(25),
        TcpMechanism::SelectiveQuench,
        seed,
    );
    engine.run_until(SimTime::from_secs(20));

    let mut r = ExperimentResult::new(
        "fig15",
        "Selective Source Quench on the heterogeneous-RTT dumbbell",
    );
    r.add_note("reconstructed §4: quench variant of the Phantom router mechanism");
    collect_tcp(&engine, &net, &mut r, TrunkIdx(0), 10.0, "selquench");

    let short = net.flow_goodput(&engine, 0).mean_after(10.0);
    let long = net.flow_goodput(&engine, 1).mean_after(10.0);
    r.add_metric("short_mbps", short * 8.0 / 1e6);
    r.add_metric("long_mbps", long * 8.0 / 1e6);
    r.add_metric("rate_ratio", short / long.max(1.0));

    let port = net.trunk_port(&engine, TrunkIdx(0));
    r.add_metric("quenches_sent", port.quenches_sent as f64);
    r.add_metric("policy_drops", port.policy_drops as f64);
    let mut cuts = 0;
    for f in 0..2 {
        cuts += net.source(&engine, f).cc_stats().quench_cuts;
    }
    r.add_metric("window_cuts_taken", cuts as f64);
    // The signalling overhead the paper warns about: quenches per
    // delivered megabyte.
    let delivered_mb = (0..2)
        .map(|f| net.sink(&engine, f).bytes_delivered as f64)
        .sum::<f64>()
        / 1e6;
    r.add_metric(
        "quenches_per_mb",
        port.quenches_sent as f64 / delivered_mb.max(1e-9),
    );
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig15_quench_controls_without_drops() {
        let r = run(15);
        assert_eq!(r.metric("policy_drops").unwrap(), 0.0);
        assert!(r.metric("quenches_sent").unwrap() > 0.0);
        assert!(r.metric("window_cuts_taken").unwrap() > 0.0);
        // bias reduced relative to the >3 of drop-tail
        assert!(
            r.metric("rate_ratio").unwrap() < 3.5,
            "ratio {:.2}",
            r.metric("rate_ratio").unwrap()
        );
        assert!(r.metric("aggregate_mbps_selquench").unwrap() > 5.0);
    }
}
