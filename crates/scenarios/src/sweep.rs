//! Parallel fan-out of independent experiment runs across OS threads.
//!
//! Every experiment in the registry is a pure function of `(id, seed)`,
//! so a batch of runs is embarrassingly parallel: workers pull jobs off a
//! shared atomic cursor, run them to completion, and the batch result is
//! reassembled in job order. Parallelism therefore cannot change any
//! result — `--jobs 1` and `--jobs N` produce byte-identical reports —
//! it only changes wall-clock time.
//!
//! Uses only `std::thread::scope`; no thread-pool dependency.

use crate::registry::{run_experiment, ExperimentOutput};
use crate::shape::targets_for;
use phantom_analyze::{AnalysisHandle, AnalysisReport, AnalysisSink, StreamingAnalyzer};
use phantom_metrics::manifest::{Manifest, POSTMORTEM_SCHEMA, PROFILE_SCHEMA, TRACE_SCHEMA};
use phantom_metrics::{ProfileRecord, RunStatus};
use phantom_sim::flight;
use phantom_sim::probe::{FilterProbe, JsonlProbe, KindSet, Probe, ProbeGuard, TeeProbe};
use phantom_sim::telemetry::{self, RunCounters};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// One unit of work: an experiment id plus the seed to run it under.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SweepJob {
    /// Registry id, e.g. `"fig9"`.
    pub id: String,
    /// Master seed for the run (per-node streams derive from it).
    pub seed: u64,
}

/// Observability options for a sweep. The defaults are a fully untraced
/// sweep — probes cost nothing when no trace directory is set.
#[derive(Clone, Debug, Default)]
pub struct SweepOptions {
    /// Write one JSONL trace per run into this directory, named
    /// `<id>-<seed>.jsonl` (deterministic, so parallel workers never
    /// collide). `None` disables tracing entirely.
    pub trace_dir: Option<PathBuf>,
    /// Event kinds to keep in the traces (default: all).
    pub trace_filter: KindSet,
    /// Run a live [`StreamingAnalyzer`] tap over each run with this
    /// window width (seconds), populating [`SweepRun::analysis`]. The
    /// tap always sees the *unfiltered* event stream, so the report is
    /// identical whether or not the written trace is filtered.
    pub analyze_window: Option<f64>,
    /// Profile each run with the engine's in-run profiler and write one
    /// `phantom-profile/1` report per run into this directory, named
    /// `<id>-<seed>-profile.json` (deterministic names, so parallel
    /// workers never collide). Profiling attributes wall time only — it
    /// never changes results. `None` (the default) keeps the profiler
    /// off, which is what the bench gate measures.
    pub profile_dir: Option<PathBuf>,
    /// Atomically rewrite a `phantom-status/1` file here as runs finish
    /// (batch-level progress: runs done / total, events/s, ETA, RSS),
    /// for `phantom status FILE --watch` to poll.
    pub status_file: Option<PathBuf>,
    /// Minimum wall-clock seconds between status rewrites
    /// (`--heartbeat`). `None` rewrites on every run finish — fine for
    /// figure sweeps, wasteful for thousand-run batches. The final
    /// `done` write always lands regardless.
    pub heartbeat_secs: Option<f64>,
    /// Arm the panic flight recorder around every run, writing a
    /// `phantom-postmortem/1` dump to `<id>-<seed>-postmortem.jsonl` in
    /// this directory if that run panics.
    pub post_mortem_dir: Option<PathBuf>,
    /// Ring depth of the flight recorder (`--post-mortem-depth`): how
    /// many recent events a dump retains. `None` keeps the default.
    pub post_mortem_depth: Option<usize>,
    /// Intra-run shard count (`--shards`): run each simulation's engine
    /// on this many conservative PDES shards. 0 (the default) keeps the
    /// serial engine. Results are byte-identical at any non-zero shard
    /// count (but use a different — equally deterministic — equal-time
    /// tie-break than the serial engine; see `phantom_sim::shard`).
    pub shards: usize,
}

/// Shared batch-progress state behind [`SweepOptions::status_file`]:
/// workers bump the counters as runs finish and the finishing worker
/// rewrites the status file. Writes go through the atomic temp+rename
/// writer, so concurrent finishers and external readers are all safe.
struct SweepProgress {
    path: PathBuf,
    scenario: String,
    seed: u64,
    total: u64,
    done: AtomicU64,
    events: AtomicU64,
    start: std::time::Instant,
    /// Heartbeat interval in milliseconds; 0 means "every run".
    heartbeat_ms: u64,
    /// Wall millis (since `start`) of the last status write; workers
    /// race on it with `compare_exchange`, so at most one finisher per
    /// heartbeat window pays for the rewrite.
    last_write_ms: AtomicU64,
}

impl SweepProgress {
    fn new(path: &Path, jobs_list: &[SweepJob], heartbeat_secs: Option<f64>) -> Self {
        let p = SweepProgress {
            path: path.to_path_buf(),
            scenario: "sweep".to_string(),
            seed: jobs_list.first().map_or(0, |j| j.seed),
            total: jobs_list.len() as u64,
            done: AtomicU64::new(0),
            events: AtomicU64::new(0),
            start: std::time::Instant::now(),
            heartbeat_ms: heartbeat_secs.map_or(0, |s| (s.max(0.0) * 1000.0) as u64),
            last_write_ms: AtomicU64::new(0),
        };
        let _ = p.status(0, 0, "running").write(&p.path);
        p
    }

    fn status(&self, done: u64, events: u64, state: &str) -> RunStatus {
        let wall_secs = self.start.elapsed().as_secs_f64();
        let mut s = RunStatus::starting(&self.scenario, self.seed, self.total, "runs");
        s.state = state.to_string();
        s.wall_secs = wall_secs;
        s.done = done;
        s.events = events;
        s.events_per_sec = if wall_secs > 0.0 {
            events as f64 / wall_secs
        } else {
            0.0
        };
        s.eta_secs = (done > 0 && done < self.total)
            .then(|| wall_secs / done as f64 * (self.total - done) as f64);
        s.rss_bytes = telemetry::rss_bytes();
        s
    }

    fn note_run(&self, run_events: u64) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        let events = self.events.fetch_add(run_events, Ordering::Relaxed) + run_events;
        if self.heartbeat_ms > 0 {
            let now_ms = self.start.elapsed().as_millis() as u64;
            let last = self.last_write_ms.load(Ordering::Relaxed);
            let due = now_ms.saturating_sub(last) >= self.heartbeat_ms;
            // One finisher per window wins the exchange and writes; the
            // rest skip — their counts land in the next heartbeat (or
            // the final `done` write, which is unconditional).
            if !due
                || self
                    .last_write_ms
                    .compare_exchange(last, now_ms, Ordering::Relaxed, Ordering::Relaxed)
                    .is_err()
            {
                return;
            }
        }
        let _ = self.status(done, events, "running").write(&self.path);
    }

    fn finish(&self) {
        let done = self.done.load(Ordering::Relaxed);
        let events = self.events.load(Ordering::Relaxed);
        let _ = self.status(done, events, "done").write(&self.path);
    }
}

/// The outcome of one job.
pub struct SweepRun {
    /// The job this run answers.
    pub job: SweepJob,
    /// The experiment output; `None` if the id is unknown.
    pub output: Option<ExperimentOutput>,
    /// Simulator events dispatched by this run.
    pub events: u64,
    /// Wall-clock seconds this run took on its worker thread.
    pub wall_secs: f64,
    /// Drop/retransmit/queue-peak telemetry observed during the run.
    pub counters: RunCounters,
    /// The live analysis report, when [`SweepOptions::analyze_window`]
    /// was set. Byte-identical to `phantom analyze` over the written
    /// trace of the same run.
    pub analysis: Option<AnalysisReport>,
}

/// Build the per-run JSONL trace probe, if a trace directory is
/// configured. Any I/O failure silently disables tracing for this run
/// rather than aborting the sweep.
fn trace_probe(job: &SweepJob, opts: &SweepOptions) -> Option<Box<dyn Probe>> {
    let dir = opts.trace_dir.as_ref()?;
    std::fs::create_dir_all(dir).ok()?;
    let path = dir.join(format!("{}-{}.jsonl", job.id, job.seed));
    let file = std::fs::File::create(path).ok()?;
    let manifest = Manifest::new(TRACE_SCHEMA, &job.id, job.seed, &job.id);
    let probe = JsonlProbe::with_manifest(file, &manifest.to_json()).ok()?;
    Some(if opts.trace_filter == KindSet::ALL {
        Box::new(probe)
    } else {
        Box::new(FilterProbe::new(opts.trace_filter, probe))
    })
}

/// Build the live analysis tap, if enabled. The sink carries the same
/// manifest the trace file does, so re-analyzing the file reproduces the
/// live report byte-for-byte.
fn analysis_sink(job: &SweepJob, opts: &SweepOptions) -> Option<(Box<dyn Probe>, AnalysisHandle)> {
    let window = opts.analyze_window?;
    let manifest = Manifest::new(TRACE_SCHEMA, &job.id, job.seed, &job.id);
    let analyzer = StreamingAnalyzer::new(&manifest, targets_for(&job.id), window);
    let (sink, handle) = AnalysisSink::new(analyzer);
    Some((Box::new(sink), handle))
}

/// Arm the panic flight recorder for one run, if a post-mortem
/// directory is configured. Mirrors the profile writer's silent-degrade
/// semantics: an uncreatable directory disables the recorder for this
/// run rather than aborting the sweep.
fn flight_recorder(
    job: &SweepJob,
    opts: &SweepOptions,
) -> Option<(flight::FlightGuard, Box<dyn Probe>)> {
    let dir = opts.post_mortem_dir.as_ref()?;
    std::fs::create_dir_all(dir).ok()?;
    let path = dir.join(format!("{}-{}-postmortem.jsonl", job.id, job.seed));
    let manifest = Manifest::new(POSTMORTEM_SCHEMA, &job.id, job.seed, &job.id);
    let depth = opts.post_mortem_depth.unwrap_or(flight::DEFAULT_RING_CAP);
    let guard = flight::arm(&path, Some(&manifest.to_json()), depth);
    Some((guard, Box::new(flight::FlightProbe)))
}

fn run_one(job: &SweepJob, opts: &SweepOptions) -> SweepRun {
    let (tap, handle) = match analysis_sink(job, opts) {
        Some((tap, handle)) => (Some(tap), Some(handle)),
        None => (None, None),
    };
    // Held for the whole run: dropping disarms the recorder.
    let (_flight_guard, flight_tap) = match flight_recorder(job, opts) {
        Some((guard, tap)) => (Some(guard), Some(tap)),
        None => (None, None),
    };
    let mut probes: Vec<Box<dyn Probe>> = Vec::new();
    probes.extend(flight_tap);
    probes.extend(tap);
    probes.extend(trace_probe(job, opts));
    let guard = match probes.len() {
        0 => None,
        1 => Some(ProbeGuard::install(probes.pop().expect("len checked"))),
        _ => Some(ProbeGuard::install(Box::new(
            probes.into_iter().fold(TeeProbe::new(), TeeProbe::and),
        ))),
    };
    let marker = telemetry::begin_run();
    let prof = opts
        .profile_dir
        .as_ref()
        .map(|_| phantom_sim::profile::begin_profile());
    let events_before = phantom_sim::thread_events_dispatched();
    let start = std::time::Instant::now();
    // Restores the worker thread's previous request on drop, panics
    // included, so one run's shard request never leaks into the next.
    let _shard_guard = phantom_sim::ShardGuard::new(opts.shards);
    let output = run_experiment(&job.id, job.seed);
    let events = phantom_sim::thread_events_dispatched() - events_before;
    let wall_secs = start.elapsed().as_secs_f64();
    if let (Some(bracket), Some(dir)) = (prof, opts.profile_dir.as_ref()) {
        let record = ProfileRecord {
            manifest: Manifest::new(PROFILE_SCHEMA, &job.id, job.seed, &job.id),
            wall_secs,
            report: bracket.finish(),
        };
        // Like the trace probe, an unwritable profile degrades this run's
        // observability rather than aborting the sweep.
        let _ = record.write(&dir.join(format!("{}-{}-profile.json", job.id, job.seed)));
    }
    let counters = marker.finish();
    drop(guard); // flushes the trace file
    let analysis = handle.and_then(AnalysisHandle::finish);
    SweepRun {
        job: job.clone(),
        output,
        events,
        wall_secs,
        counters,
        analysis,
    }
}

/// Run every job, fanning across up to `jobs` worker threads, and return
/// the results in the same order as `jobs_list`.
pub fn run_sweep(jobs_list: &[SweepJob], jobs: usize) -> Vec<SweepRun> {
    run_sweep_with(jobs_list, jobs, &SweepOptions::default())
}

/// [`run_sweep`] with observability options. Each worker thread installs
/// its own probe, so traces stay deterministic at any `--jobs` level.
pub fn run_sweep_with(jobs_list: &[SweepJob], jobs: usize, opts: &SweepOptions) -> Vec<SweepRun> {
    let workers = jobs.max(1).min(jobs_list.len());
    let progress = opts
        .status_file
        .as_ref()
        .map(|p| SweepProgress::new(p, jobs_list, opts.heartbeat_secs));
    let note = |run: &SweepRun| {
        if let Some(p) = &progress {
            p.note_run(run.events);
        }
    };
    let out = if workers <= 1 {
        jobs_list
            .iter()
            .map(|j| {
                let run = run_one(j, opts);
                note(&run);
                run
            })
            .collect()
    } else {
        let cursor = AtomicUsize::new(0);
        let mut indexed: Vec<(usize, SweepRun)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(job) = jobs_list.get(i) else { break };
                            let run = run_one(job, opts);
                            note(&run);
                            local.push((i, run));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("sweep worker panicked"))
                .collect()
        });
        indexed.sort_by_key(|(i, _)| *i);
        indexed.into_iter().map(|(_, r)| r).collect()
    };
    if let Some(p) = &progress {
        p.finish();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jobs(ids: &[(&str, u64)]) -> Vec<SweepJob> {
        ids.iter()
            .map(|(id, seed)| SweepJob {
                id: id.to_string(),
                seed: *seed,
            })
            .collect()
    }

    #[test]
    fn parallel_results_match_sequential_byte_for_byte() {
        let batch = jobs(&[("fig2", 1996), ("fig2", 1997)]);
        let seq = run_sweep(&batch, 1);
        let par = run_sweep(&batch, 4);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.job, b.job, "result order must follow job order");
            assert_eq!(a.events, b.events, "event counts must match");
            let ra = a.output.as_ref().expect("fig2 is known").render(0);
            let rb = b.output.as_ref().expect("fig2 is known").render(0);
            assert_eq!(ra, rb, "reports must be byte-identical");
        }
    }

    #[test]
    fn unknown_ids_surface_as_none_in_order() {
        let batch = jobs(&[("no-such-figure", 1)]);
        let out = run_sweep(&batch, 2);
        assert_eq!(out.len(), 1);
        assert!(out[0].output.is_none());
        assert_eq!(out[0].events, 0);
    }

    #[test]
    fn events_and_wall_time_are_recorded() {
        let out = run_sweep(&jobs(&[("fig2", 1996)]), 1);
        assert!(out[0].events > 0, "a simulation dispatches events");
        assert!(out[0].wall_secs > 0.0);
    }

    /// The observability acceptance test: a JSONL-probed run must be
    /// byte-identical to the untraced run — same renders, same event
    /// counts, same telemetry — whether serial or fanned across workers,
    /// and the trace files must carry a manifest first line.
    #[test]
    fn traced_runs_are_byte_identical_serial_and_parallel() {
        let batch = jobs(&[("fig2", 1996), ("fig4", 1996)]);
        let plain = run_sweep(&batch, 1);

        let dir = std::env::temp_dir().join(format!("phantom-sweep-trace-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = SweepOptions {
            trace_dir: Some(dir.clone()),
            trace_filter: KindSet::ALL,
            analyze_window: None,
            ..SweepOptions::default()
        };
        let serial = run_sweep_with(&batch, 1, &opts);
        let parallel = run_sweep_with(&batch, 4, &opts);

        for (a, b) in plain.iter().zip(serial.iter().chain(&parallel)) {
            assert_eq!(a.job.id, b.job.id);
            assert_eq!(a.events, b.events, "tracing must not change dispatch");
            assert_eq!(a.counters, b.counters, "telemetry must be identical");
            assert_eq!(
                a.output.as_ref().unwrap().render(0),
                b.output.as_ref().unwrap().render(0),
                "reports must be byte-identical with a probe attached"
            );
        }

        for job in &batch {
            let path = dir.join(format!("{}-{}.jsonl", job.id, job.seed));
            let text = std::fs::read_to_string(&path).unwrap();
            let first = text.lines().next().unwrap();
            assert!(first.contains("phantom-trace/1"), "manifest first: {first}");
            assert!(first.contains(&format!("\"scenario\":\"{}\"", job.id)));
            assert!(text.lines().count() > 1, "trace must contain events");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The PR 7 acceptance at the sweep level: a profiled, status-filed
    /// sweep produces byte-identical results; every run gets a
    /// `phantom-profile/1` report whose attributed share is sane; the
    /// status file ends in state `done` with every run counted and a
    /// well-formed final document.
    #[test]
    fn profiled_sweep_is_identical_and_writes_profile_and_status() {
        let batch = jobs(&[("fig2", 1996), ("fig4", 1996)]);
        let plain = run_sweep(&batch, 1);

        let dir = std::env::temp_dir().join(format!("phantom-sweep-prof-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let status_path = dir.join("run.status.json");
        let opts = SweepOptions {
            profile_dir: Some(dir.clone()),
            status_file: Some(status_path.clone()),
            ..SweepOptions::default()
        };
        let profiled = run_sweep_with(&batch, 2, &opts);

        for (a, b) in plain.iter().zip(&profiled) {
            assert_eq!(a.events, b.events, "profiling must not change dispatch");
            assert_eq!(a.counters, b.counters, "telemetry must be identical");
            assert_eq!(
                a.output.as_ref().unwrap().render(0),
                b.output.as_ref().unwrap().render(0),
                "reports must be byte-identical under the profiler"
            );
        }

        for job in &batch {
            let path = dir.join(format!("{}-{}-profile.json", job.id, job.seed));
            let text = std::fs::read_to_string(&path).unwrap();
            assert!(text.contains("\"schema\": \"phantom-profile/1\""));
            assert!(text.contains(&format!("\"scenario\":\"{}\"", job.id)));
            assert!(text.contains("\"name\": \"calendar.pop\""));
            assert!(
                text.contains("\"name\": \"cell\""),
                "the ATM classifier labels cell dispatches: {}",
                job.id
            );
            let share = text
                .lines()
                .find_map(|l| l.trim().strip_prefix("\"attributed_share\": "))
                .and_then(|v| v.trim_end_matches(',').parse::<f64>().ok())
                .expect("attributed_share field");
            assert!(
                share > 0.9 && share <= 1.0 + 1e-9,
                "attribution must cover the loop wall: {share}"
            );
        }

        let st = std::fs::read_to_string(&status_path).unwrap();
        assert!(st.starts_with("{\"schema\": \"phantom-status/1\""));
        assert!(st.ends_with("}\n"));
        assert!(st.contains("\"state\": \"done\""));
        assert!(st.contains("\"done\": 2") && st.contains("\"total\": 2"));
        assert!(st.contains("\"unit\": \"runs\""));
        assert!(st.contains("\"progress\": 1"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Acceptance: every drop the run's telemetry counted appears as a
    /// `drop` event in the JSONL trace (the probe and the counters watch
    /// the same queue sites), and the per-interval MACR updates all land
    /// too — across one ATM and one TCP experiment.
    #[test]
    fn every_drop_and_macr_update_lands_in_the_trace() {
        let dir = std::env::temp_dir().join(format!("phantom-sweep-accept-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = SweepOptions {
            trace_dir: Some(dir.clone()),
            trace_filter: KindSet::ALL,
            analyze_window: None,
            ..SweepOptions::default()
        };
        let batch = jobs(&[("fig2", 1996), ("fig14", 1996)]);
        let out = run_sweep_with(&batch, 2, &opts);
        for (job, run) in batch.iter().zip(&out) {
            let path = dir.join(format!("{}-{}.jsonl", job.id, job.seed));
            let text = std::fs::read_to_string(&path).unwrap();
            let drops = text
                .lines()
                .filter(|l| l.contains("\"kind\":\"drop\""))
                .count() as u64;
            assert_eq!(
                drops, run.counters.drops,
                "{}: every counted drop must appear in the trace",
                job.id
            );
        }
        let fig2 = std::fs::read_to_string(dir.join("fig2-1996.jsonl")).unwrap();
        let macrs = fig2
            .lines()
            .filter(|l| l.contains("\"kind\":\"macr\""))
            .count();
        assert!(macrs > 100, "fig2 updates MACR every interval: {macrs}");
        assert!(
            out[1].counters.drops > 0,
            "fig14 drops packets, so the drop cross-check is not vacuous"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The tentpole acceptance: a live `AnalysisSink` run must produce
    /// the same `phantom-analysis/1` report as analyzing the trace it
    /// wrote — byte-identical JSON — at any `--jobs` level, and even
    /// when the written trace is filtered (the tap sees everything).
    #[test]
    fn live_analysis_matches_file_analysis_at_any_jobs_level() {
        use crate::shape::targets_for;
        let dir = std::env::temp_dir().join(format!("phantom-sweep-live-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = SweepOptions {
            trace_dir: Some(dir.clone()),
            trace_filter: KindSet::ALL,
            analyze_window: Some(phantom_analyze::DEFAULT_WINDOW_SECS),
            ..SweepOptions::default()
        };
        let batch = jobs(&[("fig2", 1996), ("fig4", 1996)]);
        let serial = run_sweep_with(&batch, 1, &opts);
        let parallel = run_sweep_with(&batch, 4, &opts);
        for run in serial.iter().chain(&parallel) {
            let live = run.analysis.as_ref().expect("analysis enabled");
            let path = dir.join(format!("{}-{}.jsonl", run.job.id, run.job.seed));
            let from_file = phantom_analyze::analyze_trace_file(
                &path,
                targets_for(&run.job.id),
                phantom_analyze::DEFAULT_WINDOW_SECS,
            )
            .unwrap();
            assert_eq!(
                live.to_json(),
                from_file.to_json(),
                "{}: live tap and trace re-analysis must agree byte-for-byte",
                run.job.id
            );
            assert!(live.events > 0);
        }

        // A filtered trace must not change the live report.
        let filtered = SweepOptions {
            trace_filter: KindSet::parse("drop").unwrap(),
            ..opts
        };
        let thin = run_sweep_with(&jobs(&[("fig2", 1996)]), 1, &filtered);
        assert_eq!(
            thin[0].analysis.as_ref().unwrap().to_json(),
            serial[0].analysis.as_ref().unwrap().to_json(),
            "the tap must see the unfiltered stream"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// PR 8 satellites at the sweep level: a heartbeat-throttled,
    /// flight-armed sweep is byte-identical to a plain one; the status
    /// file still ends in an unconditional `done` write even when the
    /// heartbeat interval is far longer than the whole batch; and a
    /// clean run leaves no post-mortem dump behind (the recorder only
    /// writes on panic).
    #[test]
    fn heartbeat_and_post_mortem_do_not_change_results() {
        let batch = jobs(&[("fig2", 1996), ("fig4", 1996)]);
        let plain = run_sweep(&batch, 1);

        let dir = std::env::temp_dir().join(format!("phantom-sweep-hb-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let status_path = dir.join("run.status.json");
        std::fs::create_dir_all(&dir).unwrap();
        let opts = SweepOptions {
            status_file: Some(status_path.clone()),
            heartbeat_secs: Some(3600.0), // throttles every mid-run write
            post_mortem_dir: Some(dir.clone()),
            post_mortem_depth: Some(64),
            ..SweepOptions::default()
        };
        let out = run_sweep_with(&batch, 2, &opts);

        for (a, b) in plain.iter().zip(&out) {
            assert_eq!(a.events, b.events, "arming must not change dispatch");
            assert_eq!(a.counters, b.counters, "telemetry must be identical");
            assert_eq!(
                a.output.as_ref().unwrap().render(0),
                b.output.as_ref().unwrap().render(0),
                "reports must be byte-identical with the recorder armed"
            );
        }

        // The final write is unconditional, so despite the 1-hour
        // heartbeat the file must end in state `done` with full counts.
        let st = std::fs::read_to_string(&status_path).unwrap();
        assert!(st.contains("\"state\": \"done\""));
        assert!(st.contains("\"done\": 2") && st.contains("\"total\": 2"));

        // No panic, no dump.
        for job in &batch {
            let dump = dir.join(format!("{}-{}-postmortem.jsonl", job.id, job.seed));
            assert!(!dump.exists(), "clean runs write no post-mortem");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_filter_limits_kinds() {
        let dir = std::env::temp_dir().join(format!("phantom-sweep-filter-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = SweepOptions {
            trace_dir: Some(dir.clone()),
            trace_filter: KindSet::parse("macr,drop").unwrap(),
            analyze_window: None,
            ..SweepOptions::default()
        };
        let out = run_sweep_with(&jobs(&[("fig2", 7)]), 1, &opts);
        assert!(out[0].output.is_some());
        let text = std::fs::read_to_string(dir.join("fig2-7.jsonl")).unwrap();
        let mut saw_macr = false;
        for line in text.lines().skip(1) {
            assert!(
                line.contains("\"kind\":\"macr\"") || line.contains("\"kind\":\"drop\""),
                "filtered kinds only: {line}"
            );
            saw_macr |= line.contains("\"kind\":\"macr\"");
        }
        assert!(saw_macr, "fig2 runs MACR updates every interval");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
