//! Parallel fan-out of independent experiment runs across OS threads.
//!
//! Every experiment in the registry is a pure function of `(id, seed)`,
//! so a batch of runs is embarrassingly parallel: workers pull jobs off a
//! shared atomic cursor, run them to completion, and the batch result is
//! reassembled in job order. Parallelism therefore cannot change any
//! result — `--jobs 1` and `--jobs N` produce byte-identical reports —
//! it only changes wall-clock time.
//!
//! Uses only `std::thread::scope`; no thread-pool dependency.

use crate::registry::{run_experiment, ExperimentOutput};
use std::sync::atomic::{AtomicUsize, Ordering};

/// One unit of work: an experiment id plus the seed to run it under.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SweepJob {
    /// Registry id, e.g. `"fig9"`.
    pub id: String,
    /// Master seed for the run (per-node streams derive from it).
    pub seed: u64,
}

/// The outcome of one job.
pub struct SweepRun {
    /// The job this run answers.
    pub job: SweepJob,
    /// The experiment output; `None` if the id is unknown.
    pub output: Option<ExperimentOutput>,
    /// Simulator events dispatched by this run.
    pub events: u64,
    /// Wall-clock seconds this run took on its worker thread.
    pub wall_secs: f64,
}

fn run_one(job: &SweepJob) -> SweepRun {
    let events_before = phantom_sim::thread_events_dispatched();
    let start = std::time::Instant::now();
    let output = run_experiment(&job.id, job.seed);
    SweepRun {
        job: job.clone(),
        output,
        events: phantom_sim::thread_events_dispatched() - events_before,
        wall_secs: start.elapsed().as_secs_f64(),
    }
}

/// Run every job, fanning across up to `jobs` worker threads, and return
/// the results in the same order as `jobs_list`.
pub fn run_sweep(jobs_list: &[SweepJob], jobs: usize) -> Vec<SweepRun> {
    let workers = jobs.max(1).min(jobs_list.len());
    if workers <= 1 {
        return jobs_list.iter().map(run_one).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, SweepRun)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(job) = jobs_list.get(i) else { break };
                        local.push((i, run_one(job)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    });
    indexed.sort_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jobs(ids: &[(&str, u64)]) -> Vec<SweepJob> {
        ids.iter()
            .map(|(id, seed)| SweepJob {
                id: id.to_string(),
                seed: *seed,
            })
            .collect()
    }

    #[test]
    fn parallel_results_match_sequential_byte_for_byte() {
        let batch = jobs(&[("fig2", 1996), ("fig2", 1997)]);
        let seq = run_sweep(&batch, 1);
        let par = run_sweep(&batch, 4);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.job, b.job, "result order must follow job order");
            assert_eq!(a.events, b.events, "event counts must match");
            let ra = a.output.as_ref().expect("fig2 is known").render(0);
            let rb = b.output.as_ref().expect("fig2 is known").render(0);
            assert_eq!(ra, rb, "reports must be byte-identical");
        }
    }

    #[test]
    fn unknown_ids_surface_as_none_in_order() {
        let batch = jobs(&[("no-such-figure", 1)]);
        let out = run_sweep(&batch, 2);
        assert_eq!(out.len(), 1);
        assert!(out[0].output.is_none());
        assert_eq!(out[0].events, 0);
    }

    #[test]
    fn events_and_wall_time_are_recorded() {
        let out = run_sweep(&jobs(&[("fig2", 1996)]), 1);
        assert!(out[0].events > 0, "a simulation dispatches events");
        assert!(out[0].wall_secs > 0.0);
    }
}
