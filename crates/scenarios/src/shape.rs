//! Per-figure expected-shape tables for the analyzer.
//!
//! Each traced figure maps to the [`AnalysisTargets`] the paper's model
//! predicts for it — the MACR fixed point `C/(1+n·u)` with `u = 5`, the
//! bottleneck capacity, and the measurement tail the figure itself uses —
//! so `repro --analyze` and `phantom analyze` agree on what "converged"
//! and "utilized" mean for every scenario.

use phantom_analyze::AnalysisTargets;
use phantom_atm::units::mbps_to_cps;
use phantom_core::fixed_point::single_link_macr;
use std::sync::RwLock;

/// The paper's utilization parameter (sessions send at `u × MACR`).
const U: f64 = 5.0;

/// Expected analysis targets for a registry id, or `None` when the
/// figure has no committed shape (comparisons, tables, TCP sweeps). The
/// entries mirror the scenarios themselves: capacity, session count and
/// measurement tail are copied from each figure's construction.
pub fn expected_shape(id: &str) -> Option<AnalysisTargets> {
    let c = mbps_to_cps(150.0);
    let fixed = |n: usize| Some(single_link_macr(c, n, U));
    let shape = |macr_cps, tail_from_secs| AnalysisTargets {
        macr_cps,
        capacity_cps: Some(c),
        conv_tol: 0.15,
        tail_from_secs,
        epochs: Vec::new(),
    };
    match id {
        // F2: two greedy sessions, 500 ms, figure measures after 300 ms.
        "fig2" => Some(shape(fixed(2), 0.3)),
        // F3: staggered joins/leaves; the n = 5 plateau holds from
        // 950 ms to the 1200 ms end of the run.
        "fig3" => Some(shape(fixed(5), 0.95)),
        // F4: on/off burstiness — MACR tracks the load, no fixed point.
        "fig4" => Some(shape(None, 0.2)),
        // F5: heterogeneous RTT, two greedy sessions, 1000 ms run.
        "fig5" => Some(shape(fixed(2), 0.5)),
        // F8: fifty greedy sessions at scale, 800 ms run.
        "fig8" => Some(shape(fixed(50), 0.5)),
        _ => None,
    }
}

/// Dynamically registered shapes (scene-compiled experiments declare the
/// targets their topology/timeline predicts, including perturbation
/// epochs). Static shapes take precedence: a scene presenting a built-in
/// id analyzes against the identical committed table, so twin reports
/// stay byte-identical.
fn dynamic_shapes() -> &'static RwLock<Vec<(String, AnalysisTargets)>> {
    static DYNAMIC: RwLock<Vec<(String, AnalysisTargets)>> = RwLock::new(Vec::new());
    &DYNAMIC
}

/// Register (or replace) the expected shape for a dynamic experiment id.
/// Ignored by [`targets_for`] when `id` has a committed static shape.
pub fn register_shape(id: &str, targets: AnalysisTargets) {
    let mut shapes = dynamic_shapes().write().unwrap();
    if let Some(slot) = shapes.iter_mut().find(|(k, _)| k == id) {
        slot.1 = targets;
    } else {
        shapes.push((id.to_string(), targets));
    }
}

/// [`expected_shape`] with dynamic-registry and target-free fallbacks,
/// for ids that have no committed shape but should still be analyzable.
pub fn targets_for(id: &str) -> AnalysisTargets {
    if let Some(t) = expected_shape(id) {
        return t;
    }
    dynamic_shapes()
        .read()
        .unwrap()
        .iter()
        .find(|(k, _)| k == id)
        .map(|(_, t)| t.clone())
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_state_the_paper_fixed_points() {
        let c = mbps_to_cps(150.0);
        let fig2 = expected_shape("fig2").unwrap();
        assert_eq!(fig2.macr_cps, Some(single_link_macr(c, 2, 5.0)));
        assert_eq!(fig2.capacity_cps, Some(c));
        assert_eq!(fig2.tail_from_secs, 0.3);
        let fig3 = expected_shape("fig3").unwrap();
        assert_eq!(fig3.macr_cps, Some(single_link_macr(c, 5, 5.0)));
        assert_eq!(fig3.tail_from_secs, 0.95);
        let fig4 = expected_shape("fig4").unwrap();
        assert_eq!(fig4.macr_cps, None);
        assert_eq!(fig4.capacity_cps, Some(c));
    }

    #[test]
    fn unknown_ids_fall_back_to_target_free_analysis() {
        assert!(expected_shape("table1").is_none());
        let t = targets_for("table1");
        assert_eq!(t.macr_cps, None);
        assert_eq!(t.capacity_cps, None);
    }
}
