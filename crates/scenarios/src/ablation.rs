//! T3 — ablations of Phantom's design choices (DESIGN.md §4.1).
//!
//! Four axes, each on the two-greedy-session scenario:
//!
//! * **Residual mode** — arrivals vs departures: measuring literal idle
//!   capacity stalls at zero while a standing queue drains.
//! * **Measurement interval Δt** — shorter reacts faster but measures
//!   noisier residuals.
//! * **Utilization factor u** — trades utilization against the phantom
//!   session's (i.e. headroom's) share: `util = n·u/(1+n·u)`.
//! * **Adaptive gains** — the paper's deviation damping vs fixed gains.

use crate::common::{single_bottleneck, AtmAlgorithm};
use phantom_atm::network::{NetworkBuilder, TrunkIdx};
use phantom_atm::units::cps_to_mbps;
use phantom_atm::{AtmMsg, Network, Traffic};
use phantom_core::{MacrConfig, PhantomAllocator, PhantomConfig};
use phantom_metrics::{oscillation_amplitude, Table};
use phantom_sim::{Engine, SimDuration, SimTime};

fn run_config(cfg: PhantomConfig, dt: SimDuration, seed: u64) -> (Engine<AtmMsg>, Network) {
    let mut b = NetworkBuilder::new().measure_interval(dt);
    let s1 = b.switch("s1");
    let s2 = b.switch("s2");
    b.trunk(s1, s2, 150.0, SimDuration::from_micros(10));
    for _ in 0..2 {
        b.session(&[s1, s2], Traffic::greedy());
    }
    let mut engine = Engine::new(seed);
    let net = b.build(&mut engine, &mut || Box::new(PhantomAllocator::new(cfg)));
    engine.run_until(SimTime::from_millis(700));
    (engine, net)
}

fn row(engine: &Engine<AtmMsg>, net: &Network) -> Vec<f64> {
    let util = crate::common::trunk_utilization(engine, net, TrunkIdx(0), 0.4);
    let q = net.trunk_queue(engine, TrunkIdx(0));
    let macr = net.trunk_macr(engine, TrunkIdx(0));
    vec![
        util,
        q.mean_after(0.4),
        net.trunk_port(engine, TrunkIdx(0)).queue_high_water() as f64,
        cps_to_mbps(oscillation_amplitude(macr, 0.4)),
        cps_to_mbps(macr.mean_after(0.4)),
    ]
}

/// Run T3.
pub fn table_ablation(seed: u64) -> Table {
    let mut t = Table::new(
        "table3",
        "Phantom ablations (2 greedy sessions, 150 Mb/s)",
        &[
            "variant",
            "utilization",
            "mean_q",
            "max_q",
            "macr_osc_mbps",
            "macr_mbps",
        ],
    );

    // Baseline.
    let (e, n) = run_config(PhantomConfig::paper(), SimDuration::from_millis(1), seed);
    t.add_row("baseline(u5,dt1ms,adaptive,arrivals)", row(&e, &n));

    // Residual mode.
    let (e, n) = {
        let (mut engine, net) = single_bottleneck(
            &[Traffic::greedy(), Traffic::greedy()],
            AtmAlgorithm::PhantomDepartures,
            seed,
        );
        engine.run_until(SimTime::from_millis(700));
        (engine, net)
    };
    t.add_row("residual=departures", row(&e, &n));

    // Δt sweep.
    for (label, us) in [("dt=0.5ms", 500u64), ("dt=2ms", 2000), ("dt=5ms", 5000)] {
        let (e, n) = run_config(PhantomConfig::paper(), SimDuration::from_micros(us), seed);
        t.add_row(label, row(&e, &n));
    }

    // Utilization factor sweep.
    for u in [2.0, 10.0, 20.0] {
        let (e, n) = run_config(
            PhantomConfig::paper().with_utilization_factor(u),
            SimDuration::from_millis(1),
            seed,
        );
        t.add_row(&format!("u={u}"), row(&e, &n));
    }

    // Fixed gains.
    let (e, n) = run_config(
        PhantomConfig::paper().with_macr(MacrConfig::default().fixed_gains()),
        SimDuration::from_millis(1),
        seed,
    );
    t.add_row("fixed-gains", row(&e, &n));

    // No normalization cap (pure alpha).
    let (e, n) = run_config(
        PhantomConfig::paper().with_macr(MacrConfig {
            norm_gain: f64::INFINITY,
            ..MacrConfig::default()
        }),
        SimDuration::from_millis(1),
        seed,
    );
    t.add_row("no-gain-normalization", row(&e, &n));

    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_ablation_shapes() {
        let t = table_ablation(103);
        // higher u buys utilization
        let u2 = t.cell("u=2", "utilization").unwrap();
        let u20 = t.cell("u=20", "utilization").unwrap();
        assert!(
            u20 > u2,
            "u=20 util {u20:.3} should exceed u=2 util {u2:.3}"
        );
        // theory: n=2 -> u=2: 80%, u=20: 97.6%
        assert!((u2 - 0.80).abs() < 0.06, "u2 util {u2}");
        assert!((u20 - 0.976).abs() < 0.03, "u20 util {u20}");
        // every variant keeps the link controlled
        for label in [
            "baseline(u5,dt1ms,adaptive,arrivals)",
            "residual=departures",
            "dt=0.5ms",
            "dt=2ms",
            "dt=5ms",
            "fixed-gains",
            "no-gain-normalization",
        ] {
            let q = t.cell(label, "mean_q").unwrap();
            assert!(q < 4000.0, "{label}: queue runaway {q}");
        }
    }
}
