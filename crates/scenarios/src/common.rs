//! Shared scenario plumbing: algorithm catalogs and standard topologies.

use phantom_atm::allocator::RateAllocator;
use phantom_atm::network::{Network, NetworkBuilder, SwIdx};
use phantom_atm::units::mbps_to_cps;
use phantom_atm::{AtmMsg, Traffic};
use phantom_baselines::{Aprc, Capc, Eprca, Erica, Osu};
use phantom_core::{MacrConfig, PhantomAllocator, PhantomConfig, PhantomNi, ResidualMode};
use phantom_sim::{Engine, SimDuration, SimTime};
use phantom_tcp::qdisc::{
    DropTail, EfciMark, QueueDiscipline, Red, SelectiveDiscard, SelectiveQuench, SelectiveRed,
};
use phantom_tcp::{TcpMsg, TcpNetwork, TcpNetworkBuilder};

/// The ATM rate-control algorithms under comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AtmAlgorithm {
    /// Phantom, explicit-rate mode (the paper's default).
    Phantom,
    /// Phantom with fixed (non-adaptive) gains — the Fig. 12 ablation.
    PhantomFixedAlpha,
    /// Phantom measuring departures instead of arrivals — ablation.
    PhantomDepartures,
    /// Phantom, binary NI/CI mode (Fig. 11).
    PhantomNi,
    /// EPRCA \[Rob94\].
    Eprca,
    /// APRC \[ST94\].
    Aprc,
    /// CAPC \[Bar94\].
    Capc,
    /// ERICA \[JKV94\] — the unbounded-space (per-VC state) comparator.
    Erica,
    /// OSU \[JKV94\] — basic load-factor scaling, constant space.
    Osu,
}

impl AtmAlgorithm {
    /// Instantiate one per-port allocator.
    pub fn boxed(self) -> Box<dyn RateAllocator> {
        match self {
            AtmAlgorithm::Phantom => Box::new(PhantomAllocator::paper()),
            AtmAlgorithm::PhantomFixedAlpha => Box::new(PhantomAllocator::new(
                PhantomConfig::paper().with_macr(MacrConfig::default().fixed_gains()),
            )),
            AtmAlgorithm::PhantomDepartures => {
                let macr = MacrConfig {
                    residual: ResidualMode::Departures,
                    ..MacrConfig::default()
                };
                Box::new(PhantomAllocator::new(
                    PhantomConfig::paper().with_macr(macr),
                ))
            }
            AtmAlgorithm::PhantomNi => Box::new(PhantomNi::paper()),
            AtmAlgorithm::Eprca => Box::new(Eprca::recommended()),
            AtmAlgorithm::Aprc => Box::new(Aprc::recommended()),
            AtmAlgorithm::Capc => Box::new(Capc::recommended()),
            AtmAlgorithm::Erica => Box::new(Erica::recommended()),
            AtmAlgorithm::Osu => Box::new(Osu::recommended()),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            AtmAlgorithm::Phantom => "phantom",
            AtmAlgorithm::PhantomFixedAlpha => "phantom-fixed-alpha",
            AtmAlgorithm::PhantomDepartures => "phantom-departures",
            AtmAlgorithm::PhantomNi => "phantom-ni",
            AtmAlgorithm::Eprca => "eprca",
            AtmAlgorithm::Aprc => "aprc",
            AtmAlgorithm::Capc => "capc",
            AtmAlgorithm::Erica => "erica",
            AtmAlgorithm::Osu => "osu",
        }
    }
}

/// The TCP router mechanisms under comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TcpMechanism {
    /// Plain FIFO.
    DropTail,
    /// Random Early Detection \[FJ93\].
    Red,
    /// The paper's Selective Discard (Fig. 18).
    SelectiveDiscard,
    /// The paper's Selective Source Quench.
    SelectiveQuench,
    /// The paper's Selective RED.
    SelectiveRed,
    /// The paper's EFCI/ECN marking.
    EfciMark,
}

impl TcpMechanism {
    /// Instantiate one per-port discipline.
    pub fn boxed(self) -> Box<dyn QueueDiscipline> {
        match self {
            TcpMechanism::DropTail => Box::new(DropTail),
            TcpMechanism::Red => Box::new(Red::recommended()),
            TcpMechanism::SelectiveDiscard => Box::new(SelectiveDiscard::paper()),
            TcpMechanism::SelectiveQuench => Box::new(SelectiveQuench::paper()),
            TcpMechanism::SelectiveRed => Box::new(SelectiveRed::paper()),
            TcpMechanism::EfciMark => Box::new(EfciMark::paper()),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            TcpMechanism::DropTail => "drop-tail",
            TcpMechanism::Red => "red",
            TcpMechanism::SelectiveDiscard => "selective-discard",
            TcpMechanism::SelectiveQuench => "selective-quench",
            TcpMechanism::SelectiveRed => "selective-red",
            TcpMechanism::EfciMark => "efci-mark",
        }
    }
}

/// The paper's standard single-bottleneck ATM configuration: sources on
/// switch `s1`, destinations behind switch `s2`, one 150 Mb/s trunk with
/// negligible (0.01 ms) propagation.
pub fn single_bottleneck(
    traffics: &[Traffic],
    alg: AtmAlgorithm,
    seed: u64,
) -> (Engine<AtmMsg>, Network) {
    let mut b = NetworkBuilder::new();
    let s1 = b.switch("s1");
    let s2 = b.switch("s2");
    b.trunk(s1, s2, 150.0, SimDuration::from_micros(10));
    for &t in traffics {
        b.session(&[s1, s2], t);
    }
    let mut engine = Engine::new(seed);
    let net = b.build(&mut engine, &mut || alg.boxed());
    (engine, net)
}

/// `n` greedy sessions over the standard single bottleneck.
pub fn greedy_bottleneck(n: usize, alg: AtmAlgorithm, seed: u64) -> (Engine<AtmMsg>, Network) {
    single_bottleneck(&vec![Traffic::greedy(); n], alg, seed)
}

/// The paper's on/off configuration ("analogous to that in Fig. 4"):
/// one greedy background session plus two bursty sessions alternating
/// 30 ms on / 30 ms off. The second burster is offset by *half* an
/// on-period so the active-session count keeps stepping through
/// 1 → 3 → 2 → 1 …, exercising the transient every 15 ms.
pub fn onoff_bottleneck(alg: AtmAlgorithm, seed: u64) -> (Engine<AtmMsg>, Network) {
    let on = SimDuration::from_millis(30);
    let off = SimDuration::from_millis(30);
    single_bottleneck(
        &[
            Traffic::greedy(),
            Traffic::on_off(SimTime::from_millis(100), on, off),
            Traffic::on_off(SimTime::from_millis(115), on, off),
        ],
        alg,
        seed,
    )
}

/// Three-switch parking lot: one long session across both trunks plus one
/// cross session per trunk.
pub fn parking_lot(alg: AtmAlgorithm, seed: u64) -> (Engine<AtmMsg>, Network) {
    let mut b = NetworkBuilder::new();
    let s1 = b.switch("s1");
    let s2 = b.switch("s2");
    let s3 = b.switch("s3");
    b.trunk(s1, s2, 150.0, SimDuration::from_micros(10));
    b.trunk(s2, s3, 150.0, SimDuration::from_micros(10));
    b.session(&[s1, s2, s3], Traffic::greedy()); // long
    b.session(&[s1, s2], Traffic::greedy()); // cross 1
    b.session(&[s2, s3], Traffic::greedy()); // cross 2
    let mut engine = Engine::new(seed);
    let net = b.build(&mut engine, &mut || alg.boxed());
    (engine, net)
}

/// The path indices (`SwIdx`) used by [`parking_lot`], for building the
/// max-min reference.
pub fn parking_lot_paths() -> (Vec<f64>, Vec<Vec<usize>>) {
    let c = mbps_to_cps(150.0);
    (vec![c, c], vec![vec![0, 1], vec![0], vec![1]])
}

/// Standard 10 Mb/s TCP dumbbell with `n` flows, all starting at 0.
pub fn tcp_dumbbell(n: usize, mech: TcpMechanism, seed: u64) -> (Engine<TcpMsg>, TcpNetwork) {
    let mut b = TcpNetworkBuilder::new();
    let r1 = b.router("r1");
    let r2 = b.router("r2");
    b.trunk(r1, r2, 10.0, SimDuration::from_millis(1));
    for _ in 0..n {
        b.flow(&[r1, r2], SimTime::ZERO);
    }
    let mut engine = Engine::new(seed);
    let net = b.build(&mut engine, &mut || mech.boxed());
    (engine, net)
}

/// The heterogeneous-RTT TCP dumbbell (paper Fig. 14): flow 0 with a
/// short access delay, flow 1 with `long_access` one-way delay.
pub fn tcp_rtt_dumbbell(
    long_access: SimDuration,
    mech: TcpMechanism,
    seed: u64,
) -> (Engine<TcpMsg>, TcpNetwork) {
    tcp_rtt_dumbbell_cap(long_access, mech, seed, 100)
}

/// [`tcp_rtt_dumbbell`] with an explicit router buffer size. The RED
/// comparison (F16) uses a 200-packet buffer so that early detection,
/// not tail overflow, is the operative mechanism.
pub fn tcp_rtt_dumbbell_cap(
    long_access: SimDuration,
    mech: TcpMechanism,
    seed: u64,
    queue_cap: usize,
) -> (Engine<TcpMsg>, TcpNetwork) {
    let mut b = TcpNetworkBuilder::new().queue_cap(queue_cap);
    let r1 = b.router("r1");
    let r2 = b.router("r2");
    b.trunk(r1, r2, 10.0, SimDuration::from_millis(1));
    b.flow(&[r1, r2], SimTime::ZERO);
    b.flow(&[r1, r2], SimTime::ZERO);
    b.last_flow_access_prop(long_access);
    let mut engine = Engine::new(seed);
    let net = b.build(&mut engine, &mut || mech.boxed());
    (engine, net)
}

/// The TCP beat-down parking lot (paper Fig. 17): a long flow crossing
/// four 10 Mb/s trunks, with one cross flow per trunk. Small (50-packet)
/// buffers keep the loss rate high enough that the multi-hop loss
/// product — the beat-down mechanism — is visible within a short run.
pub fn tcp_parking_lot(mech: TcpMechanism, seed: u64) -> (Engine<TcpMsg>, TcpNetwork) {
    let mut b = TcpNetworkBuilder::new().queue_cap(50);
    let routers: Vec<_> = (0..5).map(|i| b.router(&format!("r{i}"))).collect();
    for w in routers.windows(2) {
        b.trunk(w[0], w[1], 10.0, SimDuration::from_millis(1));
    }
    b.flow(&routers, SimTime::ZERO); // long flow, 4 hops
    for w in routers.windows(2) {
        b.flow(w, SimTime::ZERO); // one cross flow per trunk
    }
    let mut engine = Engine::new(seed);
    let net = b.build(&mut engine, &mut || mech.boxed());
    (engine, net)
}

/// Utility: utilization of an ATM trunk over the tail of the run.
pub fn trunk_utilization(
    engine: &Engine<AtmMsg>,
    net: &Network,
    trunk: phantom_atm::network::TrunkIdx,
    from: f64,
) -> f64 {
    let tp = net.trunk_throughput(engine, trunk).mean_after(from);
    tp / net.trunk_port(engine, trunk).capacity()
}

/// Utility: the canonical switch indices of [`single_bottleneck`].
pub fn bottleneck_switches() -> (SwIdx, SwIdx) {
    (SwIdx(0), SwIdx(1))
}
