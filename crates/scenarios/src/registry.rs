//! String-keyed access to every experiment, for the `repro` CLI and the
//! benchmark harness.
//!
//! Besides the static table of hand-coded figures there is a *dynamic*
//! registry: scene files (`phantom-scene/1`) loaded at run time register
//! their compiled runner here, so the sweep runner, the CLI and the
//! bench harness drive scene-backed and hard-coded experiments through
//! the same [`run_experiment`] entry path. A loaded scene may reuse a
//! built-in id (e.g. `fig2`) — it then shadows the hard-coded twin,
//! which is how the byte-identity gate compares the two.

use phantom_metrics::{ExperimentResult, Table};
use std::sync::{Arc, RwLock};

/// The outcome of running one registry entry.
pub enum ExperimentOutput {
    /// A figure: traces plus summary metrics.
    Figure(ExperimentResult),
    /// A table: rows of algorithm × metric.
    Table(Table),
}

impl ExperimentOutput {
    /// Render for the terminal; `steps` controls figure downsampling.
    pub fn render(&self, steps: usize) -> String {
        match self {
            ExperimentOutput::Figure(r) => r.render(steps),
            ExperimentOutput::Table(t) => t.render(),
        }
    }

    /// Write CSV artifacts into `dir`.
    pub fn write_csv(&self, dir: &std::path::Path) -> std::io::Result<()> {
        match self {
            ExperimentOutput::Figure(r) => r.write_csv(dir),
            ExperimentOutput::Table(t) => t.write_csv(dir),
        }
    }

    /// [`Self::write_csv`] with a `# manifest: {json}` provenance
    /// comment embedded as the first line.
    pub fn write_csv_with_manifest(
        &self,
        dir: &std::path::Path,
        manifest_json: &str,
    ) -> std::io::Result<()> {
        match self {
            ExperimentOutput::Figure(r) => r.write_csv_with_manifest(dir, Some(manifest_json)),
            ExperimentOutput::Table(t) => t.write_csv_with_manifest(dir, Some(manifest_json)),
        }
    }

    /// The experiment id.
    pub fn id(&self) -> &str {
        match self {
            ExperimentOutput::Figure(r) => &r.id,
            ExperimentOutput::Table(t) => &t.id,
        }
    }
}

/// One registry entry.
pub struct Experiment {
    /// Stable id, e.g. "fig9" or "table1".
    pub id: &'static str,
    /// One-line description (shown by `repro list`).
    pub describe: &'static str,
    /// The runner.
    pub run: fn(u64) -> ExperimentOutput,
}

macro_rules! fig {
    ($id:literal, $desc:literal, $path:path) => {
        Experiment {
            id: $id,
            describe: $desc,
            run: |seed| ExperimentOutput::Figure($path(seed)),
        }
    };
}

macro_rules! tab {
    ($id:literal, $desc:literal, $path:path) => {
        Experiment {
            id: $id,
            describe: $desc,
            run: |seed| ExperimentOutput::Table($path(seed)),
        }
    };
}

/// Every experiment in the reproduction, in paper order.
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        fig!(
            "fig2",
            "two greedy sessions converge (Phantom)",
            crate::atm::basic::run
        ),
        fig!(
            "fig3",
            "staggered joins and leaves",
            crate::atm::staggered::run
        ),
        fig!(
            "fig4",
            "on/off sessions under Phantom",
            crate::atm::onoff::run
        ),
        fig!("fig5", "heterogeneous RTT fairness", crate::atm::rtt::run),
        fig!(
            "fig6",
            "parking-lot max-min fairness",
            crate::atm::parking_lot::run
        ),
        fig!(
            "fig7",
            "session restricted by another bottleneck",
            crate::atm::restricted::run
        ),
        fig!("fig8", "fifty sessions at scale", crate::atm::many::run),
        fig!(
            "fig9",
            "canonical utilization-factor-5 panels",
            crate::atm::canonical::run
        ),
        fig!(
            "fig11",
            "NI/EFCI-bit variant of fig9",
            crate::atm::efci::run
        ),
        fig!(
            "fig12",
            "adaptive vs fixed gains (oscillation)",
            crate::atm::adaptive_alpha::run
        ),
        fig!(
            "fig14",
            "TCP RTT bias: drop-tail vs Selective Discard",
            crate::tcp::unfair_rtt::run
        ),
        fig!("fig15", "Selective Source Quench", crate::tcp::quench::run),
        fig!(
            "fig16",
            "plain RED vs Selective RED",
            crate::tcp::sel_red::run
        ),
        fig!(
            "fig17",
            "TCP beat-down parking lot",
            crate::tcp::beatdown::run
        ),
        fig!(
            "fig18",
            "Selective Discard pseudo-code in execution",
            crate::tcp::seldiscard::run
        ),
        fig!(
            "ext1",
            "TCP Vegas unfairness and the Phantom remedy",
            crate::tcp::vegas::run
        ),
        fig!(
            "fig19",
            "EPRCA on the basic scenario",
            crate::atm::baselines::run_eprca_basic
        ),
        fig!(
            "fig20",
            "EPRCA under on/off load",
            crate::atm::baselines::run_eprca_onoff
        ),
        fig!(
            "fig21",
            "APRC under on/off load (300-cell threshold)",
            crate::atm::baselines::run_aprc_onoff
        ),
        fig!(
            "fig22",
            "CAPC under on/off load vs Phantom",
            crate::atm::baselines::run_capc_onoff
        ),
        fig!(
            "ext3",
            "TCP over an ABR-carried trunk (interconnection)",
            crate::tcp::over_abr::run
        ),
        fig!(
            "ext7",
            "Phantom under injected link loss",
            crate::atm::lossy::run
        ),
        fig!(
            "ext6",
            "statistical multiplexing of stochastic on/off sessions",
            crate::atm::statmux::run
        ),
        fig!("ext5", "MCR guarantees under Phantom", crate::atm::mcr::run),
        fig!(
            "ext4",
            "ABR under unresponsive CBR/VBR background",
            crate::atm::cbr_background::run
        ),
        fig!(
            "ext2",
            "constant space vs per-VC state: Phantom vs ERICA",
            crate::atm::erica_cmp::run
        ),
        tab!(
            "table1",
            "ATM algorithm comparison",
            crate::compare::table_atm
        ),
        tab!(
            "table2",
            "TCP mechanism comparison",
            crate::compare::table_tcp
        ),
        tab!(
            "table3",
            "Phantom design ablations",
            crate::ablation::table_ablation
        ),
        tab!(
            "table4",
            "Phantom vs control-loop delay (LAN to WAN)",
            crate::wan::table_wan
        ),
        tab!(
            "table5",
            "TCP Selective Discard ablations",
            crate::tcp_ablation::table_tcp_ablation
        ),
    ]
}

/// A runtime-registered experiment (a compiled scene file).
#[derive(Clone)]
pub struct DynamicExperiment {
    /// Stable id (the scene's `id` field).
    pub id: String,
    /// One-line description.
    pub describe: String,
    /// The runner; must be a pure function of the seed.
    pub run: Arc<dyn Fn(u64) -> ExperimentOutput + Send + Sync>,
}

fn dynamic_registry() -> &'static RwLock<Vec<DynamicExperiment>> {
    static DYNAMIC: RwLock<Vec<DynamicExperiment>> = RwLock::new(Vec::new());
    &DYNAMIC
}

/// Register (or replace, by id) a runtime experiment. Registered ids
/// take precedence over the static table in [`run_experiment`], so a
/// scene named `fig2` shadows the hard-coded figure.
pub fn register_dynamic(exp: DynamicExperiment) {
    let mut reg = dynamic_registry().write().unwrap();
    if let Some(slot) = reg.iter_mut().find(|e| e.id == exp.id) {
        *slot = exp;
    } else {
        reg.push(exp);
    }
}

/// `(id, describe)` of every runtime-registered experiment, in
/// registration order.
pub fn dynamic_experiments() -> Vec<(String, String)> {
    dynamic_registry()
        .read()
        .unwrap()
        .iter()
        .map(|e| (e.id.clone(), e.describe.clone()))
        .collect()
}

/// Run one experiment by id — dynamic (scene-backed) entries first,
/// then the static table. `None` if the id is unknown.
pub fn run_experiment(id: &str, seed: u64) -> Option<ExperimentOutput> {
    let dynamic = dynamic_registry()
        .read()
        .unwrap()
        .iter()
        .find(|e| e.id == id)
        .map(|e| Arc::clone(&e.run));
    if let Some(run) = dynamic {
        return Some(run(seed));
    }
    all_experiments()
        .into_iter()
        .find(|e| e.id == id)
        .map(|e| (e.run)(seed))
}

/// Every currently valid experiment id: static table plus loaded scenes.
pub fn known_ids() -> Vec<String> {
    let mut ids: Vec<String> = all_experiments().iter().map(|e| e.id.to_string()).collect();
    for (id, _) in dynamic_experiments() {
        if !ids.contains(&id) {
            ids.push(id);
        }
    }
    ids
}

/// The closest valid id to `unknown` (for "did you mean" hints), or
/// `None` when nothing is plausibly close (edit distance > half the
/// longer length). Distance ties go to the candidate sharing the
/// longest common prefix (so `fig90` suggests `fig9`, not `fig20`),
/// then alphabetically.
pub fn suggest_id(unknown: &str) -> Option<String> {
    suggest_from(known_ids(), unknown)
}

/// [`suggest_id`] over an arbitrary candidate list — the same
/// edit-distance hint for id namespaces other than the experiment
/// registry (e.g. server job ids). Same tie-breaks: longest common
/// prefix, then alphabetical; same cutoff (distance > half the longer
/// length means no suggestion).
pub fn suggest_from<I>(ids: I, unknown: &str) -> Option<String>
where
    I: IntoIterator<Item = String>,
{
    let (dist, _, best) = ids
        .into_iter()
        .map(|id| {
            let prefix = unknown
                .chars()
                .zip(id.chars())
                .take_while(|(a, b)| a == b)
                .count();
            (edit_distance(unknown, &id), std::cmp::Reverse(prefix), id)
        })
        .min()?;
    let longer = unknown.chars().count().max(best.chars().count());
    if dist * 2 <= longer {
        Some(best)
    } else {
        None
    }
}

/// Levenshtein distance over chars — the id lists are tiny, so the
/// O(|a|·|b|) two-row DP is plenty.
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_complete() {
        let exps = all_experiments();
        let mut ids: Vec<_> = exps.iter().map(|e| e.id).collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n, "duplicate experiment ids");
        // the DESIGN.md index: 19 paper figures + 7 extensions + 5 tables
        assert_eq!(n, 31);
        for required in [
            "fig2", "fig9", "fig14", "fig18", "fig22", "table1", "table2", "table3",
        ] {
            assert!(ids.binary_search(&required).is_ok(), "missing {required}");
        }
    }

    #[test]
    fn unknown_id_returns_none() {
        assert!(run_experiment("fig999", 0).is_none());
    }

    #[test]
    fn suggest_id_finds_near_misses() {
        assert_eq!(suggest_id("fig90").as_deref(), Some("fig9"));
        assert_eq!(suggest_id("tabel1").as_deref(), Some("table1"));
        assert_eq!(suggest_id("Fig2").as_deref(), Some("fig2"));
        assert!(suggest_id("completely-unrelated-xyz").is_none());
    }

    #[test]
    fn suggest_id_handles_unicode_ids() {
        // Multi-byte input must be measured in characters, not bytes:
        // an accented typo is one substitution away from "fig2", and
        // the distance/length math must neither panic on char
        // boundaries nor inflate the miss length via UTF-8 byte counts.
        assert_eq!(suggest_id("fíg2").as_deref(), Some("fig2"));
        assert!(suggest_id("日本語の実験名😀").is_none());

        // A registered unicode id is itself suggestible from an ASCII
        // near-miss.
        register_dynamic(DynamicExperiment {
            id: "métro-test".into(),
            describe: "unicode id stub".into(),
            run: Arc::new(|_| {
                ExperimentOutput::Figure(ExperimentResult::new("métro-test", "stub"))
            }),
        });
        assert_eq!(suggest_id("metro-test").as_deref(), Some("métro-test"));
    }

    #[test]
    fn dynamic_entries_dispatch_and_list() {
        register_dynamic(DynamicExperiment {
            id: "dyn-test".into(),
            describe: "a runtime-registered stub".into(),
            run: Arc::new(|seed| {
                let mut r = ExperimentResult::new("dyn-test", "stub");
                r.add_metric("seed", seed as f64);
                ExperimentOutput::Figure(r)
            }),
        });
        let out = run_experiment("dyn-test", 7).expect("dynamic id dispatches");
        assert_eq!(out.id(), "dyn-test");
        assert!(dynamic_experiments().iter().any(|(id, _)| id == "dyn-test"));
        assert!(known_ids().iter().any(|id| id == "dyn-test"));
        // replacement by id, not duplication
        register_dynamic(DynamicExperiment {
            id: "dyn-test".into(),
            describe: "replaced".into(),
            run: Arc::new(|_| ExperimentOutput::Figure(ExperimentResult::new("dyn-test", "r"))),
        });
        let n = dynamic_experiments()
            .iter()
            .filter(|(id, _)| id == "dyn-test")
            .count();
        assert_eq!(n, 1);
    }

    #[test]
    fn run_experiment_dispatches() {
        let out = run_experiment("fig2", 42).unwrap();
        assert_eq!(out.id(), "fig2");
        assert!(out.render(0).contains("fig2"));
    }
}
