//! String-keyed access to every experiment, for the `repro` CLI and the
//! benchmark harness.

use phantom_metrics::{ExperimentResult, Table};

/// The outcome of running one registry entry.
pub enum ExperimentOutput {
    /// A figure: traces plus summary metrics.
    Figure(ExperimentResult),
    /// A table: rows of algorithm × metric.
    Table(Table),
}

impl ExperimentOutput {
    /// Render for the terminal; `steps` controls figure downsampling.
    pub fn render(&self, steps: usize) -> String {
        match self {
            ExperimentOutput::Figure(r) => r.render(steps),
            ExperimentOutput::Table(t) => t.render(),
        }
    }

    /// Write CSV artifacts into `dir`.
    pub fn write_csv(&self, dir: &std::path::Path) -> std::io::Result<()> {
        match self {
            ExperimentOutput::Figure(r) => r.write_csv(dir),
            ExperimentOutput::Table(t) => t.write_csv(dir),
        }
    }

    /// [`Self::write_csv`] with a `# manifest: {json}` provenance
    /// comment embedded as the first line.
    pub fn write_csv_with_manifest(
        &self,
        dir: &std::path::Path,
        manifest_json: &str,
    ) -> std::io::Result<()> {
        match self {
            ExperimentOutput::Figure(r) => r.write_csv_with_manifest(dir, Some(manifest_json)),
            ExperimentOutput::Table(t) => t.write_csv_with_manifest(dir, Some(manifest_json)),
        }
    }

    /// The experiment id.
    pub fn id(&self) -> &str {
        match self {
            ExperimentOutput::Figure(r) => &r.id,
            ExperimentOutput::Table(t) => &t.id,
        }
    }
}

/// One registry entry.
pub struct Experiment {
    /// Stable id, e.g. "fig9" or "table1".
    pub id: &'static str,
    /// One-line description (shown by `repro list`).
    pub describe: &'static str,
    /// The runner.
    pub run: fn(u64) -> ExperimentOutput,
}

macro_rules! fig {
    ($id:literal, $desc:literal, $path:path) => {
        Experiment {
            id: $id,
            describe: $desc,
            run: |seed| ExperimentOutput::Figure($path(seed)),
        }
    };
}

macro_rules! tab {
    ($id:literal, $desc:literal, $path:path) => {
        Experiment {
            id: $id,
            describe: $desc,
            run: |seed| ExperimentOutput::Table($path(seed)),
        }
    };
}

/// Every experiment in the reproduction, in paper order.
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        fig!(
            "fig2",
            "two greedy sessions converge (Phantom)",
            crate::atm::basic::run
        ),
        fig!(
            "fig3",
            "staggered joins and leaves",
            crate::atm::staggered::run
        ),
        fig!(
            "fig4",
            "on/off sessions under Phantom",
            crate::atm::onoff::run
        ),
        fig!("fig5", "heterogeneous RTT fairness", crate::atm::rtt::run),
        fig!(
            "fig6",
            "parking-lot max-min fairness",
            crate::atm::parking_lot::run
        ),
        fig!(
            "fig7",
            "session restricted by another bottleneck",
            crate::atm::restricted::run
        ),
        fig!("fig8", "fifty sessions at scale", crate::atm::many::run),
        fig!(
            "fig9",
            "canonical utilization-factor-5 panels",
            crate::atm::canonical::run
        ),
        fig!(
            "fig11",
            "NI/EFCI-bit variant of fig9",
            crate::atm::efci::run
        ),
        fig!(
            "fig12",
            "adaptive vs fixed gains (oscillation)",
            crate::atm::adaptive_alpha::run
        ),
        fig!(
            "fig14",
            "TCP RTT bias: drop-tail vs Selective Discard",
            crate::tcp::unfair_rtt::run
        ),
        fig!("fig15", "Selective Source Quench", crate::tcp::quench::run),
        fig!(
            "fig16",
            "plain RED vs Selective RED",
            crate::tcp::sel_red::run
        ),
        fig!(
            "fig17",
            "TCP beat-down parking lot",
            crate::tcp::beatdown::run
        ),
        fig!(
            "fig18",
            "Selective Discard pseudo-code in execution",
            crate::tcp::seldiscard::run
        ),
        fig!(
            "ext1",
            "TCP Vegas unfairness and the Phantom remedy",
            crate::tcp::vegas::run
        ),
        fig!(
            "fig19",
            "EPRCA on the basic scenario",
            crate::atm::baselines::run_eprca_basic
        ),
        fig!(
            "fig20",
            "EPRCA under on/off load",
            crate::atm::baselines::run_eprca_onoff
        ),
        fig!(
            "fig21",
            "APRC under on/off load (300-cell threshold)",
            crate::atm::baselines::run_aprc_onoff
        ),
        fig!(
            "fig22",
            "CAPC under on/off load vs Phantom",
            crate::atm::baselines::run_capc_onoff
        ),
        fig!(
            "ext3",
            "TCP over an ABR-carried trunk (interconnection)",
            crate::tcp::over_abr::run
        ),
        fig!(
            "ext7",
            "Phantom under injected link loss",
            crate::atm::lossy::run
        ),
        fig!(
            "ext6",
            "statistical multiplexing of stochastic on/off sessions",
            crate::atm::statmux::run
        ),
        fig!("ext5", "MCR guarantees under Phantom", crate::atm::mcr::run),
        fig!(
            "ext4",
            "ABR under unresponsive CBR/VBR background",
            crate::atm::cbr_background::run
        ),
        fig!(
            "ext2",
            "constant space vs per-VC state: Phantom vs ERICA",
            crate::atm::erica_cmp::run
        ),
        tab!(
            "table1",
            "ATM algorithm comparison",
            crate::compare::table_atm
        ),
        tab!(
            "table2",
            "TCP mechanism comparison",
            crate::compare::table_tcp
        ),
        tab!(
            "table3",
            "Phantom design ablations",
            crate::ablation::table_ablation
        ),
        tab!(
            "table4",
            "Phantom vs control-loop delay (LAN to WAN)",
            crate::wan::table_wan
        ),
        tab!(
            "table5",
            "TCP Selective Discard ablations",
            crate::tcp_ablation::table_tcp_ablation
        ),
    ]
}

/// Run one experiment by id. `None` if the id is unknown.
pub fn run_experiment(id: &str, seed: u64) -> Option<ExperimentOutput> {
    all_experiments()
        .into_iter()
        .find(|e| e.id == id)
        .map(|e| (e.run)(seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_complete() {
        let exps = all_experiments();
        let mut ids: Vec<_> = exps.iter().map(|e| e.id).collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n, "duplicate experiment ids");
        // the DESIGN.md index: 19 paper figures + 7 extensions + 5 tables
        assert_eq!(n, 31);
        for required in [
            "fig2", "fig9", "fig14", "fig18", "fig22", "table1", "table2", "table3",
        ] {
            assert!(ids.binary_search(&required).is_ok(), "missing {required}");
        }
    }

    #[test]
    fn unknown_id_returns_none() {
        assert!(run_experiment("fig999", 0).is_none());
    }

    #[test]
    fn run_experiment_dispatches() {
        let out = run_experiment("fig2", 42).unwrap();
        assert_eq!(out.id(), "fig2");
        assert!(out.render(0).contains("fig2"));
    }
}
