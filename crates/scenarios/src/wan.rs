//! T4 — control-loop delay sweep (LAN to WAN).
//!
//! Phantom's feedback loop is: measurement interval Δt at the port, plus
//! the round trip of the backward RM cells to the sources. The paper's
//! canonical figures use "negligible RTT" (0.01 ms) links; this sweep
//! stretches the trunk's one-way propagation to 2 000 km scales and
//! watches stability degrade gracefully: convergence slows with the
//! loop delay, but the fixed point, fairness and utilization are
//! delay-independent, and the transient queue stays bounded (a longer
//! loop also paces the sources' ramp-up, since each AIR increase waits
//! for a backward RM to arrive).

use crate::common::AtmAlgorithm;
use phantom_atm::network::SessionId;
use phantom_atm::network::{NetworkBuilder, TrunkIdx};
use phantom_atm::units::{cps_to_mbps, mbps_to_cps};
use phantom_atm::Traffic;
use phantom_core::fixed_point::single_link_macr;
use phantom_metrics::{convergence_time, jain_index, Table};
use phantom_sim::{Engine, SimDuration, SimTime};

/// Run T4.
pub fn table_wan(seed: u64) -> Table {
    let mut t = Table::new(
        "table4",
        "Phantom vs control-loop delay (2 greedy sessions, 150 Mb/s trunk)",
        &[
            "one_way_prop",
            "conv_ms",
            "jain",
            "utilization",
            "max_q",
            "macr_err_pct",
        ],
    );
    let c = mbps_to_cps(150.0);
    let pred = single_link_macr(c, 2, 5.0);
    for (label, prop_us) in [
        ("10us(lan)", 10u64),
        ("1ms(200km)", 1_000),
        ("5ms(1000km)", 5_000),
        ("10ms(2000km)", 10_000),
    ] {
        let mut b = NetworkBuilder::new();
        let s1 = b.switch("s1");
        let s2 = b.switch("s2");
        b.trunk(s1, s2, 150.0, SimDuration::from_micros(prop_us));
        for _ in 0..2 {
            b.session(&[s1, s2], Traffic::greedy());
        }
        let mut engine = Engine::new(seed);
        let net = b.build(&mut engine, &mut || AtmAlgorithm::Phantom.boxed());
        engine.run_until(SimTime::from_millis(1500));

        let macr = net.trunk_macr(&engine, TrunkIdx(0));
        let conv = convergence_time(macr, pred, 0.15).unwrap_or(f64::NAN) * 1e3;
        let rates: Vec<f64> = (0..2)
            .map(|s| net.session_rate(&engine, SessionId(s)).mean_after(1.0))
            .collect();
        let util = crate::common::trunk_utilization(&engine, &net, TrunkIdx(0), 1.0);
        let max_q = net.trunk_port(&engine, TrunkIdx(0)).queue_high_water() as f64;
        let macr_err = 100.0 * (cps_to_mbps(macr.mean_after(1.0)) - cps_to_mbps(pred)).abs()
            / cps_to_mbps(pred);
        t.add_row(label, vec![conv, jain_index(&rates), util, max_q, macr_err]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_stability_degrades_gracefully_with_delay() {
        let t = table_wan(50);
        for row in ["10us(lan)", "1ms(200km)", "5ms(1000km)", "10ms(2000km)"] {
            // The fixed point is delay-independent: MACR lands within 15%.
            let err = t.cell(row, "macr_err_pct").unwrap();
            assert!(err < 15.0, "{row}: MACR error {err:.1}%");
            // Fairness survives any delay.
            assert!(t.cell(row, "jain").unwrap() > 0.98, "{row} unfair");
            // Utilization stays near the design point.
            let u = t.cell(row, "utilization").unwrap();
            assert!((u - 0.909).abs() < 0.08, "{row}: util {u:.3}");
        }
        // Convergence slows monotonically from LAN to 2000 km...
        let mut last = 0.0;
        for row in ["10us(lan)", "1ms(200km)", "5ms(1000km)", "10ms(2000km)"] {
            let c = t.cell(row, "conv_ms").unwrap();
            assert!(
                c >= last,
                "convergence should slow with delay: {row} took {c:.0} ms after {last:.0} ms"
            );
            last = c;
            // ...while the transient queue stays bounded (the slower
            // feedback also paces the ramp-up, so it does not grow).
            assert!(
                t.cell(row, "max_q").unwrap() < 2000.0,
                "{row}: transient queue unbounded"
            );
        }
    }
}
