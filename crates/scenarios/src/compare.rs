//! The cross-algorithm comparison tables (T1, T2).
//!
//! The paper's Section 5 comparison is figure-by-figure; these tables
//! condense it into the quantities the text argues about: convergence
//! time, queue behavior, fairness and utilization.

use crate::common::{
    greedy_bottleneck, onoff_bottleneck, tcp_rtt_dumbbell, AtmAlgorithm, TcpMechanism,
};
use phantom_atm::network::SessionId;
use phantom_atm::network::TrunkIdx;
use phantom_metrics::{convergence_time, jain_index, Table};
use phantom_sim::{SimDuration, SimTime};
use phantom_tcp::network::TrunkIdx as TcpTrunkIdx;

/// T1 — ATM algorithms on the greedy (F2) and on/off (F4) scenarios.
pub fn table_atm(seed: u64) -> Table {
    let mut t = Table::new(
        "table1",
        "ATM rate allocators: 2 greedy sessions (conv/fair/util) + on/off load (queues)",
        &[
            "algorithm",
            "conv_ms",
            "jain",
            "utilization",
            "onoff_mean_q",
            "onoff_max_q",
        ],
    );
    for alg in [
        AtmAlgorithm::Phantom,
        AtmAlgorithm::PhantomNi,
        AtmAlgorithm::Eprca,
        AtmAlgorithm::Aprc,
        AtmAlgorithm::Capc,
        AtmAlgorithm::Osu,
        AtmAlgorithm::Erica,
    ] {
        // Greedy scenario.
        let (mut engine, net) = greedy_bottleneck(2, alg, seed);
        engine.run_until(SimTime::from_millis(800));
        let tp = net.trunk_throughput(&engine, TrunkIdx(0));
        let target = tp.mean_after(0.6);
        let conv = convergence_time(tp, target, 0.10).unwrap_or(f64::NAN) * 1e3;
        let rates: Vec<f64> = (0..2)
            .map(|s| net.session_rate(&engine, SessionId(s)).mean_after(0.5))
            .collect();
        let jain = jain_index(&rates);
        let util = crate::common::trunk_utilization(&engine, &net, TrunkIdx(0), 0.5);

        // On/off scenario.
        let (mut engine2, net2) = onoff_bottleneck(alg, seed);
        engine2.run_until(SimTime::from_millis(800));
        let q = net2.trunk_queue(&engine2, TrunkIdx(0));
        let mean_q = q.mean_after(0.2);
        let max_q = net2.trunk_port(&engine2, TrunkIdx(0)).queue_high_water() as f64;

        t.add_row(alg.name(), vec![conv, jain, util, mean_q, max_q]);
    }
    t
}

/// T2 — TCP router mechanisms on the heterogeneous-RTT dumbbell.
pub fn table_tcp(seed: u64) -> Table {
    let mut t = Table::new(
        "table2",
        "TCP router mechanisms on the RTT dumbbell (10 Mb/s, RTT 2 ms vs 52 ms)",
        &[
            "mechanism",
            "jain",
            "short_mbps",
            "long_mbps",
            "aggregate_mbps",
            "loss_pct",
            "mean_q_pkts",
        ],
    );
    for mech in [
        TcpMechanism::DropTail,
        TcpMechanism::Red,
        TcpMechanism::SelectiveDiscard,
        TcpMechanism::SelectiveQuench,
        TcpMechanism::SelectiveRed,
        TcpMechanism::EfciMark,
    ] {
        let (mut engine, net) = tcp_rtt_dumbbell(SimDuration::from_millis(25), mech, seed);
        engine.run_until(SimTime::from_secs(20));
        let g: Vec<f64> = (0..2)
            .map(|f| net.flow_goodput(&engine, f).mean_after(10.0))
            .collect();
        let port = net.trunk_port(&engine, TcpTrunkIdx(0));
        let sent: u64 = (0..2).map(|f| net.source(&engine, f).segments_sent).sum();
        let loss_pct = 100.0 * port.total_drops() as f64 / (sent.max(1)) as f64;
        t.add_row(
            mech.name(),
            vec![
                jain_index(&g),
                g[0] * 8.0 / 1e6,
                g[1] * 8.0 / 1e6,
                (g[0] + g[1]) * 8.0 / 1e6,
                loss_pct,
                net.trunk_queue(&engine, TcpTrunkIdx(0)).mean_after(10.0),
            ],
        );
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_phantom_wins_on_convergence_and_fairness() {
        let t = table_atm(101);
        let p_conv = t.cell("phantom", "conv_ms").unwrap();
        let c_conv = t.cell("capc", "conv_ms").unwrap();
        assert!(
            p_conv < c_conv,
            "phantom {p_conv:.0} ms should beat capc {c_conv:.0} ms"
        );
        for alg in ["phantom", "eprca", "aprc", "capc"] {
            assert!(
                t.cell(alg, "jain").unwrap() > 0.85,
                "{alg} grossly unfair on equals"
            );
            assert!(t.cell(alg, "utilization").unwrap() > 0.75, "{alg} idle");
        }
        // CAPC's smaller transient queue (the paper's explicit
        // observation: Phantom reacts faster at the cost of a larger
        // queue during convergence).
        assert!(
            t.cell("capc", "onoff_max_q").unwrap() <= t.cell("phantom", "onoff_max_q").unwrap()
        );
    }

    #[test]
    fn table2_selective_mechanisms_beat_drop_tail_on_fairness() {
        let t = table_tcp(102);
        let dt = t.cell("drop-tail", "jain").unwrap();
        for mech in ["selective-discard", "selective-red", "efci-mark"] {
            assert!(
                t.cell(mech, "jain").unwrap() > dt,
                "{mech} should be fairer than drop-tail"
            );
        }
        // every mechanism keeps some reasonable aggregate throughput
        for mech in [
            "drop-tail",
            "red",
            "selective-discard",
            "selective-quench",
            "selective-red",
            "efci-mark",
        ] {
            assert!(
                t.cell(mech, "aggregate_mbps").unwrap() > 4.0,
                "{mech} collapsed"
            );
        }
    }
}
