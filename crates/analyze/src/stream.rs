//! The single-pass streaming analyzer.
//!
//! [`StreamingAnalyzer`] consumes `phantom-trace/1` events — live from a
//! probe tap via [`AnalysisSink`], or replayed from a JSONL file by
//! [`crate::jsonl::analyze_trace_str`] — in one forward pass with
//! constant state per session/port (plus the per-window rows the report
//! carries). Both feeding paths perform bit-identical arithmetic on the
//! same event sequence, so the resulting [`AnalysisReport`] is
//! byte-identical whether a run was analyzed live or from its trace.

use phantom_metrics::json::{json_f64, json_str};
use phantom_metrics::loghist::LogHistogram;
use phantom_metrics::manifest::{Manifest, ANALYSIS_SCHEMA};
use phantom_sim::probe::{Probe, ProbeEvent};
use phantom_sim::stats::{IntervalSampler, RunningStats};
use phantom_sim::{NodeId, SimTime};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::rc::Rc;

/// Default analysis window width (seconds). Five MACR measurement
/// intervals at the paper's 1 ms cadence per 50 ms window keeps windows
/// meaningful for both the 500 ms and 1200 ms scenarios.
pub const DEFAULT_WINDOW_SECS: f64 = 0.05;

/// What the analyzed scenario is expected to do, per the paper's model.
/// Everything is optional: with no targets the analyzer still reports
/// fairness, oscillation and queue statistics, and leaves the
/// target-relative metrics null.
#[derive(Clone, Debug)]
pub struct AnalysisTargets {
    /// The MACR fixed point `C/(1+n·u)` in cells/s (or bytes/s for TCP),
    /// enabling `convergence_secs` and `fixed_point_error_rel`.
    pub macr_cps: Option<f64>,
    /// Bottleneck capacity in cells/s, enabling utilization.
    pub capacity_cps: Option<f64>,
    /// Relative tolerance band for convergence detection.
    pub conv_tol: f64,
    /// Steady-state metrics (tail mean, oscillation, fairness,
    /// utilization) only consider samples at or after this time.
    pub tail_from_secs: f64,
    /// Perturbation epochs of a dynamic scenario, ascending and
    /// non-overlapping. Empty for static runs — the report then carries
    /// no epoch section and its JSON is unchanged.
    pub epochs: Vec<EpochTarget>,
}

impl Default for AnalysisTargets {
    fn default() -> Self {
        AnalysisTargets {
            macr_cps: None,
            capacity_cps: None,
            conv_tol: 0.15,
            tail_from_secs: 0.0,
            epochs: Vec::new(),
        }
    }
}

/// One perturbation epoch of a dynamic scenario: a half-open interval
/// `[from, to)` between two timeline events, with the MACR fixed point
/// `C/(1+n·u)` the paper's model predicts for the topology/load that
/// holds during it.
///
/// Per-epoch steady-state metrics average the second half of the epoch
/// (`t ≥ from + (to−from)/2`), leaving the first half as re-convergence
/// transient.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EpochTarget {
    /// Epoch start (seconds; the perturbation instant).
    pub from_secs: f64,
    /// Epoch end (seconds, exclusive; the next perturbation or the end
    /// of the run — must be finite).
    pub to_secs: f64,
    /// Predicted MACR fixed point during this epoch, cells/s.
    pub macr_cps: f64,
}

/// Per-epoch metric suffixes a report can carry (as
/// `epoch<i>_<suffix>`), in emission order. Baselines may reference
/// these in addition to [`METRIC_NAMES`].
pub const EPOCH_METRIC_SUFFIXES: [&str; 3] = [
    "reconvergence_secs",
    "fixed_point_error_rel",
    "macr_tail_mean_cps",
];

/// If `name` is a well-formed epoch metric (`epoch<i>_<suffix>` with a
/// known suffix), return `(i, suffix)`.
pub fn parse_epoch_metric(name: &str) -> Option<(usize, &'static str)> {
    let rest = name.strip_prefix("epoch")?;
    let (idx, suffix) = rest.split_once('_')?;
    let idx: usize = idx.parse().ok()?;
    EPOCH_METRIC_SUFFIXES
        .iter()
        .find(|&&s| s == suffix)
        .map(|&s| (idx, s))
}

/// One analysis window in the report.
#[derive(Clone, Copy, Debug)]
pub struct WindowRow {
    /// Window index (window `w` covers `[w·W, (w+1)·W)` seconds).
    pub index: u64,
    /// Mean MACR at the bottleneck port over the window (NaN if no
    /// update landed in it).
    pub macr_mean_cps: f64,
    /// Jain fairness index over per-session mean rates (NaN if no
    /// session-rate sample landed in it).
    pub jain: f64,
    /// Bottleneck utilization over the window (NaN without a capacity
    /// target).
    pub utilization: f64,
    /// Peak bottleneck queue occupancy seen in the window (NaN if no
    /// queue event landed in it).
    pub queue_max_cells: f64,
}

/// The metric names of a report, in emission order. Baselines may only
/// reference these.
pub const METRIC_NAMES: [&str; 13] = [
    "convergence_secs",
    "fixed_point_error_rel",
    "macr_tail_mean_cps",
    "oscillation_amplitude_cps",
    "macr_mean_abs_dev_cps",
    "jain_tail_min",
    "jain_tail_mean",
    "utilization_tail",
    "queue_p50_cells",
    "queue_p90_cells",
    "queue_p99_cells",
    "queue_max_cells",
    "drops_total",
];

/// Per-epoch analysis of one [`EpochTarget`], at the bottleneck port.
#[derive(Clone, Copy, Debug)]
pub struct EpochRow {
    /// Epoch index (position in [`AnalysisTargets::epochs`]).
    pub index: u64,
    /// Epoch start, seconds.
    pub from_secs: f64,
    /// Epoch end, seconds (exclusive).
    pub to_secs: f64,
    /// Predicted MACR fixed point during the epoch, cells/s.
    pub target_macr_cps: f64,
    /// Seconds after the perturbation until the bottleneck MACR entered
    /// the tolerance band of the epoch target and stayed there for the
    /// rest of the epoch (NaN: never re-converged within the epoch).
    pub reconvergence_secs: f64,
    /// `|tail mean − target| / target` over the epoch's second half
    /// (NaN without samples).
    pub fixed_point_error_rel: f64,
    /// Mean bottleneck MACR over the epoch's second half, cells/s.
    pub macr_tail_mean_cps: f64,
}

/// A finished `phantom-analysis/1` report.
#[derive(Clone, Debug)]
pub struct AnalysisReport {
    /// Provenance, restamped with [`ANALYSIS_SCHEMA`].
    pub manifest: Manifest,
    /// Window width the per-window rows were computed with.
    pub window_secs: f64,
    /// Events consumed.
    pub events: u64,
    /// Whole-run metrics in [`METRIC_NAMES`] order; NaN serializes as
    /// null and means "not measurable for this run".
    pub metrics: Vec<(&'static str, f64)>,
    /// Per-epoch rows, one per [`AnalysisTargets::epochs`] entry (empty
    /// for static runs).
    pub epochs: Vec<EpochRow>,
    /// Per-window rows, ascending by index (empty windows omitted).
    pub windows: Vec<WindowRow>,
}

impl AnalysisReport {
    /// Look up a whole-run metric; `None` when absent or NaN. Epoch
    /// metrics are addressed as `epoch<i>_<suffix>` with a suffix from
    /// [`EPOCH_METRIC_SUFFIXES`].
    pub fn metric(&self, name: &str) -> Option<f64> {
        if let Some((i, suffix)) = parse_epoch_metric(name) {
            let row = self.epochs.get(i)?;
            let v = match suffix {
                "reconvergence_secs" => row.reconvergence_secs,
                "fixed_point_error_rel" => row.fixed_point_error_rel,
                _ => row.macr_tail_mean_cps,
            };
            return Some(v).filter(|v| !v.is_nan());
        }
        self.metrics
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
            .filter(|v| !v.is_nan())
    }

    /// Render the report as `phantom-analysis/1` JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": {},", json_str(ANALYSIS_SCHEMA));
        let _ = writeln!(out, "  \"manifest\": {},", self.manifest.to_json());
        let _ = writeln!(out, "  \"window_secs\": {},", json_f64(self.window_secs));
        let _ = writeln!(out, "  \"events\": {},", self.events);
        out.push_str("  \"metrics\": {");
        for (i, (name, v)) in self.metrics.iter().enumerate() {
            let sep = if i == 0 { "" } else { ", " };
            let _ = write!(out, "{sep}{}: {}", json_str(name), json_f64(*v));
        }
        out.push_str("},\n");
        if !self.epochs.is_empty() {
            out.push_str("  \"epochs\": [\n");
            for (i, e) in self.epochs.iter().enumerate() {
                let _ = write!(
                    out,
                    "    {{\"epoch\": {}, \"from\": {}, \"to\": {}, \"target_macr_cps\": {}, \"reconvergence_secs\": {}, \"fixed_point_error_rel\": {}, \"macr_tail_mean_cps\": {}}}",
                    e.index,
                    json_f64(e.from_secs),
                    json_f64(e.to_secs),
                    json_f64(e.target_macr_cps),
                    json_f64(e.reconvergence_secs),
                    json_f64(e.fixed_point_error_rel),
                    json_f64(e.macr_tail_mean_cps)
                );
                out.push_str(if i + 1 < self.epochs.len() {
                    ",\n"
                } else {
                    "\n"
                });
            }
            out.push_str("  ],\n");
        }
        out.push_str("  \"windows\": [\n");
        for (i, w) in self.windows.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"w\": {}, \"t0\": {}, \"macr_mean_cps\": {}, \"jain\": {}, \"utilization\": {}, \"queue_max_cells\": {}}}",
                w.index,
                json_f64(w.index as f64 * self.window_secs),
                json_f64(w.macr_mean_cps),
                json_f64(w.jain),
                json_f64(w.utilization),
                json_f64(w.queue_max_cells)
            );
            out.push_str(if i + 1 < self.windows.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Jain's index with an exact-equality short circuit: `n` identical
/// nonzero rates score *exactly* 1.0 (the float formula can land one ulp
/// off), so perfectly symmetric sessions are reported as perfectly fair.
pub fn jain_exact(rates: &[f64]) -> f64 {
    if rates.is_empty() {
        return f64::NAN;
    }
    if rates[0] != 0.0 && rates.iter().all(|&r| r == rates[0]) {
        return 1.0;
    }
    phantom_metrics::jain_index(rates)
}

/// Streaming per-port state. One of these per `(node, port)` that ever
/// emitted a queue or MACR event — constant size except for the window
/// rows, which grow with run length, not with traffic.
#[derive(Debug, Default)]
struct PortState {
    dequeues: u64,
    tail_dequeues: u64,
    deq_w: Option<IntervalSampler>,
    q_w: Option<IntervalSampler>,
    macr_w: Option<IntervalSampler>,
    q_hist: LogHistogram,
    macr_tail: RunningStats,
    dev_tail: RunningStats,
    /// Time of the first in-band MACR sample since the last out-of-band
    /// one — the streaming equivalent of
    /// [`phantom_metrics::convergence_time`].
    conv_candidate: Option<f64>,
    saw_macr: bool,
    /// Per-epoch states, lazily sized to `targets.epochs.len()`.
    epoch: Vec<EpochPortState>,
}

/// Streaming per-(port, epoch) state: the same convergence-candidate
/// tracker as the whole-run one, scoped to the epoch's interval and
/// target, plus the epoch's second-half tail accumulator.
#[derive(Debug, Default)]
struct EpochPortState {
    conv_candidate: Option<f64>,
    tail: RunningStats,
}

/// Per-session rate samples of the current fairness window.
#[derive(Debug, Default)]
struct JainWindow {
    /// Explicit rates from RM turnarounds, per VC: (count, sum).
    rm: BTreeMap<u32, (u64, f64)>,
    /// Congestion windows from cwnd changes, per flow: (count, sum).
    cwnd: BTreeMap<u32, (u64, f64)>,
}

impl JainWindow {
    fn is_empty(&self) -> bool {
        self.rm.is_empty() && self.cwnd.is_empty()
    }

    /// Jain index over per-session means; RM explicit rates take
    /// precedence (a TCP trace has no RM events and vice versa).
    fn jain(&self) -> f64 {
        let src = if self.rm.is_empty() {
            &self.cwnd
        } else {
            &self.rm
        };
        let rates: Vec<f64> = src.values().map(|&(n, sum)| sum / n as f64).collect();
        jain_exact(&rates)
    }
}

/// The single-pass analyzer. Feed events in simulation order (the order
/// probes deliver and traces record), then [`StreamingAnalyzer::finish`].
#[derive(Debug)]
pub struct StreamingAnalyzer {
    manifest: Manifest,
    targets: AnalysisTargets,
    window_secs: f64,
    events: u64,
    drops: u64,
    last_t: f64,
    ports: BTreeMap<(usize, u32), PortState>,
    jain_current: Option<(u64, JainWindow)>,
    jain_closed: Vec<(u64, f64)>,
}

impl StreamingAnalyzer {
    /// An analyzer stamping its report with `manifest` (restamped to
    /// [`ANALYSIS_SCHEMA`]). `window_secs` must be positive.
    pub fn new(manifest: &Manifest, targets: AnalysisTargets, window_secs: f64) -> Self {
        assert!(window_secs > 0.0, "window width must be positive");
        let mut prev_to = f64::NEG_INFINITY;
        for (i, e) in targets.epochs.iter().enumerate() {
            assert!(
                e.from_secs.is_finite() && e.to_secs.is_finite() && e.from_secs < e.to_secs,
                "epoch {i} must be a finite non-empty interval"
            );
            assert!(e.from_secs >= prev_to, "epoch {i} overlaps its predecessor");
            prev_to = e.to_secs;
        }
        StreamingAnalyzer {
            manifest: manifest.for_schema(ANALYSIS_SCHEMA),
            targets,
            window_secs,
            events: 0,
            drops: 0,
            last_t: 0.0,
            ports: BTreeMap::new(),
            jain_current: None,
            jain_closed: Vec::new(),
        }
    }

    fn port(&mut self, node: usize, port: u32) -> &mut PortState {
        self.ports.entry((node, port)).or_default()
    }

    fn window_index(&self, t: f64) -> u64 {
        (t / self.window_secs).max(0.0) as u64
    }

    fn queue_sample(&mut self, t: f64, node: usize, port: u32, qlen: u32) {
        let w = self.window_secs;
        let p = self.port(node, port);
        p.q_hist.record(u64::from(qlen));
        p.q_w
            .get_or_insert_with(|| IntervalSampler::new(w))
            .push(t, f64::from(qlen));
    }

    fn jain_sample(&mut self, t: f64, rm: Option<(u32, f64)>, cwnd: Option<(u32, f64)>) {
        let idx = self.window_index(t);
        match &mut self.jain_current {
            Some((cur, win)) if *cur == idx => {
                win.add(rm, cwnd);
            }
            _ => {
                self.close_jain_window();
                let mut win = JainWindow::default();
                win.add(rm, cwnd);
                self.jain_current = Some((idx, win));
            }
        }
    }

    fn close_jain_window(&mut self) {
        if let Some((idx, win)) = self.jain_current.take() {
            if !win.is_empty() {
                self.jain_closed.push((idx, win.jain()));
            }
        }
    }

    /// Consume one event. `t` is the event time in seconds — exactly the
    /// `t` field a trace line carries, so file replay and live taps see
    /// identical bits.
    pub fn on_event(&mut self, t: f64, node: usize, ev: &ProbeEvent) {
        self.events += 1;
        if t > self.last_t {
            self.last_t = t;
        }
        let tail = self.targets.tail_from_secs;
        match *ev {
            ProbeEvent::Enqueue { port, qlen } => self.queue_sample(t, node, port, qlen),
            ProbeEvent::Dequeue { port, qlen } => {
                self.queue_sample(t, node, port, qlen);
                let w = self.window_secs;
                let p = self.port(node, port);
                p.dequeues += 1;
                if t >= tail {
                    p.tail_dequeues += 1;
                }
                p.deq_w
                    .get_or_insert_with(|| IntervalSampler::new(w))
                    .push(t, f64::from(qlen));
            }
            ProbeEvent::Drop { port, qlen, .. } => {
                self.drops += 1;
                self.queue_sample(t, node, port, qlen);
            }
            ProbeEvent::MacrUpdate {
                port, macr, dev, ..
            } => {
                let (target, tol, w) = (
                    self.targets.macr_cps,
                    self.targets.conv_tol,
                    self.window_secs,
                );
                // Field-level borrow: `p` holds `self.ports` mutably while
                // the epoch loop below reads `self.targets.epochs`.
                let p = self.ports.entry((node, port)).or_default();
                p.saw_macr = true;
                p.macr_w
                    .get_or_insert_with(|| IntervalSampler::new(w))
                    .push(t, macr);
                if let Some(target) = target {
                    let band = tol * target.abs().max(f64::MIN_POSITIVE);
                    if (macr - target).abs() > band {
                        p.conv_candidate = None;
                    } else if p.conv_candidate.is_none() {
                        p.conv_candidate = Some(t);
                    }
                }
                if t >= tail {
                    p.macr_tail.push(macr);
                    if dev.is_finite() {
                        p.dev_tail.push(dev);
                    }
                }
                if !self.targets.epochs.is_empty() {
                    if p.epoch.len() < self.targets.epochs.len() {
                        p.epoch
                            .resize_with(self.targets.epochs.len(), EpochPortState::default);
                    }
                    for (e, es) in self.targets.epochs.iter().zip(p.epoch.iter_mut()) {
                        if t < e.from_secs || t >= e.to_secs {
                            continue;
                        }
                        let band = tol * e.macr_cps.abs().max(f64::MIN_POSITIVE);
                        if (macr - e.macr_cps).abs() > band {
                            es.conv_candidate = None;
                        } else if es.conv_candidate.is_none() {
                            es.conv_candidate = Some(t);
                        }
                        if t >= e.from_secs + 0.5 * (e.to_secs - e.from_secs) {
                            es.tail.push(macr);
                        }
                    }
                }
            }
            ProbeEvent::RmTurnaround { vc, er, .. } => self.jain_sample(t, Some((vc, er)), None),
            ProbeEvent::CwndChange { flow, cwnd, .. } => {
                self.jain_sample(t, None, Some((flow, cwnd)))
            }
            ProbeEvent::SessionStart { .. } | ProbeEvent::SessionStop { .. } => {}
        }
    }

    /// Close all windows and produce the report.
    pub fn finish(mut self) -> AnalysisReport {
        self.close_jain_window();
        let targets = self.targets;
        let window_secs = self.window_secs;

        // The bottleneck is the port that served the most traffic; ties
        // break toward the lowest (node, port) for determinism.
        let bkey = self
            .ports
            .iter()
            .fold(None::<((usize, u32), u64)>, |best, (&k, p)| match best {
                Some((_, d)) if d >= p.dequeues => best,
                _ if p.dequeues > 0 || p.saw_macr => Some((k, p.dequeues)),
                _ => best,
            })
            .map(|(k, _)| k);
        let bottleneck = bkey.and_then(|k| self.ports.get(&k));

        let nan = f64::NAN;
        let (conv, macr_mean, osc, dev_mean) = match bottleneck {
            Some(p) => (
                p.conv_candidate.unwrap_or(nan),
                p.macr_tail.mean(),
                if p.macr_tail.count() == 0 {
                    nan
                } else {
                    p.macr_tail.range()
                },
                p.dev_tail.mean(),
            ),
            None => (nan, nan, nan, nan),
        };
        let fp_err = match (targets.macr_cps, macr_mean.is_nan()) {
            (Some(target), false) if target != 0.0 => (macr_mean - target).abs() / target.abs(),
            _ => nan,
        };
        let util = match (targets.capacity_cps, bottleneck) {
            (Some(c), Some(p)) if self.last_t > targets.tail_from_secs && c > 0.0 => {
                p.tail_dequeues as f64 / ((self.last_t - targets.tail_from_secs) * c)
            }
            _ => nan,
        };
        let (jain_min, jain_mean) = {
            let mut min = f64::INFINITY;
            let mut stats = RunningStats::new();
            for &(idx, j) in &self.jain_closed {
                if idx as f64 * window_secs >= targets.tail_from_secs && !j.is_nan() {
                    min = min.min(j);
                    stats.push(j);
                }
            }
            if stats.count() == 0 {
                (nan, nan)
            } else {
                (min, stats.mean())
            }
        };
        let (qp50, qp90, qp99, qmax) = match bottleneck {
            Some(p) if !p.q_hist.is_empty() => (
                p.q_hist.quantile(0.5) as f64,
                p.q_hist.quantile(0.9) as f64,
                p.q_hist.quantile(0.99) as f64,
                p.q_hist.max() as f64,
            ),
            _ => (nan, nan, nan, nan),
        };

        let epochs: Vec<EpochRow> = targets
            .epochs
            .iter()
            .enumerate()
            .map(|(i, e)| {
                let (cand, mean) = bottleneck
                    .and_then(|p| p.epoch.get(i))
                    .map(|es| (es.conv_candidate, es.tail.mean()))
                    .unwrap_or((None, nan));
                EpochRow {
                    index: i as u64,
                    from_secs: e.from_secs,
                    to_secs: e.to_secs,
                    target_macr_cps: e.macr_cps,
                    reconvergence_secs: cand.map_or(nan, |t| t - e.from_secs),
                    fixed_point_error_rel: if mean.is_nan() || e.macr_cps == 0.0 {
                        nan
                    } else {
                        (mean - e.macr_cps).abs() / e.macr_cps.abs()
                    },
                    macr_tail_mean_cps: mean,
                }
            })
            .collect();

        let metrics = vec![
            ("convergence_secs", conv),
            ("fixed_point_error_rel", fp_err),
            ("macr_tail_mean_cps", macr_mean),
            ("oscillation_amplitude_cps", osc),
            ("macr_mean_abs_dev_cps", dev_mean),
            ("jain_tail_min", jain_min),
            ("jain_tail_mean", jain_mean),
            ("utilization_tail", util),
            ("queue_p50_cells", qp50),
            ("queue_p90_cells", qp90),
            ("queue_p99_cells", qp99),
            ("queue_max_cells", qmax),
            ("drops_total", self.drops as f64),
        ];

        // Per-window rows come from the bottleneck port's samplers plus
        // the global fairness windows.
        let mut rows: BTreeMap<u64, WindowRow> = BTreeMap::new();
        let blank = |index| WindowRow {
            index,
            macr_mean_cps: nan,
            jain: nan,
            utilization: nan,
            queue_max_cells: nan,
        };
        if let Some(bkey) = bkey {
            let p = self.ports.remove(&bkey).expect("bottleneck exists");
            if let Some(s) = p.macr_w {
                for (idx, st) in s.finish() {
                    rows.entry(idx).or_insert_with(|| blank(idx)).macr_mean_cps = st.mean();
                }
            }
            if let Some(s) = p.q_w {
                for (idx, st) in s.finish() {
                    rows.entry(idx)
                        .or_insert_with(|| blank(idx))
                        .queue_max_cells = st.max();
                }
            }
            if let (Some(s), Some(c)) = (p.deq_w, targets.capacity_cps) {
                for (idx, st) in s.finish() {
                    rows.entry(idx).or_insert_with(|| blank(idx)).utilization =
                        st.count() as f64 / (window_secs * c);
                }
            }
        }
        for &(idx, j) in &self.jain_closed {
            rows.entry(idx).or_insert_with(|| blank(idx)).jain = j;
        }

        AnalysisReport {
            manifest: self.manifest,
            window_secs,
            events: self.events,
            metrics,
            epochs,
            windows: rows.into_values().collect(),
        }
    }
}

impl JainWindow {
    fn add(&mut self, rm: Option<(u32, f64)>, cwnd: Option<(u32, f64)>) {
        if let Some((vc, er)) = rm {
            let e = self.rm.entry(vc).or_insert((0, 0.0));
            e.0 += 1;
            e.1 += er;
        }
        if let Some((flow, w)) = cwnd {
            let e = self.cwnd.entry(flow).or_insert((0, 0.0));
            e.0 += 1;
            e.1 += w;
        }
    }
}

/// A [`Probe`] feeding a shared [`StreamingAnalyzer`], so a live run can
/// be analyzed without writing a trace. Install the sink (alone or under
/// a tee, *unfiltered* — the analyzer needs every kind); after the probe
/// is uninstalled, [`AnalysisHandle::finish`] yields the report.
pub struct AnalysisSink {
    shared: Rc<RefCell<Option<StreamingAnalyzer>>>,
}

/// The take-back side of an [`AnalysisSink`].
pub struct AnalysisHandle {
    shared: Rc<RefCell<Option<StreamingAnalyzer>>>,
}

impl AnalysisSink {
    /// Wrap `analyzer`; returns the probe and its result handle.
    pub fn new(analyzer: StreamingAnalyzer) -> (Self, AnalysisHandle) {
        let shared = Rc::new(RefCell::new(Some(analyzer)));
        (
            AnalysisSink {
                shared: Rc::clone(&shared),
            },
            AnalysisHandle { shared },
        )
    }
}

impl Probe for AnalysisSink {
    fn on_event(&mut self, t: SimTime, node: NodeId, ev: &ProbeEvent) {
        if let Some(a) = self.shared.borrow_mut().as_mut() {
            // `as_secs_f64` is exactly the value `event_to_json` prints
            // (and shortest-roundtrip parsing recovers), keeping live and
            // file analysis bit-identical.
            a.on_event(t.as_secs_f64(), node.0, ev);
        }
    }
}

impl AnalysisHandle {
    /// Finish the analysis. `None` if already finished.
    pub fn finish(self) -> Option<AnalysisReport> {
        self.shared
            .borrow_mut()
            .take()
            .map(StreamingAnalyzer::finish)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phantom_metrics::manifest::TRACE_SCHEMA;

    fn manifest() -> Manifest {
        Manifest::new(TRACE_SCHEMA, "test", 1, "cfg")
    }

    fn analyzer(targets: AnalysisTargets) -> StreamingAnalyzer {
        StreamingAnalyzer::new(&manifest(), targets, 0.010)
    }

    fn macr(v: f64) -> ProbeEvent {
        ProbeEvent::MacrUpdate {
            port: 0,
            macr: v,
            delta: 0.0,
            dev: 1.0,
            gain: 0.25,
        }
    }

    #[test]
    fn convergence_matches_batch_semantics() {
        let targets = AnalysisTargets {
            macr_cps: Some(100.0),
            ..AnalysisTargets::default()
        };
        // climb out of band, enter at t=0.03, stay
        let mut a = analyzer(targets.clone());
        for (i, v) in [40.0, 70.0, 99.0, 100.0, 101.0].iter().enumerate() {
            a.on_event(0.01 * (i + 1) as f64, 0, &macr(*v));
        }
        let r = a.finish();
        assert_eq!(r.metric("convergence_secs"), Some(0.03));

        // a late excursion resets the candidate
        let mut a = analyzer(targets.clone());
        for (i, v) in [100.0, 100.0, 300.0, 100.0].iter().enumerate() {
            a.on_event(0.01 * (i + 1) as f64, 0, &macr(*v));
        }
        assert_eq!(a.finish().metric("convergence_secs"), Some(0.04));

        // never settles
        let mut a = analyzer(targets);
        a.on_event(0.01, 0, &macr(100.0));
        a.on_event(0.02, 0, &macr(300.0));
        assert_eq!(a.finish().metric("convergence_secs"), None);
    }

    #[test]
    fn symmetric_sessions_score_exactly_one() {
        let mut a = analyzer(AnalysisTargets::default());
        for i in 0..40u32 {
            let t = 0.001 * f64::from(i);
            a.on_event(
                t,
                5,
                &ProbeEvent::RmTurnaround {
                    vc: i % 4,
                    er: 0.1 + 2.0 / 3.0, // deliberately non-round
                    ci: false,
                },
            );
        }
        let r = a.finish();
        assert_eq!(r.metric("jain_tail_min"), Some(1.0));
        assert_eq!(r.metric("jain_tail_mean"), Some(1.0));
    }

    #[test]
    fn unequal_rates_score_below_one() {
        let mut a = analyzer(AnalysisTargets::default());
        for i in 0..10u32 {
            a.on_event(
                0.001 * f64::from(i),
                5,
                &ProbeEvent::RmTurnaround {
                    vc: i % 2,
                    er: if i % 2 == 0 { 10.0 } else { 30.0 },
                    ci: false,
                },
            );
        }
        let r = a.finish();
        let j = r.metric("jain_tail_mean").unwrap();
        assert!(j < 1.0 && j > 0.5, "jain {j}");
    }

    #[test]
    fn bottleneck_is_busiest_port_and_drops_count() {
        let mut a = analyzer(AnalysisTargets {
            capacity_cps: Some(1000.0),
            ..AnalysisTargets::default()
        });
        // port (1,0) serves 3 cells; port (2,0) serves 1
        for i in 0..3u32 {
            a.on_event(
                0.001 * f64::from(i + 1),
                1,
                &ProbeEvent::Dequeue { port: 0, qlen: 5 },
            );
        }
        a.on_event(0.001, 2, &ProbeEvent::Dequeue { port: 0, qlen: 90 });
        a.on_event(
            0.004,
            1,
            &ProbeEvent::Drop {
                port: 0,
                qlen: 6,
                reason: phantom_sim::probe::DropReason::Overflow,
            },
        );
        let r = a.finish();
        assert_eq!(r.metric("drops_total"), Some(1.0));
        // queue quantiles come from the busy port, not the 90-cell one
        assert_eq!(r.metric("queue_max_cells"), Some(6.0));
        assert_eq!(r.events, 5);
    }

    #[test]
    fn epoch_metrics_track_each_plateau() {
        // Two epochs: target 100 until t=0.1, then target 50. The MACR
        // tracks each plateau after a short transient.
        let targets = AnalysisTargets {
            epochs: vec![
                EpochTarget {
                    from_secs: 0.0,
                    to_secs: 0.1,
                    macr_cps: 100.0,
                },
                EpochTarget {
                    from_secs: 0.1,
                    to_secs: 0.2,
                    macr_cps: 50.0,
                },
            ],
            ..AnalysisTargets::default()
        };
        let mut a = analyzer(targets);
        // epoch 0: out of band at 0.01, in band from 0.02 on
        for (t, v) in [(0.01, 40.0), (0.02, 98.0), (0.06, 101.0), (0.09, 100.0)] {
            a.on_event(t, 0, &macr(v));
        }
        // epoch 1: transient at 0.10, converged from 0.12
        for (t, v) in [(0.10, 100.0), (0.12, 52.0), (0.16, 50.0), (0.19, 50.0)] {
            a.on_event(t, 0, &macr(v));
        }
        let r = a.finish();
        assert_eq!(r.epochs.len(), 2);
        assert!((r.metric("epoch0_reconvergence_secs").unwrap() - 0.02).abs() < 1e-12);
        // 0.12 - 0.1 = re-convergence relative to the perturbation
        assert!((r.metric("epoch1_reconvergence_secs").unwrap() - 0.02).abs() < 1e-12);
        // epoch 1 tail = [0.15, 0.2): samples 50, 50 → zero error
        assert_eq!(r.metric("epoch1_fixed_point_error_rel"), Some(0.0));
        assert_eq!(r.metric("epoch1_macr_tail_mean_cps"), Some(50.0));
        // epoch 0 tail = [0.05, 0.1): mean(101, 100) = 100.5
        assert_eq!(r.metric("epoch0_macr_tail_mean_cps"), Some(100.5));
        // the epoch section serializes; an epoch-free report omits it
        let json = r.to_json();
        assert!(json.contains("\"epochs\": [\n"));
        assert!(json.contains("\"epoch\": 1, \"from\": 0.1"));
        let mut b = analyzer(AnalysisTargets::default());
        b.on_event(0.01, 0, &macr(1.0));
        assert!(!b.finish().to_json().contains("\"epochs\""));
    }

    #[test]
    fn epoch_metric_names_parse() {
        assert_eq!(
            parse_epoch_metric("epoch0_reconvergence_secs"),
            Some((0, "reconvergence_secs"))
        );
        assert_eq!(
            parse_epoch_metric("epoch12_macr_tail_mean_cps"),
            Some((12, "macr_tail_mean_cps"))
        );
        assert_eq!(parse_epoch_metric("epoch_reconvergence_secs"), None);
        assert_eq!(parse_epoch_metric("epoch0_bogus"), None);
        assert_eq!(parse_epoch_metric("convergence_secs"), None);
    }

    #[test]
    fn report_json_shape() {
        let mut a = analyzer(AnalysisTargets::default());
        a.on_event(0.001, 0, &ProbeEvent::Enqueue { port: 0, qlen: 1 });
        let r = a.finish();
        let json = r.to_json();
        assert!(json.contains("\"schema\": \"phantom-analysis/1\""));
        assert!(json.contains("\"manifest\": {\"schema\":\"phantom-analysis/1\""));
        assert!(json.contains("\"convergence_secs\": null"));
        assert!(json.contains("\"drops_total\": 0"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn sink_round_trip() {
        let (mut sink, handle) = AnalysisSink::new(analyzer(AnalysisTargets::default()));
        sink.on_event(
            SimTime::from_millis(1),
            NodeId(0),
            &ProbeEvent::Enqueue { port: 0, qlen: 2 },
        );
        let report = handle.finish().unwrap();
        assert_eq!(report.events, 1);
    }
}
